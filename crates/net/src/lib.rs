//! # basilisk-net — the HTTP/JSON wire front end
//!
//! Puts a network protocol on the serving layer: a [`Listener`] accepts
//! TCP connections, speaks a minimal HTTP/1.1, and funnels every request
//! through [`Server::submit`](basilisk_serve::Server::submit) — so
//! remote traffic gets exactly the same admission fairness, typed
//! errors, and backpressure as in-process callers, and the serving
//! layer needs no knowledge that a network exists.
//!
//! Everything is hand-rolled on `std` (`TcpListener` + blocking threads,
//! no async runtime, no external dependencies): connections are few and
//! long-lived, concurrency comes from the *server's* admission lanes,
//! and the protocol below is small enough that a framework would cost
//! more than it saves.
//!
//! ## Wire format
//!
//! HTTP/1.1 over TCP, persistent connections, JSON bodies both ways
//! (`content-length` framing; no chunked encoding). Endpoints:
//!
//! | Route | Body | Reply (200) |
//! |---|---|---|
//! | `POST /v1/sql` | `{"sql", "client"?, "priority"?, "trace"?}` | result envelope |
//! | `POST /v1/prepare` | `{"sql"}` | `{"ok", "handle", "params"}` |
//! | `POST /v1/execute` | `{"handle", "params", "client"?, "priority"?, "trace"?}` | result envelope |
//! | `POST /v1/close` | `{"handle"}` | `{"ok", "closed"}` |
//! | `GET /v1/stats` | — | counters + per-lane fairness stats |
//! | `GET /v1/slow` | — | slow-query ring, newest first, traces inline |
//! | `GET /v1/metrics` | — | Prometheus text exposition (`text/plain`) |
//! | `GET /v1/health` | — | `{"ok": true}` |
//!
//! `client` tags the request's fairness lane; `priority` is `"high"` /
//! `"normal"` / `"low"` (see [`basilisk_serve::Priority`]). Prepared
//! handles are per-listener and survive reconnects. `"trace": true`
//! asks the server to record a span tree for the request; it comes back
//! as a `"trace"` field on the result envelope (`{"name",
//! "start_micros", "duration_micros", "attrs"?, "children"?}`,
//! recursively). `/v1/metrics` is the only non-JSON route — it serves
//! the `basilisk_serve_*` / `basilisk_sched_*` / `basilisk_arena_*`
//! metric families (names are a contract; see `ROADMAP.md`) in
//! Prometheus text exposition format.
//!
//! **Result envelope** (200):
//!
//! ```json
//! {"ok": true, "row_count": 2,
//!  "columns": [{"name": "t.id", "values": [1, 2]}],
//!  "planner": "t_combined", "chosen": "t_pushdown",
//!  "cache_hit": true, "queue_wait_micros": 0}
//! ```
//!
//! Values are encoded losslessly: ints as bare JSON integers (`i64`
//! exact), finite floats with shortest-round-trip formatting (always
//! carrying a `.` or exponent, so `7` and `7.0` stay distinct),
//! non-finite floats as `{"$f": "<f64 bits in hex>"}`, strings/bools/
//! nulls as their JSON namesakes. The end-to-end suite pins that rows
//! fetched over the wire equal the in-process result **bit for bit**.
//!
//! **Error envelope** (any non-200; see
//! [`basilisk_serve::ServeError`]):
//!
//! ```json
//! {"ok": false, "error": {"kind": "busy", "message": "",
//!  "retryable": true, "in_flight": 4, "queue_depth": 12}}
//! ```
//!
//! Status mapping: overload (`kind == "busy"`) is **503** with a
//! `retry-after` header; client-fixable failures (`parse`, `plan`,
//! `type`, `schema`, `protocol`) are **400**; engine-side failures
//! (`io`, `corrupt`, `exec`) are **500**. `kind` strings match
//! [`BasiliskError::kind`](basilisk_types::BasiliskError::kind), and a
//! property test pins that every error round-trips the envelope with
//! kind, message, offset and retryability intact.

#![forbid(unsafe_code)]

pub mod http;
pub mod json;
pub mod wire;

mod client;
mod listener;

pub use client::{Client, RemotePrepared};
pub use json::Json;
pub use listener::Listener;
pub use wire::WireResponse;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use basilisk_catalog::Catalog;
    use basilisk_serve::{ErrorKind, Server, ServerConfig};
    use basilisk_storage::TableBuilder;
    use basilisk_types::{DataType, Value};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let mut b = TableBuilder::new("title")
            .column("id", DataType::Int)
            .column("year", DataType::Int)
            .column("score", DataType::Float)
            .column("name", DataType::Str);
        for i in 0..200i64 {
            b.push_row(vec![
                i.into(),
                (1900 + i % 120).into(),
                ((i % 100) as f64 / 10.0).into(),
                format!("film {}", i % 40).into(),
            ])
            .unwrap();
        }
        cat.add_table(b.finish().unwrap()).unwrap();
        cat
    }

    fn listener(config: ServerConfig) -> Listener {
        let server = Arc::new(Server::new(catalog(), config));
        Listener::bind(server, "127.0.0.1:0").unwrap()
    }

    fn small() -> ServerConfig {
        ServerConfig::builder()
            .contexts(2)
            .workers(1)
            .build()
            .unwrap()
    }

    const Q: &str = "SELECT t.id, t.score, t.name FROM title t \
                     WHERE t.year > 2000 OR t.score > 7.5";

    #[test]
    fn sql_over_wire_matches_in_process_bit_for_bit() {
        let l = listener(small());
        let mut c = Client::connect(l.local_addr()).unwrap();
        let wire = c.sql(Q).unwrap();
        let local = l.server().sql(Q).unwrap();
        assert_eq!(wire.row_count, local.row_count);
        assert_eq!(wire.columns.len(), local.columns.len());
        for ((name, values), (cref, col)) in wire.columns.iter().zip(&local.columns) {
            assert_eq!(name, &cref.to_string());
            for (i, v) in values.iter().enumerate() {
                // Bit-for-bit: float compare via bits, not ==.
                match (v, &col.value(i)) {
                    (Value::Float(a), Value::Float(b)) => {
                        assert_eq!(a.to_bits(), b.to_bits())
                    }
                    (a, b) => assert_eq!(a, b),
                }
            }
        }
        assert!(!wire.planner.is_empty());
    }

    #[test]
    fn prepare_execute_and_close_over_wire() {
        let l = listener(small());
        let mut c = Client::connect(l.local_addr()).unwrap();
        let stmt = c.prepare(Q).unwrap();
        assert_eq!(stmt.params, 2);
        assert_eq!(l.prepared_handles(), 1);
        let r1 = c
            .execute(stmt, &[Value::Int(2000), Value::Float(7.5)])
            .unwrap();
        let local = l
            .server()
            .sql("SELECT t.id, t.score, t.name FROM title t WHERE t.year > 2000 OR t.score > 7.5")
            .unwrap();
        assert_eq!(r1.row_count, local.row_count);
        assert!(r1.cache_hit, "prepared execution reuses the cached plan");
        // A second connection can execute the same handle.
        let mut c2 = Client::connect(l.local_addr()).unwrap();
        let r2 = c2
            .execute(stmt, &[Value::Int(1900), Value::Float(0.0)])
            .unwrap();
        assert!(r2.row_count >= r1.row_count);
        assert!(c.close(stmt).unwrap());
        assert_eq!(l.prepared_handles(), 0);
        let err = c
            .execute(stmt, &[Value::Int(2000), Value::Float(7.5)])
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::Protocol, "closed handle: {err}");
    }

    /// Send a raw HTTP request and return (status, parsed body).
    fn raw_call(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = std::io::BufReader::new(stream);
        http::write_request(&mut writer, method, path, body.as_bytes()).unwrap();
        let resp = http::read_response(&mut reader).unwrap();
        let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        (resp.status, doc)
    }

    #[test]
    fn typed_errors_cross_the_wire() {
        let l = listener(small());
        let mut c = Client::connect(l.local_addr()).unwrap();
        // Parse error: kind + byte offset survive, with a 400 status.
        let err = c.sql("SELECT t.id FROM").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Parse);
        assert!(err.offset.is_some(), "{err:?}");
        assert!(!err.retryable);
        // Schema error.
        let err = c.sql("SELECT t.id FROM nope t").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Schema);
        // The connection keeps working after errors (keep-alive).
        assert!(c.sql(Q).is_ok());
        assert_eq!(l.server().stats().errors, 2);
    }

    #[test]
    fn protocol_errors_are_400_and_never_reach_the_engine() {
        let l = listener(small());
        let addr = l.local_addr();
        for (method, path, body) in [
            ("POST", "/v1/nope", "{}"),
            ("GET", "/v1/sql", ""),
            ("POST", "/v1/sql", "not json"),
            ("POST", "/v1/sql", "{\"nosql\":1}"),
            (
                "POST",
                "/v1/sql",
                &format!("{{\"sql\":\"{Q}\",\"priority\":\"urgent\"}}"),
            ),
            ("POST", "/v1/execute", "{\"handle\":999999}"),
        ] {
            let (status, doc) = raw_call(addr, method, path, body);
            assert_eq!(status, 400, "{method} {path} {body}");
            let err = wire::parse_error(&doc).unwrap();
            assert_eq!(err.kind, ErrorKind::Protocol, "{method} {path}");
            assert!(!err.retryable);
        }
        let stats = l.server().stats();
        assert_eq!(stats.errors, 0, "protocol failures never hit the engine");
        assert_eq!(stats.statements_executed, 0);
    }

    #[test]
    fn health_and_stats_endpoints() {
        let l = listener(small());
        let mut c = Client::connect(l.local_addr())
            .unwrap()
            .with_client_id("probe");
        c.health().unwrap();
        c.sql(Q).unwrap();
        c.sql(Q).unwrap();
        let stats = c.stats().unwrap();
        assert_eq!(
            stats.get("statements_executed").and_then(Json::as_u64),
            Some(2)
        );
        let lanes = stats.get("lanes").and_then(Json::as_array).unwrap();
        let probe = lanes
            .iter()
            .find(|l| l.get("client").and_then(Json::as_str) == Some("probe"))
            .expect("probe lane present");
        assert_eq!(probe.get("dispatched").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn traced_sql_carries_span_tree_over_wire() {
        let l = listener(small());
        let mut c = Client::connect(l.local_addr()).unwrap();
        let plain = c.sql(Q).unwrap();
        assert!(plain.trace.is_none(), "tracing is opt-in");
        let traced = c.sql_traced(Q).unwrap();
        assert_eq!(traced.row_count, plain.row_count);
        let trace = traced.trace.expect("trace requested");
        assert_eq!(trace.get("name").and_then(Json::as_str), Some("request"));
        let children = trace.get("children").and_then(Json::as_array).unwrap();
        let names: Vec<_> = children
            .iter()
            .filter_map(|c| c.get("name").and_then(Json::as_str))
            .collect();
        assert!(names.contains(&"plan"), "{names:?}");
        assert!(names.contains(&"admission_wait"), "{names:?}");
        assert!(names.contains(&"execute"), "{names:?}");
        // The execute span carries operator children with attrs.
        let exec = children
            .iter()
            .find(|c| c.get("name").and_then(Json::as_str) == Some("execute"))
            .unwrap();
        assert!(exec
            .get("attrs")
            .and_then(|a| a.get("rows"))
            .and_then(Json::as_u64)
            .is_some());
        assert!(exec.get("children").and_then(Json::as_array).is_some());
    }

    #[test]
    fn metrics_and_slow_endpoints() {
        let server = Arc::new(Server::new(
            catalog(),
            ServerConfig::builder()
                .contexts(2)
                .workers(1)
                .slow_threshold_micros(0)
                .slow_log_capacity(4)
                .build()
                .unwrap(),
        ));
        let l = Listener::bind(server, "127.0.0.1:0").unwrap();
        let mut c = Client::connect(l.local_addr())
            .unwrap()
            .with_client_id("probe");
        c.sql(Q).unwrap();
        c.sql_traced(Q).unwrap();

        let text = c.metrics().unwrap();
        for family in [
            "basilisk_serve_statements_executed_total",
            "basilisk_serve_latency_micros_bucket",
            "basilisk_serve_lane_admitted_total{client=\"probe\"}",
            "basilisk_sched_workers",
            "basilisk_arena_outstanding",
        ] {
            assert!(text.contains(family), "missing {family}:\n{text}");
        }
        // Exposition is line-shaped: comments or `name[{labels}] value`.
        for line in text.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("name value");
            assert!(value.parse::<f64>().is_ok(), "bad line: {line}");
        }

        let slow = c.slow().unwrap();
        let entries = slow.get("slow").and_then(Json::as_array).unwrap();
        assert_eq!(entries.len(), 2, "threshold 0 records every request");
        // Newest first; the traced request is the most recent and keeps
        // its span tree through the ring and the wire.
        assert!(entries[0].get("trace").is_some());
        assert!(entries[1].get("trace").is_none());
        assert_eq!(
            entries[0].get("client").and_then(Json::as_str),
            Some("probe")
        );
        assert!(entries[0]
            .get("total_micros")
            .and_then(Json::as_u64)
            .is_some());

        // /v1/stats grew the totals the load driver needs.
        let stats = c.stats().unwrap();
        for field in [
            "statements_prepared",
            "cache_evictions",
            "queue_depth",
            "parallel_regions",
            "region_slots",
            "region_max_concurrent",
        ] {
            assert!(
                stats.get(field).and_then(Json::as_u64).is_some(),
                "missing stats field {field}"
            );
        }
    }

    #[test]
    fn overload_maps_to_retryable_503() {
        // contexts=1, queue_limit=1: while one statement executes, a
        // second concurrent one is rejected with Busy.
        let l = listener(
            ServerConfig::builder()
                .contexts(1)
                .queue_limit(1)
                .workers(1)
                .build()
                .unwrap(),
        );
        let addr = l.local_addr();
        let slow = "SELECT COUNT(*) FROM title t WHERE t.name ILIKE '%film%' \
                    OR t.year > 1900 OR t.score > 0.1";
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    let mut busy = 0u32;
                    for _ in 0..25 {
                        match c.sql(slow) {
                            Ok(_) => {}
                            Err(e) => {
                                assert_eq!(e.kind, ErrorKind::Busy, "{e}");
                                assert!(e.retryable);
                                assert!(e.in_flight.is_some());
                                busy += 1;
                            }
                        }
                    }
                    busy
                })
            })
            .collect();
        let total_busy: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let stats = l.server().stats();
        assert_eq!(stats.rejected, total_busy as u64);
        assert_eq!(stats.queue_depth, 0, "system drained");
    }
}
