//! Per-query pool of `Arc`-shared `u32` index columns.
//!
//! [`MaskArena`](crate::MaskArena) covers the *scratch* shapes of the hot
//! path (masks, bitmaps, decode buffers), but join and projection outputs
//! are different: `combine` and `select` build `Vec<u32>` index columns
//! that end up **inside** the produced relation, `Arc`-shared between the
//! operator's output and whoever else clones the relation. Those columns
//! used to be plain `Vec` allocations on every `execute()` — the last
//! malloc left on the tagged path.
//!
//! [`ColumnPool`] extends the checkout → evaluate → recycle lifecycle to
//! these shared buffers:
//!
//! 1. **checkout** — [`ColumnPool::checkout`] pops the best-fitting pooled
//!    buffer (smallest capacity ≥ the requested length), cleared in place;
//!    a pool miss allocates and bumps the `fresh` counter.
//! 2. **share** — the operator fills the buffer, wraps it in `Arc`, and
//!    hands it to the output relation. The pool does not track it while
//!    it is live; it is an ordinary `Arc<Vec<u32>>`.
//! 3. **reclaim** — when a relation dies, each column goes back through
//!    [`ColumnPool::recycle`]: `Arc::try_unwrap` recovers the buffer when
//!    this was the last reference, otherwise the handle is simply dropped
//!    and a later holder's recycle (or the buffer's `Drop`) ends its life.
//!    Columns that escape to the *query result* are parked with
//!    [`ColumnPool::defer`] instead and swept by [`ColumnPool::reclaim`]
//!    at the start of the next execution, once the caller has dropped the
//!    result.
//!
//! With every producer and consumer on this protocol, repeated
//! `execute()` of one plan performs zero index-column allocations after
//! warmup — `crates/plan/tests/arena_steady_state.rs` pins
//! `ArenaStats::fresh() == 0` for join- and union-producing plans.

use std::cell::{Cell, RefCell};
use std::sync::Arc;

use crate::arena::PoolStats;

/// Upper bound on parked buffers (pool + deferred). A query pipeline only
/// holds a handful of columns at once; the cap keeps a pathological
/// caller from hoarding memory through the pool.
const MAX_POOLED: usize = 256;

/// A per-query pool of `Vec<u32>` index columns with `Arc::try_unwrap`
/// reclamation (see the module docs for the lifecycle).
#[derive(Default)]
pub struct ColumnPool {
    bufs: RefCell<Vec<Vec<u32>>>,
    /// Result columns awaiting their last external reference to drop.
    deferred: RefCell<Vec<Arc<Vec<u32>>>>,
    fresh: Cell<usize>,
    reused: Cell<usize>,
    live: Cell<usize>,
}

impl ColumnPool {
    pub fn new() -> ColumnPool {
        ColumnPool::default()
    }

    /// Check out an empty column able to hold `len` values without
    /// reallocating: the best-fitting pooled buffer (smallest capacity
    /// ≥ `len`), or a fresh allocation on a pool miss.
    pub fn checkout(&self, len: usize) -> Vec<u32> {
        let mut pool = self.bufs.borrow_mut();
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        for (i, b) in pool.iter().enumerate().rev() {
            let cap = b.capacity();
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
        }
        self.live.set(self.live.get() + 1);
        match best {
            Some((i, _)) => {
                self.reused.set(self.reused.get() + 1);
                let mut v = pool.swap_remove(i);
                v.clear();
                v
            }
            None => {
                self.fresh.set(self.fresh.get() + 1);
                Vec::with_capacity(len)
            }
        }
    }

    /// Return a shared column: reclaims the buffer when `col` is the last
    /// reference, otherwise drops the handle (a surviving holder — e.g.
    /// the query result — still owns the buffer and recycles or defers it
    /// through its own path).
    pub fn recycle(&self, col: Arc<Vec<u32>>) {
        if let Ok(buf) = Arc::try_unwrap(col) {
            self.recycle_vec(buf);
        }
    }

    /// Return a column that was never shared.
    pub fn recycle_vec(&self, buf: Vec<u32>) {
        self.live.set(self.live.get().saturating_sub(1));
        let mut pool = self.bufs.borrow_mut();
        if pool.len() < MAX_POOLED {
            pool.push(buf);
        }
    }

    /// Park a *result* column for later reclamation: the caller still
    /// holds a reference now, but once it drops the result, the next
    /// [`Self::reclaim`] sweep recovers the buffer.
    pub fn defer(&self, col: Arc<Vec<u32>>) {
        self.live.set(self.live.get().saturating_sub(1));
        let mut deferred = self.deferred.borrow_mut();
        if deferred.len() < MAX_POOLED {
            deferred.push(col);
        }
    }

    /// Sweep the deferred list: columns whose external references are gone
    /// move back into the pool; the rest stay parked.
    pub fn reclaim(&self) {
        let mut deferred = self.deferred.borrow_mut();
        let mut pool = self.bufs.borrow_mut();
        deferred.retain_mut(|arc| {
            if Arc::strong_count(arc) > 1 {
                return true;
            }
            let buf = std::mem::take(Arc::get_mut(arc).expect("sole owner"));
            if pool.len() < MAX_POOLED {
                pool.push(buf);
            }
            false
        });
    }

    /// Checkout counters since construction or [`Self::reset_stats`].
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            fresh: self.fresh.get(),
            reused: self.reused.get(),
        }
    }

    /// Zero the checkout counters (pooled buffers stay warm).
    pub fn reset_stats(&self) {
        self.fresh.set(0);
        self.reused.set(0);
    }

    /// Buffers currently parked (reusable pool + deferred result columns).
    pub fn pooled(&self) -> usize {
        self.bufs.borrow().len() + self.deferred.borrow().len()
    }

    /// Columns checked out and not yet recycled or deferred — zero after
    /// an execution fully unwinds (error paths included).
    pub fn outstanding(&self) -> usize {
        self.live.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_recycle_roundtrip() {
        let pool = ColumnPool::new();
        let mut v = pool.checkout(100);
        assert_eq!(pool.stats().fresh, 1);
        assert!(v.capacity() >= 100);
        v.extend(0..100);
        pool.recycle(Arc::new(v));
        pool.reset_stats();

        let v = pool.checkout(80);
        assert!(v.is_empty(), "recycled buffer comes back cleared");
        assert!(v.capacity() >= 100, "capacity survives the round-trip");
        assert_eq!(pool.stats().fresh, 0);
        assert_eq!(pool.stats().reused, 1);
    }

    #[test]
    fn shared_columns_are_dropped_not_pooled() {
        let pool = ColumnPool::new();
        let a = Arc::new(pool.checkout(10));
        let b = Arc::clone(&a);
        pool.recycle(a); // b still live → buffer not reclaimed
        assert_eq!(pool.pooled(), 0);
        assert_eq!(pool.outstanding(), 1);
        pool.recycle(b); // last reference → reclaimed
        assert_eq!(pool.pooled(), 1);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient() {
        let pool = ColumnPool::new();
        pool.recycle_vec(Vec::with_capacity(1000));
        pool.recycle_vec(Vec::with_capacity(64));
        pool.reset_stats();
        let small = pool.checkout(32);
        assert!(
            small.capacity() < 1000,
            "small request keeps the big buffer free"
        );
        let big = pool.checkout(900);
        assert!(big.capacity() >= 1000);
        assert_eq!(pool.stats().fresh, 0);
    }

    #[test]
    fn deferred_columns_reclaim_after_release() {
        let pool = ColumnPool::new();
        let col = Arc::new(pool.checkout(50));
        let result_handle = Arc::clone(&col);
        pool.defer(col);
        pool.reclaim();
        assert_eq!(pool.pooled(), 1, "still parked in deferred");
        assert_eq!(pool.stats().fresh, 1);
        // Caller drops the result → next sweep recovers the buffer.
        drop(result_handle);
        pool.reclaim();
        pool.reset_stats();
        pool.checkout(40);
        assert_eq!(pool.stats().reused, 1);
        assert_eq!(pool.stats().fresh, 0);
    }

    #[test]
    fn pool_respects_cap() {
        let pool = ColumnPool::new();
        for _ in 0..(MAX_POOLED + 10) {
            pool.recycle_vec(Vec::new());
        }
        assert!(pool.pooled() <= MAX_POOLED);
    }
}
