//! The ISSUE-2/ISSUE-3 acceptance test: steady-state execution is
//! allocation-free — **including join-output index columns**.
//!
//! A `QuerySession` owns one `MaskArena` (with its `ColumnPool`); the
//! first `execute()` of a plan warms the pool and every later execution
//! must be served entirely from recycled buffers. `ArenaStats::fresh()`
//! counts pool misses — i.e. the buffer allocations the word-parallel
//! path would otherwise perform — so `fresh() == 0` across a run *is*
//! the zero-allocation proof for every mask, slice bitmap, selection
//! bitmap, index decode buffer, scan identity column, joined index
//! column and union output column on the hot path. (Value-column
//! materializations — gathered key/predicate values, projected outputs —
//! are outside the pools' scope and not claimed here.)
//!
//! Result columns escape to the caller inside `QueryOutput` and are
//! reclaimed (via `Arc::try_unwrap`) on the next `execute()` once the
//! caller drops the output — the serving loop modelled here: each
//! iteration consumes the result (extracts its tuples) and releases it.

use basilisk_catalog::Catalog;
use basilisk_expr::{and, col, or, ColumnRef};
use basilisk_plan::{PlannerKind, Query, QuerySession};
use basilisk_storage::TableBuilder;
use basilisk_types::{DataType, Value};

fn catalog(with_nulls: bool) -> Catalog {
    let mut cat = Catalog::new();
    let mut b = TableBuilder::new("title")
        .column("id", DataType::Int)
        .column("year", DataType::Int);
    for i in 0..4000i64 {
        let year = if with_nulls && i % 37 == 0 {
            Value::Null
        } else {
            Value::Int(1900 + i % 120)
        };
        b.push_row(vec![i.into(), year]).unwrap();
    }
    cat.add_table(b.finish().unwrap()).unwrap();
    let mut b = TableBuilder::new("scores")
        .column("movie_id", DataType::Int)
        .column("score", DataType::Float);
    for i in 0..6000i64 {
        b.push_row(vec![(i % 4000).into(), ((i % 100) as f64 / 10.0).into()])
            .unwrap();
    }
    cat.add_table(b.finish().unwrap()).unwrap();
    cat
}

fn filter_query() -> Query {
    Query::new(vec![("t".into(), "title".into())])
        .filter(or(vec![
            and(vec![
                col("t", "year").gt(2000i64),
                col("t", "id").lt(3000i64),
            ]),
            and(vec![
                col("t", "year").lt(1950i64),
                col("t", "id").gt(500i64),
            ]),
            col("t", "year").eq(1980i64),
        ]))
        .select(vec![ColumnRef::new("t", "id")])
}

fn join_query() -> Query {
    Query::new(vec![
        ("t".into(), "title".into()),
        ("mi".into(), "scores".into()),
    ])
    .join(ColumnRef::new("t", "id"), ColumnRef::new("mi", "movie_id"))
    .filter(or(vec![
        and(vec![
            col("t", "year").gt(2000i64),
            col("mi", "score").gt(7.0),
        ]),
        and(vec![
            col("t", "year").gt(1980i64),
            col("mi", "score").gt(8.0),
        ]),
    ]))
    .select(vec![ColumnRef::new("t", "id")])
}

/// One serving iteration: execute, extract the canonical result tuples,
/// release the `QueryOutput` (so the pool can reclaim its columns on the
/// next run).
fn serve(session: &QuerySession, plan: &basilisk_plan::Plan) -> Vec<Vec<u32>> {
    session.execute(plan).unwrap().canonical_tuples()
}

/// Run `plan` repeatedly on a fresh session; every run after the warmup
/// must perform zero fresh buffer checkouts — across **all four** pooled
/// shapes, output index columns included — while producing the identical
/// result.
fn assert_steady_state(query: Query, kind: PlannerKind) {
    let cat = catalog(false);
    let session = QuerySession::new(&cat, query).unwrap();
    let plan = session.plan(kind).unwrap();

    let first = serve(&session, &plan);
    let warmup = session.arena_stats();
    assert!(
        warmup.fresh() > 0,
        "warmup run should populate the pool ({kind})"
    );

    session.reset_arena_stats();
    let second = serve(&session, &plan);
    let steady = session.arena_stats();
    assert_eq!(
        steady.fresh(),
        0,
        "steady-state execution must be allocation-free, \
         but {kind} checked out {} fresh buffers (stats: {steady:?})",
        steady.fresh()
    );
    assert_eq!(
        steady.columns.fresh, 0,
        "join/union/select output columns must come from the pool ({kind})"
    );
    assert!(
        steady.reused() > 0,
        "steady-state execution should reuse pooled buffers ({kind})"
    );
    assert_eq!(
        first, second,
        "buffer reuse must not change results ({kind})"
    );

    // And it stays allocation-free on every further run.
    for _ in 0..3 {
        session.reset_arena_stats();
        serve(&session, &plan);
        assert_eq!(session.arena_stats().fresh(), 0, "run N stays at zero");
    }
}

#[test]
fn tagged_filter_pipeline_is_allocation_free_in_steady_state() {
    assert_steady_state(filter_query(), PlannerKind::TPushdown);
}

#[test]
fn tagged_filter_join_pipeline_is_allocation_free_in_steady_state() {
    assert_steady_state(join_query(), PlannerKind::TCombined);
}

#[test]
fn traditional_pipeline_is_allocation_free_in_steady_state() {
    assert_steady_state(join_query(), PlannerKind::BPushConj);
}

/// BDisj plans a filter→join→**union** pipeline (one joined clause per
/// root disjunct, deduplicated) — the union's output columns and its
/// dedup scratch must be pooled too.
#[test]
fn union_pipeline_is_allocation_free_in_steady_state() {
    assert_steady_state(join_query(), PlannerKind::BDisj);
}

/// NULL-bearing data routes tuples through the unknown slice; the extra
/// unk bitmaps must recycle just like pos/neg.
#[test]
fn three_valued_pipeline_is_allocation_free_in_steady_state() {
    let cat = catalog(true);
    let session = QuerySession::new(&cat, filter_query()).unwrap();
    let plan = session.plan(PlannerKind::TPushdown).unwrap();
    session.execute(&plan).unwrap();
    session.reset_arena_stats();
    session.execute(&plan).unwrap();
    assert_eq!(session.arena_stats().fresh(), 0);
}

/// While the caller still holds a `QueryOutput`, its columns must stay
/// intact (deferred, not reclaimed); they return to the pool only after
/// the caller releases the result.
#[test]
fn held_results_are_not_corrupted_by_reuse() {
    let cat = catalog(false);
    let session = QuerySession::new(&cat, join_query()).unwrap();
    let plan = session.plan(PlannerKind::TCombined).unwrap();
    let held = session.execute(&plan).unwrap();
    let snapshot = held.canonical_tuples();
    // Re-execute twice while `held` is alive: the pool may allocate
    // replacements for the escaped columns, but must never reuse them.
    let again = session.execute(&plan).unwrap();
    session.execute(&plan).unwrap();
    assert_eq!(held.canonical_tuples(), snapshot);
    assert_eq!(again.canonical_tuples(), snapshot);
}

/// Different planners share the session pool: after one planner warms it,
/// a same-shaped plan from another planner also runs allocation-free only
/// if its shapes fit — at minimum it must never *grow* the pool once the
/// largest shapes are in.
#[test]
fn pool_survives_planner_switch() {
    let cat = catalog(false);
    let session = QuerySession::new(&cat, join_query()).unwrap();
    for kind in [
        PlannerKind::TPushdown,
        PlannerKind::TCombined,
        PlannerKind::TPullup,
    ] {
        let plan = session.plan(kind).unwrap();
        session.execute(&plan).unwrap();
        session.reset_arena_stats();
        session.execute(&plan).unwrap();
        assert_eq!(
            session.arena_stats().fresh(),
            0,
            "planner {kind} not allocation-free on rerun"
        );
    }
}
