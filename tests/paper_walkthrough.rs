//! End-to-end reproduction of the paper's running example: Query 1 over
//! the exact rows of Examples 1–4, through the public SQL API, under every
//! planner.

use basilisk::{DataType, Database, PlannerKind, TableBuilder, Value};

fn paper_db() -> Database {
    let mut db = Database::new();
    let mut titles = TableBuilder::new("title")
        .column("title", DataType::Str)
        .column("year", DataType::Int)
        .column("id", DataType::Int);
    for (t, y, id) in [
        ("The Dark Knight", 2008i64, 1i64),
        ("Evolution", 2001, 2),
        ("The Shawshank Redemption", 1994, 3),
        ("Pulp Fiction", 1994, 4),
        ("The Godfather", 1972, 5),
        ("Beetlejuice", 1988, 6),
        ("Avatar", 2009, 7),
    ] {
        titles
            .push_row(vec![t.into(), y.into(), id.into()])
            .unwrap();
    }
    db.register(titles.finish().unwrap()).unwrap();

    let mut scores = TableBuilder::new("movie_info_idx")
        .column("score", DataType::Str)
        .column("movie_id", DataType::Int);
    for (s, mid) in [
        ("9.0", 1i64),
        ("9.3", 3),
        ("8.9", 4),
        ("9.2", 5),
        ("7.5", 6),
        ("7.9", 7),
    ] {
        scores.push_row(vec![s.into(), mid.into()]).unwrap();
    }
    db.register(scores.finish().unwrap()).unwrap();
    db
}

const QUERY1: &str = "SELECT t.title, mi_idx.score FROM title AS t \
     JOIN movie_info_idx AS mi_idx ON t.id = mi_idx.movie_id \
     WHERE (t.year > 2000 AND mi_idx.score > '7.0') \
        OR (t.year > 1980 AND mi_idx.score > '8.0')";

/// Example 4's expected output: Dark Knight (9.0), Avatar (7.9) from the
/// first clause; Shawshank (9.3), Pulp Fiction (8.9) from the second.
fn expected() -> Vec<(String, String)> {
    let mut v = vec![
        ("The Dark Knight".to_string(), "9.0".to_string()),
        ("Avatar".to_string(), "7.9".to_string()),
        ("The Shawshank Redemption".to_string(), "9.3".to_string()),
        ("Pulp Fiction".to_string(), "8.9".to_string()),
    ];
    v.sort();
    v
}

fn result_pairs(db: &Database, kind: PlannerKind) -> Vec<(String, String)> {
    let r = db.sql_with(QUERY1, kind).unwrap();
    let titles = &r.columns[0].1;
    let scores = &r.columns[1].1;
    let mut out: Vec<(String, String)> = (0..r.row_count)
        .map(|i| {
            let t = match titles.value(i) {
                Value::Str(s) => s,
                other => panic!("unexpected {other:?}"),
            };
            let s = match scores.value(i) {
                Value::Str(s) => s,
                other => panic!("unexpected {other:?}"),
            };
            (t, s)
        })
        .collect();
    out.sort();
    out
}

#[test]
fn query1_every_planner_reproduces_example4() {
    let db = paper_db();
    for kind in [
        PlannerKind::TPushdown,
        PlannerKind::TPullup,
        PlannerKind::TIterPush,
        PlannerKind::TPushConj,
        PlannerKind::TCombined,
        PlannerKind::BDisj,
        PlannerKind::BPushConj,
    ] {
        assert_eq!(result_pairs(&db, kind), expected(), "planner {kind}");
    }
}

/// The Godfather (1972, 9.2) fails both clauses — the §2.2 example of a
/// tuple dropped by the second filter.
#[test]
fn godfather_is_excluded() {
    let db = paper_db();
    let pairs = result_pairs(&db, PlannerKind::TCombined);
    assert!(pairs.iter().all(|(t, _)| !t.contains("Godfather")));
    // Beetlejuice (1988, 7.5): satisfies year>1980 but not score>'8.0',
    // and not year>2000 — also excluded.
    assert!(pairs.iter().all(|(t, _)| !t.contains("Beetlejuice")));
}

/// The pullup example from §4.2: a highly selective score predicate plus
/// an expensive ILIKE — all planners agree, and TCombined completes.
#[test]
fn pullup_scenario_from_section_4_2() {
    let db = paper_db();
    let sql = "SELECT t.title FROM title t \
               JOIN movie_info_idx mi_idx ON t.id = mi_idx.movie_id \
               WHERE (mi_idx.score = '9.2' OR mi_idx.score = '9.3') \
                 AND t.title ILIKE '%godfather%'";
    let mut counts = vec![];
    for kind in [
        PlannerKind::TCombined,
        PlannerKind::TPullup,
        PlannerKind::BPushConj,
    ] {
        counts.push(db.sql_with(sql, kind).unwrap().row_count);
    }
    assert_eq!(counts, vec![1, 1, 1], "only The Godfather matches");
}

/// CNF form of Query 1: `(y>2000 OR s>'8.0') AND (y>1980 OR s>'7.0')` —
/// the shape BPushConj cannot push at all but tagged execution can.
#[test]
fn cnf_variant_agrees() {
    let db = paper_db();
    let sql = "SELECT t.id FROM title t \
               JOIN movie_info_idx mi_idx ON t.id = mi_idx.movie_id \
               WHERE (t.year > 2000 OR mi_idx.score > '8.0') \
                 AND (t.year > 1980 OR mi_idx.score > '7.0')";
    let reference = db.sql_with(sql, PlannerKind::BPushConj).unwrap().row_count;
    for kind in [
        PlannerKind::TCombined,
        PlannerKind::TPushdown,
        PlannerKind::BDisj,
    ] {
        assert_eq!(db.sql_with(sql, kind).unwrap().row_count, reference);
    }
}
