//! The §4.1 cost models.
//!
//! Tagged costs "are summations of the costs of individual relational
//! slices": the annotation pass simulates tag flow bottom-up through an
//! abstract plan, building every operator's tag map along the way and
//! tracking a cardinality estimate per tag. Filter cost is
//! `α Σ_{I∈M} F_P · |R[I]|`; join cost decomposes into hash build, hash
//! lookup and output-index build, with the build side chosen as the
//! cheaper of the two (footnote 4).

use std::collections::HashMap;

use basilisk_catalog::Estimator;
use basilisk_core::{FilterTagMap, JoinTagMap, ProjectionTags, Tag, TagMapBuilder};
use basilisk_expr::{ExprId, PredicateTree};
use basilisk_types::{BasiliskError, Result};

use crate::aplan::APlan;
use crate::benefit::filter_cost_factor;
use crate::query::JoinCond;

/// Calibration constants of the cost model.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Calibrates filter cost against join cost (`α`).
    pub alpha: f64,
    pub f_hash_lookup: f64,
    pub f_hash_build: f64,
    pub f_index_build: f64,
    /// Per-tuple cost of the deduplicating union (BDisj plans).
    pub f_union: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alpha: 1.0,
            f_hash_lookup: 1.0,
            f_hash_build: 1.5,
            f_index_build: 0.5,
            f_union: 1.0,
        }
    }
}

/// A tagged physical plan: the abstract tree with a tag map attached to
/// every filter and join, plus the projection's admitted tags.
#[derive(Debug, Clone)]
pub enum TPlan {
    Scan {
        alias: String,
    },
    Filter {
        node: ExprId,
        map: FilterTagMap,
        child: Box<TPlan>,
    },
    Join {
        cond: JoinCond,
        map: JoinTagMap,
        left: Box<TPlan>,
        right: Box<TPlan>,
    },
}

/// The result of annotating an abstract plan for tagged execution.
#[derive(Debug, Clone)]
pub struct TaggedAnnotation {
    pub plan: TPlan,
    pub projection: ProjectionTags,
    /// Estimated total cost under the §4.1 model.
    pub cost: f64,
    /// Estimated output cardinality.
    pub out_rows: f64,
}

/// Per-tag cardinality estimates flowing along one plan edge.
type TagCards = Vec<(Tag, f64)>;

/// Annotate an abstract plan with tag maps and cost it (§4.1).
pub fn annotate_tagged(
    plan: &APlan,
    tree: &PredicateTree,
    builder: &TagMapBuilder<'_>,
    est: &Estimator,
    cm: &CostModel,
) -> Result<TaggedAnnotation> {
    let mut total = 0.0;
    let (tplan, cards) = sim(plan, tree, builder, est, cm, &mut total)?;
    let tags: Vec<Tag> = cards.iter().map(|(t, _)| t.clone()).collect();
    let projection = builder.projection_tags(&tags);
    let out_rows = cards
        .iter()
        .filter(|(t, _)| projection.allowed.contains(t))
        .map(|(_, c)| c)
        .sum();
    Ok(TaggedAnnotation {
        plan: tplan,
        projection,
        cost: total,
        out_rows,
    })
}

fn sim(
    plan: &APlan,
    tree: &PredicateTree,
    builder: &TagMapBuilder<'_>,
    est: &Estimator,
    cm: &CostModel,
    total: &mut f64,
) -> Result<(TPlan, TagCards)> {
    match plan {
        APlan::Scan { alias } => {
            let rows = est.rows(alias)?;
            Ok((
                TPlan::Scan {
                    alias: alias.clone(),
                },
                vec![(Tag::empty(), rows)],
            ))
        }
        APlan::Filter { node, child } => {
            let (tchild, in_cards) = sim(child, tree, builder, est, cm, total)?;
            let in_tags: Vec<Tag> = in_cards.iter().map(|(t, _)| t.clone()).collect();
            let map = builder.filter_map(*node, &in_tags);
            let f_p = filter_cost_factor(tree, *node);
            let sel = est.node_selectivity(tree, *node)?;

            let mut out: HashMap<Tag, f64> = HashMap::new();
            let mut order: Vec<Tag> = Vec::new();
            let push = |tag: &Tag, card: f64, out: &mut HashMap<Tag, f64>, order: &mut Vec<Tag>| {
                if !out.contains_key(tag) {
                    order.push(tag.clone());
                }
                *out.entry(tag.clone()).or_insert(0.0) += card;
            };
            for (tag, card) in &in_cards {
                match map.entry_for(tag) {
                    None => push(tag, *card, &mut out, &mut order),
                    Some(e) => {
                        // Dead entries (no outputs) are dropped without
                        // evaluation; live entries cost α·F_P·|R[I]|.
                        if e.pos.is_some() || e.neg.is_some() || e.unk.is_some() {
                            *total += cm.alpha * f_p * card;
                        }
                        if let Some(t) = &e.pos {
                            push(t, card * sel, &mut out, &mut order);
                        }
                        if let Some(t) = &e.neg {
                            push(t, card * (1.0 - sel), &mut out, &mut order);
                        }
                        // Unknown mass is not modelled separately (the
                        // estimator has no NULL statistics for predicates,
                        // so its cardinality share is folded into the
                        // negative branch above) — but the unknown TAG
                        // must still flow downstream: join tag maps are
                        // built from this tag set, and omitting the tag
                        // would discard the whole unknown slice at the
                        // next join.
                        if let Some(t) = &e.unk {
                            push(t, 0.0, &mut out, &mut order);
                        }
                    }
                }
            }
            let out_cards: TagCards = order
                .into_iter()
                .map(|t| {
                    let c = out[&t];
                    (t, c)
                })
                .collect();
            Ok((
                TPlan::Filter {
                    node: *node,
                    map,
                    child: Box::new(tchild),
                },
                out_cards,
            ))
        }
        APlan::Join { cond, left, right } => {
            let (tleft, lcards) = sim(left, tree, builder, est, cm, total)?;
            let (tright, rcards) = sim(right, tree, builder, est, cm, total)?;
            let ltags: Vec<Tag> = lcards.iter().map(|(t, _)| t.clone()).collect();
            let rtags: Vec<Tag> = rcards.iter().map(|(t, _)| t.clone()).collect();
            let map = builder.join_map(&ltags, &rtags);

            let lmap: HashMap<&Tag, f64> = lcards.iter().map(|(t, c)| (t, *c)).collect();
            let rmap: HashMap<&Tag, f64> = rcards.iter().map(|(t, c)| (t, *c)).collect();

            // R'_left / R'_right: union of participating slices.
            let mut part_l: HashMap<&Tag, f64> = HashMap::new();
            let mut part_r: HashMap<&Tag, f64> = HashMap::new();
            for e in &map.entries {
                if let Some(&c) = lmap.get(&e.left) {
                    part_l.insert(&e.left, c);
                }
                if let Some(&c) = rmap.get(&e.right) {
                    part_r.insert(&e.right, c);
                }
            }
            let r_left: f64 = part_l.values().sum();
            let r_right: f64 = part_r.values().sum();
            let jsel = est.join_selectivity(&cond.left, &cond.right)?;

            // Output cardinalities per entry.
            let mut out: HashMap<Tag, f64> = HashMap::new();
            let mut order: Vec<Tag> = Vec::new();
            let mut out_total = 0.0;
            for e in &map.entries {
                let (Some(&lc), Some(&rc)) = (lmap.get(&e.left), rmap.get(&e.right)) else {
                    continue;
                };
                let c = lc * rc * jsel;
                out_total += c;
                if !out.contains_key(&e.out) {
                    order.push(e.out.clone());
                }
                *out.entry(e.out.clone()).or_insert(0.0) += c;
            }

            // Build side: cheaper of the two (footnote 4).
            let unique_l = r_left.min(est.ndv(&cond.left)?);
            let unique_r = r_right.min(est.ndv(&cond.right)?);
            let build_left =
                cm.f_hash_lookup * r_left + cm.f_hash_build * unique_l + cm.f_hash_lookup * r_right;
            let build_right =
                cm.f_hash_lookup * r_right + cm.f_hash_build * unique_r + cm.f_hash_lookup * r_left;
            *total += build_left.min(build_right) + cm.f_index_build * out_total;

            let out_cards: TagCards = order.into_iter().map(|t| (t.clone(), out[&t])).collect();
            Ok((
                TPlan::Join {
                    cond: cond.clone(),
                    map,
                    left: Box::new(tleft),
                    right: Box::new(tright),
                },
                out_cards,
            ))
        }
        APlan::Union { .. } => Err(BasiliskError::Plan(
            "union operators do not exist under tagged execution".into(),
        )),
    }
}

/// Cost a traditional plan under the same constants (single cardinality
/// per edge instead of per-slice sums).
pub fn cost_traditional(
    plan: &APlan,
    tree: &PredicateTree,
    est: &Estimator,
    cm: &CostModel,
) -> Result<f64> {
    let mut total = 0.0;
    sim_traditional(plan, tree, est, cm, &mut total)?;
    Ok(total)
}

fn sim_traditional(
    plan: &APlan,
    tree: &PredicateTree,
    est: &Estimator,
    cm: &CostModel,
    total: &mut f64,
) -> Result<f64> {
    match plan {
        APlan::Scan { alias } => est.rows(alias),
        APlan::Filter { node, child } => {
            let rows = sim_traditional(child, tree, est, cm, total)?;
            *total += cm.alpha * filter_cost_factor(tree, *node) * rows;
            Ok(rows * est.node_selectivity(tree, *node)?)
        }
        APlan::Join { cond, left, right } => {
            let l = sim_traditional(left, tree, est, cm, total)?;
            let r = sim_traditional(right, tree, est, cm, total)?;
            let jsel = est.join_selectivity(&cond.left, &cond.right)?;
            let out = l * r * jsel;
            let unique_l = l.min(est.ndv(&cond.left)?);
            let unique_r = r.min(est.ndv(&cond.right)?);
            let build_left =
                cm.f_hash_lookup * l + cm.f_hash_build * unique_l + cm.f_hash_lookup * r;
            let build_right =
                cm.f_hash_lookup * r + cm.f_hash_build * unique_r + cm.f_hash_lookup * l;
            *total += build_left.min(build_right) + cm.f_index_build * out;
            Ok(out)
        }
        APlan::Union { children } => {
            let mut sum = 0.0;
            for c in children {
                sum += sim_traditional(c, tree, est, cm, total)?;
            }
            *total += cm.f_union * sum;
            Ok(sum)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basilisk_catalog::Catalog;
    use basilisk_core::TagMapStrategy;
    use basilisk_expr::{and, col, or, ColumnRef};
    use basilisk_storage::TableBuilder;
    use basilisk_types::DataType;

    fn setup() -> (Catalog, Estimator, PredicateTree) {
        let mut cat = Catalog::new();
        let mut b = TableBuilder::new("t")
            .column("id", DataType::Int)
            .column("year", DataType::Int);
        for i in 0..100i64 {
            b.push_row(vec![i.into(), (1950 + i).into()]).unwrap();
        }
        cat.add_table(b.finish().unwrap()).unwrap();
        let mut b = TableBuilder::new("mi")
            .column("movie_id", DataType::Int)
            .column("score", DataType::Float);
        for i in 0..100i64 {
            b.push_row(vec![i.into(), ((i % 10) as f64).into()])
                .unwrap();
        }
        cat.add_table(b.finish().unwrap()).unwrap();
        let est = Estimator::new(
            &cat,
            &[("t".into(), "t".into()), ("mi".into(), "mi".into())],
        )
        .unwrap();
        let e = or(vec![
            and(vec![
                col("t", "year").gt(2000i64),
                col("mi", "score").gt(7.0),
            ]),
            and(vec![
                col("t", "year").gt(1980i64),
                col("mi", "score").gt(8.0),
            ]),
        ]);
        (cat, est, PredicateTree::build(&e))
    }

    fn find(tree: &PredicateTree, s: &str) -> ExprId {
        tree.atom_ids()
            .into_iter()
            .find(|&id| tree.display(id) == s)
            .unwrap()
    }

    fn pushdown_plan(tree: &PredicateTree) -> APlan {
        APlan::join(
            JoinCond::new(ColumnRef::new("t", "id"), ColumnRef::new("mi", "movie_id")),
            APlan::filter(
                find(tree, "t.year > 1980"),
                APlan::filter(find(tree, "t.year > 2000"), APlan::scan("t")),
            ),
            APlan::filter(
                find(tree, "mi.score > 7"),
                APlan::filter(find(tree, "mi.score > 8"), APlan::scan("mi")),
            ),
        )
    }

    #[test]
    fn annotate_builds_maps_and_costs() {
        let (_cat, est, tree) = setup();
        let builder = TagMapBuilder::new(&tree, TagMapStrategy::Generalized { use_closure: true });
        let cm = CostModel::default();
        let plan = pushdown_plan(&tree);
        let ann = annotate_tagged(&plan, &tree, &builder, &est, &cm).unwrap();
        assert!(ann.cost > 0.0);
        assert!(ann.out_rows > 0.0);
        assert!(!ann.projection.allowed.is_empty());
        // The annotated plan mirrors the abstract structure.
        let TPlan::Join { map, left, .. } = &ann.plan else {
            panic!("root is a join");
        };
        assert!(!map.entries.is_empty());
        let TPlan::Filter { map: fm, .. } = &**left else {
            panic!("left child is a filter");
        };
        // The outer-left filter is year>1980 over pushdown tags.
        assert!(fm.entries().len() <= 2);
    }

    #[test]
    fn pushdown_cheaper_than_no_pushdown_for_tagged() {
        let (_cat, est, tree) = setup();
        let builder = TagMapBuilder::new(&tree, TagMapStrategy::Generalized { use_closure: true });
        let cm = CostModel::default();
        let pushed = pushdown_plan(&tree);
        // All filters above the join.
        let mut unpushed = APlan::join(
            JoinCond::new(ColumnRef::new("t", "id"), ColumnRef::new("mi", "movie_id")),
            APlan::scan("t"),
            APlan::scan("mi"),
        );
        for f in pushed.filters() {
            unpushed = APlan::filter(f, unpushed);
        }
        let a = annotate_tagged(&pushed, &tree, &builder, &est, &cm).unwrap();
        let b = annotate_tagged(&unpushed, &tree, &builder, &est, &cm).unwrap();
        assert!(
            a.cost < b.cost,
            "pushdown {:.1} should beat pullup {:.1} on this selective workload",
            a.cost,
            b.cost
        );
        // Both estimates are for the same query; they need not agree
        // exactly (the independence assumption composes differently per
        // plan shape — the paper itself observes its cost model is
        // imperfect, §5.1), but both must be positive and same order of
        // magnitude.
        assert!(a.out_rows > 0.0 && b.out_rows > 0.0);
        let ratio = a.out_rows.max(b.out_rows) / a.out_rows.min(b.out_rows);
        assert!(
            ratio < 10.0,
            "estimates differ wildly: {} vs {}",
            a.out_rows,
            b.out_rows
        );
    }

    #[test]
    fn traditional_cost_monotone_in_filters() {
        let (_cat, est, tree) = setup();
        let cm = CostModel::default();
        let join_only = APlan::join(
            JoinCond::new(ColumnRef::new("t", "id"), ColumnRef::new("mi", "movie_id")),
            APlan::scan("t"),
            APlan::scan("mi"),
        );
        let with_filter = APlan::filter(tree.root(), join_only.clone());
        let c0 = cost_traditional(&join_only, &tree, &est, &cm).unwrap();
        let c1 = cost_traditional(&with_filter, &tree, &est, &cm).unwrap();
        assert!(c1 > c0);
    }

    #[test]
    fn union_costs_per_tuple_and_rejected_in_tagged() {
        let (_cat, est, tree) = setup();
        let cm = CostModel::default();
        let u = APlan::Union {
            children: vec![APlan::scan("t"), APlan::scan("t")],
        };
        let c = cost_traditional(&u, &tree, &est, &cm).unwrap();
        assert!(c >= 200.0 * cm.f_union);
        let builder = TagMapBuilder::new(&tree, TagMapStrategy::Generalized { use_closure: true });
        assert!(annotate_tagged(&u, &tree, &builder, &est, &cm).is_err());
    }
}
