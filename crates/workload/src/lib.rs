//! Workload generators for the paper's evaluation (§5).
//!
//! * [`zipf`] — a self-contained Zipf sampler (the foreign keys of §5.2
//!   use shape 1.5; `rand` ships no Zipf distribution in the offline
//!   crate set, so we build the inverse-CDF sampler ourselves).
//! * [`synthetic`] — the §5.2 schema (`T0 ⋈ T1 ⋈ T2` with Zipfian foreign
//!   keys and uniform `A*` attributes) and its DNF/CNF query families,
//!   parameterized by selectivity, table size, number of root clauses and
//!   the outer conjunctive factor.
//! * [`imdb`] — a seeded synthetic IMDB-like dataset standing in for the
//!   (externally hosted, multi-GB) real IMDB dump.
//! * [`job`] — 33 disjunctive query groups mirroring how §5.1 builds its
//!   workload from the Join Order Benchmark: every group's variants share
//!   tables, join conditions and common "theme" subexpressions, and are
//!   combined by disjunction.
//!
//! See DESIGN.md §3 for why these substitutions preserve the paper's
//! experimental conditions.

#![forbid(unsafe_code)]

pub mod imdb;
pub mod job;
pub mod synthetic;
pub mod zipf;

pub use imdb::{generate_imdb, ImdbConfig};
pub use job::{job_queries, job_query, JobQuery};
pub use synthetic::{cnf_query, dnf_query, generate_synthetic, SyntheticConfig};
pub use zipf::Zipf;
