//! Per-query pool of typed *value* buffers.
//!
//! The index-column pools ([`MaskArena`](crate::MaskArena) /
//! [`ColumnPool`](crate::ColumnPool)) made the tagged pipeline
//! allocation-free for every `u32`/bitmap shape, but value
//! materializations stayed ordinary allocations: the gathered join-key
//! columns inside every hash join and the projected output columns of
//! every `project` allocate typed vectors (`Vec<i64>`, `Vec<f64>`,
//! `Vec<bool>`, string bytes) per execution. [`ValuePool`] closes that
//! last gap with the same checkout → fill → recycle lifecycle, one pool
//! per primitive payload shape (string *offsets* ride the arena's
//! existing `u32` index pool; only the byte arena is new).
//!
//! Beyond steady-state allocation-freedom, pooling value buffers matters
//! for parallel execution: per-worker arenas each carry their own value
//! pool, so N workers gathering key columns concurrently never contend on
//! the global allocator.
//!
//! Deferred value columns: projected columns escape to the caller inside
//! the query result, so — like result index columns — they cannot be
//! recycled synchronously. The session parks them (`Arc<Column>`) and
//! sweeps on the next execution; a parked column's buffers count as
//! outstanding until the sweep returns them (see
//! `QuerySession::project`).

use std::cell::{Cell, RefCell};

use crate::arena::PoolStats;

/// Upper bound on pooled buffers per shape, mirroring the other pools.
const MAX_POOLED: usize = 256;

/// A per-query pool of typed value buffers (see the module docs).
#[derive(Default)]
pub struct ValuePool {
    ints: RefCell<Vec<Vec<i64>>>,
    floats: RefCell<Vec<Vec<f64>>>,
    bools: RefCell<Vec<Vec<bool>>>,
    bytes: RefCell<Vec<Vec<u8>>>,
    fresh: Cell<usize>,
    reused: Cell<usize>,
    live: Cell<usize>,
}

macro_rules! shape {
    ($checkout:ident, $recycle:ident, $field:ident, $t:ty) => {
        /// Check out an empty buffer able to hold `len` values without
        /// reallocating (best-fitting pooled buffer, or a fresh
        /// allocation on a pool miss).
        pub fn $checkout(&self, len: usize) -> Vec<$t> {
            let mut pool = self.$field.borrow_mut();
            let mut best: Option<(usize, usize)> = None; // (index, capacity)
            for (i, b) in pool.iter().enumerate().rev() {
                let cap = b.capacity();
                if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                    best = Some((i, cap));
                }
            }
            self.live.set(self.live.get() + 1);
            match best {
                Some((i, _)) => {
                    self.reused.set(self.reused.get() + 1);
                    let mut v = pool.swap_remove(i);
                    v.clear();
                    v
                }
                None => {
                    self.fresh.set(self.fresh.get() + 1);
                    Vec::with_capacity(len)
                }
            }
        }

        /// Return a buffer to the pool.
        pub fn $recycle(&self, buf: Vec<$t>) {
            self.live.set(self.live.get().saturating_sub(1));
            let mut pool = self.$field.borrow_mut();
            if pool.len() < MAX_POOLED {
                pool.push(buf);
            }
        }
    };
}

impl ValuePool {
    pub fn new() -> ValuePool {
        ValuePool::default()
    }

    shape!(checkout_ints, recycle_ints, ints, i64);
    shape!(checkout_floats, recycle_floats, floats, f64);
    shape!(checkout_bools, recycle_bools, bools, bool);
    shape!(checkout_bytes, recycle_bytes, bytes, u8);

    /// Checkout counters since construction or [`Self::reset_stats`].
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            fresh: self.fresh.get(),
            reused: self.reused.get(),
        }
    }

    pub fn reset_stats(&self) {
        self.fresh.set(0);
        self.reused.set(0);
    }

    /// Buffers currently parked in the pools.
    pub fn pooled(&self) -> usize {
        self.ints.borrow().len()
            + self.floats.borrow().len()
            + self.bools.borrow().len()
            + self.bytes.borrow().len()
    }

    /// Buffers checked out and not yet recycled. Deferred (result-held)
    /// value columns count here until their sweep recycles them.
    pub fn outstanding(&self) -> usize {
        self.live.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_recycle_all_shapes() {
        let pool = ValuePool::new();
        let mut i = pool.checkout_ints(10);
        i.extend([1, 2, 3]);
        let mut f = pool.checkout_floats(10);
        f.push(0.5);
        let b = pool.checkout_bools(4);
        let by = pool.checkout_bytes(100);
        assert_eq!(pool.stats().fresh, 4);
        assert_eq!(pool.outstanding(), 4);
        pool.recycle_ints(i);
        pool.recycle_floats(f);
        pool.recycle_bools(b);
        pool.recycle_bytes(by);
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.pooled(), 4);

        pool.reset_stats();
        let i = pool.checkout_ints(3);
        assert!(i.is_empty(), "recycled buffer comes back cleared");
        assert!(i.capacity() >= 10, "capacity survives the round-trip");
        assert_eq!(pool.stats().fresh, 0);
        assert_eq!(pool.stats().reused, 1);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient() {
        let pool = ValuePool::new();
        pool.recycle_bytes(Vec::with_capacity(1000));
        pool.recycle_bytes(Vec::with_capacity(64));
        pool.reset_stats();
        let small = pool.checkout_bytes(32);
        assert!(small.capacity() < 1000);
        let big = pool.checkout_bytes(900);
        assert!(big.capacity() >= 1000);
        assert_eq!(pool.stats().fresh, 0);
    }

    #[test]
    fn pool_respects_cap() {
        let pool = ValuePool::new();
        for _ in 0..(MAX_POOLED + 10) {
            pool.recycle_ints(Vec::new());
        }
        assert!(pool.pooled() <= MAX_POOLED);
    }
}
