//! Tags: sets of truth assignments to predicate-tree nodes (§2.1).
//!
//! > "The tags themselves are sets of true/false assignments to
//! > arbitrarily complex predicate expressions from the query [...] Each
//! > tag may have any number of assignments, and each tuple in the
//! > corresponding relational slice must satisfy every assignment present
//! > in the associated tag."
//!
//! With the §3.4 extension, assignment values are ternary.

use std::collections::BTreeMap;
use std::fmt;

use basilisk_expr::{ExprId, PredicateTree};
use basilisk_types::Truth;

/// A set of `⟨expr⟩ = T/F/U` assignments, keyed by interned node id.
/// Stored sorted, so tags are canonical and usable as hash keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Tag {
    assignments: Vec<(ExprId, Truth)>,
}

impl Tag {
    /// The empty tag `{}` carried by base tagged relations.
    pub fn empty() -> Tag {
        Tag::default()
    }

    /// Build from assignment pairs (later duplicates must agree).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (ExprId, Truth)>) -> Tag {
        let map: BTreeMap<ExprId, Truth> = pairs.into_iter().collect();
        Tag {
            assignments: map.into_iter().collect(),
        }
    }

    pub fn from_map(map: &BTreeMap<ExprId, Truth>) -> Tag {
        Tag {
            assignments: map.iter().map(|(&k, &v)| (k, v)).collect(),
        }
    }

    pub fn to_map(&self) -> BTreeMap<ExprId, Truth> {
        self.assignments.iter().copied().collect()
    }

    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// The assignment for a node, if present.
    pub fn get(&self, id: ExprId) -> Option<Truth> {
        self.assignments
            .binary_search_by_key(&id, |&(k, _)| k)
            .ok()
            .map(|i| self.assignments[i].1)
    }

    pub fn contains(&self, id: ExprId) -> bool {
        self.get(id).is_some()
    }

    /// Iterate assignments in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ExprId, Truth)> + '_ {
        self.assignments.iter().copied()
    }

    /// A new tag with one more assignment (overwrites any existing one for
    /// the same node).
    pub fn with(&self, id: ExprId, truth: Truth) -> Tag {
        let mut map = self.to_map();
        map.insert(id, truth);
        Tag::from_map(&map)
    }

    /// Union of two tags. Returns `None` if they assign conflicting values
    /// to the same node (an impossible combination — used by join tag-map
    /// construction to discard unsatisfiable pairings defensively).
    pub fn union(&self, other: &Tag) -> Option<Tag> {
        let mut map = self.to_map();
        for (id, t) in other.iter() {
            match map.insert(id, t) {
                Some(prev) if prev != t => return None,
                _ => {}
            }
        }
        Some(Tag::from_map(&map))
    }

    /// Render with expression text, e.g. `{t.year > 2000 = T}`.
    pub fn display(&self, tree: &PredicateTree) -> String {
        let mut s = String::from("{");
        for (i, (id, t)) in self.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&tree.display(id));
            s.push_str(" = ");
            s.push(t.code());
        }
        s.push('}');
        s
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (id, t)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{id}={t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basilisk_expr::{col, or, PredicateTree};

    #[test]
    fn canonical_ordering_and_equality() {
        let a = Tag::from_pairs([(ExprId(3), Truth::True), (ExprId(1), Truth::False)]);
        let b = Tag::from_pairs([(ExprId(1), Truth::False), (ExprId(3), Truth::True)]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(ExprId(1)), Some(Truth::False));
        assert_eq!(a.get(ExprId(2)), None);
        assert!(a.contains(ExprId(3)));
        let ids: Vec<_> = a.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![ExprId(1), ExprId(3)]);
    }

    #[test]
    fn empty_tag() {
        let t = Tag::empty();
        assert!(t.is_empty());
        assert_eq!(t.to_string(), "{}");
        assert_eq!(t, Tag::from_pairs([]));
    }

    #[test]
    fn with_and_union() {
        let a = Tag::from_pairs([(ExprId(0), Truth::True)]);
        let b = a.with(ExprId(1), Truth::False);
        assert_eq!(b.len(), 2);
        assert_eq!(a.len(), 1, "with() does not mutate");

        let c = Tag::from_pairs([(ExprId(1), Truth::False), (ExprId(2), Truth::Unknown)]);
        let u = b.union(&c).unwrap();
        assert_eq!(u.len(), 3);

        let conflict = Tag::from_pairs([(ExprId(0), Truth::False)]);
        assert_eq!(a.union(&conflict), None);
    }

    #[test]
    fn display_with_tree() {
        let e = or(vec![
            col("t", "year").gt(2000i64),
            col("t", "year").gt(1980i64),
        ]);
        let tree = PredicateTree::build(&e);
        let a2000 = tree
            .atom_ids()
            .into_iter()
            .find(|&id| tree.display(id) == "t.year > 2000")
            .unwrap();
        let tag = Tag::from_pairs([(a2000, Truth::True)]);
        assert_eq!(tag.display(&tree), "{t.year > 2000 = T}");
    }

    #[test]
    fn hashable_as_key() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(Tag::from_pairs([(ExprId(1), Truth::True)]), 7);
        assert_eq!(
            m.get(&Tag::from_pairs([(ExprId(1), Truth::True)])),
            Some(&7)
        );
    }
}
