//! A seeded synthetic IMDB-like dataset (the §5.1 JOB substrate).
//!
//! The real IMDB dump is a multi-gigabyte external download; what the
//! paper's evaluation actually depends on is its *shape*: a star of fact
//! tables around `title` with skewed foreign keys, ratings stored as
//! **strings** in `movie_info_idx.info` (hence `score > '7.0'`), LIKE-able
//! name/title/keyword text with recurring marker words, and nullable
//! `note` columns. This generator reproduces those properties at a
//! configurable scale with a fixed seed.

use basilisk_storage::{Table, TableBuilder};
use basilisk_types::{DataType, Result, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// Marker words planted in titles (LIKE targets).
pub const TITLE_MARKERS: [&str; 8] = [
    "godfather",
    "man",
    "lord",
    "dark",
    "love",
    "war",
    "star",
    "night",
];

/// Marker words planted in character names.
pub const CHAR_MARKERS: [&str; 6] = ["Man", "Woman", "Doctor", "Captain", "Iron", "Agent"];

/// Keywords planted in the keyword table.
pub const KEYWORD_MARKERS: [&str; 8] = [
    "superhero",
    "sequel",
    "based-on-novel",
    "revenge",
    "dystopia",
    "romance",
    "heist",
    "space",
];

/// Country codes used by `company_name.country_code`.
pub const COUNTRY_CODES: [&str; 6] = ["[us]", "[gb]", "[de]", "[fr]", "[jp]", "[in]"];

/// The `info_type` ids the generator assigns, mirroring real IMDB usage.
pub const INFO_TYPE_RATING: i64 = 99;
pub const INFO_TYPE_VOTES: i64 = 100;

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct ImdbConfig {
    /// Linear scale on every table's row count (1.0 ≈ 130k rows total).
    pub scale: f64,
    pub seed: u64,
}

impl Default for ImdbConfig {
    fn default() -> Self {
        ImdbConfig {
            scale: 1.0,
            seed: 0x1BDB,
        }
    }
}

fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale) as usize).max(10)
}

/// Generate the full table set:
/// `title, movie_info_idx, movie_companies, company_name, movie_keyword,
/// keyword, cast_info, char_name, info_type, kind_type, company_type,
/// role_type`.
pub fn generate_imdb(cfg: &ImdbConfig) -> Result<Vec<Table>> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n_title = scaled(12_000, cfg.scale);
    let n_company = scaled(1_500, cfg.scale);
    let n_keyword = scaled(2_000, cfg.scale);
    let n_char = scaled(6_000, cfg.scale);

    let tables = vec![
        gen_title(&mut rng, n_title)?,
        gen_movie_info_idx(&mut rng, n_title)?,
        gen_movie_companies(&mut rng, n_title, n_company)?,
        gen_company_name(&mut rng, n_company)?,
        gen_movie_keyword(&mut rng, n_title, n_keyword)?,
        gen_keyword(&mut rng, n_keyword)?,
        gen_cast_info(&mut rng, n_title, n_char)?,
        gen_char_name(&mut rng, n_char)?,
        gen_info_type()?,
        gen_kind_type()?,
        gen_company_type()?,
        gen_role_type()?,
    ];
    Ok(tables)
}

const ADJECTIVES: [&str; 12] = [
    "Silent", "Broken", "Golden", "Lost", "Final", "Hidden", "Crimson", "Endless", "Burning",
    "Frozen", "Sacred", "Savage",
];
const NOUNS: [&str; 12] = [
    "Kingdom", "River", "Empire", "Garden", "Horizon", "Shadow", "Voyage", "Legacy", "Storm",
    "Crown", "Phantom", "Echo",
];

fn gen_title(rng: &mut StdRng, n: usize) -> Result<Table> {
    let mut b = TableBuilder::new("title")
        .column("id", DataType::Int)
        .column("kind_id", DataType::Int)
        .column("production_year", DataType::Int)
        .column("title", DataType::Str);
    for i in 1..=n as i64 {
        // Recent-skewed years: newer movies are far more numerous, which
        // is what makes `year > 2000` moderately selective like in IMDB.
        let r: f64 = rng.gen::<f64>();
        let year = 2024 - (r * r * 95.0) as i64;
        let kind_id = 1 + (rng.gen::<f64>().powi(3) * 6.9) as i64; // mostly 1 = movie
        let mut title = format!(
            "The {} {}",
            ADJECTIVES[rng.gen_range(0..ADJECTIVES.len())],
            NOUNS[rng.gen_range(0..NOUNS.len())]
        );
        // Plant a marker word in ~25% of titles.
        if rng.gen_bool(0.25) {
            let m = TITLE_MARKERS[rng.gen_range(0..TITLE_MARKERS.len())];
            title = format!("{title} of the {m}");
        }
        if rng.gen_bool(0.3) {
            title = format!("{title} {}", rng.gen_range(2..9));
        }
        b.push_row(vec![i.into(), kind_id.into(), year.into(), title.into()])?;
    }
    b.finish()
}

fn gen_movie_info_idx(rng: &mut StdRng, n_title: usize) -> Result<Table> {
    let mut b = TableBuilder::new("movie_info_idx")
        .column("id", DataType::Int)
        .column("movie_id", DataType::Int)
        .column("info_type_id", DataType::Int)
        .column("info", DataType::Str);
    let mut id = 1i64;
    for movie in 1..=n_title as i64 {
        // One rating row and one votes row per movie (like real IMDB's
        // rating/votes pairs).
        let rating = 1.0 + 9.0 * (0.5 + 0.5 * rng.gen::<f64>() * rng.gen::<f64>());
        let rating = (rating.min(9.9) * 10.0).round() / 10.0;
        b.push_row(vec![
            id.into(),
            movie.into(),
            INFO_TYPE_RATING.into(),
            format!("{rating:.1}").into(),
        ])?;
        id += 1;
        let votes = 10 + (rng.gen::<f64>().powi(4) * 500_000.0) as i64;
        b.push_row(vec![
            id.into(),
            movie.into(),
            INFO_TYPE_VOTES.into(),
            votes.to_string().into(),
        ])?;
        id += 1;
    }
    b.finish()
}

fn gen_movie_companies(rng: &mut StdRng, n_title: usize, n_company: usize) -> Result<Table> {
    let mut b = TableBuilder::new("movie_companies")
        .column("id", DataType::Int)
        .column("movie_id", DataType::Int)
        .column("company_id", DataType::Int)
        .column("company_type_id", DataType::Int)
        .column("note", DataType::Str);
    let zipf = Zipf::new(n_company, 1.2);
    let mut id = 1i64;
    for movie in 1..=n_title as i64 {
        let k = 1 + (rng.gen::<f64>() * 1.8) as usize;
        for _ in 0..k {
            let note: Value = if rng.gen_bool(0.4) {
                Value::Null
            } else if rng.gen_bool(0.3) {
                "(co-production)".into()
            } else {
                format!("(as studio {})", rng.gen_range(1..50)).into()
            };
            b.push_row(vec![
                id.into(),
                movie.into(),
                (zipf.sample(rng) as i64).into(),
                (1 + rng.gen_range(0..2i64)).into(),
                note,
            ])?;
            id += 1;
        }
    }
    b.finish()
}

fn gen_company_name(rng: &mut StdRng, n: usize) -> Result<Table> {
    let mut b = TableBuilder::new("company_name")
        .column("id", DataType::Int)
        .column("name", DataType::Str)
        .column("country_code", DataType::Str);
    for i in 1..=n as i64 {
        let name = if rng.gen_bool(0.1) {
            format!("Warner Pictures {i}")
        } else if rng.gen_bool(0.1) {
            format!("Universal Films {i}")
        } else {
            format!("Studio {i}")
        };
        // Zipf-ish over country codes: [us] dominates like in IMDB.
        let cc = if rng.gen_bool(0.5) {
            COUNTRY_CODES[0]
        } else {
            COUNTRY_CODES[rng.gen_range(0..COUNTRY_CODES.len())]
        };
        b.push_row(vec![i.into(), name.into(), cc.into()])?;
    }
    b.finish()
}

fn gen_keyword(rng: &mut StdRng, n: usize) -> Result<Table> {
    let mut b = TableBuilder::new("keyword")
        .column("id", DataType::Int)
        .column("keyword", DataType::Str);
    for i in 1..=n as i64 {
        // The first ids carry the marker keywords (they will also be the
        // Zipf heads of movie_keyword, making them common — like
        // "superhero" or "sequel" in real IMDB).
        let kw = if (i as usize) <= KEYWORD_MARKERS.len() {
            KEYWORD_MARKERS[i as usize - 1].to_string()
        } else {
            format!("kw-{i}")
        };
        let _ = &rng;
        b.push_row(vec![i.into(), kw.into()])?;
    }
    b.finish()
}

fn gen_movie_keyword(rng: &mut StdRng, n_title: usize, n_keyword: usize) -> Result<Table> {
    let mut b = TableBuilder::new("movie_keyword")
        .column("id", DataType::Int)
        .column("movie_id", DataType::Int)
        .column("keyword_id", DataType::Int);
    let zipf = Zipf::new(n_keyword, 1.1);
    let mut id = 1i64;
    for movie in 1..=n_title as i64 {
        let k = rng.gen_range(1..=3);
        for _ in 0..k {
            b.push_row(vec![
                id.into(),
                movie.into(),
                (zipf.sample(rng) as i64).into(),
            ])?;
            id += 1;
        }
    }
    b.finish()
}

fn gen_char_name(rng: &mut StdRng, n: usize) -> Result<Table> {
    let mut b = TableBuilder::new("char_name")
        .column("id", DataType::Int)
        .column("name", DataType::Str);
    for i in 1..=n as i64 {
        let name = if rng.gen_bool(0.2) {
            let m = CHAR_MARKERS[rng.gen_range(0..CHAR_MARKERS.len())];
            format!("{m} {}", NOUNS[rng.gen_range(0..NOUNS.len())])
        } else {
            format!("Character {i}")
        };
        b.push_row(vec![i.into(), name.into()])?;
    }
    b.finish()
}

fn gen_cast_info(rng: &mut StdRng, n_title: usize, n_char: usize) -> Result<Table> {
    let mut b = TableBuilder::new("cast_info")
        .column("id", DataType::Int)
        .column("movie_id", DataType::Int)
        .column("person_role_id", DataType::Int)
        .column("role_id", DataType::Int)
        .column("note", DataType::Str);
    let zipf = Zipf::new(n_char, 1.05);
    let mut id = 1i64;
    for movie in 1..=n_title as i64 {
        let k = rng.gen_range(1..=4);
        for _ in 0..k {
            let note: Value = if rng.gen_bool(0.5) {
                Value::Null
            } else if rng.gen_bool(0.2) {
                "(voice)".into()
            } else {
                "(uncredited)".into()
            };
            b.push_row(vec![
                id.into(),
                movie.into(),
                (zipf.sample(rng) as i64).into(),
                (1 + rng.gen_range(0..12i64)).into(),
                note,
            ])?;
            id += 1;
        }
    }
    b.finish()
}

fn gen_info_type() -> Result<Table> {
    let mut b = TableBuilder::new("info_type")
        .column("id", DataType::Int)
        .column("info", DataType::Str);
    for i in 1..=113i64 {
        let name = match i {
            INFO_TYPE_RATING => "rating".to_string(),
            INFO_TYPE_VOTES => "votes".to_string(),
            _ => format!("info-{i}"),
        };
        b.push_row(vec![i.into(), name.into()])?;
    }
    b.finish()
}

fn gen_kind_type() -> Result<Table> {
    let mut b = TableBuilder::new("kind_type")
        .column("id", DataType::Int)
        .column("kind", DataType::Str);
    for (i, kind) in [
        "movie",
        "tv series",
        "tv movie",
        "video movie",
        "tv mini series",
        "video game",
        "episode",
    ]
    .iter()
    .enumerate()
    {
        b.push_row(vec![(i as i64 + 1).into(), (*kind).into()])?;
    }
    b.finish()
}

fn gen_company_type() -> Result<Table> {
    let mut b = TableBuilder::new("company_type")
        .column("id", DataType::Int)
        .column("kind", DataType::Str);
    b.push_row(vec![1i64.into(), "production companies".into()])?;
    b.push_row(vec![2i64.into(), "distributors".into()])?;
    b.finish()
}

fn gen_role_type() -> Result<Table> {
    let mut b = TableBuilder::new("role_type")
        .column("id", DataType::Int)
        .column("role", DataType::Str);
    for (i, role) in [
        "actor",
        "actress",
        "producer",
        "writer",
        "cinematographer",
        "composer",
        "costume designer",
        "director",
        "editor",
        "miscellaneous crew",
        "production designer",
        "guest",
    ]
    .iter()
    .enumerate()
    {
        b.push_row(vec![(i as i64 + 1).into(), (*role).into()])?;
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Vec<Table> {
        generate_imdb(&ImdbConfig {
            scale: 0.05,
            seed: 7,
        })
        .unwrap()
    }

    #[test]
    fn all_tables_present() {
        let tables = small();
        let names: Vec<&str> = tables.iter().map(Table::name).collect();
        assert_eq!(
            names,
            vec![
                "title",
                "movie_info_idx",
                "movie_companies",
                "company_name",
                "movie_keyword",
                "keyword",
                "cast_info",
                "char_name",
                "info_type",
                "kind_type",
                "company_type",
                "role_type",
            ]
        );
    }

    #[test]
    fn referential_shapes() {
        let tables = small();
        let title = &tables[0];
        let n = title.num_rows() as i64;
        let mi = &tables[1];
        assert_eq!(
            mi.num_rows(),
            2 * title.num_rows(),
            "rating+votes per movie"
        );
        let movie_ids = mi.column("movie_id").unwrap().scan().unwrap();
        assert!(movie_ids
            .as_ints()
            .unwrap()
            .iter()
            .all(|&m| (1..=n).contains(&m)));
        // Ratings are strings like "7.4" under info_type 99.
        let infos = mi.column("info").unwrap().scan().unwrap();
        let types = mi.column("info_type_id").unwrap().scan().unwrap();
        let strs = infos.as_strs().unwrap();
        for i in 0..mi.num_rows() {
            if types.as_ints().unwrap()[i] == INFO_TYPE_RATING {
                let s = strs.get(i);
                assert!(s.len() == 3 && s.contains('.'), "rating format: {s}");
            }
        }
    }

    #[test]
    fn nullable_notes_exist() {
        let tables = small();
        let mc = tables
            .iter()
            .find(|t| t.name() == "movie_companies")
            .unwrap();
        let notes = mc.column("note").unwrap().scan().unwrap();
        assert!(notes.null_count() > 0, "note must be nullable");
        assert!(notes.null_count() < notes.len(), "but not all null");
    }

    #[test]
    fn markers_planted() {
        let tables = small();
        let title = &tables[0];
        let titles = title.column("title").unwrap().scan().unwrap();
        let strs = titles.as_strs().unwrap();
        let with_marker = (0..strs.len())
            .filter(|&i| TITLE_MARKERS.iter().any(|m| strs.get(i).contains(m)))
            .count();
        assert!(with_marker > strs.len() / 10, "markers in ≥10% of titles");
        let kw = tables.iter().find(|t| t.name() == "keyword").unwrap();
        let kws = kw.column("keyword").unwrap().scan().unwrap();
        assert_eq!(kws.as_strs().unwrap().get(0), "superhero");
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        let ta = a[0].column("title").unwrap().scan().unwrap();
        let tb = b[0].column("title").unwrap().scan().unwrap();
        assert_eq!(ta, tb);
    }

    #[test]
    fn years_recent_skewed() {
        let tables = small();
        let years = tables[0].column("production_year").unwrap().scan().unwrap();
        let years = years.as_ints().unwrap();
        let recent = years.iter().filter(|&&y| y > 2000).count();
        assert!(
            recent * 2 > years.len(),
            "most titles should be after 2000 ({recent}/{})",
            years.len()
        );
        assert!(years.iter().all(|&y| (1929..=2024).contains(&y)));
    }
}
