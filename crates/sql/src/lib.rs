//! SQL front end for Basilisk.
//!
//! A hand-written lexer and recursive-descent parser for the
//! select-project-join queries with arbitrary boolean WHERE clauses that
//! the paper evaluates — e.g. Query 1 parses verbatim:
//!
//! ```sql
//! SELECT * FROM title AS t JOIN movie_info_idx AS mi_idx
//! ON t.id = mi_idx.movie_id
//! WHERE (t.year > 2000 AND mi_idx.score > '7.0')
//!    OR (t.year > 1980 AND mi_idx.score > '8.0')
//! ```
//!
//! Supported predicate syntax: comparisons (`= <> != < <= > >=`) against
//! integer/float/string/boolean literals, `LIKE`/`ILIKE`/`NOT LIKE`,
//! `IS [NOT] NULL`, `[NOT] IN (…)`, `[NOT] BETWEEN … AND …` (desugared to
//! range comparisons), and arbitrarily nested `AND`/`OR`/`NOT`.
//! Projections: column lists, `*`, or `COUNT(*)`; a trailing `LIMIT n`
//! caps materialization.
//!
//! For the serving layer, [`normalize_select`] additionally rewrites
//! every predicate literal into an ordinal placeholder, producing the
//! plan-cache key and the extracted parameter vector ([`bind_params`]
//! substitutes fresh values back in the same order).

#![forbid(unsafe_code)]

mod lexer;
mod normalize;
mod parser;

pub use lexer::{tokenize, Token, TokenKind};
pub use normalize::{
    bind_params, count_params, extract_params, normalize_select, statement_key, NormalizedStatement,
};
pub use parser::{parse_select, Projection, SelectStmt};
