//! Loopback load harness for the HTTP/JSON wire front end.
//!
//! Boots a [`basilisk::Listener`] on an ephemeral loopback port, fans
//! `--clients` real TCP clients at it — each mixing prepared-statement
//! executions and ad-hoc SQL, tagged with its own client id so every
//! connection gets its own fairness lane — and reports client-observed
//! p50/p99/max latency plus the server's own serving stats.
//!
//! The CI `net-smoke` job runs this in release mode with
//! `BASILISK_THREADS=4` and a generous `--max-p99-micros` ceiling; the
//! harness exits non-zero when the ceiling is exceeded or any serving
//! invariant breaks (errors, rejections, undrained queues, leaked
//! arena buffers).
//!
//! ```text
//! net_load [--clients 8] [--requests 64] [--max-p99-micros N]
//! ```

#![forbid(unsafe_code)]

use std::time::Instant;

use basilisk::{Client, Database, ServerConfig, Value};
use basilisk_bench::Args;
use basilisk_workload::{generate_imdb, generate_synthetic, ImdbConfig, SyntheticConfig};

const PREPARED_SHAPE: &str =
    "SELECT t.id FROM title t JOIN movie_info_idx mi ON t.id = mi.movie_id \
     WHERE t.production_year > 1990 OR mi.info > '7.0'";

fn ad_hoc(r: usize) -> String {
    format!(
        "SELECT t.id, t.title FROM title t \
         WHERE t.production_year > {} OR t.title LIKE '%x{}%'",
        1950 + (r % 50),
        r % 7
    )
}

fn main() {
    let args = Args::parse();
    let clients = args.get_usize("--clients", 8);
    let requests = args.get_usize("--requests", 64);
    let max_p99_micros = args
        .get("--max-p99-micros")
        .map(|v| v.parse::<u64>().expect("bad --max-p99-micros"));

    let mut db = Database::new();
    for t in generate_synthetic(&SyntheticConfig {
        rows: 400,
        num_attrs: 3,
        ..SyntheticConfig::default()
    })
    .expect("synthetic tables")
    {
        db.register(t).expect("register");
    }
    for t in generate_imdb(&ImdbConfig {
        scale: 0.05,
        seed: 7,
    })
    .expect("imdb tables")
    {
        db.register(t).expect("register");
    }
    let listener = db
        .listen_with(
            "127.0.0.1:0",
            ServerConfig::builder()
                .contexts(clients.max(2))
                .build()
                .expect("static sizing is valid"),
        )
        .expect("bind loopback listener");
    let addr = listener.local_addr();
    println!("net_load: {clients} clients x {requests} requests against {addr}");

    // Warm the plan cache so the measured window is the steady serving
    // state, not first-statement planning.
    {
        let mut warm = Client::connect(addr).expect("warm client");
        let stmt = warm.prepare(PREPARED_SHAPE).expect("warm prepare");
        warm.execute(stmt, &[Value::Int(1990), Value::from("7.0")])
            .expect("warm execute");
        warm.sql(&ad_hoc(0)).expect("warm sql");
    }

    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr)
                    .expect("connect")
                    .with_client_id(format!("load-{c}"));
                let stmt = client.prepare(PREPARED_SHAPE).expect("prepare");
                let mut latencies = Vec::with_capacity(requests);
                let mut rows = 0usize;
                for r in 0..requests {
                    let t = Instant::now();
                    let resp = if (c + r) % 2 == 0 {
                        let params = [
                            Value::Int(1950 + (r % 60) as i64),
                            Value::from(format!("{}.{}", 5 + r % 5, r % 10)),
                        ];
                        client.execute(stmt, &params).expect("execute")
                    } else {
                        client.sql(&ad_hoc(c * requests + r)).expect("sql")
                    };
                    latencies.push(t.elapsed().as_micros().min(u64::MAX as u128) as u64);
                    rows += resp.row_count;
                }
                (latencies, rows)
            })
        })
        .collect();
    let mut latencies = Vec::with_capacity(clients * requests);
    let mut rows = 0usize;
    for h in handles {
        let (l, r) = h.join().expect("client thread");
        latencies.extend(l);
        rows += r;
    }
    let wall = t0.elapsed();

    latencies.sort_unstable();
    let q = |f: f64| latencies[((latencies.len() - 1) as f64 * f) as usize];
    let (p50, p99, max) = (q(0.50), q(0.99), *latencies.last().expect("non-empty"));
    let total = latencies.len();
    println!(
        "client-side: {total} requests, {rows} rows, {:.0} req/s",
        total as f64 / wall.as_secs_f64()
    );
    println!("  p50 {p50} us   p99 {p99} us   max {max} us");

    let stats = listener.server().stats();
    println!(
        "server-side: {} executed ({} hits / {} misses), p50 {:?} p99 {:?}",
        stats.statements_executed,
        stats.cache_hits,
        stats.cache_misses,
        stats.quantile_latency(0.50),
        stats.quantile_latency(0.99),
    );
    for lane in &stats.lanes {
        println!(
            "  lane {:<10} admitted {:<5} dispatched {:<5} max_depth {}",
            lane.client, lane.admitted, lane.dispatched, lane.max_depth
        );
    }

    // Pull the Prometheus exposition and the slow-query ring over the
    // wire and validate their shape — the net-smoke job's check that
    // the observability endpoints stay well-formed under real load.
    let mut probe = Client::connect(addr).expect("metrics client");
    let metrics = probe.metrics().expect("GET /v1/metrics");
    let slow = probe.slow().expect("GET /v1/slow");

    let mut failed = false;
    let mut check = |ok: bool, what: &str| {
        if !ok {
            eprintln!("FAIL: {what}");
            failed = true;
        }
    };
    check(stats.errors == 0, "server counted errors");
    check(stats.rejected == 0, "server rejected requests");
    check(stats.queue_depth == 0, "admission queue did not drain");
    check(stats.region_waits == 0, "parallel regions waited for slots");
    check(listener.server().outstanding() == 0, "arena buffers leaked");
    if let Some(ceiling) = max_p99_micros {
        check(
            p99 <= ceiling,
            &format!("client p99 {p99} us exceeds ceiling {ceiling} us"),
        );
    }
    for family in [
        "basilisk_serve_statements_executed_total",
        "basilisk_serve_cache_hits_total",
        "basilisk_serve_latency_micros_bucket",
        "basilisk_serve_lane_admitted_total",
        "basilisk_sched_workers",
        "basilisk_sched_tasks_total",
        "basilisk_arena_outstanding",
    ] {
        check(
            metrics.contains(family),
            &format!("metrics exposition missing family {family}"),
        );
    }
    for line in metrics.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let well_formed = line
            .rsplit_once(' ')
            .is_some_and(|(name, value)| !name.is_empty() && value.parse::<f64>().is_ok());
        check(well_formed, &format!("malformed exposition line: {line}"));
    }
    check(
        metrics.contains(&format!(
            "basilisk_serve_statements_executed_total {}",
            stats.statements_executed
        )),
        "exposition disagrees with the stats snapshot on statements_executed",
    );
    check(
        slow.get("ok").and_then(basilisk::Json::as_bool) == Some(true)
            && slow
                .get("slow")
                .and_then(basilisk::Json::as_array)
                .is_some(),
        "slow-query document malformed",
    );
    drop(listener);
    if failed {
        std::process::exit(1);
    }
    println!("net_load: ok");
}
