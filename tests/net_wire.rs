//! End-to-end wire suite: a real `basilisk-net` listener on loopback,
//! driven through the blocking client.
//!
//! Pins the PR-7 serving contract from the outside:
//!
//! * rows fetched over HTTP/JSON are **bit-for-bit** equal to the same
//!   statement served in-process (ints, floats by bit pattern, strings);
//! * the prepared-statement path works remotely (prepare once, execute
//!   with fresh bindings, zero extra plan work server-side);
//! * overload surfaces as a *typed, retryable* 503 with the busy
//!   envelope and a `retry-after` header — never a stringly error;
//! * every `BasiliskError` variant survives serialize → wire →
//!   deserialize with kind, message, offset and retryability intact
//!   (property test over the JSON error envelope).

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Arc;

use basilisk::{
    BasiliskError, DataType, Database, ErrorKind, Response, ServeError, ServerConfig, TableBuilder,
    Value,
};
use basilisk_net::{http, wire, Client, Json, WireResponse};
use basilisk_workload::{generate_imdb, generate_synthetic, ImdbConfig, SyntheticConfig};
use proptest::prelude::*;

fn wire_db() -> Database {
    let mut db = Database::new();
    // Synthetic tables carry Float columns; IMDB carries Int + Str —
    // together they cover every Value variant a query can produce.
    for t in generate_synthetic(&SyntheticConfig {
        rows: 400,
        num_attrs: 3,
        ..SyntheticConfig::default()
    })
    .unwrap()
    {
        db.register(t).unwrap();
    }
    for t in generate_imdb(&ImdbConfig {
        scale: 0.05,
        seed: 11,
    })
    .unwrap()
    {
        db.register(t).unwrap();
    }
    db
}

/// Bit-for-bit comparison of a wire response against an in-process one.
fn assert_wire_equals_local(wire: &WireResponse, local: &Response) {
    assert_eq!(wire.row_count, local.row_count);
    assert_eq!(wire.columns.len(), local.columns.len());
    for ((name, values), (cref, col)) in wire.columns.iter().zip(&local.columns) {
        assert_eq!(name, &cref.to_string());
        assert_eq!(values.len(), local.row_count);
        for (i, v) in values.iter().enumerate() {
            match (v, &col.value(i)) {
                (Value::Float(a), Value::Float(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits(), "{name}[{i}]: {a} != {b} bitwise")
                }
                (a, b) => assert_eq!(a, b, "{name}[{i}]"),
            }
        }
    }
}

#[test]
fn wire_rows_match_in_process_bit_for_bit() {
    let db = wire_db();
    let listener = db
        .listen_with(
            "127.0.0.1:0",
            ServerConfig::builder()
                .contexts(2)
                .workers(2)
                .build()
                .unwrap(),
        )
        .unwrap();
    let mut client = Client::connect(listener.local_addr()).unwrap();

    // Mixed statements: disjunctive join (floats), string predicates,
    // COUNT(*), star projection, LIMIT — every materialization shape
    // crosses the wire.
    let statements = [
        "SELECT t0.id, t1.a1, t1.a2 FROM t0 JOIN t1 ON t0.id = t1.fid \
         WHERE t1.a1 < 0.3 OR t1.a2 > 0.8",
        "SELECT t.id, t.title FROM title t \
         WHERE t.production_year > 2000 OR t.title LIKE '%a%'",
        "SELECT COUNT(*) FROM title t WHERE t.production_year > 1980",
        "SELECT * FROM title t LIMIT 13",
    ];
    for sql in statements {
        let over_wire = client.sql(sql).unwrap();
        let local = listener.server().sql(sql).unwrap();
        assert_wire_equals_local(&over_wire, &local);
    }
    assert_eq!(listener.server().outstanding(), 0);
}

#[test]
fn remote_prepared_statements_bind_fresh_values() {
    let db = wire_db();
    let listener = db
        .listen_with(
            "127.0.0.1:0",
            ServerConfig::builder()
                .contexts(2)
                .workers(1)
                .build()
                .unwrap(),
        )
        .unwrap();
    let mut client = Client::connect(listener.local_addr()).unwrap();

    let shape = "SELECT t.id FROM title t JOIN movie_info_idx mi ON t.id = mi.movie_id \
                 WHERE t.production_year > 1990 OR mi.info > '7.0'";
    let stmt = client.prepare(shape).unwrap();
    assert_eq!(stmt.params, 2);
    let planned = listener.server().stats().statements_prepared;

    for (year, info) in [(1990i64, "7.0"), (2005, "9.0"), (1930, "1.0")] {
        let over_wire = client
            .execute(stmt, &[Value::Int(year), Value::from(info)])
            .unwrap();
        let local = listener
            .server()
            .sql(&format!(
                "SELECT t.id FROM title t JOIN movie_info_idx mi ON t.id = mi.movie_id \
                 WHERE t.production_year > {year} OR mi.info > '{info}'"
            ))
            .unwrap();
        assert_wire_equals_local(&over_wire, &local);
    }
    // Remote executions bind into the cached plan, and the ad-hoc
    // reference statements hit the same cache entry: zero plan work
    // after the one prepare.
    assert_eq!(listener.server().stats().statements_prepared, planned);
}

/// Raw HTTP exchange, to observe status codes and headers directly.
fn raw_call(addr: std::net::SocketAddr, body: &str) -> (u16, Option<String>, Json) {
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    http::write_request(&mut writer, "POST", "/v1/sql", body.as_bytes()).unwrap();
    let resp = http::read_response(&mut reader).unwrap();
    let retry_after = resp.header("retry-after").map(str::to_string);
    let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    (resp.status, retry_after, doc)
}

#[test]
fn overload_is_a_typed_retryable_503() {
    let db = wire_db();
    // One context, no queue headroom: concurrent remote clients must
    // overlap into rejections.
    let listener = Arc::new(
        db.listen_with(
            "127.0.0.1:0",
            ServerConfig::builder()
                .contexts(1)
                .queue_limit(1)
                .workers(1)
                .build()
                .unwrap(),
        )
        .unwrap(),
    );
    let addr = listener.local_addr();
    let slow = "SELECT t.id FROM title t JOIN movie_companies mc ON t.id = mc.movie_id \
                WHERE t.title ILIKE '%a%' OR mc.note LIKE '%co%' OR t.production_year > 1900";
    let body = format!("{{\"sql\":\"{slow}\"}}");

    let threads: Vec<_> = (0..4)
        .map(|_| {
            let body = body.clone();
            std::thread::spawn(move || {
                let mut busy = 0u64;
                for _ in 0..25 {
                    let (status, retry_after, doc) = raw_call(addr, &body);
                    match status {
                        200 => {}
                        503 => {
                            busy += 1;
                            // The typed contract: machine-readable kind,
                            // retryable flag, load snapshot, backoff hint.
                            assert_eq!(retry_after.as_deref(), Some("1"));
                            let e = wire::parse_error(&doc).unwrap();
                            assert_eq!(e.kind, ErrorKind::Busy);
                            assert!(e.retryable);
                            assert!(e.in_flight.is_some() && e.queue_depth.is_some());
                        }
                        other => panic!("unexpected status {other}: {doc}"),
                    }
                }
                busy
            })
        })
        .collect();
    let busy: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(
        busy > 0,
        "4 clients × 1 context × queue_limit 1 must overlap into rejections"
    );
    let stats = listener.server().stats();
    assert_eq!(stats.rejected, busy, "every 503 was a counted rejection");
    assert_eq!(stats.queue_depth, 0, "system drained");
    assert_eq!(listener.server().outstanding(), 0);
}

#[test]
fn listener_shutdown_is_clean() {
    // Dropping the listener while a keep-alive client is parked must
    // not hang (connection threads poll the stop flag).
    let mut db = Database::new();
    let mut b = TableBuilder::new("t").column("id", DataType::Int);
    b.push_row(vec![1i64.into()]).unwrap();
    db.register(b.finish().unwrap()).unwrap();
    let listener = db.listen("127.0.0.1:0").unwrap();
    let mut client = Client::connect(listener.local_addr()).unwrap();
    client.health().unwrap();
    drop(listener); // joins accept + connection threads
    assert!(client.health().is_err(), "server is gone");
}

// ---------------------------------------------------------------------
// Property test: the JSON error envelope is lossless for every
// BasiliskError variant.
// ---------------------------------------------------------------------

/// Messages exercise escaping: quotes, backslashes, control characters,
/// multi-byte unicode, braces.
const MESSAGE_CLASS: &str = "[a-z0-9 \"\\\n\t:{}端]{0,24}";

fn error_strategy() -> impl Strategy<Value = BasiliskError> {
    let msg = || MESSAGE_CLASS;
    prop_oneof![
        msg().prop_map(|m| BasiliskError::Io(std::io::Error::other(m))),
        msg().prop_map(BasiliskError::Corrupt),
        msg().prop_map(BasiliskError::Schema),
        msg().prop_map(BasiliskError::Type),
        (msg(), 0usize..10_000)
            .prop_map(|(message, offset)| BasiliskError::Parse { message, offset }),
        msg().prop_map(BasiliskError::Plan),
        msg().prop_map(BasiliskError::Exec),
        (0usize..64, 0usize..100_000).prop_map(|(in_flight, queue_depth)| {
            BasiliskError::Busy {
                in_flight,
                queue_depth,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// serialize → wire bytes → parse → deserialize preserves kind,
    /// offset, retryability, Display, and the HTTP status class.
    #[test]
    fn error_envelope_roundtrips_every_variant(original in error_strategy()) {
        let kind = original.kind();
        let display = original.to_string();
        let retryable = original.is_retryable();

        let serve = ServeError::from(original);
        let bytes = wire::encode_error(&serve).to_string();
        let parsed = Json::parse(&bytes).unwrap();
        let back = wire::parse_error(&parsed).unwrap();

        prop_assert_eq!(&back, &serve, "envelope: {}", bytes);
        prop_assert_eq!(back.kind.as_str(), kind);
        prop_assert_eq!(back.retryable, retryable);
        prop_assert_eq!(wire::status_for(&back), wire::status_for(&serve));

        // And the full loop back into the engine's error type.
        let engine = BasiliskError::from(back);
        prop_assert_eq!(engine.kind(), kind);
        prop_assert_eq!(engine.to_string(), display);
        prop_assert_eq!(engine.is_retryable(), retryable);
    }
}

/// The one non-engine kind: protocol errors round-trip too (they fold
/// into `Exec` only when forced back into a `BasiliskError`).
#[test]
fn protocol_error_envelope_roundtrips() {
    let e = ServeError::protocol("no route: BREW /v1/coffee");
    let bytes = wire::encode_error(&e).to_string();
    let back = wire::parse_error(&Json::parse(&bytes).unwrap()).unwrap();
    assert_eq!(back, e);
    assert_eq!(wire::status_for(&back).0, 400);
}
