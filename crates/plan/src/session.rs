//! The one-stop query session: plan, execute, time.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::{Duration, Instant};

use basilisk_catalog::{Catalog, Estimator};
use basilisk_core::{TagMapBuilder, TagMapStrategy};
use basilisk_exec::{project_in, IdxRelation, TableSet};
use basilisk_expr::{ColumnRef, PredicateTree};
use basilisk_sched::WorkerPool;
use basilisk_storage::Column;
use basilisk_types::{ArenaStats, BasiliskError, MaskArena, Result, Tracer};

use crate::aplan::APlan;
use crate::cost::CostModel;
use crate::executor::{execute_tagged_traced, execute_traditional_traced};
use crate::join_order::greedy_join_tree;
use crate::planners::{plan as run_planner, PlannedQuery, PlannerInput, PlannerKind};
use crate::query::Query;

/// A planned query ready for (repeated) execution.
pub enum Plan {
    WithPredicate(PlannedQuery),
    /// Queries without a WHERE clause: a join-only traditional plan.
    JoinOnly(APlan),
}

impl Plan {
    pub fn estimated_cost(&self) -> f64 {
        match self {
            Plan::WithPredicate(p) => p.estimated_cost(),
            Plan::JoinOnly(_) => 0.0,
        }
    }

    /// The tagged planner that produced this plan, if any.
    pub fn chosen_planner(&self) -> Option<PlannerKind> {
        match self {
            Plan::WithPredicate(PlannedQuery::Tagged { chosen, .. }) => Some(*chosen),
            _ => None,
        }
    }
}

/// Wall-clock planning/execution split (the paper reports planning at
/// <0.1% of total except in the root-clause sweep, Fig. 4c).
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanTimings {
    pub planning: Duration,
    pub execution: Duration,
}

impl PlanTimings {
    pub fn total(&self) -> Duration {
        self.planning + self.execution
    }
}

/// The result rows of a query (as an index relation) plus helpers.
pub struct QueryOutput {
    pub rows: IdxRelation,
}

impl QueryOutput {
    pub fn count(&self) -> usize {
        self.rows.len()
    }

    /// Canonical sorted tuple list for result comparison in tests.
    pub fn canonical_tuples(&self) -> Vec<Vec<u32>> {
        let mut out: Vec<Vec<u32>> = (0..self.rows.len())
            .map(|i| {
                // Sort columns by alias for cross-plan comparability.
                let mut named: Vec<(&String, u32)> = self
                    .rows
                    .tables()
                    .iter()
                    .zip(self.rows.cols())
                    .map(|(t, c)| (t, c[i]))
                    .collect();
                named.sort_by(|a, b| a.0.cmp(b.0));
                named.into_iter().map(|(_, v)| v).collect()
            })
            .collect();
        out.sort_unstable();
        out
    }
}

/// Whether an atom's own literal can make it evaluate to unknown
/// (comparing against NULL is unknown on every row). The serving layer
/// applies the same rule to parameter bindings: a NULL bound into a
/// statement planned two-valued forces a three-valued re-plan.
pub fn atom_has_null_literal(atom: &basilisk_expr::Atom) -> bool {
    use basilisk_types::Value;
    match atom {
        basilisk_expr::Atom::Cmp { value, .. } => matches!(value, Value::Null),
        basilisk_expr::Atom::InList { values, .. } => {
            values.iter().any(|v| matches!(v, Value::Null))
        }
        basilisk_expr::Atom::Like { .. } | basilisk_expr::Atom::IsNull { .. } => false,
    }
}

/// The reusable execution resources behind a [`QuerySession`]: the
/// session [`MaskArena`] (with its column/value pools and the deferred
/// result columns awaiting reclaim) plus a shared handle to a
/// [`WorkerPool`].
///
/// A context outlives any single query. The serving layer keeps a pool
/// of contexts and moves one into each request's session
/// ([`QuerySession::with_context`]); when the request completes,
/// [`QuerySession::into_context`] hands the context back — warm pools,
/// deferred columns and all — so arena steady state (`fresh() == 0`)
/// holds **across statements**, not just across executions of one
/// statement. Several contexts may share one `Arc<WorkerPool>`: worker
/// arenas belong to the pool, the session arena to the context, and the
/// pool serializes parallel regions internally.
pub struct ExecContext {
    arena: MaskArena,
    pool: Arc<WorkerPool>,
    /// Projected value columns still referenced by caller-held results;
    /// swept (and their buffers recycled) at the start of each execute.
    deferred_values: RefCell<Vec<Arc<Column>>>,
}

impl ExecContext {
    /// A fresh context with its own private worker pool.
    pub fn new(workers: usize) -> ExecContext {
        ExecContext::with_pool(Arc::new(WorkerPool::new(workers)))
    }

    /// A fresh context executing on a shared worker pool.
    pub fn with_pool(pool: Arc<WorkerPool>) -> ExecContext {
        ExecContext {
            arena: MaskArena::new(),
            pool,
            deferred_values: RefCell::new(Vec::new()),
        }
    }

    /// The context's buffer pool.
    pub fn arena(&self) -> &MaskArena {
        &self.arena
    }

    /// The worker pool this context executes on.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Reclaim deferred result buffers whose caller-held references are
    /// gone: pooled index columns via the column pool's own deferral
    /// list, projected value columns via `Arc::try_unwrap`. Runs at the
    /// start of every execute, and the serving layer calls it when a
    /// context is returned so held results are the only thing keeping
    /// buffers out of the pools.
    pub fn sweep(&self) {
        self.arena.columns().reclaim();
        let mut deferred = self.deferred_values.borrow_mut();
        let mut still: Vec<Arc<Column>> = Vec::with_capacity(deferred.len());
        for arc in deferred.drain(..) {
            match Arc::try_unwrap(arc) {
                Ok(col) => col.recycle(&self.arena),
                Err(arc) => still.push(arc),
            }
        }
        *deferred = still;
    }

    fn defer_value(&self, col: &Arc<Column>) {
        self.deferred_values.borrow_mut().push(Arc::clone(col));
    }
}

/// A query bound to a catalog: statistics, table handles and the predicate
/// tree are built once; any number of planners can then be run and
/// compared on it.
///
/// The session also owns the [`MaskArena`] every execution draws its
/// buffers from: the first `execute()` warms the pool, and each
/// subsequent execution of the same (or a same-shaped) plan performs
/// zero buffer allocations — every mask, slice/selection bitmap, index
/// scratch vector **and output index column** (scan identities, joined
/// columns from `combine`, union/select outputs, via the arena's
/// [`ColumnPool`](basilisk_types::ColumnPool)) is served from the pool,
/// which [`Self::arena_stats`] proves (`fresh() == 0`). Result columns
/// escape to the caller inside [`QueryOutput`]; the session defers them
/// and reclaims their buffers on the next `execute()` once the caller
/// has dropped the output. Projected *value* columns
/// ([`Self::project`]) follow the same deferral through the arena's
/// value pool, and gathered join-key values are pooled inside the join
/// operators — so steady-state serving (execute → project → release) is
/// allocation-free end to end.
///
/// **Parallelism**: the session owns a [`WorkerPool`] of
/// [`Self::workers`] workers (default: the `BASILISK_THREADS`
/// environment variable, else the machine's available parallelism),
/// each with a private arena. With more than one worker, `execute`
/// runs the plan interpreters in morsel-parallel mode: filters evaluate
/// per-morsel on the workers and stitch, joins probe partitioned.
/// `workers == 1` — or any relation smaller than one morsel — takes
/// today's serial path, bit for bit; parallel output is pinned equal to
/// serial output by the differential suite.
pub struct QuerySession {
    query: Query,
    tree: Option<PredicateTree>,
    est: Estimator,
    tables: TableSet,
    strategy: TagMapStrategy,
    three_valued: bool,
    cm: CostModel,
    ctx: ExecContext,
}

impl QuerySession {
    pub fn new(catalog: &Catalog, query: Query) -> Result<QuerySession> {
        query.validate()?;
        let est = Estimator::new(catalog, &query.aliases)?;
        let tables = TableSet::new(catalog, &query.aliases)?;
        let tree = query.predicate.as_ref().map(PredicateTree::build);
        // Three-valued tag maps are mandatory for correctness whenever a
        // predicate can evaluate to unknown: a NULL-bearing row must flow
        // into the unknown slice (§3.4) rather than be dropped, because it
        // may still satisfy the overall predicate through another
        // disjunct. Two sources of unknown: NULLs in the scanned column
        // (detected from statistics) and NULL *literals* in the predicate
        // itself (`x > NULL` is unknown on every row, NULL-free column or
        // not).
        let three_valued = match &tree {
            None => false,
            Some(t) => t.atom_ids().iter().any(|&id| {
                let atom = t.atom(id).expect("atom id");
                !matches!(atom, basilisk_expr::Atom::IsNull { .. })
                    && (atom_has_null_literal(atom)
                        || est
                            .null_frac(atom.column())
                            .map(|f| f > 0.0)
                            .unwrap_or(false))
            }),
        };
        Ok(QuerySession {
            query,
            tree,
            est,
            tables,
            strategy: TagMapStrategy::Generalized { use_closure: true },
            three_valued,
            cm: CostModel::default(),
            ctx: ExecContext::new(WorkerPool::default_workers()),
        })
    }

    /// Build a session for a statement whose catalog-derived parts were
    /// computed once at prepare time, reusing a checked-out execution
    /// context — the plan-cache hit path. Skips validation, table-set
    /// resolution and three-valued detection (all properties of the
    /// statement's *shape*, not its literal values). Infallible by
    /// design: the serving layer must never lose a pooled context to a
    /// constructor error (the estimator, a per-alias handle map that a
    /// re-driven cached plan never consults, is built by the caller).
    pub fn prepared(
        est: Estimator,
        query: Query,
        tables: TableSet,
        three_valued: bool,
        ctx: ExecContext,
    ) -> QuerySession {
        let tree = query.predicate.as_ref().map(PredicateTree::build);
        QuerySession {
            query,
            tree,
            est,
            tables,
            strategy: TagMapStrategy::Generalized { use_closure: true },
            three_valued,
            cm: CostModel::default(),
            ctx,
        }
    }

    /// Override the tag-map strategy (ablations).
    pub fn with_strategy(mut self, strategy: TagMapStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Override the worker count (see the struct docs). `1` disables
    /// parallel execution entirely — the serial interpreters run,
    /// untouched. Replaces the worker pool, so call before executing.
    pub fn with_workers(mut self, workers: usize) -> Self {
        let rows = self.ctx.pool.morsel_rows();
        self.ctx.pool = Arc::new(WorkerPool::new(workers).with_morsel_rows(rows));
        self
    }

    /// Override the morsel granularity (rows per parallel task; must be
    /// a positive multiple of 64). Mainly for tests and benchmarks.
    pub fn with_morsel_rows(mut self, rows: usize) -> Self {
        let workers = self.ctx.pool.workers();
        self.ctx.pool = Arc::new(WorkerPool::new(workers).with_morsel_rows(rows));
        self
    }

    /// Replace the session's execution context (arena, deferred results,
    /// worker-pool handle) with one supplied by the caller — how the
    /// serving layer threads a warm, reusable context through a request.
    pub fn with_context(mut self, ctx: ExecContext) -> Self {
        self.ctx = ctx;
        self
    }

    /// Tear the session down, handing its execution context back (after
    /// a sweep) for the next statement to reuse.
    pub fn into_context(self) -> ExecContext {
        self.ctx.sweep();
        self.ctx
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.ctx.pool.workers()
    }

    /// The session's worker pool (per-worker arenas included) —
    /// observability for tests and benchmarks.
    pub fn scheduler(&self) -> &WorkerPool {
        &self.ctx.pool
    }

    /// Enable three-valued tag maps (needed when the data contains NULLs).
    pub fn with_three_valued(mut self, enabled: bool) -> Self {
        self.three_valued = enabled;
        self
    }

    pub fn with_cost_model(mut self, cm: CostModel) -> Self {
        self.cm = cm;
        self
    }

    pub fn query(&self) -> &Query {
        &self.query
    }

    pub fn tree(&self) -> Option<&PredicateTree> {
        self.tree.as_ref()
    }

    pub fn tables(&self) -> &TableSet {
        &self.tables
    }

    /// Whether three-valued tag maps are in force (NULL-bearing columns
    /// under the predicate; see [`Self::new`]).
    pub fn three_valued(&self) -> bool {
        self.three_valued
    }

    pub fn estimator(&self) -> &Estimator {
        &self.est
    }

    /// The session's buffer pool (shared by every execution).
    pub fn arena(&self) -> &MaskArena {
        self.ctx.arena()
    }

    /// The session's execution context (arena + worker-pool handle).
    pub fn context(&self) -> &ExecContext {
        &self.ctx
    }

    /// Buffer-pool checkout counters since the last
    /// [`Self::reset_arena_stats`] — `fresh() == 0` across an `execute()`
    /// means the run was allocation-free (steady state).
    pub fn arena_stats(&self) -> ArenaStats {
        self.ctx.arena.stats()
    }

    /// Zero the pool counters (the pooled buffers stay warm).
    pub fn reset_arena_stats(&self) {
        self.ctx.arena.reset_stats()
    }

    /// Plan with the chosen planner.
    pub fn plan(&self, kind: PlannerKind) -> Result<Plan> {
        let Some(tree) = &self.tree else {
            // No predicate: any planner degenerates to the greedy join
            // tree executed traditionally.
            let leaves = self
                .query
                .aliases
                .iter()
                .map(|(alias, _)| {
                    Ok((
                        alias.clone(),
                        APlan::scan(alias.clone()),
                        self.est.rows(alias)?,
                    ))
                })
                .collect::<Result<Vec<_>>>()?;
            return Ok(Plan::JoinOnly(greedy_join_tree(
                leaves,
                &self.query.joins,
                &self.est,
            )?));
        };
        let builder = TagMapBuilder::new(tree, self.strategy).with_three_valued(self.three_valued);
        let input = PlannerInput {
            query: &self.query,
            tree,
            est: &self.est,
            builder: &builder,
            cm: &self.cm,
        };
        Ok(Plan::WithPredicate(run_planner(kind, &input)?))
    }

    /// Execute a previously built plan.
    pub fn execute(&self, plan: &Plan) -> Result<QueryOutput> {
        self.execute_traced(plan, None)
    }

    /// [`QuerySession::execute`] with an optional per-request [`Tracer`]:
    /// when `Some`, every plan operator records a span (nested to mirror
    /// the plan tree) with row counts, morsel fan-out, parallel-region id
    /// and per-atom evaluation profiles — see
    /// [`execute_tagged_traced`](crate::execute_tagged_traced). Output is
    /// bit-for-bit identical to the untraced run.
    pub fn execute_traced(&self, plan: &Plan, tracer: Option<&Tracer>) -> Result<QueryOutput> {
        // Sweep result columns deferred by earlier executions: once the
        // caller has dropped those outputs, their buffers return to the
        // pools and this run re-checks them out instead of allocating.
        self.ctx.sweep();
        let arena = &self.ctx.arena;
        let pool = &*self.ctx.pool;
        let pool_opt = (pool.workers() > 1).then_some(pool);
        let rows = match plan {
            Plan::JoinOnly(aplan) => {
                // Predicate-free: use the traditional executor with a
                // dummy tree (never consulted — the plan has no filters).
                let dummy = PredicateTree::build(&basilisk_expr::col("·", "·").is_null());
                execute_traditional_traced(aplan, &self.tables, &dummy, arena, pool_opt, tracer)?
            }
            Plan::WithPredicate(p) => {
                let tree = self
                    .tree
                    .as_ref()
                    .ok_or_else(|| BasiliskError::Plan("plan/session mismatch".into()))?;
                match p {
                    PlannedQuery::Tagged { ann, .. } => execute_tagged_traced(
                        &ann.plan,
                        &ann.projection,
                        &self.tables,
                        tree,
                        arena,
                        pool_opt,
                        tracer,
                    )?,
                    PlannedQuery::Traditional { aplan, .. } => execute_traditional_traced(
                        aplan,
                        &self.tables,
                        tree,
                        arena,
                        pool_opt,
                        tracer,
                    )?,
                }
            }
        };
        // The output's index columns are pooled buffers that now escape
        // to the caller; park a handle so the pool can reclaim them via
        // `Arc::try_unwrap` once the caller releases the result.
        for col in rows.cols() {
            arena.columns().defer(std::sync::Arc::clone(col));
        }
        Ok(QueryOutput { rows })
    }

    /// Plan + execute, reporting the timing split.
    pub fn run(&self, kind: PlannerKind) -> Result<(QueryOutput, PlanTimings)> {
        let t0 = Instant::now();
        let plan = self.plan(kind)?;
        let planning = t0.elapsed();
        let t1 = Instant::now();
        let out = self.execute(&plan)?;
        let execution = t1.elapsed();
        Ok((
            out,
            PlanTimings {
                planning,
                execution,
            },
        ))
    }

    /// Materialize the query's projection columns for an output. The
    /// columns draw their typed buffers from the session's value pool
    /// and are deferred like result index columns: once the caller drops
    /// them, the next `execute()` sweep recycles the buffers — so a
    /// serving loop (execute → project → release) allocates nothing in
    /// steady state, value columns included.
    pub fn project(&self, output: &QueryOutput) -> Result<Vec<(ColumnRef, Arc<Column>)>> {
        let cols = project_in(
            &self.tables,
            &output.rows,
            &self.query.projection,
            &self.ctx.arena,
        )?;
        Ok(cols
            .into_iter()
            .map(|(cref, col)| {
                let col = Arc::new(col);
                // Every pooled column must eventually recycle (skipping
                // one would leave its checkout counted outstanding
                // forever). The list is bounded by the caller's own live
                // results: each execute sweeps released entries.
                self.ctx.defer_value(&col);
                (cref, col)
            })
            .collect())
    }

    /// Human-readable plan rendering (EXPLAIN).
    pub fn explain(&self, plan: &Plan) -> String {
        match (plan, &self.tree) {
            (Plan::JoinOnly(aplan), _) => {
                let dummy = PredicateTree::build(&basilisk_expr::col("·", "·").is_null());
                format!(
                    "-- join-only plan (no predicate)\n{}",
                    aplan.display(&dummy)
                )
            }
            (Plan::WithPredicate(p), Some(tree)) => {
                let header = match p {
                    PlannedQuery::Tagged { chosen, ann, .. } => format!(
                        "-- tagged plan ({}), estimated cost {:.1}, {} projection tag(s)\n",
                        chosen,
                        ann.cost,
                        ann.projection.allowed.len()
                    ),
                    PlannedQuery::Traditional { cost, .. } => {
                        format!("-- traditional plan, estimated cost {cost:.1}\n")
                    }
                };
                format!("{header}{}", p.aplan().display(tree))
            }
            _ => "-- invalid plan/session pairing".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basilisk_expr::{and, col, or};
    use basilisk_storage::TableBuilder;
    use basilisk_types::DataType;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let mut b = TableBuilder::new("title")
            .column("id", DataType::Int)
            .column("year", DataType::Int);
        for i in 0..300i64 {
            b.push_row(vec![i.into(), (1900 + i % 120).into()]).unwrap();
        }
        cat.add_table(b.finish().unwrap()).unwrap();
        let mut b = TableBuilder::new("scores")
            .column("movie_id", DataType::Int)
            .column("score", DataType::Float);
        for i in 0..500i64 {
            b.push_row(vec![(i % 300).into(), ((i % 100) as f64 / 10.0).into()])
                .unwrap();
        }
        cat.add_table(b.finish().unwrap()).unwrap();
        cat
    }

    fn query() -> Query {
        Query::new(vec![
            ("t".into(), "title".into()),
            ("mi".into(), "scores".into()),
        ])
        .join(ColumnRef::new("t", "id"), ColumnRef::new("mi", "movie_id"))
        .filter(or(vec![
            and(vec![
                col("t", "year").gt(2000i64),
                col("mi", "score").gt(7.0),
            ]),
            and(vec![
                col("t", "year").gt(1980i64),
                col("mi", "score").gt(8.0),
            ]),
        ]))
        .select(vec![ColumnRef::new("t", "id")])
    }

    use basilisk_expr::ColumnRef;

    /// Every planner returns the same result set.
    #[test]
    fn all_planners_agree() {
        let cat = catalog();
        let session = QuerySession::new(&cat, query()).unwrap();
        let reference = session
            .execute(&session.plan(PlannerKind::BPushConj).unwrap())
            .unwrap()
            .canonical_tuples();
        assert!(!reference.is_empty());
        for kind in [
            PlannerKind::TPushdown,
            PlannerKind::TPullup,
            PlannerKind::TIterPush,
            PlannerKind::TPushConj,
            PlannerKind::TCombined,
            PlannerKind::BDisj,
        ] {
            let out = session.execute(&session.plan(kind).unwrap()).unwrap();
            assert_eq!(
                out.canonical_tuples(),
                reference,
                "planner {kind} disagrees"
            );
        }
    }

    #[test]
    fn run_reports_timings_and_project_works() {
        let cat = catalog();
        let session = QuerySession::new(&cat, query()).unwrap();
        let (out, t) = session.run(PlannerKind::TCombined).unwrap();
        assert!(out.count() > 0);
        assert!(t.total() >= t.planning);
        let cols = session.project(&out).unwrap();
        assert_eq!(cols.len(), 1);
        assert_eq!(cols[0].1.len(), out.count());
    }

    #[test]
    fn no_predicate_query() {
        let cat = catalog();
        let q = Query::new(vec![
            ("t".into(), "title".into()),
            ("mi".into(), "scores".into()),
        ])
        .join(ColumnRef::new("t", "id"), ColumnRef::new("mi", "movie_id"));
        let session = QuerySession::new(&cat, q).unwrap();
        let plan = session.plan(PlannerKind::TCombined).unwrap();
        let out = session.execute(&plan).unwrap();
        assert_eq!(out.count(), 500, "every score row matches one title");
        assert_eq!(plan.estimated_cost(), 0.0);
        assert!(plan.chosen_planner().is_none());
        assert!(session.explain(&plan).contains("join-only"));
    }

    #[test]
    fn explain_renders() {
        let cat = catalog();
        let session = QuerySession::new(&cat, query()).unwrap();
        let plan = session.plan(PlannerKind::TCombined).unwrap();
        let text = session.explain(&plan);
        assert!(text.contains("tagged plan"), "{text}");
        assert!(text.contains("Join"), "{text}");
        assert!(plan.chosen_planner().is_some());
        let plan = session.plan(PlannerKind::BDisj).unwrap();
        let text = session.explain(&plan);
        assert!(text.contains("traditional plan"), "{text}");
        assert!(text.contains("Union"), "{text}");
    }

    /// Naive tag strategy still yields correct results (just slower).
    #[test]
    fn naive_strategy_correct() {
        let cat = catalog();
        let session = QuerySession::new(&cat, query()).unwrap();
        let reference = session
            .execute(&session.plan(PlannerKind::BPushConj).unwrap())
            .unwrap()
            .canonical_tuples();
        let naive = QuerySession::new(&cat, query())
            .unwrap()
            .with_strategy(basilisk_core::TagMapStrategy::Naive);
        let out = naive
            .execute(&naive.plan(PlannerKind::TPushdown).unwrap())
            .unwrap();
        assert_eq!(out.canonical_tuples(), reference);
    }
}
