//! Index relations (§2.5.1) and their evaluation plumbing.

use std::collections::HashMap;
use std::sync::Arc;

use basilisk_catalog::Catalog;
use basilisk_expr::eval::ColumnProvider;
use basilisk_expr::ColumnRef;
use basilisk_storage::{Column, Table};
use basilisk_types::{BasiliskError, Result, Value};

/// The tables visible to one query: alias → table. Built once per query
/// from the catalog and shared by every operator.
#[derive(Clone)]
pub struct TableSet {
    tables: HashMap<String, Arc<Table>>,
}

impl TableSet {
    pub fn new(catalog: &Catalog, aliases: &[(String, String)]) -> Result<TableSet> {
        let mut tables = HashMap::with_capacity(aliases.len());
        for (alias, name) in aliases {
            if tables.insert(alias.clone(), catalog.table(name)?).is_some() {
                return Err(BasiliskError::Plan(format!("duplicate alias {alias}")));
            }
        }
        Ok(TableSet { tables })
    }

    /// Build directly from (alias, table) pairs — used by tests.
    pub fn from_tables(pairs: Vec<(String, Arc<Table>)>) -> TableSet {
        TableSet {
            tables: pairs.into_iter().collect(),
        }
    }

    pub fn table(&self, alias: &str) -> Result<&Arc<Table>> {
        self.tables
            .get(alias)
            .ok_or_else(|| BasiliskError::Plan(format!("unknown alias {alias}")))
    }

    pub fn num_rows(&self, alias: &str) -> Result<usize> {
        Ok(self.table(alias)?.num_rows())
    }

    /// Fetch the base-table column behind a [`ColumnRef`].
    pub fn column(&self, col: &ColumnRef) -> Result<basilisk_storage::ColumnHandle> {
        Ok(self.table(&col.table)?.column(&col.column)?.clone())
    }
}

/// An intermediate relation of index tuples: `cols[i][j]` is the row in
/// base table `tables[i]` contributed to tuple `j`. Filters on a relation
/// produce a new (smaller) relation; under tagged execution the relation
/// stays fixed and only bitmaps change (see `basilisk-core`).
#[derive(Clone)]
pub struct IdxRelation {
    tables: Vec<String>,
    cols: Vec<Arc<Vec<u32>>>,
    len: usize,
}

impl IdxRelation {
    /// The base relation of a table scan: identity indices `0..n`.
    pub fn base(alias: impl Into<String>, rows: usize) -> IdxRelation {
        IdxRelation {
            tables: vec![alias.into()],
            cols: vec![Arc::new((0..rows as u32).collect())],
            len: rows,
        }
    }

    /// Assemble from parts (lengths must agree).
    pub fn from_parts(tables: Vec<String>, cols: Vec<Arc<Vec<u32>>>) -> IdxRelation {
        let len = cols.first().map(|c| c.len()).unwrap_or(0);
        debug_assert!(cols.iter().all(|c| c.len() == len));
        debug_assert_eq!(tables.len(), cols.len());
        IdxRelation { tables, cols, len }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The base-table aliases covered, in column order.
    pub fn tables(&self) -> &[String] {
        &self.tables
    }

    pub fn covers(&self, alias: &str) -> bool {
        self.tables.iter().any(|t| t == alias)
    }

    /// The index column for one covered table.
    pub fn col(&self, alias: &str) -> Result<&Arc<Vec<u32>>> {
        self.tables
            .iter()
            .position(|t| t == alias)
            .map(|i| &self.cols[i])
            .ok_or_else(|| {
                BasiliskError::Exec(format!("relation does not cover alias {alias}"))
            })
    }

    pub fn cols(&self) -> &[Arc<Vec<u32>>] {
        &self.cols
    }

    /// Keep only the tuples at `keep` (positions into this relation).
    pub fn select(&self, keep: &[u32]) -> IdxRelation {
        let cols = self
            .cols
            .iter()
            .map(|c| Arc::new(keep.iter().map(|&k| c[k as usize]).collect::<Vec<u32>>()))
            .collect();
        IdxRelation {
            tables: self.tables.clone(),
            cols,
            len: keep.len(),
        }
    }

    /// The tuple at position `i` (row per covered table) — tests/debug.
    pub fn tuple(&self, i: usize) -> Vec<u32> {
        self.cols.iter().map(|c| c[i]).collect()
    }
}

/// [`ColumnProvider`] over an index relation: fetching `t.c` gathers
/// table `t`'s column `c` at the relation's index column for `t`.
/// Gathered columns are cached so each (predicate, column) pair touches
/// the base table once.
pub struct RelProvider<'a> {
    tables: &'a TableSet,
    relation: &'a IdxRelation,
    cache: std::cell::RefCell<HashMap<ColumnRef, Arc<Column>>>,
}

impl<'a> RelProvider<'a> {
    pub fn new(tables: &'a TableSet, relation: &'a IdxRelation) -> Self {
        RelProvider {
            tables,
            relation,
            cache: std::cell::RefCell::new(HashMap::new()),
        }
    }
}

impl ColumnProvider for RelProvider<'_> {
    fn fetch(&self, col: &ColumnRef) -> Result<Arc<Column>> {
        if let Some(c) = self.cache.borrow().get(col) {
            return Ok(Arc::clone(c));
        }
        let handle = self.tables.column(col)?;
        let rows = self.relation.col(&col.table)?;
        let gathered = Arc::new(handle.gather(rows)?);
        self.cache
            .borrow_mut()
            .insert(col.clone(), Arc::clone(&gathered));
        Ok(gathered)
    }

    fn num_rows(&self) -> usize {
        self.relation.len()
    }
}

/// Extract the join key at row `i` of a key column; `None` for NULL (SQL
/// equi-joins never match NULLs).
pub fn join_key(col: &Column, i: usize) -> Option<Value> {
    if !col.is_valid(i) {
        return None;
    }
    Some(col.value(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use basilisk_storage::TableBuilder;
    use basilisk_types::DataType;

    fn table() -> Arc<Table> {
        let mut b = TableBuilder::new("t")
            .column("id", DataType::Int)
            .column("name", DataType::Str);
        for (id, name) in [(10, "a"), (20, "b"), (30, "c")] {
            b.push_row(vec![(id as i64).into(), name.into()]).unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn base_relation_identity() {
        let r = IdxRelation::base("t", 3);
        assert_eq!(r.len(), 3);
        assert_eq!(r.tables(), &["t".to_string()]);
        assert!(r.covers("t"));
        assert!(!r.covers("u"));
        assert_eq!(**r.col("t").unwrap(), vec![0, 1, 2]);
        assert!(r.col("u").is_err());
        assert_eq!(r.tuple(1), vec![1]);
    }

    #[test]
    fn select_narrows() {
        let r = IdxRelation::base("t", 5).select(&[4, 0]);
        assert_eq!(r.len(), 2);
        assert_eq!(**r.col("t").unwrap(), vec![4, 0]);
        let empty = r.select(&[]);
        assert!(empty.is_empty());
    }

    #[test]
    fn provider_gathers_and_caches() {
        let ts = TableSet::from_tables(vec![("t".into(), table())]);
        let rel = IdxRelation::base("t", 3).select(&[2, 0]);
        let p = RelProvider::new(&ts, &rel);
        let c = p.fetch(&ColumnRef::new("t", "id")).unwrap();
        assert_eq!(c.as_ints().unwrap(), &[30, 10]);
        let c2 = p.fetch(&ColumnRef::new("t", "id")).unwrap();
        assert!(Arc::ptr_eq(&c, &c2), "cached");
        assert_eq!(p.num_rows(), 2);
        assert!(p.fetch(&ColumnRef::new("u", "id")).is_err());
    }

    #[test]
    fn join_key_null_handling() {
        use basilisk_storage::ColumnBuilder;
        let mut b = ColumnBuilder::new(DataType::Int);
        b.push(Value::Int(5)).unwrap();
        b.push(Value::Null).unwrap();
        let c = b.finish();
        assert_eq!(join_key(&c, 0), Some(Value::Int(5)));
        assert_eq!(join_key(&c, 1), None);
    }

    #[test]
    fn tableset_lookup() {
        let ts = TableSet::from_tables(vec![("t".into(), table())]);
        assert_eq!(ts.num_rows("t").unwrap(), 3);
        assert!(ts.table("x").is_err());
        assert!(ts.column(&ColumnRef::new("t", "id")).is_ok());
        assert!(ts.column(&ColumnRef::new("t", "zz")).is_err());
    }
}
