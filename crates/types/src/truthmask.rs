//! Vectorized three-valued logic: a `Vec<Truth>` as two dense bitmaps.
//!
//! The paper's performance argument for bitmap-sliced tagged execution
//! (§2.5.1–§2.5.2) is that slice bookkeeping should cost bitmap
//! instructions, not per-tuple work. [`TruthMask`] extends that idea to
//! predicate evaluation itself: a vector of Kleene truth values is stored
//! as a *true* bitmap and an *unknown* bitmap (false = neither), so the
//! 3VL connectives become word-parallel bitwise identities — 64 lanes per
//! instruction instead of one `Truth::and` per element.
//!
//! Encoding per lane: `T ⇔ tru=1`, `U ⇔ unk=1`, `F ⇔ both 0`; `tru ∧ unk`
//! is never set (checked in debug builds). With that encoding the SQL
//! Kleene tables of [`Truth`] reduce to:
//!
//! ```text
//! AND: t = a.t & b.t          u = (a.u|b.u) & (a.t|a.u) & (b.t|b.u)
//! OR:  t = a.t | b.t          u = (a.u|b.u) & !t
//! NOT: t = !(a.t | a.u)       u = a.u
//! ```

use crate::bitmap::{Bitmap, WORD_BITS};
use crate::morsel::Morsel;
use crate::truth::Truth;

/// A fixed-length vector of [`Truth`] values stored as two bitmaps.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct TruthMask {
    tru: Bitmap,
    unk: Bitmap,
}

impl TruthMask {
    /// An all-`False` mask of `len` lanes.
    pub fn new_false(len: usize) -> TruthMask {
        TruthMask {
            tru: Bitmap::new(len),
            unk: Bitmap::new(len),
        }
    }

    /// A mask with every lane set to `value`.
    pub fn splat(len: usize, value: Truth) -> TruthMask {
        match value {
            Truth::False => TruthMask::new_false(len),
            Truth::True => TruthMask {
                tru: Bitmap::all_set(len),
                unk: Bitmap::new(len),
            },
            Truth::Unknown => TruthMask {
                tru: Bitmap::new(len),
                unk: Bitmap::all_set(len),
            },
        }
    }

    /// Build from a scalar truth vector.
    pub fn from_truths(truths: &[Truth]) -> TruthMask {
        TruthMask::from_lanes(truths.len(), |i| truths[i])
    }

    /// Build by evaluating `lane` for every position, packing 64 lanes per
    /// word write. This is the dense fast path predicate evaluation uses.
    pub fn from_lanes(len: usize, lane: impl FnMut(usize) -> Truth) -> TruthMask {
        let mut out = TruthMask::new_false(len);
        out.fill_lanes(lane);
        out
    }

    /// Build by evaluating `lane` only at positions set in `sel`; every
    /// other lane is `False`. This is the selection-vector path: operators
    /// evaluating a predicate under a union-of-slices bitmap touch exactly
    /// the selected tuples.
    pub fn from_lanes_at(len: usize, sel: &Bitmap, lane: impl FnMut(usize) -> Truth) -> TruthMask {
        assert_eq!(sel.len(), len, "selection length must match mask length");
        let mut out = TruthMask::new_false(len);
        out.fill_lanes_at(sel, lane);
        out
    }

    /// Reinitialize to an all-`False` mask of `len` lanes, reusing both
    /// word buffers when their capacity suffices (see [`crate::MaskArena`]).
    pub fn reset(&mut self, len: usize) {
        self.tru.reset(len);
        self.unk.reset(len);
    }

    /// In-place counterpart of [`Self::from_lanes`]: overwrite every lane
    /// by evaluating `lane`, packing 64 lanes per word write.
    pub fn fill_lanes(&mut self, mut lane: impl FnMut(usize) -> Truth) {
        let len = self.len();
        let words = len.div_ceil(WORD_BITS);
        for w in 0..words {
            let base = w * WORD_BITS;
            let top = WORD_BITS.min(len - base);
            let mut t = 0u64;
            let mut u = 0u64;
            for b in 0..top {
                match lane(base + b) {
                    Truth::True => t |= 1 << b,
                    Truth::Unknown => u |= 1 << b,
                    Truth::False => {}
                }
            }
            self.tru.words_mut()[w] = t;
            self.unk.words_mut()[w] = u;
        }
    }

    /// In-place counterpart of [`Self::from_lanes_at`]: evaluate `lane`
    /// only at positions set in `sel`. `self` must be all-`False` (fresh
    /// from [`Self::new_false`] or [`Self::reset`]) — words with no
    /// selected lane are skipped, not cleared.
    pub fn fill_lanes_at(&mut self, sel: &Bitmap, lane: impl FnMut(usize) -> Truth) {
        assert_eq!(sel.len(), self.len(), "selection length must match mask");
        self.fill_lanes_at_words(sel.words(), lane);
    }

    /// Word-granular [`Self::fill_lanes_at`], the morsel-local entry
    /// point: `sel_words` is a selection *word slice* aligned with this
    /// mask (typically `sel.words()[morsel.word_range()]` of a
    /// relation-length selection), and `lane` receives **mask-local**
    /// lane indices — callers add the morsel's row offset themselves.
    /// Bits beyond the mask length must be zero in the last word (true
    /// for any word slice of a well-formed [`Bitmap`]).
    pub fn fill_lanes_at_words(&mut self, sel_words: &[u64], mut lane: impl FnMut(usize) -> Truth) {
        assert_eq!(
            sel_words.len(),
            self.len().div_ceil(WORD_BITS),
            "selection word count must match mask"
        );
        for (w, &sel_word) in sel_words.iter().enumerate() {
            if sel_word == 0 {
                continue;
            }
            let base = w * WORD_BITS;
            let mut t = 0u64;
            let mut u = 0u64;
            if sel_word == u64::MAX {
                // Dense word: straight loop, no per-bit scan.
                for b in 0..WORD_BITS {
                    match lane(base + b) {
                        Truth::True => t |= 1 << b,
                        Truth::Unknown => u |= 1 << b,
                        Truth::False => {}
                    }
                }
            } else {
                let mut bits = sel_word;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    match lane(base + b) {
                        Truth::True => t |= 1 << b,
                        Truth::Unknown => u |= 1 << b,
                        Truth::False => {}
                    }
                }
            }
            self.tru.words_mut()[w] = t;
            self.unk.words_mut()[w] = u;
        }
    }

    /// Overwrite word `w` of both bitmaps at once — the store half of the
    /// branchless compare-into-word kernels: an atom kernel computes a
    /// comparison word and a validity word and stores `(cmp & valid,
    /// !valid)` without any per-lane branch. Tail bits beyond `len` are
    /// masked off; `tru & unk` must be 0 (checked in debug builds).
    #[inline]
    pub fn set_word(&mut self, w: usize, tru: u64, unk: u64) {
        debug_assert_eq!(tru & unk, 0, "lane both true and unknown");
        self.tru.store_word(w, tru);
        self.unk.store_word(w, unk);
    }

    /// Number of lanes.
    #[inline]
    pub fn len(&self) -> usize {
        self.tru.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tru.is_empty()
    }

    /// The truth value of one lane.
    #[inline]
    pub fn get(&self, idx: usize) -> Truth {
        if self.tru.get(idx) {
            Truth::True
        } else if self.unk.get(idx) {
            Truth::Unknown
        } else {
            Truth::False
        }
    }

    /// Set one lane.
    #[inline]
    pub fn set(&mut self, idx: usize, value: Truth) {
        self.tru.assign(idx, value == Truth::True);
        self.unk.assign(idx, value == Truth::Unknown);
    }

    /// Lanes that are `True` — exactly the tuples a WHERE admits.
    pub fn trues(&self) -> &Bitmap {
        &self.tru
    }

    /// Storage identity for the `basilisk_check` buffer-ownership
    /// registry — delegates to the `tru` bitmap, whose heap buffer is
    /// stable across a pooled checkout/recycle round trip.
    #[cfg(basilisk_check)]
    pub(crate) fn check_key(&self) -> usize {
        self.tru.check_key()
    }

    /// Lanes that are `Unknown`.
    pub fn unknowns(&self) -> &Bitmap {
        &self.unk
    }

    /// Lanes that are `False`, materialized (`!(tru | unk)` masked to
    /// length). Prefer [`Self::split_under`] when a selection applies.
    pub fn falses(&self) -> Bitmap {
        let mut out = self.tru.union(&self.unk);
        out.negate();
        out
    }

    /// Consume the mask, keeping only the `True` bitmap.
    pub fn into_trues(self) -> Bitmap {
        self.tru
    }

    pub fn count_true(&self) -> usize {
        self.tru.count_ones()
    }

    pub fn count_unknown(&self) -> usize {
        self.unk.count_ones()
    }

    pub fn count_false(&self) -> usize {
        self.len() - self.count_true() - self.count_unknown()
    }

    /// Expand back to a scalar truth vector (tests / compatibility).
    pub fn to_truths(&self) -> Vec<Truth> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Kleene AND, 64 lanes per instruction: `self &= other`.
    ///
    /// Result is true only where both are true; unknown where neither side
    /// is false but at least one is unknown.
    pub fn and_with(&mut self, other: &TruthMask) {
        assert_eq!(self.len(), other.len(), "truth mask length mismatch");
        let TruthMask { tru, unk } = self;
        let it = tru.words_mut().iter_mut().zip(unk.words_mut());
        for ((t, u), (&bt, &bu)) in it.zip(other.tru.words().iter().zip(other.unk.words())) {
            let (at, au) = (*t, *u);
            *t = at & bt;
            *u = (au | bu) & (at | au) & (bt | bu);
        }
        debug_assert!(self.check_disjoint());
    }

    /// Kleene OR, 64 lanes per instruction: `self |= other`.
    ///
    /// Result is true where either is true; unknown where neither is true
    /// and at least one is unknown.
    pub fn or_with(&mut self, other: &TruthMask) {
        assert_eq!(self.len(), other.len(), "truth mask length mismatch");
        let TruthMask { tru, unk } = self;
        let it = tru.words_mut().iter_mut().zip(unk.words_mut());
        for ((t, u), (&bt, &bu)) in it.zip(other.tru.words().iter().zip(other.unk.words())) {
            let rt = *t | bt;
            *u = (*u | bu) & !rt;
            *t = rt;
        }
        debug_assert!(self.check_disjoint());
    }

    /// Kleene NOT in place: true↔false, unknown fixed.
    pub fn negate(&mut self) {
        let TruthMask { tru, unk } = self;
        for (t, &u) in tru.words_mut().iter_mut().zip(unk.words()) {
            *t = !(*t | u);
        }
        tru.mask_tail();
        debug_assert!(self.check_disjoint());
    }

    /// Treat lanes outside `sel` as `False` (used after NOT, which turns
    /// unevaluated `False` lanes into `True`).
    pub fn restrict_to(&mut self, sel: &Bitmap) {
        self.tru.intersect_with(sel);
        self.unk.intersect_with(sel);
    }

    /// Word-granular [`Self::restrict_to`] for morsel-local masks:
    /// `sel_words` is the selection word slice covering this mask
    /// (typically `sel.words()[morsel.word_range()]`).
    pub fn restrict_to_words(&mut self, sel_words: &[u64]) {
        assert_eq!(
            sel_words.len(),
            self.len().div_ceil(WORD_BITS),
            "selection word count must match mask"
        );
        let TruthMask { tru, unk } = self;
        for ((t, u), &s) in tru
            .words_mut()
            .iter_mut()
            .zip(unk.words_mut())
            .zip(sel_words)
        {
            *t &= s;
            *u &= s;
        }
    }

    /// Copy a morsel-local mask into this relation-length mask at the
    /// morsel's word range — the merge step of morsel-parallel
    /// evaluation. Because morsels own **disjoint word ranges**, merging
    /// is pure word concatenation: no re-intersection, and two morsels
    /// never touch the same word. The morsel must end on a word boundary
    /// or at this mask's length (true for any [`Morsel::split`] tiling).
    pub fn stitch(&mut self, morsel: Morsel, src: &TruthMask) {
        assert_eq!(src.len(), morsel.len(), "morsel mask length mismatch");
        assert!(morsel.end() <= self.len(), "morsel beyond mask");
        debug_assert!(
            morsel.end().is_multiple_of(WORD_BITS) || morsel.end() == self.len(),
            "morsel must end word-aligned or at the mask length"
        );
        let wr = morsel.word_range();
        self.tru.words_mut()[wr.clone()].copy_from_slice(src.tru.words());
        self.unk.words_mut()[wr].copy_from_slice(src.unk.words());
        debug_assert!(self.check_disjoint());
    }

    /// Route the lanes of one relational slice by outcome:
    /// `(slice ∩ true, slice ∩ false, slice ∩ unknown)` — the §2.2 filter
    /// dispatch as three bitmap intersections.
    pub fn split_under(&self, slice: &Bitmap) -> (Bitmap, Bitmap, Bitmap) {
        let mut pos = Bitmap::new(slice.len());
        let mut neg = Bitmap::new(slice.len());
        let mut unk = Bitmap::new(slice.len());
        self.split_under_into(slice, &mut pos, &mut neg, &mut unk);
        (pos, neg, unk)
    }

    /// Allocation-free [`Self::split_under`]: write the three outcome
    /// bitmaps into caller-supplied (typically pooled) buffers, which are
    /// reset to `slice.len()` first.
    pub fn split_under_into(
        &self,
        slice: &Bitmap,
        pos: &mut Bitmap,
        neg: &mut Bitmap,
        unk: &mut Bitmap,
    ) {
        pos.copy_from(slice);
        pos.intersect_with(&self.tru);
        unk.copy_from(slice);
        unk.intersect_with(&self.unk);
        neg.copy_from(slice);
        neg.difference_with(&self.tru);
        neg.difference_with(&self.unk);
    }

    /// Debug invariant: no lane is both true and unknown.
    pub fn check_disjoint(&self) -> bool {
        self.tru.is_disjoint(&self.unk)
    }

    /// Smaller of the two word-buffer capacities (see
    /// [`Bitmap::words_capacity`]); used by [`crate::MaskArena`].
    pub(crate) fn words_capacity(&self) -> usize {
        self.tru.words_capacity().min(self.unk.words_capacity())
    }
}

impl std::fmt::Debug for TruthMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TruthMask(len={}, [", self.len())?;
        for i in 0..self.len().min(64) {
            write!(f, "{}", self.get(i).code())?;
        }
        if self.len() > 64 {
            write!(f, "…")?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single(t: Truth) -> TruthMask {
        TruthMask::from_truths(&[t])
    }

    #[test]
    fn connectives_match_scalar_tables() {
        for a in Truth::ALL {
            for b in Truth::ALL {
                let mut m = single(a);
                m.and_with(&single(b));
                assert_eq!(m.get(0), a.and(b), "AND({a},{b})");
                let mut m = single(a);
                m.or_with(&single(b));
                assert_eq!(m.get(0), a.or(b), "OR({a},{b})");
            }
            let mut m = single(a);
            m.negate();
            assert_eq!(m.get(0), a.not(), "NOT({a})");
        }
    }

    #[test]
    fn roundtrip_and_counts_across_words() {
        let truths: Vec<Truth> = (0..150)
            .map(|i| match i % 3 {
                0 => Truth::True,
                1 => Truth::False,
                _ => Truth::Unknown,
            })
            .collect();
        let m = TruthMask::from_truths(&truths);
        assert!(m.check_disjoint());
        assert_eq!(m.to_truths(), truths);
        assert_eq!(m.count_true(), 50);
        assert_eq!(m.count_false(), 50);
        assert_eq!(m.count_unknown(), 50);
        assert_eq!(m.trues().count_ones(), 50);
        assert_eq!(m.unknowns().count_ones(), 50);
        assert_eq!(m.falses().count_ones(), 50);
    }

    #[test]
    fn negate_masks_tail_word() {
        // 70 lanes: negating all-false must not set bits 70..128.
        let mut m = TruthMask::new_false(70);
        m.negate();
        assert_eq!(m.count_true(), 70);
        m.negate();
        assert_eq!(m.count_true(), 0);
        assert_eq!(m.count_false(), 70);
    }

    #[test]
    fn splat_and_set() {
        let mut m = TruthMask::splat(10, Truth::Unknown);
        assert_eq!(m.count_unknown(), 10);
        m.set(3, Truth::True);
        m.set(4, Truth::False);
        assert_eq!(m.get(3), Truth::True);
        assert_eq!(m.get(4), Truth::False);
        assert_eq!(m.count_unknown(), 8);
        assert!(m.check_disjoint());
    }

    #[test]
    fn selective_lanes_default_false() {
        let sel = Bitmap::from_indices(130, [0usize, 63, 64, 129]);
        let m = TruthMask::from_lanes_at(130, &sel, |i| {
            if i == 63 {
                Truth::Unknown
            } else {
                Truth::True
            }
        });
        assert_eq!(m.get(0), Truth::True);
        assert_eq!(m.get(63), Truth::Unknown);
        assert_eq!(m.get(64), Truth::True);
        assert_eq!(m.get(129), Truth::True);
        assert_eq!(m.get(1), Truth::False, "unselected lanes are false");
        assert_eq!(m.count_true(), 3);
    }

    #[test]
    fn split_under_routes_slices() {
        let truths: Vec<Truth> = vec![
            Truth::True,
            Truth::False,
            Truth::Unknown,
            Truth::True,
            Truth::False,
        ];
        let m = TruthMask::from_truths(&truths);
        let slice = Bitmap::from_indices(5, [0usize, 1, 2]);
        let (pos, neg, unk) = m.split_under(&slice);
        assert_eq!(pos.to_indices(), vec![0]);
        assert_eq!(neg.to_indices(), vec![1]);
        assert_eq!(unk.to_indices(), vec![2]);
    }

    #[test]
    fn restrict_to_clears_outside_lanes() {
        let mut m = TruthMask::splat(8, Truth::True);
        let sel = Bitmap::from_indices(8, [1usize, 2]);
        m.restrict_to(&sel);
        assert_eq!(m.count_true(), 2);
        assert_eq!(m.get(0), Truth::False);
    }

    #[test]
    fn de_morgan_word_parallel() {
        let a: Vec<Truth> = (0..200).map(|i| Truth::ALL[i % 3]).collect();
        let b: Vec<Truth> = (0..200).map(|i| Truth::ALL[(i / 3) % 3]).collect();
        let (ma, mb) = (TruthMask::from_truths(&a), TruthMask::from_truths(&b));
        // !(a & b) == !a | !b
        let mut lhs = ma.clone();
        lhs.and_with(&mb);
        lhs.negate();
        let (mut na, mut nb) = (ma, mb);
        na.negate();
        nb.negate();
        na.or_with(&nb);
        assert_eq!(lhs.to_truths(), na.to_truths());
    }
}
