//! The benefit score (Appendix A, Algorithm 3) and "benefiting order".
//!
//! The benefit score estimates the value of applying one filter before a
//! *set* of still-unapplied filters: if the unapplied filter sits below an
//! AND-parent of the scored filter, applying the scored filter first
//! removes `1 − selectivity` of the tuples from the unapplied filter's
//! input; below an OR-parent it removes `selectivity` (the true tuples
//! bypass it). Duplicate instances are handled through ancestor *paths*:
//! an unapplied filter only receives the benefit if the relevant parent
//! appears on **every** one of its paths to the root.

use basilisk_catalog::Estimator;
use basilisk_expr::{ExprId, PredicateTree};
use basilisk_types::Result;

/// All upward paths from `node` to the root. Each path lists the strict
/// ancestors in bottom-up order. The root yields one empty path.
pub fn ancestor_paths(tree: &PredicateTree, node: ExprId) -> Vec<Vec<ExprId>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    walk_up(tree, node, &mut current, &mut out);
    out
}

fn walk_up(
    tree: &PredicateTree,
    node: ExprId,
    current: &mut Vec<ExprId>,
    out: &mut Vec<Vec<ExprId>>,
) {
    let parents = tree.parents(node);
    if parents.is_empty() {
        out.push(current.clone());
        return;
    }
    for &p in parents {
        current.push(p);
        walk_up(tree, p, current, out);
        current.pop();
    }
}

/// `CalcBenefitScore` (Algorithm 3): the benefit of applying `to_score`
/// before every filter in `unapplied`.
pub fn benefit_score(
    tree: &PredicateTree,
    est: &Estimator,
    to_score: ExprId,
    unapplied: &[ExprId],
) -> Result<f64> {
    let sel = est.node_selectivity(tree, to_score)?;
    let parents = tree.parents(to_score);
    let mut benefit = 0.0;
    for &u in unapplied {
        if u == to_score {
            continue;
        }
        let mut is_and_descendant = true;
        let mut is_or_descendant = true;
        for path in ancestor_paths(tree, u) {
            // "if ∀parent ∈ parents(to_score), parent ∉ path ∨ isOr(parent)
            //  then is_and_descendant ← false"
            if parents.iter().all(|p| !path.contains(p) || tree.is_or(*p)) {
                is_and_descendant = false;
            }
            if parents.iter().all(|p| !path.contains(p) || tree.is_and(*p)) {
                is_or_descendant = false;
            }
        }
        if is_and_descendant {
            benefit += 1.0 - sel;
        }
        if is_or_descendant {
            benefit += sel;
        }
    }
    Ok(benefit)
}

/// The evaluation-cost factor of a filter node (`F_P` in §4.1): the sum of
/// its atoms' cost factors, dominated by LIKE patterns.
pub fn filter_cost_factor(tree: &PredicateTree, node: ExprId) -> f64 {
    tree.atoms_under(node)
        .iter()
        .map(|&a| tree.atom(a).expect("atom id").cost_factor())
        .sum()
}

/// Sort filters into benefiting order: repeatedly pick the filter with the
/// highest `benefit / cost-factor` with respect to the filters still
/// unapplied (ties broken by node id for determinism).
pub fn benefiting_order(
    tree: &PredicateTree,
    est: &Estimator,
    filters: &[ExprId],
) -> Result<Vec<ExprId>> {
    let mut remaining: Vec<ExprId> = filters.to_vec();
    let mut out = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let mut best: Option<(usize, f64)> = None;
        for (i, &f) in remaining.iter().enumerate() {
            let others: Vec<ExprId> = remaining.iter().copied().filter(|&g| g != f).collect();
            let b = benefit_score(tree, est, f, &others)?;
            let score = b / filter_cost_factor(tree, f).max(1e-9);
            let better = match best {
                None => true,
                Some((_, s)) => {
                    score > s + 1e-12
                        || ((score - s).abs() <= 1e-12 && f < remaining[best.unwrap().0])
                }
            };
            if better {
                best = Some((i, score));
            }
        }
        let (i, _) = best.expect("non-empty remaining");
        out.push(remaining.remove(i));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use basilisk_catalog::Catalog;
    use basilisk_expr::{and, col, or, Expr};
    use basilisk_storage::TableBuilder;
    use basilisk_types::DataType;

    /// One table with attributes of controlled selectivity: `a<k` has
    /// selectivity k/100 for k in 0..=100.
    fn setup(expr: &Expr) -> (PredicateTree, Estimator) {
        let mut b = TableBuilder::new("t")
            .column("a", DataType::Int)
            .column("b", DataType::Int)
            .column("c", DataType::Int)
            .column("d", DataType::Int);
        for i in 0..100i64 {
            b.push_row(vec![i.into(), i.into(), i.into(), i.into()])
                .unwrap();
        }
        let mut cat = Catalog::new();
        cat.add_table(b.finish().unwrap()).unwrap();
        let est = Estimator::new(&cat, &[("t".into(), "t".into())]).unwrap();
        (PredicateTree::build(expr), est)
    }

    fn find(tree: &PredicateTree, s: &str) -> ExprId {
        tree.atom_ids()
            .into_iter()
            .find(|&id| tree.display(id) == s)
            .unwrap()
    }

    #[test]
    fn ancestor_paths_simple_and_duplicate() {
        // (A∧B) ∨ (A∧C): A has two paths to the root.
        let a = || col("t", "a").lt(10i64);
        let e = or(vec![
            and(vec![a(), col("t", "b").lt(20i64)]),
            and(vec![a(), col("t", "c").lt(30i64)]),
        ]);
        let (tree, _) = setup(&e);
        let a_id = find(&tree, "t.a < 10");
        let paths = ancestor_paths(&tree, a_id);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p.len(), 2, "AND then OR");
            assert!(tree.is_and(p[0]));
            assert!(tree.is_or(p[1]));
        }
        // Root has a single empty path.
        assert_eq!(ancestor_paths(&tree, tree.root()), vec![Vec::new()]);
    }

    #[test]
    fn and_siblings_get_one_minus_sel() {
        // A∧B: benefit(A; {B}) = 1 - sel(A).
        let e = and(vec![col("t", "a").lt(10i64), col("t", "b").lt(50i64)]);
        let (tree, est) = setup(&e);
        let a = find(&tree, "t.a < 10");
        let b = find(&tree, "t.b < 50");
        let ben = benefit_score(&tree, &est, a, &[b]).unwrap();
        assert!((ben - 0.9).abs() < 1e-6, "got {ben}");
        let ben = benefit_score(&tree, &est, b, &[a]).unwrap();
        assert!((ben - 0.5).abs() < 1e-6, "got {ben}");
    }

    #[test]
    fn or_siblings_get_sel() {
        // A∨B: benefit(A; {B}) = sel(A) — true tuples bypass B.
        let e = or(vec![col("t", "a").lt(10i64), col("t", "b").lt(50i64)]);
        let (tree, est) = setup(&e);
        let a = find(&tree, "t.a < 10");
        let b = find(&tree, "t.b < 50");
        let ben = benefit_score(&tree, &est, a, &[b]).unwrap();
        assert!((ben - 0.1).abs() < 1e-6, "got {ben}");
    }

    #[test]
    fn unrelated_filters_no_benefit() {
        // (A∧B) ∨ (C∧D): A's parent is not on C's paths… C's path goes
        // through the other AND. So benefit(A; {C}) = 0.
        let e = or(vec![
            and(vec![col("t", "a").lt(10i64), col("t", "b").lt(20i64)]),
            and(vec![col("t", "c").lt(30i64), col("t", "d").lt(40i64)]),
        ]);
        let (tree, est) = setup(&e);
        let a = find(&tree, "t.a < 10");
        let c = find(&tree, "t.c < 30");
        assert_eq!(benefit_score(&tree, &est, a, &[c]).unwrap(), 0.0);
    }

    #[test]
    fn duplicate_instance_requires_every_path() {
        // (A∧B) ∨ (A∧C): scoring B against {A}: A's two paths go through
        // different ANDs; B's parent (the first AND) is on only one of
        // them → no benefit. Scoring A against {B}: B has one path through
        // A's first-AND parent → AND benefit.
        let a = || col("t", "a").lt(10i64);
        let e = or(vec![
            and(vec![a(), col("t", "b").lt(20i64)]),
            and(vec![a(), col("t", "c").lt(30i64)]),
        ]);
        let (tree, est) = setup(&e);
        let a_id = find(&tree, "t.a < 10");
        let b_id = find(&tree, "t.b < 20");
        assert_eq!(benefit_score(&tree, &est, b_id, &[a_id]).unwrap(), 0.0);
        let ben = benefit_score(&tree, &est, a_id, &[b_id]).unwrap();
        assert!((ben - 0.9).abs() < 1e-6, "A kills 90% of B's input");
    }

    #[test]
    fn benefiting_order_prefers_selective_cheap_filters() {
        // A (sel .1) vs B (sel .5) vs C (sel .9), all AND siblings.
        let e = and(vec![
            col("t", "c").lt(90i64),
            col("t", "a").lt(10i64),
            col("t", "b").lt(50i64),
        ]);
        let (tree, est) = setup(&e);
        let order = benefiting_order(
            &tree,
            &est,
            &[
                find(&tree, "t.c < 90"),
                find(&tree, "t.a < 10"),
                find(&tree, "t.b < 50"),
            ],
        )
        .unwrap();
        let names: Vec<String> = order.iter().map(|&id| tree.display(id)).collect();
        assert_eq!(names, vec!["t.a < 10", "t.b < 50", "t.c < 90"]);
    }

    #[test]
    fn benefiting_order_penalizes_expensive_filters() {
        // LIKE is ~10× costlier; even with equal benefit it sorts last.
        let mut b = TableBuilder::new("t")
            .column("a", DataType::Int)
            .column("s", DataType::Str);
        for i in 0..100i64 {
            b.push_row(vec![i.into(), format!("row{i}").into()])
                .unwrap();
        }
        let mut cat = Catalog::new();
        cat.add_table(b.finish().unwrap()).unwrap();
        let est = Estimator::new(&cat, &[("t".into(), "t".into())]).unwrap();
        let e = and(vec![col("t", "s").like("%5%"), col("t", "a").lt(19i64)]);
        let tree = PredicateTree::build(&e);
        let like = find(&tree, "t.s LIKE '%5%'");
        let lt = find(&tree, "t.a < 19");
        let order = benefiting_order(&tree, &est, &[like, lt]).unwrap();
        assert_eq!(order, vec![lt, like]);
    }

    #[test]
    fn filter_cost_factor_sums_atoms() {
        let e = or(vec![
            col("t", "a").lt(10i64),
            and(vec![col("t", "b").lt(20i64), col("t", "c").lt(30i64)]),
        ]);
        let (tree, _) = setup(&e);
        assert_eq!(filter_cost_factor(&tree, tree.root()), 3.0);
        let a = find(&tree, "t.a < 10");
        assert_eq!(filter_cost_factor(&tree, a), 1.0);
    }
}
