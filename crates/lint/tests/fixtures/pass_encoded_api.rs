//! Passing fixture: consumes encoded columns strictly through the
//! public `EncodedColumn` API — decode, gather, zone pruning.

fn stats(enc: &basilisk_storage::EncodedColumn) -> (usize, usize) {
    let decoded = enc.decode();
    // `raw_codes` in a comment is fine; only code tokens fire.
    (decoded.len(), enc.zone_count())
}
