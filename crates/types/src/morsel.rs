//! Morsels: word-aligned row ranges for intra-query parallelism.
//!
//! Morsel-driven execution (Leis et al., SIGMOD 2014) splits a base
//! relation into fixed-size row ranges and lets a work-stealing scheduler
//! hand them to workers. Basilisk's twist is that every hot-path data
//! structure is a bitmap ([`Bitmap`](crate::Bitmap) slices,
//! [`TruthMask`](crate::TruthMask) lanes), so morsel boundaries are
//! **aligned to 64-bit word boundaries**: a morsel then owns a disjoint
//! word range of every bitmap over the relation, per-morsel evaluation
//! results can be *stitched* back together by copying whole words
//! ([`TruthMask::stitch`](crate::TruthMask::stitch)) — concatenation, not
//! re-intersection — and two workers never write the same word.

use std::ops::Range;

use crate::bitmap::WORD_BITS;

/// The default morsel granularity: 64 Ki rows (a multiple of the 64-bit
/// word size, and large enough that scheduling overhead vanishes next to
/// the per-morsel kernel work).
pub const DEFAULT_MORSEL_ROWS: usize = 64 * 1024;

/// A half-open, word-aligned row range `[start, end)` over a relation.
///
/// Invariants (enforced by the constructors): `start <= end`, and `start`
/// is a multiple of 64. Only the *last* morsel of a relation may end off
/// a word boundary (at the relation length itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    start: usize,
    end: usize,
}

impl Morsel {
    /// A morsel over `[start, end)`. Panics unless `start` is 64-aligned
    /// and `start <= end`.
    pub fn new(start: usize, end: usize) -> Morsel {
        assert!(
            start.is_multiple_of(WORD_BITS),
            "morsel start {start} must be word-aligned"
        );
        assert!(start <= end, "morsel range reversed: {start}..{end}");
        Morsel { start, end }
    }

    /// The single morsel covering a whole relation of `len` rows — what
    /// serial execution is, seen through the morsel API.
    pub fn full(len: usize) -> Morsel {
        Morsel { start: 0, end: len }
    }

    /// Split `len` rows into morsels of `rows_per_morsel` rows (the last
    /// one may be shorter). `rows_per_morsel` must be a positive multiple
    /// of 64 so every split point is word-aligned.
    pub fn split(len: usize, rows_per_morsel: usize) -> Vec<Morsel> {
        assert!(
            rows_per_morsel > 0 && rows_per_morsel.is_multiple_of(WORD_BITS),
            "morsel size {rows_per_morsel} must be a positive multiple of 64"
        );
        if len == 0 {
            return vec![Morsel::full(0)];
        }
        (0..len)
            .step_by(rows_per_morsel)
            .map(|start| Morsel {
                start,
                end: (start + rows_per_morsel).min(len),
            })
            .collect()
    }

    /// First row of the range.
    #[inline]
    pub fn start(&self) -> usize {
        self.start
    }

    /// One past the last row of the range.
    #[inline]
    pub fn end(&self) -> usize {
        self.end
    }

    /// Number of rows covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The bitmap-word range this morsel owns: index it into
    /// [`Bitmap::words`](crate::Bitmap::words) of any bitmap over the
    /// relation to get exactly this morsel's lanes.
    #[inline]
    pub fn word_range(&self) -> Range<usize> {
        self.start / WORD_BITS..self.end.div_ceil(WORD_BITS)
    }

    /// Translate a morsel-local lane index to the relation-global row.
    #[inline]
    pub fn global(&self, local: usize) -> usize {
        debug_assert!(local < self.len());
        self.start + local
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_exactly() {
        let ms = Morsel::split(1000, 256);
        assert_eq!(ms.len(), 4);
        assert_eq!(ms[0], Morsel::new(0, 256));
        assert_eq!(ms[3], Morsel::new(768, 1000));
        let total: usize = ms.iter().map(Morsel::len).sum();
        assert_eq!(total, 1000);
        // Consecutive, disjoint.
        for w in ms.windows(2) {
            assert_eq!(w[0].end(), w[1].start());
        }
    }

    #[test]
    fn word_ranges_are_disjoint_and_cover() {
        let ms = Morsel::split(1000, 128);
        let words = 1000usize.div_ceil(64);
        let mut next = 0;
        for m in &ms {
            let r = m.word_range();
            assert_eq!(r.start, next, "word ranges must tile");
            next = r.end;
        }
        assert_eq!(next, words);
    }

    #[test]
    fn full_and_empty() {
        let m = Morsel::full(77);
        assert_eq!((m.start(), m.end(), m.len()), (0, 77, 77));
        assert_eq!(m.word_range(), 0..2);
        assert_eq!(m.global(5), 5);
        let z = Morsel::full(0);
        assert!(z.is_empty());
        assert_eq!(z.word_range(), 0..0);
        assert_eq!(Morsel::split(0, 64), vec![Morsel::full(0)]);
    }

    #[test]
    fn exact_multiple_split() {
        let ms = Morsel::split(256, 128);
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[1], Morsel::new(128, 256));
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn unaligned_morsel_size_panics() {
        Morsel::split(100, 50);
    }

    #[test]
    #[should_panic(expected = "word-aligned")]
    fn unaligned_start_panics() {
        Morsel::new(10, 20);
    }
}
