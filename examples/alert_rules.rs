//! Disjunctive "alert rules" over a normalized event store — the §5.2
//! synthetic schema dressed in a monitoring scenario.
//!
//! `t0` is a device registry, `t1`/`t2` are two metric streams keyed by
//! device (with Zipf-skewed device popularity, like real telemetry). An
//! alert fires when *any* rule matches, and every rule constrains both
//! streams — the cross-table disjunction traditional planners cannot push
//! down:
//!
//! ```sql
//! WHERE (t1.a1 < 0.2 AND t2.a1 < 0.2)   -- rule 1: both latencies low
//!    OR (t1.a2 < 0.2 AND t2.a2 < 0.2)   -- rule 2: both error rates low
//! ```
//!
//! Run with: `cargo run --release --example alert_rules`

use basilisk::{Catalog, PlannerKind, QuerySession, Result, TagMapStrategy};
use basilisk_workload::{cnf_query, dnf_query, generate_synthetic, SyntheticConfig};

fn main() -> Result<()> {
    let rows = 10_000;
    println!("generating {rows}-row device/metric tables (Zipf 1.5 keys)…\n");
    let cfg = SyntheticConfig {
        rows,
        num_attrs: 4,
        zipf_shape: 1.5,
        seed: 2024,
    };
    let mut catalog = Catalog::new();
    for t in generate_synthetic(&cfg)? {
        catalog.add_table(t)?;
    }

    // DNF (any-rule-matches) and CNF (every-rule-partially-matches)
    // variants of the alert predicate.
    for (name, query) in [
        ("DNF — any rule fully matches", dnf_query(2, 0.2, None)),
        (
            "CNF — every rule partially matches",
            cnf_query(2, 0.2, None),
        ),
    ] {
        println!("== {name} ==");
        println!("predicate: {}\n", query.predicate.as_ref().unwrap());
        let session = QuerySession::new(&catalog, query.clone())?;
        println!("{:>11} {:>12} {:>8}", "planner", "total(ms)", "alerts");
        let baseline = if name.starts_with("DNF") {
            PlannerKind::BDisj
        } else {
            PlannerKind::BPushConj
        };
        for kind in [baseline, PlannerKind::TCombined] {
            let (out, t) = session.run(kind)?;
            println!(
                "{:>11} {:>12.2} {:>8}",
                kind.name(),
                t.total().as_secs_f64() * 1e3,
                out.count()
            );
        }

        // Peek at the tag machinery: the chosen plan and its tag space.
        let plan = session.plan(PlannerKind::TCombined)?;
        println!("\n{}", session.explain(&plan));
    }

    // Bonus: what §3.1's naive strategy would cost on the same query.
    println!("== naive tag strategy (§3.1) vs generalization (§3.2) ==");
    let query = dnf_query(3, 0.2, None);
    for (label, strategy) in [
        ("naive", TagMapStrategy::Naive),
        (
            "generalized",
            TagMapStrategy::Generalized { use_closure: true },
        ),
    ] {
        let session = QuerySession::new(&catalog, query.clone())?.with_strategy(strategy);
        let (out, t) = session.run(PlannerKind::TPushdown)?;
        println!(
            "{label:>12}: {:>8.2} ms, {} alerts",
            t.total().as_secs_f64() * 1e3,
            out.count()
        );
    }
    Ok(())
}
