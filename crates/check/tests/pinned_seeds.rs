//! Seeded regression pin for the PR-8 exploration campaign.
//!
//! The full 1000-seed corpus over every scenario (4000 runs) surfaced
//! **no** lock-order or missed-wakeup finding in the region-table
//! protocol (`basilisk-sched`) or the DRR admission gate
//! (`basilisk-serve`). This test pins that absence the same way a fixed
//! finding would be pinned: it replays an exact, spread-out set of
//! seeds — each one a specific deterministic schedule — and demands
//! they stay clean, while also demanding the runtime actually perturbed
//! the run (schedule points hit, preemptions injected), so a future
//! regression that silently disables instrumentation cannot pass as
//! "no findings".
//!
//! If a protocol change makes one of these seeds fail, the failure
//! message carries the one-line replay command; fix the protocol (or,
//! if the contract legitimately changed, re-run the full corpus and
//! re-pin).
//!
//! Single `#[test]` on purpose: the check runtime is process-global and
//! must not be reset concurrently by sibling tests (separate
//! integration-test binaries are separate processes).

#![forbid(unsafe_code)]
#![cfg(basilisk_check)]

use basilisk_check::{quiet_panics, run_seed, scenarios};
use basilisk_types::sync::check;

/// Replayed schedules, spread across the CI corpus range [0, 1000).
/// Primes, so the set never degenerates into one stride pattern.
const PINNED_SEEDS: &[u64] = &[2, 61, 127, 251, 389, 509, 641, 769, 887, 997];

#[test]
fn pinned_schedules_stay_clean_and_perturbed() {
    check::set_stall_millis(2000);
    let mut total_points = 0u64;
    let mut total_yields = 0u64;
    quiet_panics(|| {
        for scenario in scenarios::ALL {
            for &seed in PINNED_SEEDS {
                let finding = run_seed(scenario, seed);
                assert!(
                    finding.is_none(),
                    "pinned schedule regressed:\n{}",
                    finding.unwrap()
                );
                let stats = check::stats();
                total_points += stats.schedule_points;
                total_yields += stats.yields;
                assert_eq!(
                    stats.tracked_buffers, 0,
                    "{} seed {seed}: ownership registry not drained",
                    scenario.name
                );
            }
        }
    });
    // The clean result must come from instrumented, perturbed runs —
    // thousands of sync ops and a real injected-preemption rate — not
    // from the façade quietly compiling down to bare std::sync.
    // Calibration: the 40 replays currently log ~8.8k schedule points
    // and a 2–27% per-seed preemption appetite; the floors sit ~4×
    // under that so scenario drift doesn't flake, while a runtime that
    // stopped instrumenting (or a dead seed stream) still lands at ~0.
    assert!(
        total_points > 2_000,
        "suspiciously few schedule points ({total_points}): is the runtime instrumented?"
    );
    assert!(
        total_yields > 50,
        "suspiciously few injected preemptions ({total_yields}): is the seed stream live?"
    );
}
