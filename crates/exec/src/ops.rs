//! Traditional relational operators over index relations.

use std::sync::Arc;

use basilisk_expr::eval::{eval_node_mask, profile_atoms, AtomProfile};
use basilisk_expr::{ColumnRef, ExprId, PredicateTree};
use basilisk_sched::WorkerPool;
use basilisk_storage::Column;
use basilisk_types::{BasiliskError, MaskArena, Result};

use crate::hash::JoinTable;
use crate::par::{eval_mask_parallel, partitioned_probe, probe_range};
use crate::relation::{IdxRelation, RelProvider, TableSet};

/// Filter: evaluate a predicate-tree node over the relation and keep the
/// tuples where it is *true* (SQL WHERE semantics — unknown drops).
///
/// Uses the vectorized [`TruthMask`](basilisk_types::TruthMask) path, so
/// the traditional engine and the tagged engine share one evaluation
/// kernel and their benchmark comparison stays apples-to-apples. All
/// scratch (the all-ones selection, the result mask, the index decode
/// buffer) comes from `arena` and is recycled before returning.
pub fn filter(
    tables: &TableSet,
    relation: &IdxRelation,
    tree: &PredicateTree,
    node: ExprId,
    arena: &MaskArena,
) -> Result<IdxRelation> {
    filter_impl(tables, relation, tree, node, arena, None)
}

/// [`filter`] with morsel-parallel predicate evaluation on `pool`'s
/// workers (see [`eval_mask_parallel`]); identical output, and the plain
/// serial path whenever the pool or the relation is too small to fan
/// out.
pub fn filter_par(
    tables: &TableSet,
    relation: &IdxRelation,
    tree: &PredicateTree,
    node: ExprId,
    arena: &MaskArena,
    pool: &WorkerPool,
) -> Result<IdxRelation> {
    filter_impl(tables, relation, tree, node, arena, Some(pool))
}

fn filter_impl(
    tables: &TableSet,
    relation: &IdxRelation,
    tree: &PredicateTree,
    node: ExprId,
    arena: &MaskArena,
    pool: Option<&WorkerPool>,
) -> Result<IdxRelation> {
    let provider = RelProvider::new(tables, relation);
    let sel = arena.bitmap_ones(relation.len());
    let mask = match pool {
        Some(pool) => eval_mask_parallel(tree, node, &provider, &sel, arena, pool),
        None => eval_node_mask(tree, node, &provider, &sel, arena),
    };
    // Recycle the selection before propagating any evaluation error —
    // failed executions must not strand pooled buffers.
    arena.recycle_bitmap(sel);
    let mask = mask?;
    let out = relation.select_bitmap_in(mask.trues(), arena);
    arena.recycle_mask(mask);
    Ok(out)
}

/// Profile the atoms a [`filter`] over `node` evaluates. The traditional
/// path evaluates every tuple of the relation (an all-ones selection),
/// so these profiles report zero short-circuited lanes — the contrast
/// tagged-execution traces draw against. A tracing-only path that
/// re-evaluates the atoms; callers gate it on the request being traced.
pub fn relation_atom_profiles(
    tables: &TableSet,
    relation: &IdxRelation,
    tree: &PredicateTree,
    node: ExprId,
    arena: &MaskArena,
) -> Result<Vec<AtomProfile>> {
    let provider = RelProvider::new(tables, relation);
    let sel = arena.bitmap_ones(relation.len());
    let out = profile_atoms(tree, node, &provider, &sel, arena);
    arena.recycle_bitmap(sel);
    out
}

/// Which side of a hash join the hash table is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinSide {
    Left,
    Right,
    /// Build from whichever input has fewer tuples (the paper estimates
    /// both sides and picks the cheaper one).
    Smaller,
}

/// Hash equi-join of two index relations on `left_key = right_key`.
///
/// NULL keys never match. The output covers the union of both sides'
/// tables, in left-then-right column order. Selection vectors are pooled
/// scratch and the output columns come from the arena's column pool.
pub fn hash_join(
    tables: &TableSet,
    left: &IdxRelation,
    right: &IdxRelation,
    left_key: &ColumnRef,
    right_key: &ColumnRef,
    side: JoinSide,
    arena: &MaskArena,
) -> Result<IdxRelation> {
    hash_join_impl(tables, left, right, left_key, right_key, side, arena, None)
}

/// [`hash_join`] with a **parallel partitioned probe**: one shared build
/// table (built serially — the build side is the smaller input), probe
/// positions split into morsel-sized chunks run on `pool`'s workers,
/// per-chunk match lists concatenated in chunk order. Identical output
/// to the serial join, and the serial path whenever the probe side is
/// too small to fan out.
#[allow(clippy::too_many_arguments)]
pub fn hash_join_par(
    tables: &TableSet,
    left: &IdxRelation,
    right: &IdxRelation,
    left_key: &ColumnRef,
    right_key: &ColumnRef,
    side: JoinSide,
    arena: &MaskArena,
    pool: &WorkerPool,
) -> Result<IdxRelation> {
    hash_join_impl(
        tables,
        left,
        right,
        left_key,
        right_key,
        side,
        arena,
        Some(pool),
    )
}

#[allow(clippy::too_many_arguments)]
fn hash_join_impl(
    tables: &TableSet,
    left: &IdxRelation,
    right: &IdxRelation,
    left_key: &ColumnRef,
    right_key: &ColumnRef,
    side: JoinSide,
    arena: &MaskArena,
    pool: Option<&WorkerPool>,
) -> Result<IdxRelation> {
    if !left.covers(&left_key.table) || !right.covers(&right_key.table) {
        return Err(BasiliskError::Exec(format!(
            "join keys {left_key} / {right_key} not covered by inputs"
        )));
    }
    let build_left = match side {
        JoinSide::Left => true,
        JoinSide::Right => false,
        JoinSide::Smaller => left.len() <= right.len(),
    };
    let (build, probe, build_key, probe_key) = if build_left {
        (left, right, left_key, right_key)
    } else {
        (right, left, right_key, left_key)
    };

    // Both fetches happen before any other arena checkout, so an error on
    // the second fetch only has the first column to return to the pool.
    let build_col = fetch_key_column(tables, build, build_key, arena)?;
    let probe_col = match fetch_key_column(tables, probe, probe_key, arena) {
        Ok(c) => c,
        Err(e) => {
            build_col.recycle(arena);
            return Err(e);
        }
    };

    // One hash table for the whole build side (§2.5.3's "one giant hash
    // table" — in the untagged engine there are no slices to share it
    // across, but the structure is identical). CSR layout + FxHash: no
    // per-key Vec allocations, no SipHash on the hot path. The table
    // interns key values, so the build column is dead once it's built.
    let table = JoinTable::build(&build_col, |i| i as u32);
    build_col.recycle(arena);

    let mut build_sel = arena.indices();
    let mut probe_sel = arena.indices();
    let fanned_out = match pool {
        None => Ok(false),
        Some(pool) => partitioned_probe(
            pool,
            probe.len(),
            |worker_arena, range| {
                let mut bs = worker_arena.indices();
                let mut ps = worker_arena.indices();
                probe_range(&table, &probe_col, range, &mut bs, &mut ps);
                Ok((bs, ps))
            },
            |worker_arena, (bs, ps)| {
                worker_arena.recycle_indices(bs);
                worker_arena.recycle_indices(ps);
            },
            |worker, (bs, ps), pool| {
                build_sel.extend_from_slice(&bs);
                probe_sel.extend_from_slice(&ps);
                pool.with_arena(worker, |a| {
                    a.recycle_indices(bs);
                    a.recycle_indices(ps);
                });
            },
        ),
    };
    let fanned_out = match fanned_out {
        Ok(f) => f,
        Err(e) => {
            arena.recycle_indices(build_sel);
            arena.recycle_indices(probe_sel);
            probe_col.recycle(arena);
            return Err(e);
        }
    };
    if !fanned_out {
        probe_range(
            &table,
            &probe_col,
            0..probe.len(),
            &mut build_sel,
            &mut probe_sel,
        );
    }
    probe_col.recycle(arena);

    let (left_sel, right_sel) = if build_left {
        (&build_sel, &probe_sel)
    } else {
        (&probe_sel, &build_sel)
    };
    let out = combine(left, right, left_sel, right_sel, arena);
    arena.recycle_indices(build_sel);
    arena.recycle_indices(probe_sel);
    Ok(out)
}

/// Assemble the joined relation from per-side tuple selections: every
/// output index column is checked out of the arena's column pool and
/// filled with the word-parallel gather kernel
/// ([`basilisk_types::gather_u32_into`]).
pub fn combine(
    left: &IdxRelation,
    right: &IdxRelation,
    left_sel: &[u32],
    right_sel: &[u32],
    arena: &MaskArena,
) -> IdxRelation {
    debug_assert_eq!(left_sel.len(), right_sel.len());
    let mut tables = Vec::with_capacity(left.tables().len() + right.tables().len());
    let mut cols = Vec::with_capacity(tables.capacity());
    for (side, sel) in [(left, left_sel), (right, right_sel)] {
        for (t, c) in side.tables().iter().zip(side.cols()) {
            tables.push(t.clone());
            let mut out = arena.columns().checkout(sel.len());
            basilisk_types::gather_u32_into(c, sel, &mut out);
            cols.push(Arc::new(out));
        }
    }
    IdxRelation::from_parts(tables, cols)
}

/// Gather a join-key value column into pooled value buffers. The caller
/// recycles it (`Column::recycle`) once the build/probe that consumes it
/// is done, so repeated joins materialize keys allocation-free.
fn fetch_key_column(
    tables: &TableSet,
    relation: &IdxRelation,
    key: &ColumnRef,
    arena: &MaskArena,
) -> Result<Column> {
    let handle = tables.column(key)?;
    handle.gather_in(relation.col(&key.table)?, arena)
}

/// Union with duplicate elimination — the operator BDisj appends to merge
/// per-root-clause results (§5: "an additional, potentially expensive
/// union operator is also required to filter out duplicate tuples").
/// Tuples are identified by their base-table indices; inputs must cover
/// the same tables (column order may differ); first-occurrence order is
/// preserved.
///
/// Deduplication is allocation-free per row: each tuple's fixed-width
/// (`ncols × u32`) row key is written into one pooled scratch buffer,
/// FxHash-hashed, and probed against a **persistent-capacity**
/// generation-stamped slot table ([`basilisk_types::SlotTable`], pooled
/// in the arena like the join side retains its build table) that stores
/// *output row ids* — candidate equality is checked directly against the
/// already-emitted output columns, so no per-row `Vec` key is ever
/// materialized, and repeated unions skip even the O(capacity)
/// empty-slot refill. Output columns come from the arena's column pool.
pub fn union_all_dedup(inputs: &[IdxRelation], arena: &MaskArena) -> Result<IdxRelation> {
    let Some(first) = inputs.first() else {
        return Err(BasiliskError::Exec("union of zero inputs".into()));
    };
    let ref_tables: Vec<String> = first.tables().to_vec();
    let ncols = ref_tables.len();
    let total: usize = inputs.iter().map(|r| r.len()).sum();

    // Open-addressing slot table at ≤ 50% load; `begin` inside
    // `slot_table` makes the previous union's entries vanish in O(1).
    let mut slots = arena.slot_table(total);
    let mut row = arena.indices(); // fixed-width row-key scratch
    let mut out_cols: Vec<Vec<u32>> = (0..ncols)
        .map(|_| arena.columns().checkout(total))
        .collect();
    let mut emitted = 0u32;

    let mut fold = || -> Result<()> {
        for rel in inputs {
            // Map reference column order onto this input's order.
            let perm: Vec<usize> = ref_tables
                .iter()
                .map(|t| {
                    rel.tables().iter().position(|u| u == t).ok_or_else(|| {
                        BasiliskError::Exec(format!("union input missing table {t}"))
                    })
                })
                .collect::<Result<_>>()?;
            if rel.tables().len() != ncols {
                return Err(BasiliskError::Exec(
                    "union inputs cover different table sets".into(),
                ));
            }
            for i in 0..rel.len() {
                row.clear();
                row.extend(perm.iter().map(|&p| rel.cols()[p][i]));
                let mut hasher = crate::hash::FxHasher::default();
                for &v in &row {
                    std::hash::Hasher::write_u32(&mut hasher, v);
                }
                let mut slot = std::hash::Hasher::finish(&hasher) as usize & slots.mask();
                loop {
                    let Some(e) = slots.get(slot) else {
                        slots.set(slot, emitted);
                        for (c, &v) in out_cols.iter_mut().zip(&row) {
                            c.push(v);
                        }
                        emitted += 1;
                        break;
                    };
                    if out_cols.iter().zip(&row).all(|(c, &v)| c[e as usize] == v) {
                        break; // duplicate
                    }
                    slot = (slot + 1) & slots.mask();
                }
            }
        }
        Ok(())
    };
    let folded = fold();
    arena.recycle_slot_table(slots);
    arena.recycle_indices(row);
    if let Err(e) = folded {
        // Failed unions must not leak pooled output columns.
        for c in out_cols {
            arena.columns().recycle_vec(c);
        }
        return Err(e);
    }
    Ok(IdxRelation::from_parts(
        ref_tables,
        out_cols.into_iter().map(Arc::new).collect(),
    ))
}

/// Projection: materialize the requested columns' values for every tuple.
pub fn project(
    tables: &TableSet,
    relation: &IdxRelation,
    columns: &[ColumnRef],
) -> Result<Vec<(ColumnRef, Column)>> {
    let mut out = Vec::with_capacity(columns.len());
    for cref in columns {
        let handle = tables.column(cref)?;
        let rows = relation.col(&cref.table)?;
        out.push((cref.clone(), handle.gather(rows)?));
    }
    Ok(out)
}

/// [`project`] into pooled value buffers: every output column's typed
/// payload (and validity bitmap) comes from the arena, closing the last
/// per-execute allocation on the serving path. The produced columns must
/// return through `Column::recycle` — the session defers result columns
/// and sweeps them once the caller releases the output. A failing later
/// column recycles the earlier ones before propagating.
pub fn project_in(
    tables: &TableSet,
    relation: &IdxRelation,
    columns: &[ColumnRef],
    arena: &MaskArena,
) -> Result<Vec<(ColumnRef, Column)>> {
    let mut out: Vec<(ColumnRef, Column)> = Vec::with_capacity(columns.len());
    for cref in columns {
        let gathered = tables
            .column(cref)
            .and_then(|handle| handle.gather_in(relation.col(&cref.table)?, arena));
        match gathered {
            Ok(col) => out.push((cref.clone(), col)),
            Err(e) => {
                for (_, col) in out {
                    col.recycle(arena);
                }
                return Err(e);
            }
        }
    }
    Ok(out)
}

/// Count-only projection (the figure harnesses verify result cardinality
/// without materializing values).
pub fn project_count(relation: &IdxRelation) -> usize {
    relation.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use basilisk_expr::{and, col, or, PredicateTree};
    use basilisk_storage::{Table, TableBuilder};
    use basilisk_types::{DataType, MaskArena, Value};

    fn title() -> Arc<Table> {
        let mut b = TableBuilder::new("title")
            .column("id", DataType::Int)
            .column("year", DataType::Int);
        for (id, year) in [(1, 2008), (2, 2001), (3, 1994), (4, 1994), (5, 1972)] {
            b.push_row(vec![(id as i64).into(), (year as i64).into()])
                .unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    fn scores() -> Arc<Table> {
        let mut b = TableBuilder::new("scores")
            .column("movie_id", DataType::Int)
            .column("score", DataType::Str);
        for (mid, s) in [(1, "9.0"), (3, "9.3"), (4, "8.9"), (5, "9.2"), (6, "7.5")] {
            b.push_row(vec![(mid as i64).into(), s.into()]).unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    fn tset() -> TableSet {
        TableSet::from_tables(vec![("t".into(), title()), ("s".into(), scores())])
    }

    #[test]
    fn filter_keeps_true_rows() {
        let ts = tset();
        let rel = IdxRelation::base("t", 5);
        let tree = PredicateTree::build(&col("t", "year").gt(2000i64));
        let out = filter(&ts, &rel, &tree, tree.root(), &MaskArena::new()).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(**out.col("t").unwrap(), vec![0, 1]);
    }

    #[test]
    fn filter_complex_predicate() {
        let ts = tset();
        let rel = IdxRelation::base("t", 5);
        let e = or(vec![
            col("t", "year").gt(2000i64),
            col("t", "year").lt(1980i64),
        ]);
        let tree = PredicateTree::build(&e);
        let out = filter(&ts, &rel, &tree, tree.root(), &MaskArena::new()).unwrap();
        assert_eq!(out.len(), 3); // 2008, 2001, 1972
    }

    #[test]
    fn relation_atom_profiles_cover_every_tuple() {
        let ts = tset();
        let rel = IdxRelation::base("t", 5);
        let e = or(vec![
            col("t", "year").gt(2000i64),
            col("t", "year").lt(1980i64),
        ]);
        let tree = PredicateTree::build(&e);
        let arena = MaskArena::new();
        let profiles = relation_atom_profiles(&ts, &rel, &tree, tree.root(), &arena).unwrap();
        assert_eq!(profiles.len(), 2);
        for p in &profiles {
            assert_eq!(p.lanes_evaluated, 5, "traditional path evaluates all");
            assert_eq!(p.lanes_short_circuited, 0);
        }
        assert_eq!(profiles[0].true_count, 2, "2008, 2001");
        assert_eq!(profiles[1].true_count, 1, "1972");
        assert_eq!(arena.outstanding(), 0);
    }

    #[test]
    fn hash_join_matches_keys() {
        let ts = tset();
        let t = IdxRelation::base("t", 5);
        let s = IdxRelation::base("s", 5);
        let out = hash_join(
            &ts,
            &t,
            &s,
            &ColumnRef::new("t", "id"),
            &ColumnRef::new("s", "movie_id"),
            JoinSide::Smaller,
            &MaskArena::new(),
        )
        .unwrap();
        // t ids 1..5 join s movie_ids {1,3,4,5,6} → 4 matches.
        assert_eq!(out.len(), 4);
        assert_eq!(out.tables(), &["t".to_string(), "s".to_string()]);
        // verify a concrete pair: t.id=1 ↔ s.movie_id=1
        let tcol = out.col("t").unwrap();
        let scol = out.col("s").unwrap();
        let pos = (0..out.len()).find(|&i| tcol[i] == 0).unwrap();
        assert_eq!(scol[pos], 0);
    }

    #[test]
    fn hash_join_build_side_invariant() {
        let ts = tset();
        let t = IdxRelation::base("t", 5);
        let s = IdxRelation::base("s", 5);
        let lk = ColumnRef::new("t", "id");
        let rk = ColumnRef::new("s", "movie_id");
        let arena = MaskArena::new();
        let a = hash_join(&ts, &t, &s, &lk, &rk, JoinSide::Left, &arena).unwrap();
        let b = hash_join(&ts, &t, &s, &lk, &rk, JoinSide::Right, &arena).unwrap();
        assert_eq!(a.len(), b.len());
        let mut pa: Vec<(u32, u32)> = (0..a.len())
            .map(|i| (a.col("t").unwrap()[i], a.col("s").unwrap()[i]))
            .collect();
        let mut pb: Vec<(u32, u32)> = (0..b.len())
            .map(|i| (b.col("t").unwrap()[i], b.col("s").unwrap()[i]))
            .collect();
        pa.sort_unstable();
        pb.sort_unstable();
        assert_eq!(pa, pb);
    }

    #[test]
    fn hash_join_null_keys_never_match() {
        let mut b = TableBuilder::new("l").column("k", DataType::Int);
        b.push_row(vec![Value::Null]).unwrap();
        b.push_row(vec![1i64.into()]).unwrap();
        let l = Arc::new(b.finish().unwrap());
        let mut b = TableBuilder::new("r").column("k", DataType::Int);
        b.push_row(vec![Value::Null]).unwrap();
        b.push_row(vec![1i64.into()]).unwrap();
        let r = Arc::new(b.finish().unwrap());
        let ts = TableSet::from_tables(vec![("l".into(), l), ("r".into(), r)]);
        let out = hash_join(
            &ts,
            &IdxRelation::base("l", 2),
            &IdxRelation::base("r", 2),
            &ColumnRef::new("l", "k"),
            &ColumnRef::new("r", "k"),
            JoinSide::Smaller,
            &MaskArena::new(),
        )
        .unwrap();
        assert_eq!(out.len(), 1, "only the 1=1 pair; NULL≠NULL");
    }

    #[test]
    fn join_key_not_covered_errors() {
        let ts = tset();
        let t = IdxRelation::base("t", 5);
        let s = IdxRelation::base("s", 5);
        assert!(hash_join(
            &ts,
            &t,
            &s,
            &ColumnRef::new("s", "movie_id"),
            &ColumnRef::new("t", "id"),
            JoinSide::Smaller,
            &MaskArena::new(),
        )
        .is_err());
    }

    #[test]
    fn union_dedups_across_inputs() {
        let a = IdxRelation::base("t", 5).select(&[0, 1, 2]);
        let b = IdxRelation::base("t", 5).select(&[2, 3]);
        let u = union_all_dedup(&[a, b], &MaskArena::new()).unwrap();
        assert_eq!(u.len(), 4);
        let mut rows: Vec<u32> = u.col("t").unwrap().to_vec();
        rows.sort_unstable();
        assert_eq!(rows, vec![0, 1, 2, 3]);
    }

    #[test]
    fn union_handles_column_order_permutation() {
        // Build two joined relations with swapped table order.
        let ts = tset();
        let t = IdxRelation::base("t", 5);
        let s = IdxRelation::base("s", 5);
        let lk = ColumnRef::new("t", "id");
        let rk = ColumnRef::new("s", "movie_id");
        let arena = MaskArena::new();
        let ab = hash_join(&ts, &t, &s, &lk, &rk, JoinSide::Smaller, &arena).unwrap();
        let ba = hash_join(&ts, &s, &t, &rk, &lk, JoinSide::Smaller, &arena).unwrap();
        let u = union_all_dedup(&[ab.clone(), ba], &arena).unwrap();
        assert_eq!(u.len(), ab.len(), "identical content dedups fully");
    }

    #[test]
    fn union_rejects_mismatched_tables() {
        let a = IdxRelation::base("t", 3);
        let b = IdxRelation::base("u", 3);
        let arena = MaskArena::new();
        assert!(union_all_dedup(&[a, b], &arena).is_err());
        assert!(union_all_dedup(&[], &arena).is_err());
        assert_eq!(arena.outstanding(), 0, "failed unions leak no buffers");
    }

    /// The open-addressing dedup must agree with the obvious slow path
    /// (`HashSet<Vec<u32>>` in first-occurrence order) on randomized
    /// inputs — duplicate-heavy, multi-column, and with permuted column
    /// order between inputs.
    #[test]
    fn union_dedup_matches_slow_path_on_randomized_inputs() {
        fn xorshift(state: &mut u64) -> u64 {
            *state ^= *state << 13;
            *state ^= *state >> 7;
            *state ^= *state << 17;
            *state
        }

        fn slow_union(inputs: &[IdxRelation]) -> Vec<Vec<u32>> {
            let ref_tables = inputs[0].tables().to_vec();
            let mut seen = std::collections::HashSet::new();
            let mut out = Vec::new();
            for rel in inputs {
                let perm: Vec<usize> = ref_tables
                    .iter()
                    .map(|t| rel.tables().iter().position(|u| u == t).unwrap())
                    .collect();
                for i in 0..rel.len() {
                    let tuple: Vec<u32> = perm.iter().map(|&p| rel.cols()[p][i]).collect();
                    if seen.insert(tuple.clone()) {
                        out.push(tuple);
                    }
                }
            }
            out
        }

        let arena = MaskArena::new();
        let mut state = 0x9e37_79b9_7f4a_7c15;
        for trial in 0..20 {
            // Small value domain → lots of duplicates within and across
            // inputs; varying sizes exercise the power-of-two table.
            let domain = 1 + (xorshift(&mut state) % 40) as u32;
            let make = |state: &mut u64, n: usize, swap: bool| {
                let a: Vec<u32> = (0..n).map(|_| xorshift(state) as u32 % domain).collect();
                let b: Vec<u32> = (0..n).map(|_| xorshift(state) as u32 % domain).collect();
                let (tables, cols) = if swap {
                    (vec!["y".to_string(), "x".to_string()], vec![b, a])
                } else {
                    (vec!["x".to_string(), "y".to_string()], vec![a, b])
                };
                IdxRelation::from_parts(tables, cols.into_iter().map(Arc::new).collect())
            };
            let n1 = (xorshift(&mut state) % 200) as usize;
            let n2 = (xorshift(&mut state) % 200) as usize;
            let inputs = vec![
                make(&mut state, n1, false),
                make(&mut state, n2, trial % 2 == 0),
            ];
            let got = union_all_dedup(&inputs, &arena).unwrap();
            let got_tuples: Vec<Vec<u32>> = (0..got.len()).map(|i| got.tuple(i)).collect();
            assert_eq!(
                got_tuples,
                slow_union(&inputs),
                "trial {trial} (domain {domain}, sizes {n1}/{n2})"
            );
        }
    }

    #[test]
    fn project_materializes_values() {
        let ts = tset();
        let rel = IdxRelation::base("t", 5).select(&[4, 0]);
        let out = project(
            &ts,
            &rel,
            &[ColumnRef::new("t", "id"), ColumnRef::new("t", "year")],
        )
        .unwrap();
        assert_eq!(out[0].1.as_ints().unwrap(), &[5, 1]);
        assert_eq!(out[1].1.as_ints().unwrap(), &[1972, 2008]);
        assert_eq!(project_count(&rel), 2);
    }

    /// End-to-end Query 1 under traditional execution, all predicates
    /// applied after the join (the "no optimization" baseline of §1).
    #[test]
    fn query1_join_then_filter() {
        let ts = tset();
        let joined = hash_join(
            &ts,
            &IdxRelation::base("t", 5),
            &IdxRelation::base("s", 5),
            &ColumnRef::new("t", "id"),
            &ColumnRef::new("s", "movie_id"),
            JoinSide::Smaller,
            &MaskArena::new(),
        )
        .unwrap();
        let q1 = or(vec![
            and(vec![
                col("t", "year").gt(2000i64),
                col("s", "score").gt("7.0"),
            ]),
            and(vec![
                col("t", "year").gt(1980i64),
                col("s", "score").gt("8.0"),
            ]),
        ]);
        let tree = PredicateTree::build(&q1);
        let out = filter(&ts, &joined, &tree, tree.root(), &MaskArena::new()).unwrap();
        // Matches: (1,2008,9.0) via both clauses; (3,1994,9.3) and
        // (4,1994,8.9) via clause 2. Movie 5 (1972) fails both.
        assert_eq!(out.len(), 3);
    }
}
