//! The mutation canary as a test: arm the deliberate
//! retirement-protocol mutation in `basilisk-sched` (collect results
//! before the retirement wait) and assert the explorer catches it
//! within a small seed budget — then assert the same seeds are clean
//! once disarmed. If this test fails, the checker can no longer detect
//! protocol breakage and must not be trusted green.
//!
//! Single `#[test]` on purpose: the canary switch and the check runtime
//! are process-global, so this must not share a process with the
//! corpus test (separate integration-test binaries are separate
//! processes).

#![forbid(unsafe_code)]
#![cfg(basilisk_check)]

use basilisk_check::{quiet_panics, run_corpus, scenarios};
use basilisk_types::sync::check;

#[test]
fn retirement_mutation_is_detected_then_clean_when_disarmed() {
    check::set_stall_millis(2000);
    let region: Vec<_> = scenarios::ALL
        .iter()
        .filter(|s| s.name.starts_with("region"))
        .collect();
    assert_eq!(region.len(), 2, "both region scenarios participate");

    basilisk_sched::canary::set_collect_before_retire(true);
    let armed = quiet_panics(|| run_corpus(&region, 0..64, 1));
    basilisk_sched::canary::set_collect_before_retire(false);
    assert!(
        !armed.findings.is_empty(),
        "explorer missed a deliberate retirement mutation in {} runs",
        armed.runs
    );
    let f = &armed.findings[0];
    assert!(
        f.replay_command().contains(&format!("--seed {}", f.seed)),
        "finding carries its replay seed: {f}"
    );

    let disarmed = quiet_panics(|| run_corpus(&region, 0..8, 1));
    assert!(
        disarmed.is_clean(),
        "disarmed corpus must be clean: {}",
        disarmed.findings[0]
    );
}
