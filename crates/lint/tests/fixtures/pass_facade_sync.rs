// Fixture: façade-only crate doing it right — locks come from
// `basilisk_types::sync`, and non-schedulable `std::sync` types (Arc,
// Barrier) stay allowed.

use basilisk_types::sync::atomic::{AtomicU64, Ordering};
use basilisk_types::sync::{Condvar, Mutex};
use std::sync::{Arc, Barrier};

fn park(m: &Mutex<u32>, cv: &Condvar, n: &AtomicU64) {
    let g = m.lock().unwrap();
    n.fetch_add(1, Ordering::SeqCst);
    let _g = cv.wait(g).unwrap();
}
