//! Property tests for the vectorized 3VL path: `TruthMask` connectives
//! must agree with scalar `Truth` tables on every lane (including tail
//! words), and mask-based predicate evaluation must agree lane-for-lane
//! with the scalar reference evaluator under arbitrary selection bitmaps.

use basilisk_expr::eval::{eval_node, eval_node_mask, MapProvider};
use basilisk_expr::{col, ColumnRef, Expr, PredicateTree};
use basilisk_storage::ColumnBuilder;
use basilisk_types::{Bitmap, DataType, MaskArena, Truth, TruthMask, Value};
use proptest::prelude::*;

thread_local! {
    /// One arena shared across *all* property cases in this file: every
    /// case checks masks out of a pool dirtied by previous cases (other
    /// lengths, other truth patterns), so lane-identity with the scalar
    /// evaluator here proves recycled buffers never leak stale bits.
    static SHARED_ARENA: MaskArena = MaskArena::new();
}

fn truth_strategy() -> impl Strategy<Value = Truth> {
    prop_oneof![Just(Truth::True), Just(Truth::False), Just(Truth::Unknown)]
}

/// Lengths straddle word boundaries on purpose: 1..200 covers 0-, 1-, 2-
/// and 3-word masks plus full-word (64, 128) and off-by-one tails.
fn truth_vec_pair() -> impl Strategy<Value = (Vec<Truth>, Vec<Truth>)> {
    (1usize..200).prop_flat_map(|len| {
        (
            proptest::collection::vec(truth_strategy(), len),
            proptest::collection::vec(truth_strategy(), len),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// AND/OR/NOT agree with the scalar Kleene tables on every lane.
    #[test]
    fn mask_connectives_agree_with_scalar((a, b) in truth_vec_pair()) {
        let (ma, mb) = (TruthMask::from_truths(&a), TruthMask::from_truths(&b));
        prop_assert!(ma.check_disjoint());

        let mut and = ma.clone();
        and.and_with(&mb);
        prop_assert!(and.check_disjoint());
        let mut or = ma.clone();
        or.or_with(&mb);
        prop_assert!(or.check_disjoint());
        let mut not = ma.clone();
        not.negate();
        prop_assert!(not.check_disjoint());

        for i in 0..a.len() {
            prop_assert_eq!(and.get(i), a[i].and(b[i]), "AND lane {}", i);
            prop_assert_eq!(or.get(i), a[i].or(b[i]), "OR lane {}", i);
            prop_assert_eq!(not.get(i), a[i].not(), "NOT lane {}", i);
        }

        // Tail-word masking: counts computed from words must match lanes.
        let trues = a.iter().filter(|&&t| t == Truth::True).count();
        prop_assert_eq!(ma.count_true(), trues);
        prop_assert_eq!(
            ma.count_false() + ma.count_true() + ma.count_unknown(),
            a.len()
        );
        let mut double_neg = ma.clone();
        double_neg.negate();
        double_neg.negate();
        // ¬¬a collapses unknown-free lanes back; unknown lanes survive.
        for (i, &av) in a.iter().enumerate() {
            prop_assert_eq!(double_neg.get(i), av);
        }
    }

    /// Round-trip through the scalar representation is lossless.
    #[test]
    fn mask_roundtrip((a, _b) in truth_vec_pair()) {
        let m = TruthMask::from_truths(&a);
        prop_assert_eq!(m.to_truths(), a);
    }
}

/// Random nullable int data + random predicate trees over it.
fn data_strategy() -> impl Strategy<Value = Vec<(Option<i64>, Option<i64>)>> {
    proptest::collection::vec(
        (
            proptest::option::of(0i64..50),
            proptest::option::of(0i64..50),
        ),
        1..150,
    )
}

fn pred_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..50).prop_map(|v| col("t", "a").lt(v)),
        (0i64..50).prop_map(|v| col("t", "a").gt(v)),
        (0i64..50).prop_map(|v| col("t", "b").ge(v)),
        (0i64..50).prop_map(|v| col("t", "b").eq(v)),
        Just(col("t", "a").is_null()),
        Just(col("t", "b").in_list(vec![Value::Int(1), Value::Int(7), Value::Null])),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::And),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::Or),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

fn provider_for(data: &[(Option<i64>, Option<i64>)]) -> MapProvider {
    let mut a = ColumnBuilder::new(DataType::Int);
    let mut b = ColumnBuilder::new(DataType::Int);
    for (x, y) in data {
        a.push(x.map(Value::Int).unwrap_or(Value::Null)).unwrap();
        b.push(y.map(Value::Int).unwrap_or(Value::Null)).unwrap();
    }
    MapProvider::new(data.len())
        .with(ColumnRef::new("t", "a"), a.finish())
        .with(ColumnRef::new("t", "b"), b.finish())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Vectorized evaluation over a full selection equals the scalar
    /// reference evaluator lane-for-lane.
    #[test]
    fn mask_eval_agrees_with_scalar(data in data_strategy(), pred in pred_strategy()) {
        let tree = PredicateTree::build(&pred);
        let provider = provider_for(&data);
        let scalar = eval_node(&tree, tree.root(), &provider).unwrap();
        let sel = Bitmap::all_set(data.len());
        SHARED_ARENA.with(|arena| {
            let mask = eval_node_mask(&tree, tree.root(), &provider, &sel, arena).unwrap();
            prop_assert!(mask.check_disjoint());
            prop_assert_eq!(mask.to_truths(), scalar, "predicate {}", pred);
            arena.recycle_mask(mask);
        });
    }

    /// Under a partial selection, selected lanes agree with the scalar
    /// evaluator and unselected lanes are False (never leak through NOT).
    #[test]
    fn mask_eval_respects_selection(
        data in data_strategy(),
        pred in pred_strategy(),
        seed in any::<u64>(),
    ) {
        let tree = PredicateTree::build(&pred);
        let provider = provider_for(&data);
        let scalar = eval_node(&tree, tree.root(), &provider).unwrap();
        // Derive a deterministic ~half selection from the seed.
        let sel = Bitmap::from_indices(
            data.len(),
            (0..data.len()).filter(|i| (seed >> (i % 61)) & 1 == 1),
        );
        SHARED_ARENA.with(|arena| {
            let mask = eval_node_mask(&tree, tree.root(), &provider, &sel, arena).unwrap();
            for (i, &expected) in scalar.iter().enumerate() {
                if sel.get(i) {
                    prop_assert_eq!(mask.get(i), expected, "lane {} of {}", i, pred);
                } else {
                    prop_assert_eq!(
                        mask.get(i),
                        Truth::False,
                        "unselected lane {} must stay false",
                        i
                    );
                }
            }
            arena.recycle_mask(mask);
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ISSUE-2 satellite: pooled-buffer evaluation stays lane-identical to
    /// the scalar evaluator *after buffer reuse*. The same query is run
    /// twice through one arena — the second pass is served entirely from
    /// buffers the first pass recycled — and both passes must match the
    /// scalar reference (and each other) on every lane.
    #[test]
    fn pooled_eval_identical_after_reuse(data in data_strategy(), pred in pred_strategy()) {
        let tree = PredicateTree::build(&pred);
        let provider = provider_for(&data);
        let scalar = eval_node(&tree, tree.root(), &provider).unwrap();
        let sel = Bitmap::all_set(data.len());
        let arena = MaskArena::new();

        let first = eval_node_mask(&tree, tree.root(), &provider, &sel, &arena).unwrap();
        let first_truths = first.to_truths();
        arena.recycle_mask(first);
        let warm = arena.stats();

        let second = eval_node_mask(&tree, tree.root(), &provider, &sel, &arena).unwrap();
        prop_assert_eq!(&first_truths, &scalar, "first pass vs scalar for {}", pred);
        prop_assert_eq!(&second.to_truths(), &scalar, "reused-buffer pass for {}", pred);
        let stats = arena.stats();
        prop_assert_eq!(
            stats.masks.fresh, warm.masks.fresh,
            "second evaluation must not allocate new masks"
        );
        arena.recycle_mask(second);
    }
}
