//! The common error type shared by every Basilisk crate.

use std::fmt;
use std::io;

/// Errors produced anywhere in the Basilisk stack.
#[derive(Debug)]
pub enum BasiliskError {
    /// Storage / page cache I/O failures.
    Io(io::Error),
    /// Corrupt or unsupported on-disk data.
    Corrupt(String),
    /// Schema problems: unknown table/column, duplicate names, …
    Schema(String),
    /// Type errors during expression evaluation or loading.
    Type(String),
    /// SQL syntax errors with a byte offset into the input.
    Parse { message: String, offset: usize },
    /// Planner failures (e.g. no join path between referenced tables).
    Plan(String),
    /// Runtime execution failures.
    Exec(String),
}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, BasiliskError>;

impl fmt::Display for BasiliskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BasiliskError::Io(e) => write!(f, "io error: {e}"),
            BasiliskError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            BasiliskError::Schema(m) => write!(f, "schema error: {m}"),
            BasiliskError::Type(m) => write!(f, "type error: {m}"),
            BasiliskError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            BasiliskError::Plan(m) => write!(f, "plan error: {m}"),
            BasiliskError::Exec(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for BasiliskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BasiliskError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for BasiliskError {
    fn from(e: io::Error) -> Self {
        BasiliskError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = BasiliskError::Schema("no such table t".into());
        assert_eq!(e.to_string(), "schema error: no such table t");
        let e = BasiliskError::Parse {
            message: "expected FROM".into(),
            offset: 12,
        };
        assert!(e.to_string().contains("byte 12"));
    }

    #[test]
    fn io_conversion_preserves_source() {
        use std::error::Error;
        let e: BasiliskError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }
}
