//! The seed loop: run a scenario under one perturbation seed, turn
//! panics into replayable findings.

use std::any::Any;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};

use basilisk_types::sync::check;

use crate::scenarios::Scenario;

/// One failed scenario run: the scenario, the seed whose decision
/// stream produced the failure, and the panic message that describes it
/// (a lock-order cycle, a stall, an ownership violation or a protocol
/// assertion inside the scenario itself).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Name of the scenario that failed (see [`crate::scenarios`]).
    pub scenario: &'static str,
    /// The exploration seed to replay.
    pub seed: u64,
    /// The panic message of the failure.
    pub message: String,
}

impl Finding {
    /// The exact command that replays this finding's perturbation
    /// pattern from a clean checkout.
    pub fn replay_command(&self) -> String {
        format!(
            "RUSTFLAGS='--cfg basilisk_check' cargo run --release -p basilisk-check \
             --bin check_model -- --scenario {} --seed {}",
            self.scenario, self.seed
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} seed {}] {}\n  replay: {}",
            self.scenario,
            self.seed,
            self.message,
            self.replay_command()
        )
    }
}

/// What a corpus run covered and what it found.
#[derive(Debug, Default)]
pub struct CorpusReport {
    /// Scenario runs executed (scenarios × seeds, minus any early stop).
    pub runs: u64,
    /// Failures, in discovery order.
    pub findings: Vec<Finding>,
}

impl CorpusReport {
    /// True when every executed run passed.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one scenario under one seed on a freshly reset check runtime.
/// Returns `None` on success, or the failure as a [`Finding`].
pub fn run_seed(scenario: &Scenario, seed: u64) -> Option<Finding> {
    check::reset();
    check::set_seed(seed);
    let result = panic::catch_unwind(AssertUnwindSafe(scenario.run));
    match result {
        Ok(()) => None,
        Err(payload) => Some(Finding {
            scenario: scenario.name,
            seed,
            message: payload_message(payload.as_ref()),
        }),
    }
}

/// Run every scenario under every seed in `seeds`. Stops early once
/// `max_findings` failures have been collected (`0` = never stop
/// early). Seeds iterate in the outer loop so an interrupted run still
/// gives every scenario roughly equal coverage.
pub fn run_corpus(
    scenarios: &[&Scenario],
    seeds: std::ops::Range<u64>,
    max_findings: usize,
) -> CorpusReport {
    let mut report = CorpusReport::default();
    'outer: for seed in seeds {
        for scenario in scenarios {
            report.runs += 1;
            if let Some(finding) = run_seed(scenario, seed) {
                report.findings.push(finding);
                if max_findings != 0 && report.findings.len() >= max_findings {
                    break 'outer;
                }
            }
        }
    }
    report
}

/// Run `f` with the default panic hook silenced, restoring it after.
/// Corpus runs catch every panic and re-render it as a [`Finding`]; the
/// default hook's backtrace spam (one per explored failure, including
/// expected canary trips) would bury the actual report.
pub fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let prev = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let out = f();
    panic::set_hook(prev);
    out
}
