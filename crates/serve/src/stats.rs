//! Serving-loop observability: cache counters, admission-queue depth and
//! a per-query latency histogram.
//!
//! All counters are lock-free atomics updated on the request path and
//! read as a consistent-enough [`ServeStats`] snapshot (individual
//! counters are exact; cross-counter relations like `hits + misses ==
//! statements` hold whenever no request is mid-flight).

// Atomics come from the façade (lint-enforced); every counter update
// is a schedule point in `--cfg basilisk_check` builds.
use basilisk_types::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use basilisk_sched::REGION_WAIT_BUCKETS;
use basilisk_types::{Histogram, HistogramSnapshot, TraceSpan};

/// Number of power-of-two latency buckets: bucket `i` counts queries with
/// latency in `[2^i, 2^(i+1))` microseconds (bucket 0 additionally takes
/// sub-microsecond queries, the last bucket everything slower). Shared
/// with the scheduler's region-wait histogram
/// ([`basilisk_types::HISTOGRAM_BUCKETS`]).
pub const LATENCY_BUCKETS: usize = basilisk_types::HISTOGRAM_BUCKETS;

/// The recorder half: shared by every request, snapshot via
/// [`StatsRecorder::snapshot`].
#[derive(Default)]
pub struct StatsRecorder {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Statements actually parsed + planned (misses and explicit
    /// prepares). The zero-parse/zero-plan property of the hit path is
    /// pinned by asserting this does not move across cached traffic.
    prepared: AtomicU64,
    executed: AtomicU64,
    errors: AtomicU64,
    rejected: AtomicU64,
    queue_depth: AtomicU64,
    queue_high_water: AtomicU64,
    latency: Histogram,
}

impl StatsRecorder {
    pub fn cache_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn cache_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    pub fn evicted(&self, n: u64) {
        if n > 0 {
            self.evictions.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn prepared(&self) {
        self.prepared.fetch_add(1, Ordering::Relaxed);
    }

    pub fn executed(&self, latency: Duration) {
        self.executed.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency);
    }

    /// The latency histogram's read side (the `/v1/metrics` collector
    /// renders it directly).
    pub fn latency_snapshot(&self) -> HistogramSnapshot {
        self.latency.snapshot()
    }

    pub fn error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    pub fn rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// A request entered the admission queue; returns nothing but keeps
    /// the high-water mark exact under concurrency (CAS loop).
    pub fn enqueued(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        let mut high = self.queue_high_water.load(Ordering::Relaxed);
        while depth > high {
            match self.queue_high_water.compare_exchange_weak(
                high,
                depth,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(h) => high = h,
            }
        }
    }

    pub fn dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> ServeStats {
        let latency = self.latency.snapshot();
        ServeStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            cache_evictions: self.evictions.load(Ordering::Relaxed),
            statements_prepared: self.prepared.load(Ordering::Relaxed),
            statements_executed: self.executed.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_high_water: self.queue_high_water.load(Ordering::Relaxed),
            latency_buckets: latency.buckets,
            latency_total_micros: latency.total_micros,
            // Region-occupancy counters live on the shared worker pool
            // and lane counters on the admission gate; `Server::stats`
            // overlays both onto this snapshot.
            parallel_regions: 0,
            region_waits: 0,
            region_wait_total_micros: 0,
            region_wait_buckets: [0; REGION_WAIT_BUCKETS],
            region_slots: 0,
            region_max_concurrent: 0,
            // Zone-map counters live on the execution arenas (contexts
            // and worker arenas); `Server::stats` overlays them too.
            skipped_morsels_total: 0,
            scanned_morsels_total: 0,
            lanes: Vec::new(),
        }
    }
}

/// Per-client admission-lane counters (see the fairness docs on
/// [`crate::Request::client`]): one entry per distinct client tag the
/// server has seen, sorted by tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneStats {
    /// The client tag naming this lane (`""` is the anonymous lane).
    pub client: String,
    /// Requests admitted into the lane (queued; excludes rejections).
    pub admitted: u64,
    /// Requests the DRR dispatcher granted a context.
    pub dispatched: u64,
    /// Requests rejected at admission while targeting this lane.
    pub rejected: u64,
    /// Tickets currently queued in the lane.
    pub depth: u64,
    /// Highest queue depth this lane has seen.
    pub max_depth: u64,
    /// Total microseconds admitted requests spent queued before their
    /// context grant.
    pub wait_total_micros: u64,
}

/// A point-in-time copy of a server's counters (see
/// [`Server::stats`](crate::Server::stats)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests served from the plan cache (no parse, no plan).
    pub cache_hits: u64,
    /// Requests that had to parse + plan (and then populated the cache).
    pub cache_misses: u64,
    /// Cached statements evicted by LRU capacity pressure.
    pub cache_evictions: u64,
    /// Statements parsed + planned (cache misses and explicit prepares).
    pub statements_prepared: u64,
    /// Statements executed to completion.
    pub statements_executed: u64,
    /// Requests that returned an error (after admission).
    pub errors: u64,
    /// Requests rejected at admission (queue full).
    pub rejected: u64,
    /// Requests currently queued or executing.
    pub queue_depth: u64,
    /// Highest simultaneous queue depth observed.
    pub queue_high_water: u64,
    /// Power-of-two microsecond buckets, `buckets[i]` counting latencies
    /// in `[2^i, 2^(i+1))` µs.
    pub latency_buckets: [u64; LATENCY_BUCKETS],
    pub latency_total_micros: u64,
    /// Parallel regions fanned out on the shared pool (inline/serial
    /// executions not counted).
    pub parallel_regions: u64,
    /// Requests whose parallel region had to **wait** for a region-table
    /// slot. With interleaved admission this stays at ~0 until more
    /// regions are in flight than the table holds; a single-slot table
    /// (the exclusive-region baseline) counts every overlapping region
    /// here.
    pub region_waits: u64,
    /// Total microseconds spent in region-slot waits.
    pub region_wait_total_micros: u64,
    /// Power-of-two microsecond buckets of individual region-slot waits.
    pub region_wait_buckets: [u64; REGION_WAIT_BUCKETS],
    /// Size of the pool's region table.
    pub region_slots: u64,
    /// Highest number of simultaneously live parallel regions observed —
    /// the occupancy high-water mark (> 1 proves interleaving happened).
    pub region_max_concurrent: u64,
    /// Atom-morsels whose result the evaluator proved from encoded-column
    /// zone maps alone — whole word ranges filled without touching data.
    pub skipped_morsels_total: u64,
    /// Atom-morsels that consulted zone maps but had to run an encoded
    /// kernel over the payload.
    pub scanned_morsels_total: u64,
    /// Per-client admission-lane counters (sorted by client tag). Lane
    /// relations hold whenever no request is mid-flight:
    /// `sum(dispatched) == statements_executed + post-admission errors`,
    /// `sum(rejected) == rejected`, and every `depth` is zero once the
    /// system drains.
    pub lanes: Vec<LaneStats>,
}

impl ServeStats {
    /// The latency fields re-wrapped as a [`HistogramSnapshot`].
    pub fn latency_histogram(&self) -> HistogramSnapshot {
        HistogramSnapshot::from_parts(self.latency_buckets, self.latency_total_micros)
    }

    /// Total queries recorded in the histogram.
    pub fn latency_count(&self) -> u64 {
        self.latency_histogram().count()
    }

    /// Mean query latency.
    pub fn mean_latency(&self) -> Duration {
        self.latency_histogram().mean()
    }

    /// Mean time a slot-waiting region spent blocked, across the
    /// requests counted by `region_waits`.
    pub fn mean_region_wait(&self) -> Duration {
        if self.region_waits == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.region_wait_total_micros / self.region_waits)
    }

    /// Upper bound of the bucket containing the `q`-quantile (0 < q ≤ 1)
    /// — e.g. `quantile_latency(0.99)` for a p99 estimate.
    pub fn quantile_latency(&self, q: f64) -> Duration {
        self.latency_histogram().quantile(q)
    }
}

/// One retained slow-query record (see
/// [`Server::slow_queries`](crate::Server::slow_queries)): every request
/// whose total latency met the server's slow threshold is summarized
/// here and pushed into the bounded [`SlowLog`](basilisk_types::SlowLog)
/// ring, carrying its full span tree when the request was traced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQuery {
    /// Normalized statement text (literals as `?n` placeholders).
    pub statement: String,
    /// Client tag of the fairness lane the request ran in.
    pub client: String,
    /// Wire name of the request's priority.
    pub priority: &'static str,
    pub row_count: usize,
    pub cache_hit: bool,
    pub queue_wait_micros: u64,
    /// Total serving latency (planning + execution).
    pub total_micros: u64,
    /// The span tree, when the request opted into tracing.
    pub trace: Option<TraceSpan>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_snapshot() {
        let r = StatsRecorder::default();
        r.cache_miss();
        r.prepared();
        r.cache_hit();
        r.cache_hit();
        r.evicted(0);
        r.evicted(2);
        r.error();
        r.rejected();
        let s = r.snapshot();
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_evictions, 2);
        assert_eq!(s.statements_prepared, 1);
        assert_eq!(s.errors, 1);
        assert_eq!(s.rejected, 1);
    }

    #[test]
    fn queue_high_water_tracks_peak() {
        let r = StatsRecorder::default();
        r.enqueued();
        r.enqueued();
        r.enqueued();
        r.dequeued();
        r.enqueued();
        let s = r.snapshot();
        assert_eq!(s.queue_depth, 3);
        assert_eq!(s.queue_high_water, 3, "peak was 3, never 4");
        r.dequeued();
        r.dequeued();
        r.dequeued();
        assert_eq!(r.snapshot().queue_depth, 0);
        assert_eq!(r.snapshot().queue_high_water, 3, "high water is sticky");
    }

    #[test]
    fn latency_buckets_power_of_two() {
        let r = StatsRecorder::default();
        r.executed(Duration::from_micros(0)); // bucket 0
        r.executed(Duration::from_micros(1)); // bucket 0
        r.executed(Duration::from_micros(3)); // [2,4) → bucket 1
        r.executed(Duration::from_micros(1000)); // [512,1024)·µs → bucket 9
        r.executed(Duration::from_secs(4000)); // beyond range → last bucket
        let s = r.snapshot();
        assert_eq!(s.latency_buckets[0], 2);
        assert_eq!(s.latency_buckets[1], 1);
        assert_eq!(s.latency_buckets[9], 1);
        assert_eq!(s.latency_buckets[LATENCY_BUCKETS - 1], 1);
        assert_eq!(s.latency_count(), 5);
        assert!(s.mean_latency() > Duration::ZERO);
        assert!(s.quantile_latency(0.5) <= Duration::from_micros(4));
        assert!(s.quantile_latency(1.0) >= Duration::from_secs(1));
        let empty = StatsRecorder::default().snapshot();
        assert_eq!(empty.mean_latency(), Duration::ZERO);
        assert_eq!(empty.quantile_latency(0.99), Duration::ZERO);
    }
}
