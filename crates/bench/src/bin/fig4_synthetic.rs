//! Figure 4 (a–d): the synthetic parameter sweeps of §5.2.
//!
//! * panel a — predicate selectivity 0.1–0.9 (DNF: BDisj vs TCombined;
//!   CNF: BPushConj vs TCombined).
//! * panel b — table size (CNF primary; the baseline suffers the
//!   quadratic join growth directly).
//! * panel c — number of root clauses 2–7 (DNF), printing TCombined's
//!   total and execution-only runtimes separately (planning grows with
//!   clause count — the TPullup effect the paper reports).
//! * panel d — outer conjunctive factor 0.1–1.0 (CNF), with the sharp jump
//!   when the Zipf head record (T0.id = 1) enters the result.
//!
//! Usage:
//!   fig4_synthetic [--panel a|b|c|d|all] [--rows 10000] [--reps 3]
//!                  [--max-rows 20000] [--seed 1337]

#![forbid(unsafe_code)]

use basilisk::{Catalog, PlannerKind, Query};
use basilisk_bench::{measure, speedup, Args};
use basilisk_workload::{cnf_query, dnf_query, generate_synthetic, SyntheticConfig};

fn build_catalog(rows: usize, seed: u64) -> Catalog {
    let cfg = SyntheticConfig {
        rows,
        num_attrs: 7,
        zipf_shape: 1.5,
        seed,
    };
    let mut catalog = Catalog::new();
    for t in generate_synthetic(&cfg).expect("generate") {
        catalog.add_table(t).expect("register");
    }
    catalog
}

fn main() {
    let args = Args::parse();
    let panel = args.get("--panel").unwrap_or("all").to_string();
    let rows = args.get_usize("--rows", 10_000);
    let reps = args.get_usize("--reps", 3);
    let max_rows = args.get_usize("--max-rows", 20_000);
    let seed = args.get_usize("--seed", 1337) as u64;

    if panel == "a" || panel == "all" {
        panel_a(rows, reps, seed);
    }
    if panel == "b" || panel == "all" {
        panel_b(reps, seed, max_rows);
    }
    if panel == "c" || panel == "all" {
        panel_c(rows, reps, seed);
    }
    if panel == "d" || panel == "all" {
        panel_d(rows, reps, seed);
    }
}

fn run_pair(
    catalog: &Catalog,
    query: &Query,
    baseline: PlannerKind,
    reps: usize,
) -> (f64, f64, f64, usize) {
    let b = measure(catalog, query, baseline, reps).expect("baseline");
    let t = measure(catalog, query, PlannerKind::TCombined, reps).expect("TCombined");
    assert_eq!(b.rows, t.rows, "planners disagree");
    (b.total_secs(), t.total_secs(), speedup(&b, &t), t.rows)
}

fn panel_a(rows: usize, reps: usize, seed: u64) {
    println!("\n== Figure 4a: selectivity sweep ({rows} rows/table) ==");
    let catalog = build_catalog(rows, seed);
    println!(
        "{:>5} {:>6} {:>12} {:>12} {:>9} {:>10}",
        "form", "sel", "base(s)", "TComb(s)", "speedup", "rows"
    );
    for &(form, baseline) in &[("DNF", PlannerKind::BDisj), ("CNF", PlannerKind::BPushConj)] {
        for sel10 in (1..=9).step_by(2) {
            let sel = sel10 as f64 / 10.0;
            let q = if form == "DNF" {
                dnf_query(2, sel, None)
            } else {
                cnf_query(2, sel, None)
            };
            let (b, t, s, n) = run_pair(&catalog, &q, baseline, reps);
            println!(
                "{:>5} {:>6.1} {:>12.3} {:>12.3} {:>9.2} {:>10}",
                form, sel, b, t, s, n
            );
        }
    }
}

fn panel_b(reps: usize, seed: u64, max_rows: usize) {
    println!("\n== Figure 4b: table-size sweep (selectivity 0.2) ==");
    println!(
        "{:>5} {:>7} {:>12} {:>12} {:>9} {:>10}",
        "form", "rows", "base(s)", "TComb(s)", "speedup", "rows_out"
    );
    // The paper sweeps 1k..50k; the default here stops at 20k to stay
    // laptop-friendly (--max-rows raises it; shapes are unchanged).
    for &n in &[1_000usize, 2_000, 5_000, 10_000, 20_000, 50_000] {
        if n > max_rows {
            continue;
        }
        let catalog = build_catalog(n, seed);
        for &(form, baseline) in &[("CNF", PlannerKind::BPushConj), ("DNF", PlannerKind::BDisj)] {
            let q = if form == "DNF" {
                dnf_query(2, 0.2, None)
            } else {
                cnf_query(2, 0.2, None)
            };
            let (b, t, s, out) = run_pair(&catalog, &q, baseline, reps);
            println!(
                "{:>5} {:>7} {:>12.3} {:>12.3} {:>9.2} {:>10}",
                form, n, b, t, s, out
            );
        }
    }
}

fn panel_c(rows: usize, reps: usize, seed: u64) {
    println!("\n== Figure 4c: number of root clauses ({rows} rows/table) ==");
    let catalog = build_catalog(rows, seed);
    println!(
        "{:>5} {:>8} {:>12} {:>14} {:>13} {:>9}",
        "form", "clauses", "base(s)", "TComb-total(s)", "TComb-exec(s)", "speedup"
    );
    for &(form, baseline) in &[("DNF", PlannerKind::BDisj), ("CNF", PlannerKind::BPushConj)] {
        for clauses in 2..=7 {
            let q = if form == "DNF" {
                dnf_query(clauses, 0.2, None)
            } else {
                cnf_query(clauses, 0.2, None)
            };
            let b = measure(&catalog, &q, baseline, reps).expect("baseline");
            let t = measure(&catalog, &q, PlannerKind::TCombined, reps).expect("tagged");
            assert_eq!(b.rows, t.rows);
            println!(
                "{:>5} {:>8} {:>12.3} {:>14.3} {:>13.3} {:>9.2}",
                form,
                clauses,
                b.total_secs(),
                t.total_secs(),
                t.exec_secs(),
                b.total_secs() / t.exec_secs().max(1e-9),
            );
        }
    }
}

fn panel_d(rows: usize, reps: usize, seed: u64) {
    println!("\n== Figure 4d: outer conjunctive factor ({rows} rows/table) ==");
    let catalog = build_catalog(rows, seed);
    println!(
        "{:>5} {:>7} {:>12} {:>12} {:>9} {:>10}",
        "form", "factor", "base(s)", "TComb(s)", "speedup", "rows_out"
    );
    for &(form, baseline) in &[("CNF", PlannerKind::BPushConj), ("DNF", PlannerKind::BDisj)] {
        for f10 in 1..=10 {
            let f = f10 as f64 / 10.0;
            let q = if form == "DNF" {
                dnf_query(2, 0.2, Some(f))
            } else {
                cnf_query(2, 0.2, Some(f))
            };
            let (b, t, s, out) = run_pair(&catalog, &q, baseline, reps);
            println!(
                "{:>5} {:>7.1} {:>12.3} {:>12.3} {:>9.2} {:>10}",
                form, f, b, t, s, out
            );
        }
    }
}
