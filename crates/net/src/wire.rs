//! The JSON bodies of the wire protocol: value codec, result envelope,
//! error envelope, and the HTTP status mapping (see the crate docs for
//! the full format).

use basilisk_serve::{ErrorKind, Response, ServeError};
use basilisk_types::{TraceValue, Value};

use crate::json::Json;

/// Encode one engine [`Value`] losslessly:
///
/// * `Null` / `Bool` / `Str` map to their JSON namesakes;
/// * `Int` is a bare JSON integer (`i64` exact — the parser never
///   detours through `f64`);
/// * finite `Float`s serialize with shortest-round-trip formatting and
///   always carry a `.` or exponent, so `7` (int) and `7.0` (float)
///   stay distinct on the wire;
/// * non-finite `Float`s, which JSON cannot represent, travel as
///   `{"$f": "<16 hex digits>"}` carrying the raw `f64` bits.
pub fn encode_value(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::Int(*i),
        Value::Float(f) if f.is_finite() => Json::Float(*f),
        Value::Float(f) => Json::Object(vec![(
            "$f".to_string(),
            Json::Str(format!("{:016x}", f.to_bits())),
        )]),
        Value::Str(s) => Json::Str(s.clone()),
    }
}

pub fn decode_value(j: &Json) -> Result<Value, String> {
    Ok(match j {
        Json::Null => Value::Null,
        Json::Bool(b) => Value::Bool(*b),
        Json::Int(i) => Value::Int(*i),
        Json::Float(f) => Value::Float(*f),
        Json::Str(s) => Value::Str(s.clone()),
        Json::Object(_) => {
            let bits = j
                .get("$f")
                .and_then(Json::as_str)
                .ok_or("object is not a $f float")?;
            let bits = u64::from_str_radix(bits, 16).map_err(|_| "bad $f bits")?;
            Value::Float(f64::from_bits(bits))
        }
        Json::Array(_) => return Err("array is not a value".into()),
    })
}

/// A deserialized result envelope — the client-side mirror of
/// [`basilisk_serve::Response`] with columns materialized into plain
/// [`Value`] vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResponse {
    /// `(column name, row values)`, in projection order; every vector
    /// has `row_count` entries.
    pub columns: Vec<(String, Vec<Value>)>,
    pub row_count: usize,
    /// The planner that served the request (its stable name).
    pub planner: String,
    /// For combined planners, the winning subplanner's name.
    pub chosen: Option<String>,
    pub cache_hit: bool,
    /// How long admission queued the request server-side.
    pub queue_wait_micros: u64,
    /// The span tree, as parsed JSON, when the request asked for
    /// tracing (`"trace": true`).
    pub trace: Option<Json>,
}

/// Serialize a served [`Response`] into the result envelope.
pub fn encode_response(r: &Response) -> Json {
    let columns = r
        .columns
        .iter()
        .map(|(cref, col)| {
            Json::Object(vec![
                ("name".to_string(), Json::Str(cref.to_string())),
                (
                    "values".to_string(),
                    Json::Array(
                        (0..r.row_count)
                            .map(|i| encode_value(&col.value(i)))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let mut fields = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("row_count".to_string(), Json::Int(r.row_count as i64)),
        ("columns".to_string(), Json::Array(columns)),
        (
            "planner".to_string(),
            Json::Str(r.planner.name().to_string()),
        ),
    ];
    if let Some(chosen) = r.chosen {
        fields.push(("chosen".to_string(), Json::Str(chosen.name().to_string())));
    }
    fields.push(("cache_hit".to_string(), Json::Bool(r.cache_hit)));
    fields.push((
        "queue_wait_micros".to_string(),
        Json::Int(r.queue_wait.as_micros().min(i64::MAX as u128) as i64),
    ));
    if let Some(trace) = &r.trace {
        fields.push(("trace".to_string(), encode_trace(trace)));
    }
    Json::Object(fields)
}

/// Serialize a span tree: `{"name", "start_micros", "duration_micros",
/// "attrs": {…}, "children": […]}` (attrs/children omitted when empty).
pub fn encode_trace(span: &basilisk_types::TraceSpan) -> Json {
    let mut fields = vec![
        ("name".to_string(), Json::Str(span.name.clone())),
        (
            "start_micros".to_string(),
            Json::Int(span.start_micros.min(i64::MAX as u64) as i64),
        ),
        (
            "duration_micros".to_string(),
            Json::Int(span.duration_micros.min(i64::MAX as u64) as i64),
        ),
    ];
    if !span.attrs.is_empty() {
        let attrs = span
            .attrs
            .iter()
            .map(|(k, v)| {
                let v = match v {
                    TraceValue::Int(i) => Json::Int(*i),
                    TraceValue::Str(s) => Json::Str(s.clone()),
                };
                (k.clone(), v)
            })
            .collect();
        fields.push(("attrs".to_string(), Json::Object(attrs)));
    }
    if !span.children.is_empty() {
        let children = span.children.iter().map(encode_trace).collect();
        fields.push(("children".to_string(), Json::Array(children)));
    }
    Json::Object(fields)
}

pub fn parse_response(j: &Json) -> Result<WireResponse, String> {
    if j.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err("not a success envelope".into());
    }
    let row_count = j
        .get("row_count")
        .and_then(Json::as_u64)
        .ok_or("missing row_count")? as usize;
    let mut columns = Vec::new();
    for col in j
        .get("columns")
        .and_then(Json::as_array)
        .ok_or("missing columns")?
    {
        let name = col
            .get("name")
            .and_then(Json::as_str)
            .ok_or("column missing name")?
            .to_string();
        let values = col
            .get("values")
            .and_then(Json::as_array)
            .ok_or("column missing values")?;
        if values.len() != row_count {
            return Err(format!(
                "column {name}: {} values for {row_count} rows",
                values.len()
            ));
        }
        let values = values
            .iter()
            .map(decode_value)
            .collect::<Result<Vec<_>, _>>()?;
        columns.push((name, values));
    }
    Ok(WireResponse {
        columns,
        row_count,
        planner: j
            .get("planner")
            .and_then(Json::as_str)
            .ok_or("missing planner")?
            .to_string(),
        chosen: j.get("chosen").and_then(Json::as_str).map(str::to_string),
        cache_hit: j
            .get("cache_hit")
            .and_then(Json::as_bool)
            .ok_or("missing cache_hit")?,
        queue_wait_micros: j
            .get("queue_wait_micros")
            .and_then(Json::as_u64)
            .ok_or("missing queue_wait_micros")?,
        trace: j.get("trace").cloned(),
    })
}

/// Serialize a [`ServeError`] into the error envelope. Optional fields
/// (`offset`, `in_flight`, `queue_depth`) are omitted when absent, never
/// null.
pub fn encode_error(e: &ServeError) -> Json {
    let mut fields = vec![
        ("kind".to_string(), Json::Str(e.kind.as_str().to_string())),
        ("message".to_string(), Json::Str(e.message.clone())),
        ("retryable".to_string(), Json::Bool(e.retryable)),
    ];
    if let Some(offset) = e.offset {
        fields.push(("offset".to_string(), Json::Int(offset as i64)));
    }
    if let Some(n) = e.in_flight {
        fields.push(("in_flight".to_string(), Json::Int(n as i64)));
    }
    if let Some(n) = e.queue_depth {
        fields.push(("queue_depth".to_string(), Json::Int(n as i64)));
    }
    Json::Object(vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Object(fields)),
    ])
}

pub fn parse_error(j: &Json) -> Result<ServeError, String> {
    if j.get("ok").and_then(Json::as_bool) != Some(false) {
        return Err("not an error envelope".into());
    }
    let e = j.get("error").ok_or("missing error object")?;
    let kind = e
        .get("kind")
        .and_then(Json::as_str)
        .and_then(ErrorKind::parse)
        .ok_or("missing or unknown error kind")?;
    Ok(ServeError {
        kind,
        message: e
            .get("message")
            .and_then(Json::as_str)
            .ok_or("missing message")?
            .to_string(),
        retryable: e
            .get("retryable")
            .and_then(Json::as_bool)
            .ok_or("missing retryable")?,
        offset: e.get("offset").and_then(Json::as_u64).map(|n| n as usize),
        in_flight: e
            .get("in_flight")
            .and_then(Json::as_u64)
            .map(|n| n as usize),
        queue_depth: e
            .get("queue_depth")
            .and_then(Json::as_u64)
            .map(|n| n as usize),
    })
}

/// HTTP status for a serving error: overload is `503` (the listener adds
/// `Retry-After`), anything the client can fix is `400`, engine-side
/// failures are `500`.
pub fn status_for(e: &ServeError) -> (u16, &'static str) {
    match e.kind {
        ErrorKind::Busy => (503, "Service Unavailable"),
        ErrorKind::Parse
        | ErrorKind::Plan
        | ErrorKind::Type
        | ErrorKind::Schema
        | ErrorKind::Protocol => (400, "Bad Request"),
        ErrorKind::Io | ErrorKind::Corrupt | ErrorKind::Exec => (500, "Internal Server Error"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_roundtrip_bit_for_bit() {
        let values = vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(i64::MIN),
            Value::Int((1 << 53) + 1),
            Value::Float(0.1),
            Value::Float(-0.0),
            Value::Float(f64::NAN),
            Value::Float(f64::INFINITY),
            Value::Float(f64::NEG_INFINITY),
            Value::Str("x \" \\ \n 端".into()),
        ];
        for v in values {
            let wire = encode_value(&v).to_string();
            let back = decode_value(&Json::parse(&wire).unwrap()).unwrap();
            match (&v, &back) {
                (Value::Float(a), Value::Float(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits(), "{v:?} → {wire}")
                }
                _ => assert_eq!(v, back, "{wire}"),
            }
        }
    }

    #[test]
    fn error_envelope_roundtrips() {
        let e = ServeError {
            kind: ErrorKind::Busy,
            message: String::new(),
            retryable: true,
            offset: None,
            in_flight: Some(3),
            queue_depth: Some(12),
        };
        let wire = encode_error(&e).to_string();
        let back = parse_error(&Json::parse(&wire).unwrap()).unwrap();
        assert_eq!(back, e);
        assert_eq!(status_for(&back), (503, "Service Unavailable"));
    }

    #[test]
    fn status_classes() {
        let mk = |kind| ServeError {
            kind,
            message: "m".into(),
            retryable: false,
            offset: None,
            in_flight: None,
            queue_depth: None,
        };
        assert_eq!(status_for(&mk(ErrorKind::Parse)).0, 400);
        assert_eq!(status_for(&mk(ErrorKind::Protocol)).0, 400);
        assert_eq!(status_for(&mk(ErrorKind::Exec)).0, 500);
        assert_eq!(status_for(&mk(ErrorKind::Io)).0, 500);
        assert_eq!(status_for(&mk(ErrorKind::Busy)).0, 503);
    }

    #[test]
    fn envelopes_reject_mismatches() {
        assert!(parse_response(&Json::parse(r#"{"ok":false}"#).unwrap()).is_err());
        assert!(parse_error(&Json::parse(r#"{"ok":true}"#).unwrap()).is_err());
        assert!(parse_error(
            &Json::parse(r#"{"ok":false,"error":{"kind":"weird","message":"","retryable":false}}"#)
                .unwrap()
        )
        .is_err());
        // Row-count mismatch against column lengths is detected.
        let bad = r#"{"ok":true,"row_count":2,"columns":[{"name":"c","values":[1]}],
                      "planner":"x","cache_hit":false,"queue_wait_micros":0}"#;
        assert!(parse_response(&Json::parse(bad).unwrap()).is_err());
    }
}
