//! A persistent-capacity open-addressing slot table.
//!
//! `union_all_dedup` probes each incoming tuple against the tuples it has
//! already emitted. Its slot array used to be rebuilt per union: a pooled
//! `Vec<u32>` resized and **refilled with the empty sentinel** every call
//! — an O(capacity) memset even when the pool already held a big-enough
//! buffer. [`SlotTable`] keeps the capacity *and* skips the clear: every
//! slot stores a generation stamp next to its payload, and
//! [`SlotTable::begin`] simply bumps the current generation — slots
//! written by earlier unions become logically empty in O(1). The table is
//! pooled in [`MaskArena`](crate::MaskArena) (checkout →
//! [`begin`](SlotTable::begin) → probe/insert → recycle), so repeated
//! unions over similar cardinalities reuse one allocation, mirroring how
//! the join side retains its build-table capacity.
//!
//! The table stores `u32` payloads only (output row ids in the union's
//! case); key equality is the caller's job — it probes with
//! [`get`](SlotTable::get), compares the candidate against its own data,
//! and either stops (duplicate) or advances to the next slot (linear
//! probing with [`mask`](SlotTable::mask)).

/// Generation-stamped open-addressing slot array (see module docs).
#[derive(Default)]
pub struct SlotTable {
    /// `(generation << 32) | payload`; a slot is empty unless its stamped
    /// generation equals the current one.
    slots: Vec<u64>,
    gen: u32,
    mask: usize,
}

impl SlotTable {
    pub fn new() -> SlotTable {
        SlotTable::default()
    }

    /// Start a new probing session able to hold `entries` distinct values
    /// at ≤ 50% load. Grows (and then keeps) the slot array as needed;
    /// when the capacity already suffices this is O(1) — a generation
    /// bump, no clearing.
    pub fn begin(&mut self, entries: usize) {
        let want = (2 * entries + 1).next_power_of_two().max(16);
        if want > self.slots.len() {
            self.slots.clear();
            self.slots.resize(want, 0);
            self.gen = 1;
        } else {
            self.gen = self.gen.wrapping_add(1);
            if self.gen == 0 {
                // Generation wrapped: stale stamps could collide. Clear
                // once every 2^32 sessions — effectively never.
                self.slots.fill(0);
                self.gen = 1;
            }
        }
        self.mask = self.slots.len() - 1;
    }

    /// Bitmask for reducing a hash to a slot index (`hash & mask()`), and
    /// for linear-probe wraparound (`(slot + 1) & mask()`).
    #[inline]
    pub fn mask(&self) -> usize {
        self.mask
    }

    /// The payload at `slot`, or `None` when the slot is empty in the
    /// current session.
    #[inline]
    pub fn get(&self, slot: usize) -> Option<u32> {
        let e = self.slots[slot];
        if (e >> 32) as u32 == self.gen {
            Some(e as u32)
        } else {
            None
        }
    }

    /// Store `value` at `slot` for the current session.
    #[inline]
    pub fn set(&mut self, slot: usize, value: u32) {
        self.slots[slot] = ((self.gen as u64) << 32) | value as u64;
    }

    /// Current slot-array capacity (a power of two once `begin` ran).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_empties_without_clearing() {
        let mut t = SlotTable::new();
        t.begin(10);
        let cap = t.capacity();
        assert!(cap >= 21 && cap.is_power_of_two());
        t.set(3, 99);
        assert_eq!(t.get(3), Some(99));
        assert_eq!(t.get(4), None);
        // New session, same capacity: old entries are gone.
        t.begin(10);
        assert_eq!(t.capacity(), cap, "capacity persists");
        assert_eq!(t.get(3), None, "generation bump empties the table");
        t.set(3, 7);
        assert_eq!(t.get(3), Some(7));
    }

    #[test]
    fn grows_when_needed_and_keeps_larger_capacity() {
        let mut t = SlotTable::new();
        t.begin(4);
        let small = t.capacity();
        t.begin(1000);
        let big = t.capacity();
        assert!(big > small);
        // A smaller session keeps the big array (persistent capacity).
        t.begin(4);
        assert_eq!(t.capacity(), big);
    }

    #[test]
    fn payload_range() {
        let mut t = SlotTable::new();
        t.begin(2);
        t.set(0, u32::MAX);
        assert_eq!(t.get(0), Some(u32::MAX), "whole u32 payload range works");
    }

    #[test]
    fn generation_wrap_clears() {
        let mut t = SlotTable::new();
        t.begin(2);
        t.set(1, 5);
        // Force the wrap path.
        t.gen = u32::MAX;
        t.set(2, 6);
        t.begin(2);
        assert_eq!(t.get(1), None);
        assert_eq!(t.get(2), None);
        t.set(2, 8);
        assert_eq!(t.get(2), Some(8));
    }
}
