//! The resident server: one shared worker pool, a pool of reusable
//! execution contexts, a bounded FIFO admission gate and the plan cache.
//!
//! # Request lifecycle
//!
//! ```text
//! client thread ──► admission gate ──► context checkout ──► bind params
//!        ──► congruence guard ──► execute cached plan ──► project/limit
//!        ──► context return (sweep) ──► ServeResult
//! ```
//!
//! * **Admission** is a bounded FIFO: at most `queue_limit` requests may
//!   be in the system (queued + executing); the rest are rejected
//!   immediately with an `Exec` error so clients can back off. Waiting
//!   requests are granted contexts strictly in arrival order (ticket
//!   numbers), so no request starves.
//! * **Contexts** ([`ExecContext`]) carry a warm session arena and a
//!   handle to the server's one [`WorkerPool`]. A context serves one
//!   request at a time and is swept on return, so arena steady state
//!   holds *across statements*: repeated traffic of cached shapes
//!   allocates nothing once each context's pools are warm.
//! * **The plan cache** keys on normalized statement text (literals →
//!   `?n`); hits bind fresh literal values into the cached template and
//!   re-drive the cached plan — zero parse, zero plan. A congruence
//!   guard re-plans the rare binding whose literal values change the
//!   predicate DAG itself (see
//!   [`PredicateTree::congruent_modulo_values`]).

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use basilisk_catalog::{Catalog, Estimator};
use basilisk_expr::{ColumnRef, PredicateTree};
use basilisk_plan::{
    ExecContext, Plan, PlanTimings, PlannerKind, Query, QueryOutput, QuerySession,
};
use basilisk_sched::WorkerPool;
use basilisk_sql::{bind_params, normalize_select, Projection};
use basilisk_storage::Column;
use basilisk_types::{BasiliskError, Result, Value};

use crate::cache::{PlanCache, Prepared, PreparedStatement};
use crate::stats::{ServeStats, StatsRecorder};

/// Server sizing knobs. `Default` targets a small interactive server;
/// the serving benchmark and the soak suite size explicitly.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of reusable execution contexts = maximum concurrently
    /// *executing* requests.
    pub contexts: usize,
    /// Maximum requests in the system (queued + executing) before
    /// admission rejects.
    pub queue_limit: usize,
    /// Plan-cache capacity (distinct statement shapes × planner kinds).
    pub cache_capacity: usize,
    /// Workers in the shared pool; `None` = the engine default
    /// (`BASILISK_THREADS`, else available parallelism).
    pub workers: Option<usize>,
    /// Morsel granularity override for the shared pool.
    pub morsel_rows: Option<usize>,
    /// Region-table size override for the shared pool; `None` = the
    /// scheduler default
    /// ([`DEFAULT_REGION_SLOTS`](basilisk_sched::DEFAULT_REGION_SLOTS)).
    /// `Some(1)` restores exclusive-region admission (one parallel
    /// region at a time) — the interleaving benchmark's baseline.
    pub region_slots: Option<usize>,
    /// Planner used by [`Server::sql`] / [`Server::prepare`].
    pub default_planner: PlannerKind,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            contexts: 4,
            queue_limit: 256,
            cache_capacity: 256,
            workers: None,
            morsel_rows: None,
            region_slots: None,
            default_planner: PlannerKind::TCombined,
        }
    }
}

/// Materialized projection columns of one response.
type OutputColumns = Vec<(ColumnRef, Arc<Column>)>;

/// A served query result: materialized projection columns plus
/// planner/cache/timing metadata. Columns are `Arc`-shared with the
/// producing context's pools and are reclaimed once the result is
/// dropped (on a later sweep of that context).
pub struct ServeResult {
    pub columns: OutputColumns,
    pub row_count: usize,
    /// The planner that was requested.
    pub planner: PlannerKind,
    /// For TCombined, the winning subplanner.
    pub chosen: Option<PlannerKind>,
    /// On cache hits, `planning` is the bind time.
    pub timings: PlanTimings,
    /// Whether this request was served from the plan cache.
    pub cache_hit: bool,
}

struct GateState {
    free: Vec<ExecContext>,
    next_ticket: u64,
    now_serving: u64,
    in_system: usize,
}

/// Bounded FIFO admission + context checkout (see the module docs).
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
    queue_limit: usize,
}

impl Gate {
    fn new(contexts: Vec<ExecContext>, queue_limit: usize) -> Gate {
        Gate {
            state: Mutex::new(GateState {
                free: contexts,
                next_ticket: 0,
                now_serving: 0,
                in_system: 0,
            }),
            cv: Condvar::new(),
            queue_limit: queue_limit.max(1),
        }
    }

    fn acquire(&self, stats: &StatsRecorder) -> Result<ExecContext> {
        let mut st = self.state.lock().unwrap();
        if st.in_system >= self.queue_limit {
            stats.rejected();
            return Err(BasiliskError::Exec(format!(
                "server busy: admission queue full ({} in flight)",
                st.in_system
            )));
        }
        st.in_system += 1;
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        stats.enqueued();
        // Strict FIFO: a context is granted only to the oldest waiter.
        while st.now_serving != ticket || st.free.is_empty() {
            st = self.cv.wait(st).unwrap();
        }
        st.now_serving += 1;
        let ctx = st.free.pop().expect("guarded by the wait condition");
        // Wake the next ticket (it may be runnable if more contexts are
        // free).
        self.cv.notify_all();
        Ok(ctx)
    }

    fn release(&self, ctx: ExecContext, stats: &StatsRecorder) {
        // Reclaim everything the finished request no longer references
        // before the context goes back on the shelf.
        ctx.sweep();
        let mut st = self.state.lock().unwrap();
        st.free.push(ctx);
        st.in_system -= 1;
        stats.dequeued();
        self.cv.notify_all();
    }

    fn with_free<R>(&self, f: impl FnMut(&ExecContext) -> R) -> Vec<R> {
        self.state.lock().unwrap().free.iter().map(f).collect()
    }
}

/// A resident Basilisk server (see the module and crate docs).
///
/// `Server` is `Send + Sync`: share one behind an `Arc` across any
/// number of client threads and call [`Server::sql`] /
/// [`Server::execute_prepared`] concurrently.
pub struct Server {
    catalog: Catalog,
    pool: Arc<WorkerPool>,
    gate: Gate,
    cache: PlanCache,
    stats: StatsRecorder,
    default_planner: PlannerKind,
}

impl Server {
    /// Build a server over a catalog snapshot.
    pub fn new(catalog: Catalog, config: ServerConfig) -> Server {
        let workers = config.workers.unwrap_or_else(WorkerPool::default_workers);
        let mut pool = WorkerPool::new(workers);
        if let Some(rows) = config.morsel_rows {
            pool = pool.with_morsel_rows(rows);
        }
        if let Some(slots) = config.region_slots {
            pool = pool.with_region_slots(slots);
        }
        let pool = Arc::new(pool);
        let contexts: Vec<ExecContext> = (0..config.contexts.max(1))
            .map(|_| ExecContext::with_pool(Arc::clone(&pool)))
            .collect();
        Server {
            catalog,
            pool: Arc::clone(&pool),
            gate: Gate::new(contexts, config.queue_limit),
            cache: PlanCache::new(config.cache_capacity),
            stats: StatsRecorder::default(),
            default_planner: config.default_planner,
        }
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The shared worker pool (per-worker arenas included).
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    pub fn default_planner(&self) -> PlannerKind {
        self.default_planner
    }

    /// Counter snapshot (cache hits/misses/evictions, queue high-water,
    /// latency histogram), overlaid with the shared pool's
    /// region-occupancy counters (regions fanned out, slot waits and
    /// their µs histogram, concurrency high-water).
    pub fn stats(&self) -> ServeStats {
        let mut s = self.stats.snapshot();
        let r = self.pool.region_stats();
        s.parallel_regions = r.regions;
        s.region_waits = r.waits;
        s.region_wait_total_micros = r.wait_total_micros;
        s.region_wait_buckets = r.wait_buckets;
        s.region_slots = r.slots;
        s.region_max_concurrent = r.max_concurrent;
        s
    }

    /// Number of statement shapes currently cached.
    pub fn cached_statements(&self) -> usize {
        self.cache.cached_statements()
    }

    /// Sweep every idle context (reclaiming buffers of dropped results)
    /// and return the total count of still-outstanding pooled buffers
    /// across idle-context arenas and the shared pool's worker arenas.
    /// With no request in flight and every result dropped, this is zero
    /// — the leak-test invariant.
    pub fn outstanding(&self) -> usize {
        let per_ctx: usize = self
            .gate
            .with_free(|ctx| {
                ctx.sweep();
                ctx.arena().outstanding()
            })
            .into_iter()
            .sum();
        per_ctx + self.pool.outstanding()
    }

    /// Run a SQL statement with the default planner.
    pub fn sql(&self, sql: &str) -> Result<ServeResult> {
        self.sql_with(sql, self.default_planner)
    }

    /// Run a SQL statement with an explicit planner, through the plan
    /// cache: byte-identical repeats skip even lexing; same-shape
    /// statements with different literals skip parsing and planning and
    /// just bind.
    pub fn sql_with(&self, sql: &str, planner: PlannerKind) -> Result<ServeResult> {
        // Level 1: exact text. The parameters were extracted when this
        // text first came through, so the hot path is bind + execute.
        if let Some((stmt, params)) = self.cache.get_text(planner, sql) {
            self.stats.cache_hit();
            return self.run_statement(&stmt, &params, true);
        }
        // Level 2: normalized shape.
        let normalized = normalize_select(sql).inspect_err(|_| self.stats.error())?;
        if let Some(stmt) = self.cache.get_statement(planner, &normalized.key) {
            self.stats.cache_hit();
            let params = Arc::new(normalized.params);
            self.cache
                .put_text(planner, sql, &stmt, Arc::clone(&params));
            return self.run_statement(&stmt, &params, true);
        }
        // Miss: plan, cache, execute.
        self.stats.cache_miss();
        let params = Arc::new(normalized.params);
        let stmt = self
            .plan_statement(normalized.key, params.len(), normalized.stmt, planner)
            .inspect_err(|_| self.stats.error())?;
        self.stats.evicted(self.cache.put_statement(&stmt));
        self.cache
            .put_text(planner, sql, &stmt, Arc::clone(&params));
        self.run_statement(&stmt, &params, false)
    }

    /// Parse, normalize and plan `sql`, returning a reusable handle.
    /// Re-preparing an already-cached shape is a cache hit and does no
    /// planning.
    pub fn prepare(&self, sql: &str) -> Result<Prepared> {
        self.prepare_with(sql, self.default_planner)
    }

    pub fn prepare_with(&self, sql: &str, planner: PlannerKind) -> Result<Prepared> {
        let normalized = normalize_select(sql).inspect_err(|_| self.stats.error())?;
        if let Some(inner) = self.cache.get_statement(planner, &normalized.key) {
            self.stats.cache_hit();
            return Ok(Prepared { inner });
        }
        self.stats.cache_miss();
        let inner = self
            .plan_statement(
                normalized.key,
                normalized.params.len(),
                normalized.stmt,
                planner,
            )
            .inspect_err(|_| self.stats.error())?;
        self.stats.evicted(self.cache.put_statement(&inner));
        Ok(Prepared { inner })
    }

    /// Execute a prepared statement with fresh parameter values — never
    /// parses, and re-plans only if the binding changes the predicate's
    /// DAG (value-coincidence; see the module docs).
    pub fn execute_prepared(&self, prepared: &Prepared, params: &[Value]) -> Result<ServeResult> {
        if params.len() != prepared.inner.param_count {
            self.stats.error();
            return Err(BasiliskError::Plan(format!(
                "statement takes {} parameter(s), {} supplied",
                prepared.inner.param_count,
                params.len()
            )));
        }
        self.run_statement(&prepared.inner, params, true)
    }

    /// Full parse-and-plan of one statement shape (the cache-miss path).
    fn plan_statement(
        &self,
        key: String,
        param_count: usize,
        parsed: basilisk_sql::SelectStmt,
        planner: PlannerKind,
    ) -> Result<Arc<PreparedStatement>> {
        self.stats.prepared();
        let limit = parsed.limit;
        let star = matches!(parsed.projection, Projection::Star);
        let is_count = matches!(parsed.projection, Projection::Count);
        let mut query = parsed.into_query();
        if star {
            let mut cols = Vec::new();
            for (alias, table_name) in &query.aliases {
                let table = self.catalog.table(table_name)?;
                for name in table.column_names() {
                    cols.push(ColumnRef::new(alias.clone(), name));
                }
            }
            query.projection = cols;
        }
        // Plan on a throwaway serial context: planning never executes,
        // so it needs no workers and warms no arena.
        let session = QuerySession::new(&self.catalog, query)?.with_context(ExecContext::new(1));
        let plan = session.plan(planner)?;
        Ok(Arc::new(PreparedStatement {
            key,
            query: session.query().clone(),
            tree: session.tree().cloned(),
            param_count,
            chosen: plan.chosen_planner(),
            plan,
            planner,
            tables: session.tables().clone(),
            three_valued: session.three_valued(),
            limit,
            is_count,
        }))
    }

    /// Bind, admit, execute, materialize, release.
    fn run_statement(
        &self,
        stmt: &Arc<PreparedStatement>,
        params: &[Value],
        cache_hit: bool,
    ) -> Result<ServeResult> {
        let t_bind = Instant::now();
        let mut query = stmt.query.clone();
        if stmt.param_count > 0 {
            let template = query
                .predicate
                .as_ref()
                .expect("parameters imply a predicate");
            query.predicate = Some(bind_params(template, params).inspect_err(|_| {
                self.stats.error();
            })?);
        }
        // Two reasons the cached plan may not be reusable for this
        // binding, both rare and both re-planned on the spot:
        //  * congruence — the plan addresses the prepare-time predicate
        //    DAG by node id, and a binding whose values collapse or
        //    split nodes changes the DAG;
        //  * NULL upgrade — a NULL bound into a statement planned
        //    two-valued makes its atom evaluate to unknown on every
        //    row, which only three-valued tag maps handle (the re-plan
        //    detects the NULL literal and builds them).
        let bound_tree = query.predicate.as_ref().map(PredicateTree::build);
        let congruent = match (&stmt.tree, &bound_tree) {
            (None, None) => true,
            (Some(a), Some(b)) => a.congruent_modulo_values(b),
            _ => false,
        };
        let null_upgrade = !stmt.three_valued && params.iter().any(|v| matches!(v, Value::Null));
        let reusable = congruent && !null_upgrade;
        let bind_time = t_bind.elapsed();

        let ctx = self.gate.acquire(&self.stats)?;
        let (ctx, result) = self.execute_on_context(stmt, query, reusable, bind_time, ctx);
        self.gate.release(ctx, &self.stats);
        match result {
            Ok(mut r) => {
                r.cache_hit = cache_hit && reusable;
                self.stats.executed(r.timings.total());
                Ok(r)
            }
            Err(e) => {
                self.stats.error();
                Err(e)
            }
        }
    }

    /// The context-holding span of a request. Always returns the context
    /// (error paths included) so the gate never leaks capacity.
    fn execute_on_context(
        &self,
        stmt: &PreparedStatement,
        query: Query,
        reusable: bool,
        bind_time: Duration,
        ctx: ExecContext,
    ) -> (ExecContext, Result<ServeResult>) {
        // Build the session without surrendering the context on failure.
        let (session, plan, planning) = if reusable {
            let est = match Estimator::new(&self.catalog, &query.aliases) {
                Ok(e) => e,
                Err(e) => return (ctx, Err(e)),
            };
            let session =
                QuerySession::prepared(est, query, stmt.tables.clone(), stmt.three_valued, ctx);
            (session, None, bind_time)
        } else {
            // The binding invalidated the cached plan (value-coincident
            // DAG change, or a NULL requiring three-valued maps):
            // re-plan this execution from scratch on the checked-out
            // context (`QuerySession::new` re-derives the three-valued
            // flag from the bound predicate, NULL literals included).
            let t0 = Instant::now();
            self.stats.prepared();
            let session = match QuerySession::new(&self.catalog, query) {
                Ok(s) => s,
                Err(e) => return (ctx, Err(e)),
            };
            let session = session.with_context(ctx);
            match session.plan(stmt.planner) {
                Ok(p) => (session, Some(p), bind_time + t0.elapsed()),
                Err(e) => return (session.into_context(), Err(e)),
            }
        };
        let plan: &Plan = plan.as_ref().unwrap_or(&stmt.plan);

        let t1 = Instant::now();
        let result = (|| -> Result<ServeResult> {
            let output = session.execute(plan)?;
            let execution = t1.elapsed();
            let (columns, row_count) =
                self.materialize(&session, &output, stmt.limit, stmt.is_count)?;
            Ok(ServeResult {
                columns,
                row_count,
                planner: stmt.planner,
                chosen: stmt.chosen,
                timings: PlanTimings {
                    planning,
                    execution,
                },
                cache_hit: false, // set by the caller
            })
        })();
        (session.into_context(), result)
    }

    /// Shared lowering of an executed output: `COUNT(*)`, projection and
    /// `LIMIT`.
    fn materialize(
        &self,
        session: &QuerySession,
        output: &QueryOutput,
        limit: Option<usize>,
        is_count: bool,
    ) -> Result<(OutputColumns, usize)> {
        let full_count = output.count();
        if is_count {
            // COUNT(*): one row, one synthetic column (LIMIT 0 still
            // yields the count row, matching SQL aggregates).
            return Ok((
                vec![(
                    ColumnRef::new("", "count(*)"),
                    Arc::new(Column::from_ints(vec![full_count as i64])),
                )],
                1,
            ));
        }
        let mut columns = session.project(output)?;
        let mut row_count = full_count;
        if let Some(l) = limit {
            if l < row_count {
                let keep: Vec<u32> = (0..l as u32).collect();
                for (_, col) in &mut columns {
                    *col = Arc::new(col.gather(&keep));
                }
                row_count = l;
            }
        }
        Ok((columns, row_count))
    }
}

// One server, many client threads: keep the property pinned.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Server>();
    assert_send_sync::<Prepared>();
};
