//! The LFU page cache (§5 "System").
//!
//! The paper sits an LFU (least-frequently-used) page cache between the
//! execution engine and the disk. This is a classic O(1) LFU: pages live in
//! frequency buckets; on access a page moves to the next bucket; eviction
//! removes an arbitrary page from the lowest non-empty bucket (FIFO within
//! the bucket via an ordered map of insertion stamps).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use std::sync::Mutex;

/// Identifies one page of one column file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageKey {
    /// Registered file id (assigned by the table that owns the file).
    pub file_id: u64,
    /// Zero-based data page number within the file.
    pub page_no: u32,
}

/// Hit/miss/eviction counters, cheap to copy out for tests and benches.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

struct Entry {
    page: Arc<Vec<u8>>,
    freq: u64,
    stamp: u64,
}

struct Inner {
    capacity: usize,
    map: HashMap<PageKey, Entry>,
    /// freq -> (stamp -> key); the eviction order book.
    buckets: BTreeMap<u64, BTreeMap<u64, PageKey>>,
    next_stamp: u64,
    stats: CacheStats,
}

/// A thread-safe LFU cache of fixed-size pages.
pub struct LfuPageCache {
    inner: Mutex<Inner>,
}

impl LfuPageCache {
    /// `capacity` is the maximum number of cached pages (must be ≥ 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "page cache capacity must be at least 1");
        LfuPageCache {
            inner: Mutex::new(Inner {
                capacity,
                map: HashMap::with_capacity(capacity),
                buckets: BTreeMap::new(),
                next_stamp: 0,
                stats: CacheStats::default(),
            }),
        }
    }

    /// Fetch a page, loading it through `load` on a miss. The load runs
    /// under the lock: the cache is an I/O serialization point exactly like
    /// the single-disk setup the paper benchmarks on.
    pub fn get_or_load<E>(
        &self,
        key: PageKey,
        load: impl FnOnce() -> Result<Vec<u8>, E>,
    ) -> Result<Arc<Vec<u8>>, E> {
        let mut inner = self.inner.lock().expect("page cache lock poisoned");
        if inner.map.contains_key(&key) {
            inner.stats.hits += 1;
            inner.touch(key);
            return Ok(Arc::clone(&inner.map[&key].page));
        }
        inner.stats.misses += 1;
        let page = Arc::new(load()?);
        inner.insert(key, Arc::clone(&page));
        Ok(page)
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("page cache lock poisoned").stats
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("page cache lock poisoned")
            .map
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached page (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("page cache lock poisoned");
        inner.map.clear();
        inner.buckets.clear();
    }

    /// The access frequency of a resident page, if present (test hook).
    pub fn frequency_of(&self, key: PageKey) -> Option<u64> {
        self.inner
            .lock()
            .expect("page cache lock poisoned")
            .map
            .get(&key)
            .map(|e| e.freq)
    }
}

impl Inner {
    fn touch(&mut self, key: PageKey) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        let entry = self.map.get_mut(&key).expect("touch of resident page");
        let old_freq = entry.freq;
        let old_stamp = entry.stamp;
        entry.freq += 1;
        entry.stamp = stamp;
        let (new_freq, _) = (entry.freq, ());
        if let Some(bucket) = self.buckets.get_mut(&old_freq) {
            bucket.remove(&old_stamp);
            if bucket.is_empty() {
                self.buckets.remove(&old_freq);
            }
        }
        self.buckets.entry(new_freq).or_default().insert(stamp, key);
    }

    fn insert(&mut self, key: PageKey, page: Arc<Vec<u8>>) {
        if self.map.len() >= self.capacity {
            self.evict_one();
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.map.insert(
            key,
            Entry {
                page,
                freq: 1,
                stamp,
            },
        );
        self.buckets.entry(1).or_default().insert(stamp, key);
    }

    fn evict_one(&mut self) {
        // Lowest frequency bucket, oldest stamp within it.
        let Some((&freq, bucket)) = self.buckets.iter_mut().next() else {
            return;
        };
        let Some((&stamp, &victim)) = bucket.iter().next() else {
            return;
        };
        bucket.remove(&stamp);
        if bucket.is_empty() {
            self.buckets.remove(&freq);
        }
        self.map.remove(&victim);
        self.stats.evictions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;

    fn key(p: u32) -> PageKey {
        PageKey {
            file_id: 1,
            page_no: p,
        }
    }

    fn load(cache: &LfuPageCache, p: u32) -> Arc<Vec<u8>> {
        cache
            .get_or_load::<Infallible>(key(p), || Ok(vec![p as u8]))
            .unwrap()
    }

    #[test]
    fn hit_and_miss_counting() {
        let cache = LfuPageCache::new(4);
        load(&cache, 0);
        load(&cache, 0);
        load(&cache, 1);
        let s = cache.stats();
        assert_eq!(s.misses, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let cache = LfuPageCache::new(2);
        load(&cache, 0); // freq(0)=1
        load(&cache, 0); // freq(0)=2
        load(&cache, 1); // freq(1)=1
        load(&cache, 2); // evicts page 1 (lowest freq), not page 0
        assert_eq!(cache.frequency_of(key(0)), Some(2));
        assert_eq!(cache.frequency_of(key(1)), None);
        assert_eq!(cache.frequency_of(key(2)), Some(1));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn lfu_ties_break_fifo() {
        let cache = LfuPageCache::new(2);
        load(&cache, 0);
        load(&cache, 1);
        // Both freq 1: the older (page 0) goes first.
        load(&cache, 2);
        assert_eq!(cache.frequency_of(key(0)), None);
        assert_eq!(cache.frequency_of(key(1)), Some(1));
    }

    #[test]
    fn reload_after_eviction_counts_miss() {
        let cache = LfuPageCache::new(1);
        load(&cache, 0);
        load(&cache, 1);
        load(&cache, 0);
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn returns_loaded_bytes() {
        let cache = LfuPageCache::new(2);
        let page = load(&cache, 7);
        assert_eq!(*page, vec![7u8]);
        // A hit returns the same allocation.
        let again = load(&cache, 7);
        assert!(Arc::ptr_eq(&page, &again));
    }

    #[test]
    fn load_errors_do_not_insert() {
        let cache = LfuPageCache::new(2);
        let r = cache.get_or_load(key(3), || Err("boom"));
        assert_eq!(r.unwrap_err(), "boom");
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn clear_keeps_stats() {
        let cache = LfuPageCache::new(2);
        load(&cache, 0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn heavy_workload_respects_capacity() {
        let cache = LfuPageCache::new(8);
        for round in 0..4 {
            for p in 0..32 {
                load(&cache, p);
                // keep a hot set
                load(&cache, round);
            }
        }
        assert!(cache.len() <= 8);
    }
}
