//! # Basilisk — tagged execution for disjunctive queries
//!
//! A column-oriented query engine implementing **tagged execution** (Kim &
//! Madden, "Optimizing Disjunctive Queries with Tagged Execution", SIGMOD
//! 2024): tuples are grouped into *relational slices* tagged with the
//! predicate outcomes they satisfy, letting the engine push disjunctive
//! predicates down, evaluate every predicate exactly once, and materialize
//! every tuple exactly once — no per-clause re-execution, no union
//! operator.
//!
//! ```
//! use basilisk::{Database, PlannerKind};
//! use basilisk_storage::TableBuilder;
//! use basilisk_types::DataType;
//!
//! let mut db = Database::new();
//! let mut b = TableBuilder::new("title")
//!     .column("id", DataType::Int)
//!     .column("year", DataType::Int);
//! for (id, year) in [(1i64, 2008i64), (2, 1994), (3, 1972)] {
//!     b.push_row(vec![id.into(), year.into()]).unwrap();
//! }
//! db.register(b.finish().unwrap()).unwrap();
//!
//! let result = db
//!     .sql("SELECT t.id FROM title t WHERE t.year > 2000 OR t.year < 1980")
//!     .unwrap();
//! assert_eq!(result.row_count, 2);
//! ```
//!
//! The crate re-exports the full stack: storage ([`Table`],
//! [`TableBuilder`]), expressions ([`col`], [`and`], [`or`]), the tagged
//! core ([`Tag`], [`TagMapStrategy`]), planning ([`Query`],
//! [`PlannerKind`], [`QuerySession`]), SQL ([`parse_select`]) and the
//! resident serving layer ([`Server`], [`Prepared`], [`ServeStats`]).
//!
//! [`Database::sql`] itself runs on an internal server: repeated
//! statement shapes skip parsing and planning (the plan cache binds
//! fresh literals into the cached plan), and [`Database::prepare`] /
//! [`Database::execute_prepared`] expose the prepared-statement path
//! directly. [`Database::serve`] builds a standalone concurrent
//! [`Server`] — fair per-client admission lanes, reusable execution
//! contexts, one shared resident worker pool — for multi-client serving
//! loops, and [`Database::listen`] puts the HTTP/JSON wire front end
//! ([`Listener`]) on one.

#![forbid(unsafe_code)]

mod db;
mod result;

pub use db::Database;
pub use result::SqlResult;

// One-stop re-exports.
pub use basilisk_catalog::{Catalog, Estimator};
pub use basilisk_core::{Tag, TagMapBuilder, TagMapStrategy};
pub use basilisk_expr::{
    and, col, factor_common_conjuncts, lit, not, or, Atom, CmpOp, ColumnRef, Expr, PredicateTree,
};
pub use basilisk_net::{Client, Json, Listener, RemotePrepared, WireResponse};
pub use basilisk_plan::{
    ExecContext, JoinCond, Plan, PlanTimings, PlannerKind, Query, QueryOutput, QuerySession,
};
pub use basilisk_serve::{
    ErrorKind, LaneStats, Prepared, Priority, Request, Response, ServeError, ServeResult,
    ServeStats, Server, ServerConfig, ServerConfigBuilder,
};
pub use basilisk_sql::{normalize_select, parse_select, Projection, SelectStmt};
pub use basilisk_storage::{Column, LfuPageCache, Table, TableBuilder};
pub use basilisk_types::{BasiliskError, Bitmap, DataType, Result, Truth, Value};
