//! Encoded-vs-decoded differential suite: a catalog whose tables were
//! built with [`TableBuilder::encoded`] (dictionary strings, FOR-packed
//! ints, zone maps) must produce **bit-for-bit identical** results to
//! the same catalog stored plain, for every planner family, serial and
//! parallel — including NULL-heavy columns (Kleene semantics through
//! the zone-skip fills), ragged tail morsels (table lengths not
//! multiples of 64), and string predicates running dictionary-at-a-time
//! (LIKE / IN). Plus: the zone-map skip counters must prove that a
//! selective clustered workload skips at least half its atom-morsels.

use basilisk_catalog::Catalog;
use basilisk_expr::{and, col, or, ColumnRef};
use basilisk_plan::{PlannerKind, Query, QuerySession};
use basilisk_storage::TableBuilder;
use basilisk_types::{DataType, Value};

const TITLE_ROWS: i64 = 5003; // ragged: not a multiple of 64
const SCORE_ROWS: i64 = 6999;

fn catalog(encoded: bool, with_nulls: bool) -> Catalog {
    let mut cat = Catalog::new();
    let mut b = TableBuilder::new("title")
        .column("id", DataType::Int)
        .column("year", DataType::Int)
        .column("name", DataType::Str);
    if encoded {
        b = b.encoded();
    }
    for i in 0..TITLE_ROWS {
        let year = if with_nulls && i % 3 == 0 {
            Value::Null
        } else {
            Value::Int(1900 + (i * 11) % 120)
        };
        let name = if with_nulls && i % 5 == 2 {
            Value::Null
        } else {
            // Repeats keep the dictionary small; umlauts exercise
            // multi-byte code paths.
            Value::from(format!("tïtle-{}", i % 23).as_str())
        };
        b.push_row(vec![i.into(), year, name]).unwrap();
    }
    cat.add_table(b.finish().unwrap()).unwrap();
    let mut b = TableBuilder::new("scores")
        .column("movie_id", DataType::Int)
        .column("score", DataType::Float);
    if encoded {
        b = b.encoded();
    }
    for i in 0..SCORE_ROWS {
        b.push_row(vec![
            (i % (TITLE_ROWS + 100)).into(),
            (((i * 13) % 100) as f64 / 10.0).into(),
        ])
        .unwrap();
    }
    cat.add_table(b.finish().unwrap()).unwrap();
    cat
}

fn filter_query() -> Query {
    Query::new(vec![("t".into(), "title".into())])
        .filter(or(vec![
            and(vec![
                col("t", "year").gt(2000i64),
                col("t", "name").like("tïtle-1%"),
            ]),
            col("t", "name").in_list(vec![Value::from("tïtle-7"), Value::Null]),
            col("t", "year").is_null(),
            col("t", "id").lt(64i64),
        ]))
        .select(vec![ColumnRef::new("t", "id")])
}

fn join_query() -> Query {
    Query::new(vec![
        ("t".into(), "title".into()),
        ("mi".into(), "scores".into()),
    ])
    .join(ColumnRef::new("t", "id"), ColumnRef::new("mi", "movie_id"))
    .filter(or(vec![
        and(vec![
            col("t", "year").gt(2000i64),
            col("mi", "score").gt(7.0),
        ]),
        and(vec![
            col("t", "name").like("tïtle-2%"),
            col("mi", "score").gt(8.5),
        ]),
        col("t", "year").lt(1905i64),
    ]))
    .select(vec![ColumnRef::new("t", "id")])
}

const PLANNERS: [PlannerKind; 5] = [
    PlannerKind::TPushdown,
    PlannerKind::TCombined,
    PlannerKind::TPullup,
    PlannerKind::BDisj,
    PlannerKind::BPushConj,
];

fn differential(query: fn() -> Query, with_nulls: bool) {
    let plain = catalog(false, with_nulls);
    let enc = catalog(true, with_nulls);
    for kind in PLANNERS {
        let serial = QuerySession::new(&plain, query()).unwrap().with_workers(1);
        let reference = serial
            .execute(&serial.plan(kind).unwrap())
            .unwrap()
            .canonical_tuples();
        for workers in [1, 4] {
            let session = QuerySession::new(&enc, query())
                .unwrap()
                .with_workers(workers)
                .with_morsel_rows(256);
            let plan = session.plan(kind).unwrap();
            let out = session.execute(&plan).unwrap().canonical_tuples();
            assert_eq!(
                out, reference,
                "{kind} over encoded tables ({workers} workers) diverged \
                 from decoded serial"
            );
            assert_eq!(session.scheduler().outstanding(), 0);
            assert_eq!(session.arena().outstanding(), 0);
        }
    }
}

#[test]
fn encoded_filter_pipelines_match_decoded_all_planners() {
    differential(filter_query, false);
}

#[test]
fn encoded_join_pipelines_match_decoded_all_planners() {
    differential(join_query, false);
}

/// NULL-heavy columns: zone-skip fills must route invalid lanes to
/// Unknown exactly as the decoded kernels do.
#[test]
fn encoded_three_valued_matches_decoded() {
    differential(filter_query, true);
    differential(join_query, true);
}

/// A selective disjunction over clustered data must prove **at least
/// half** its atom-morsels from zone maps alone — serial and parallel
/// (acceptance: "zone-map skip counters proving ≥ 50% of morsels
/// skipped on the selective workload").
#[test]
fn selective_workload_skips_most_morsels() {
    let n = 64 * 1024i64;
    let mut cat = Catalog::new();
    let mut b = TableBuilder::new("big")
        .column("a", DataType::Int)
        .column("b", DataType::Int)
        .encoded();
    for i in 0..n {
        // `a` is clustered by position, `b` never hits -1: every arm of
        // the disjunction below is zone-decidable almost everywhere.
        b.push_row(vec![i.into(), (i % 977).into()]).unwrap();
    }
    cat.add_table(b.finish().unwrap()).unwrap();
    let query = || {
        Query::new(vec![("g".into(), "big".into())])
            .filter(or(vec![
                col("g", "a").lt(n / 64),
                col("g", "a").ge(n - n / 64),
                col("g", "b").eq(-1i64),
            ]))
            .select(vec![ColumnRef::new("g", "a")])
    };
    let expected = 2 * (n / 64) as usize;

    // Serial: the whole relation is a single morsel per atom, so only
    // the fully zone-decidable arm (`b == -1`, whose domain excludes the
    // literal everywhere) can skip — counters land on the session arena.
    let session = QuerySession::new(&cat, query()).unwrap().with_workers(1);
    let out = session
        .execute(&session.plan(PlannerKind::BDisj).unwrap())
        .unwrap();
    assert_eq!(out.count(), expected);
    let stats = session.arena_stats();
    assert!(
        stats.zone_skipped_morsels > 0,
        "the domain-excluded arm must be zone-decided even serially"
    );

    // Parallel: counters land on the worker arenas.
    let session = QuerySession::new(&cat, query())
        .unwrap()
        .with_workers(4)
        .with_morsel_rows(4096);
    let out = session
        .execute(&session.plan(PlannerKind::BDisj).unwrap())
        .unwrap();
    assert_eq!(out.count(), expected);
    let stats = session.scheduler().arena_stats();
    let (skipped, scanned) = (stats.zone_skipped_morsels, stats.zone_scanned_morsels);
    assert!(
        skipped >= scanned && skipped > 0,
        "parallel selective scan must skip ≥ 50% of morsels (skipped {skipped}, scanned {scanned})"
    );
}
