//! Microbenchmark: the LFU page cache hit and miss/eviction paths.

use std::convert::Infallible;

use criterion::{criterion_group, criterion_main, Criterion};

use basilisk_storage::{LfuPageCache, PageKey};

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("lfu_page_cache");
    group.sample_size(30);

    group.bench_function("hit", |b| {
        let cache = LfuPageCache::new(64);
        let key = PageKey {
            file_id: 1,
            page_no: 0,
        };
        cache
            .get_or_load::<Infallible>(key, || Ok(vec![0u8; 8192]))
            .unwrap();
        b.iter(|| {
            cache
                .get_or_load::<Infallible>(key, || Ok(vec![0u8; 8192]))
                .unwrap()
        })
    });

    group.bench_function("miss_with_eviction", |b| {
        let cache = LfuPageCache::new(16);
        let mut page_no = 0u32;
        b.iter(|| {
            page_no = page_no.wrapping_add(1);
            cache
                .get_or_load::<Infallible>(
                    PageKey {
                        file_id: 1,
                        page_no,
                    },
                    || Ok(vec![0u8; 8192]),
                )
                .unwrap()
        })
    });

    group.bench_function("zipf_mixed", |b| {
        // Skewed access: the hot head should become all-hits under LFU.
        let cache = LfuPageCache::new(32);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            // crude skew: 75% of accesses to 8 hot pages
            let page_no = if !i.is_multiple_of(4) {
                (i % 8) as u32
            } else {
                (i % 512) as u32
            };
            cache
                .get_or_load::<Infallible>(
                    PageKey {
                        file_id: 1,
                        page_no,
                    },
                    || Ok(vec![0u8; 8192]),
                )
                .unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
