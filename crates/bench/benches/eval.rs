//! Scalar vs vectorized predicate evaluation.
//!
//! Measures the two evaluation paths of `basilisk_expr::eval` on a wide
//! (6-arm) disjunction over 64k rows at several selectivities:
//!
//! * `scalar` — the reference `eval_node` path: one `Vec<Truth>` per node,
//!   per-element Kleene combines.
//! * `vectorized` — the `eval_node_mask` path: `TruthMask` atoms plus
//!   word-parallel connective combines (the path every engine operator
//!   uses).
//! * `vectorized_sparse` — the same mask path under a ~6% selection
//!   bitmap, the tagged-filter shape (evaluate only the union of slices).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use basilisk_bench::workload::{int_column_with_nulls, provider, wide_disjunction, ROWS};
use basilisk_expr::eval::{eval_atom_mask, eval_node, eval_node_mask};
use basilisk_expr::{Atom, CmpOp, ColumnRef, PredicateTree};
use basilisk_types::{Bitmap, MaskArena, Truth, TruthMask, Value};

fn bench_eval(c: &mut Criterion) {
    let prov = provider();
    // One arena across iterations: the measured loop is the pooled,
    // allocation-free steady state every engine operator runs in.
    let arena = MaskArena::new();
    let mut group = c.benchmark_group("eval_disjunction_64k");
    group.sample_size(30);
    for pct in [10i64, 50, 90] {
        let tree = PredicateTree::build(&wide_disjunction(pct * 10));
        let root = tree.root();
        let full = Bitmap::all_set(ROWS);

        group.bench_with_input(BenchmarkId::new("scalar", pct), &pct, |b, _| {
            b.iter(|| eval_node(&tree, root, &prov).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("vectorized", pct), &pct, |b, _| {
            b.iter(|| {
                let m = eval_node_mask(&tree, root, &prov, &full, &arena).unwrap();
                let n = m.count_true();
                arena.recycle_mask(m);
                n
            })
        });

        // The tagged-filter shape: evaluate only a sparse union of slices.
        let sparse = Bitmap::from_indices(ROWS, (0..ROWS).filter(|i| i % 16 == 0));
        group.bench_with_input(BenchmarkId::new("vectorized_sparse", pct), &pct, |b, _| {
            b.iter(|| {
                let m = eval_node_mask(&tree, root, &prov, &sparse, &arena).unwrap();
                let n = m.count_true();
                arena.recycle_mask(m);
                n
            })
        });
    }
    group.finish();
}

/// The ISSUE-2 acceptance benchmark: branchless compare-into-word Int
/// kernel vs the per-lane branching path it replaced (validity branch +
/// comparison per lane, rebuilt here verbatim via `from_lanes`).
fn bench_cmp_kernel(c: &mut Criterion) {
    let column = int_column_with_nulls(7);
    let atom = Atom::Cmp {
        col: ColumnRef::new("t", "a"),
        op: CmpOp::Lt,
        value: Value::Int(500),
    };
    let full = Bitmap::all_set(ROWS);
    let arena = MaskArena::new();

    let mut group = c.benchmark_group("cmp_int_64k");
    group.sample_size(50);
    group.bench_function("branching", |b| {
        let data = column.as_ints().unwrap();
        b.iter(|| {
            TruthMask::from_lanes(ROWS, |i| {
                if !column.is_valid(i) {
                    Truth::Unknown
                } else {
                    Truth::from(data[i] < 500)
                }
            })
        })
    });
    group.bench_function("branchless", |b| {
        b.iter(|| {
            let m = eval_atom_mask(&atom, &column, &full, &arena).unwrap();
            let n = m.count_true();
            arena.recycle_mask(m);
            n
        })
    });
    group.finish();
}

fn bench_connectives_only(c: &mut Criterion) {
    // Isolate connective combining from atom evaluation: pre-evaluate the
    // atoms once, then compare per-element OR-folding of Vec<Truth>
    // against word-parallel TruthMask::or_with.
    let prov = provider();
    let tree = PredicateTree::build(&wide_disjunction(500));
    let atoms = tree.atom_ids();
    let scalar_vecs: Vec<Vec<Truth>> = atoms
        .iter()
        .map(|&id| eval_node(&tree, id, &prov).unwrap())
        .collect();
    let masks: Vec<TruthMask> = scalar_vecs
        .iter()
        .map(|v| TruthMask::from_truths(v))
        .collect();

    let mut group = c.benchmark_group("or_fold_atoms_64k");
    group.sample_size(30);
    group.bench_function("scalar", |b| {
        b.iter(|| {
            let mut acc = scalar_vecs[0].clone();
            for v in &scalar_vecs[1..] {
                for (a, &x) in acc.iter_mut().zip(v) {
                    *a = a.or(x);
                }
            }
            acc
        })
    });
    group.bench_function("vectorized", |b| {
        b.iter(|| {
            let mut acc = masks[0].clone();
            for m in &masks[1..] {
                acc.or_with(m);
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_eval,
    bench_connectives_only,
    bench_cmp_kernel
);
criterion_main!(benches);
