//! Planning for tagged execution (§4) and the traditional baselines (§5).
//!
//! * [`Query`] — the logical query: aliased tables, equi-join conditions,
//!   a predicate expression, and a projection list.
//! * [`APlan`] — the abstract operator tree planners manipulate (pull-up /
//!   push-down rewrites included).
//! * [`CostModel`] / [`annotate_tagged`] / [`cost_traditional`] — the §4.1
//!   cost models. Tagged costs are sums over relational slices; the tagged
//!   annotation pass simultaneously builds every operator's tag map by
//!   simulating tag flow bottom-up.
//! * [`benefit`] — the Appendix A benefit score (Algorithm 3) and
//!   "benefiting order".
//! * [`planners`] — TPushdown, TPullup (Algorithm 2), TIterPush,
//!   TPushConj, TCombined and the traditional baselines BDisj and
//!   BPushConj, all sharing the greedy smallest-output join ordering.
//! * [`QuerySession`] — one-stop API: build a session from a catalog and a
//!   query, plan under any planner, execute, and collect timings.

#![forbid(unsafe_code)]

mod aplan;
pub mod benefit;
mod cost;
mod executor;
mod join_order;
pub mod planners;
mod query;
mod session;

pub use aplan::APlan;
pub use cost::{annotate_tagged, cost_traditional, CostModel, TPlan, TaggedAnnotation};
pub use executor::{
    execute_tagged, execute_tagged_traced, execute_tagged_with, execute_traditional,
    execute_traditional_traced, execute_traditional_with,
};
pub use join_order::{greedy_join_tree, local_survival};
pub use planners::PlannerKind;
pub use query::{JoinCond, Query};
pub use session::{
    atom_has_null_literal, ExecContext, Plan, PlanTimings, QueryOutput, QuerySession,
};
