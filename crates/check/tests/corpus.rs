//! A small always-on slice of the seed corpus, so plain
//! `RUSTFLAGS='--cfg basilisk_check' cargo test -p basilisk-check`
//! exercises every scenario before CI's full 1000-seed run.
//!
//! Exactly one `#[test]` lives in this binary: the check runtime is
//! process-global (seed, lock graph, ownership registry), and parallel
//! tests resetting it would perturb each other. The canary test lives
//! in its own binary (= its own process) for the same reason.

#![forbid(unsafe_code)]
#![cfg(basilisk_check)]

use basilisk_check::{quiet_panics, run_corpus, scenarios};
use basilisk_types::sync::check;

#[test]
fn small_corpus_is_clean_across_all_scenarios() {
    check::set_stall_millis(2000);
    let picked: Vec<_> = scenarios::ALL.iter().collect();
    let report = quiet_panics(|| run_corpus(&picked, 0..16, 0));
    assert_eq!(report.runs, 16 * scenarios::ALL.len() as u64);
    assert!(
        report.is_clean(),
        "corpus findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
