//! The serving side of the wire: a [`Listener`] owns a
//! `std::net::TcpListener`, an accept thread, and one plain OS thread
//! per live connection (connections are few and long-lived — remote
//! clients multiplex *requests*, not sockets). Every request funnels
//! into [`Server::submit`], so remote traffic obeys exactly the same
//! admission, fairness and backpressure rules as in-process callers.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use basilisk_serve::{Prepared, Priority, Request, ServeError, Server};

use crate::http;
use crate::json::Json;
use crate::wire;

/// How often parked connection threads check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

struct Shared {
    server: Arc<Server>,
    /// Remote prepared statements, by handle. Handles are per-listener
    /// (any connection may execute any handle — clients that reconnect
    /// keep their statements).
    prepared: Mutex<HashMap<u64, Prepared>>,
    next_handle: AtomicU64,
    stop: AtomicBool,
}

/// A live HTTP/JSON listener over a [`Server`] (see the crate docs for
/// the wire format). Dropping it stops the accept loop and joins every
/// connection thread.
pub struct Listener {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Listener {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start serving `server` on it.
    pub fn bind(server: Arc<Server>, addr: &str) -> io::Result<Listener> {
        let tcp = TcpListener::bind(addr)?;
        let local_addr = tcp.local_addr()?;
        let shared = Arc::new(Shared {
            server,
            prepared: Mutex::new(HashMap::new()),
            next_handle: AtomicU64::new(1),
            stop: AtomicBool::new(false),
        });
        let connections = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let connections = Arc::clone(&connections);
            std::thread::spawn(move || {
                for stream in tcp.incoming() {
                    if shared.stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = Arc::clone(&shared);
                    let handle = std::thread::spawn(move || serve_connection(stream, &shared));
                    connections.lock().unwrap().push(handle);
                }
            })
        };
        Ok(Listener {
            local_addr,
            shared,
            accept: Some(accept),
            connections,
        })
    }

    /// The bound address (with the real port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server this listener fronts.
    pub fn server(&self) -> &Arc<Server> {
        &self.shared.server
    }

    /// Remote prepared statements currently registered.
    pub fn prepared_handles(&self) -> usize {
        self.shared.prepared.lock().unwrap().len()
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Connection threads poll the stop flag between requests, so
        // this join completes within ~POLL_INTERVAL even for clients
        // that keep their sockets open.
        let handles: Vec<_> = std::mem::take(&mut *self.connections.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }
}

/// One persistent connection: read request, serve, write response,
/// repeat until the peer hangs up or the listener shuts down.
fn serve_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        // Park on fill_buf (not read_request) so an idle keep-alive
        // connection can notice shutdown without consuming bytes.
        match reader.fill_buf() {
            Ok([]) => return, // clean EOF
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return,
        }
        let request = match http::read_request(&mut reader) {
            Ok(Some(r)) => r,
            Ok(None) => return,
            Err(_) => {
                // Framing is broken; answer if the socket still works,
                // then drop the connection.
                let e = ServeError::protocol("malformed http request");
                let _ = write_error(&mut write_half, &e);
                return;
            }
        };
        let close = request.wants_close();
        let outcome = route(&request, shared);
        let ok = match outcome {
            Ok(Reply::Json(body)) => write_json(&mut write_half, 200, "OK", &[], &body),
            Ok(Reply::Text(body)) => http::write_response_typed(
                &mut write_half,
                200,
                "OK",
                "text/plain; version=0.0.4",
                &[],
                body.as_bytes(),
            ),
            Err(e) => write_error(&mut write_half, &e),
        };
        if ok.is_err() || close {
            return;
        }
    }
}

/// A routed reply body: JSON for the protocol endpoints, plain text for
/// the Prometheus exposition.
enum Reply {
    Json(Json),
    Text(String),
}

impl From<Json> for Reply {
    fn from(j: Json) -> Reply {
        Reply::Json(j)
    }
}

fn write_json(
    w: &mut TcpStream,
    status: u16,
    reason: &str,
    extra: &[(&str, String)],
    body: &Json,
) -> io::Result<()> {
    http::write_response(w, status, reason, extra, body.to_string().as_bytes())
}

fn write_error(w: &mut TcpStream, e: &ServeError) -> io::Result<()> {
    let (status, reason) = wire::status_for(e);
    let mut extra = Vec::new();
    if e.retryable {
        // Back off at least a beat; the envelope's queue_depth is the
        // finer-grained hint.
        extra.push(("retry-after", "1".to_string()));
    }
    write_json(w, status, reason, &extra, &wire::encode_error(e))
}

fn route(request: &http::Request, shared: &Shared) -> Result<Reply, ServeError> {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/sql") => {
            let body = parse_body(&request.body)?;
            let sql = required_str(&body, "sql")?;
            let (client, priority) = serving_meta(&body)?;
            let trace = body.get("trace").and_then(Json::as_bool).unwrap_or(false);
            let response = shared.server.submit(
                Request::sql(sql)
                    .client(client)
                    .priority(priority)
                    .trace(trace),
            )?;
            Ok(wire::encode_response(&response).into())
        }
        ("POST", "/v1/prepare") => {
            let body = parse_body(&request.body)?;
            let sql = required_str(&body, "sql")?;
            let stmt = shared.server.prepare(sql).map_err(ServeError::from)?;
            let params = stmt.param_count();
            let handle = shared.next_handle.fetch_add(1, Ordering::Relaxed);
            shared.prepared.lock().unwrap().insert(handle, stmt);
            Ok(Json::Object(vec![
                ("ok".to_string(), Json::Bool(true)),
                ("handle".to_string(), Json::Int(handle as i64)),
                ("params".to_string(), Json::Int(params as i64)),
            ])
            .into())
        }
        ("POST", "/v1/execute") => {
            let body = parse_body(&request.body)?;
            let handle = body
                .get("handle")
                .and_then(Json::as_u64)
                .ok_or_else(|| ServeError::protocol("missing field: handle"))?;
            let params = body
                .get("params")
                .and_then(Json::as_array)
                .unwrap_or(&[])
                .iter()
                .map(wire::decode_value)
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| ServeError::protocol(format!("bad params: {e}")))?;
            let (client, priority) = serving_meta(&body)?;
            let trace = body.get("trace").and_then(Json::as_bool).unwrap_or(false);
            // Clone the handle out so the registry lock is not held
            // across execution (Prepared is an Arc'd plan).
            let stmt = shared
                .prepared
                .lock()
                .unwrap()
                .get(&handle)
                .cloned()
                .ok_or_else(|| ServeError::protocol(format!("unknown handle: {handle}")))?;
            let response = shared.server.submit(
                Request::prepared(&stmt, &params)
                    .client(client)
                    .priority(priority)
                    .trace(trace),
            )?;
            Ok(wire::encode_response(&response).into())
        }
        ("POST", "/v1/close") => {
            let body = parse_body(&request.body)?;
            let handle = body
                .get("handle")
                .and_then(Json::as_u64)
                .ok_or_else(|| ServeError::protocol("missing field: handle"))?;
            let removed = shared.prepared.lock().unwrap().remove(&handle).is_some();
            Ok(Json::Object(vec![
                ("ok".to_string(), Json::Bool(true)),
                ("closed".to_string(), Json::Bool(removed)),
            ])
            .into())
        }
        ("GET", "/v1/stats") => Ok(stats_json(&shared.server).into()),
        ("GET", "/v1/slow") => Ok(slow_json(&shared.server).into()),
        ("GET", "/v1/metrics") => Ok(Reply::Text(shared.server.metrics_prometheus())),
        ("GET", "/v1/health") => {
            Ok(Json::Object(vec![("ok".to_string(), Json::Bool(true))]).into())
        }
        (method, path) => Err(ServeError::protocol(format!("no route: {method} {path}"))),
    }
}

fn parse_body(body: &[u8]) -> Result<Json, ServeError> {
    let text = std::str::from_utf8(body).map_err(|_| ServeError::protocol("body is not utf-8"))?;
    Json::parse(text).map_err(|e| ServeError::protocol(format!("bad json: {e}")))
}

fn required_str<'a>(body: &'a Json, field: &str) -> Result<&'a str, ServeError> {
    body.get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::protocol(format!("missing field: {field}")))
}

/// The optional serving metadata shared by /v1/sql and /v1/execute.
fn serving_meta(body: &Json) -> Result<(&str, Priority), ServeError> {
    let client = body.get("client").and_then(Json::as_str).unwrap_or("");
    let priority = match body.get("priority") {
        None => Priority::Normal,
        Some(p) => {
            let name = p
                .as_str()
                .ok_or_else(|| ServeError::protocol("priority must be a string"))?;
            Priority::parse(name)
                .ok_or_else(|| ServeError::protocol(format!("unknown priority: {name}")))?
        }
    };
    Ok((client, priority))
}

/// The `/v1/stats` document: the counters a remote load driver needs
/// (totals, latency quantiles, per-lane fairness counters).
fn stats_json(server: &Server) -> Json {
    let s = server.stats();
    let lanes = s
        .lanes
        .iter()
        .map(|l| {
            Json::Object(vec![
                ("client".to_string(), Json::Str(l.client.clone())),
                ("admitted".to_string(), Json::Int(l.admitted as i64)),
                ("dispatched".to_string(), Json::Int(l.dispatched as i64)),
                ("rejected".to_string(), Json::Int(l.rejected as i64)),
                ("depth".to_string(), Json::Int(l.depth as i64)),
                ("max_depth".to_string(), Json::Int(l.max_depth as i64)),
                (
                    "wait_total_micros".to_string(),
                    Json::Int(l.wait_total_micros as i64),
                ),
            ])
        })
        .collect();
    Json::Object(vec![
        ("ok".to_string(), Json::Bool(true)),
        (
            "statements_executed".to_string(),
            Json::Int(s.statements_executed as i64),
        ),
        (
            "statements_prepared".to_string(),
            Json::Int(s.statements_prepared as i64),
        ),
        ("cache_hits".to_string(), Json::Int(s.cache_hits as i64)),
        ("cache_misses".to_string(), Json::Int(s.cache_misses as i64)),
        (
            "cache_evictions".to_string(),
            Json::Int(s.cache_evictions as i64),
        ),
        ("errors".to_string(), Json::Int(s.errors as i64)),
        ("rejected".to_string(), Json::Int(s.rejected as i64)),
        ("queue_depth".to_string(), Json::Int(s.queue_depth as i64)),
        (
            "queue_high_water".to_string(),
            Json::Int(s.queue_high_water as i64),
        ),
        (
            "p50_micros".to_string(),
            Json::Int(s.quantile_latency(0.5).as_micros().min(i64::MAX as u128) as i64),
        ),
        (
            "p99_micros".to_string(),
            Json::Int(s.quantile_latency(0.99).as_micros().min(i64::MAX as u128) as i64),
        ),
        (
            "parallel_regions".to_string(),
            Json::Int(s.parallel_regions as i64),
        ),
        ("region_waits".to_string(), Json::Int(s.region_waits as i64)),
        ("region_slots".to_string(), Json::Int(s.region_slots as i64)),
        (
            "region_max_concurrent".to_string(),
            Json::Int(s.region_max_concurrent as i64),
        ),
        ("lanes".to_string(), Json::Array(lanes)),
    ])
}

/// The `/v1/slow` document: the slow-query ring, newest first, each
/// entry carrying its trace tree when the request was traced.
fn slow_json(server: &Server) -> Json {
    let entries = server
        .slow_queries()
        .into_iter()
        .map(|(seq, q)| {
            let mut fields = vec![
                ("seq".to_string(), Json::Int(seq as i64)),
                ("statement".to_string(), Json::Str(q.statement.clone())),
                ("client".to_string(), Json::Str(q.client.clone())),
                ("priority".to_string(), Json::Str(q.priority.to_string())),
                ("row_count".to_string(), Json::Int(q.row_count as i64)),
                ("cache_hit".to_string(), Json::Bool(q.cache_hit)),
                (
                    "queue_wait_micros".to_string(),
                    Json::Int(q.queue_wait_micros.min(i64::MAX as u64) as i64),
                ),
                (
                    "total_micros".to_string(),
                    Json::Int(q.total_micros.min(i64::MAX as u64) as i64),
                ),
            ];
            if let Some(trace) = &q.trace {
                fields.push(("trace".to_string(), wire::encode_trace(trace)));
            }
            Json::Object(fields)
        })
        .collect();
    Json::Object(vec![
        ("ok".to_string(), Json::Bool(true)),
        ("slow".to_string(), Json::Array(entries)),
    ])
}
