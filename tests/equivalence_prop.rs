//! The golden property of the reproduction: for random data (including
//! NULLs) and random disjunctive predicates, **every planner under both
//! execution models returns exactly the same rows**, and those rows match
//! a brute-force oracle that evaluates the predicate per joined tuple.

use basilisk::{
    and, col, not, or, Catalog, ColumnRef, Expr, PlannerKind, Query, QuerySession, Truth, Value,
};
use basilisk::{DataType, TableBuilder};
use proptest::prelude::*;

/// Random data for a two-table join: left(id, x, s) / right(fid, y, s).
#[derive(Debug, Clone)]
struct Data {
    left: Vec<(i64, Option<i64>, &'static str)>,
    right: Vec<(i64, Option<i64>, &'static str)>,
}

const WORDS: [&str; 6] = ["alpha", "beta", "gamma", "delta", "man", "godman"];

fn data_strategy() -> impl Strategy<Value = Data> {
    let left_row = (0..30i64, proptest::option::of(0..20i64), 0..WORDS.len());
    let right_row = (0..30i64, proptest::option::of(0..20i64), 0..WORDS.len());
    (
        proptest::collection::vec(left_row, 1..40),
        proptest::collection::vec(right_row, 1..40),
    )
        .prop_map(|(l, r)| Data {
            left: l
                .into_iter()
                .enumerate()
                .map(|(i, (_, x, w))| (i as i64 % 12, x, WORDS[w]))
                .collect(),
            right: r
                .into_iter()
                .map(|(fid, y, w)| (fid % 12, y, WORDS[w]))
                .collect(),
        })
}

/// Random predicates over both tables: comparisons on nullable ints,
/// LIKEs on strings, combined by AND/OR/NOT up to depth 3.
fn pred_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..20i64).prop_map(|v| col("l", "x").lt(v)),
        (0..20i64).prop_map(|v| col("l", "x").gt(v)),
        (0..20i64).prop_map(|v| col("r", "y").lt(v)),
        (0..20i64).prop_map(|v| col("r", "y").ge(v)),
        Just(col("l", "s").like("%man%")),
        Just(col("r", "s").eq("alpha")),
        Just(col("l", "x").is_null()),
        (0..20i64).prop_map(|v| col("r", "y").eq(v)),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::And),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::Or),
            inner.prop_map(not),
        ]
    })
}

fn build_catalog(data: &Data) -> Catalog {
    let mut cat = Catalog::new();
    let mut b = TableBuilder::new("left")
        .column("id", DataType::Int)
        .column("x", DataType::Int)
        .column("s", DataType::Str);
    for (id, x, s) in &data.left {
        b.push_row(vec![
            (*id).into(),
            x.map(Value::Int).unwrap_or(Value::Null),
            (*s).into(),
        ])
        .unwrap();
    }
    cat.add_table(b.finish().unwrap()).unwrap();
    let mut b = TableBuilder::new("right")
        .column("fid", DataType::Int)
        .column("y", DataType::Int)
        .column("s", DataType::Str);
    for (fid, y, s) in &data.right {
        b.push_row(vec![
            (*fid).into(),
            y.map(Value::Int).unwrap_or(Value::Null),
            (*s).into(),
        ])
        .unwrap();
    }
    cat.add_table(b.finish().unwrap()).unwrap();
    cat
}

/// Brute-force oracle: nested-loop join + 3VL interpretation of the
/// predicate per tuple.
fn oracle(data: &Data, pred: &Expr) -> Vec<(usize, usize)> {
    fn eval(
        e: &Expr,
        l: &(i64, Option<i64>, &'static str),
        r: &(i64, Option<i64>, &'static str),
    ) -> Truth {
        match e {
            Expr::And(cs) => Truth::all(cs.iter().map(|c| eval(c, l, r))),
            Expr::Or(cs) => Truth::any(cs.iter().map(|c| eval(c, l, r))),
            Expr::Not(c) => eval(c, l, r).not(),
            Expr::Atom(a) => {
                use basilisk::Atom;
                match a {
                    Atom::Cmp { col, op, value } => {
                        let v: Value = match (col.table.as_str(), col.column.as_str()) {
                            ("l", "x") => l.1.map(Value::Int).unwrap_or(Value::Null),
                            ("r", "y") => r.1.map(Value::Int).unwrap_or(Value::Null),
                            ("l", "s") => Value::from(l.2),
                            ("r", "s") => Value::from(r.2),
                            other => panic!("unexpected column {other:?}"),
                        };
                        match v.sql_cmp(value) {
                            None => Truth::Unknown,
                            Some(ord) => {
                                use basilisk::CmpOp::*;
                                use std::cmp::Ordering::*;
                                Truth::from(match op {
                                    Eq => ord == Equal,
                                    Ne => ord != Equal,
                                    Lt => ord == Less,
                                    Le => ord != Greater,
                                    Gt => ord == Greater,
                                    Ge => ord != Less,
                                })
                            }
                        }
                    }
                    Atom::Like {
                        col,
                        pattern,
                        case_insensitive,
                    } => {
                        let s = if col.table == "l" { l.2 } else { r.2 };
                        Truth::from(basilisk_expr::like_match(s, pattern, *case_insensitive))
                    }
                    Atom::IsNull { col } => {
                        let is_null = if col.table == "l" {
                            l.1.is_none()
                        } else {
                            r.1.is_none()
                        };
                        Truth::from(is_null)
                    }
                    Atom::InList { .. } => unreachable!("not generated"),
                }
            }
        }
    }
    let mut out = Vec::new();
    for (i, lrow) in data.left.iter().enumerate() {
        for (j, rrow) in data.right.iter().enumerate() {
            if lrow.0 == rrow.0 && eval(pred, lrow, rrow) == Truth::True {
                out.push((i, j));
            }
        }
    }
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every planner × both engines == the brute-force oracle.
    #[test]
    fn planners_match_oracle(data in data_strategy(), pred in pred_strategy()) {
        let catalog = build_catalog(&data);
        let query = Query::new(vec![
            ("l".into(), "left".into()),
            ("r".into(), "right".into()),
        ])
        .join(ColumnRef::new("l", "id"), ColumnRef::new("r", "fid"))
        .filter(pred.clone());

        let expected: Vec<Vec<u32>> = oracle(&data, &pred)
            .into_iter()
            .map(|(i, j)| vec![i as u32, j as u32])
            .collect();

        let session = QuerySession::new(&catalog, query).unwrap();
        for kind in [
            PlannerKind::TPushdown,
            PlannerKind::TCombined,
            PlannerKind::BDisj,
            PlannerKind::BPushConj,
        ] {
            let out = session.execute(&session.plan(kind).unwrap()).unwrap();
            prop_assert_eq!(
                out.canonical_tuples(),
                expected.clone(),
                "planner {} diverges from oracle on predicate {}",
                kind,
                pred
            );
        }
    }

    /// Single-table queries: same property without the join.
    #[test]
    fn single_table_matches_oracle(data in data_strategy(), pred in pred_strategy()) {
        // Restrict the predicate to the left table by rewriting r.* atoms
        // onto l.x / l.s.
        fn localize(e: &Expr) -> Expr {
            match e {
                Expr::And(cs) => Expr::And(cs.iter().map(localize).collect()),
                Expr::Or(cs) => Expr::Or(cs.iter().map(localize).collect()),
                Expr::Not(c) => not(localize(c)),
                Expr::Atom(a) => {
                    use basilisk::Atom;
                    let fix = |c: &ColumnRef| {
                        if c.table == "r" {
                            ColumnRef::new(
                                "l",
                                if c.column == "y" { "x" } else { "s" },
                            )
                        } else {
                            c.clone()
                        }
                    };
                    Expr::Atom(match a {
                        Atom::Cmp { col, op, value } => Atom::Cmp {
                            col: fix(col),
                            op: *op,
                            value: value.clone(),
                        },
                        Atom::Like { col, pattern, case_insensitive } => Atom::Like {
                            col: fix(col),
                            pattern: pattern.clone(),
                            case_insensitive: *case_insensitive,
                        },
                        Atom::IsNull { col } => Atom::IsNull { col: fix(col) },
                        Atom::InList { col, values } => Atom::InList {
                            col: fix(col),
                            values: values.clone(),
                        },
                    })
                }
            }
        }
        let local = localize(&pred);
        let catalog = build_catalog(&data);
        let query = Query::new(vec![("l".into(), "left".into())]).filter(local.clone());
        let session = QuerySession::new(&catalog, query).unwrap();
        let reference = session
            .execute(&session.plan(PlannerKind::BPushConj).unwrap())
            .unwrap()
            .canonical_tuples();
        for kind in [PlannerKind::TPushdown, PlannerKind::TCombined, PlannerKind::BDisj] {
            let out = session.execute(&session.plan(kind).unwrap()).unwrap();
            prop_assert_eq!(
                out.canonical_tuples(),
                reference.clone(),
                "planner {} disagrees on {}",
                kind,
                local
            );
        }
    }

    /// Factoring common conjuncts never changes results.
    #[test]
    fn factoring_preserves_semantics(data in data_strategy(), preds in proptest::collection::vec(pred_strategy(), 2..4)) {
        // Build OR of clauses sharing a common conjunct.
        let shared = col("l", "x").lt(10i64);
        let clauses: Vec<Expr> = preds
            .iter()
            .map(|p| and(vec![shared.clone(), p.clone()]))
            .collect();
        let dnf = or(clauses);
        let factored = basilisk::factor_common_conjuncts(&dnf);

        let catalog = build_catalog(&data);
        let mk = |p: Expr| {
            Query::new(vec![
                ("l".into(), "left".into()),
                ("r".into(), "right".into()),
            ])
            .join(ColumnRef::new("l", "id"), ColumnRef::new("r", "fid"))
            .filter(p)
        };
        let s1 = QuerySession::new(&catalog, mk(dnf)).unwrap();
        let s2 = QuerySession::new(&catalog, mk(factored)).unwrap();
        let r1 = s1
            .execute(&s1.plan(PlannerKind::TCombined).unwrap())
            .unwrap()
            .canonical_tuples();
        let r2 = s2
            .execute(&s2.plan(PlannerKind::TCombined).unwrap())
            .unwrap()
            .canonical_tuples();
        prop_assert_eq!(r1, r2);
    }
}
