//! A tiny interactive SQL shell over the synthetic IMDB-like dataset.
//!
//! Run with: `cargo run --release --example sql_shell`
//!
//! Commands:
//!   <SELECT …>;          run a query (terminate with `;`)
//!   \explain <SELECT …>; show tagged + BDisj plans
//!   \planner <name>      switch default planner (TCombined, BDisj, …)
//!   \tables              list tables
//!   \q                   quit
//!
//! Piped input works too:
//!   echo "SELECT * FROM kind_type kt WHERE kt.id < 3;" | cargo run --example sql_shell

use std::io::{BufRead, Write};

use basilisk::{Database, PlannerKind, Result};
use basilisk_workload::{generate_imdb, ImdbConfig};

fn planner_by_name(name: &str) -> Option<PlannerKind> {
    Some(match name.to_ascii_lowercase().as_str() {
        "tpushdown" => PlannerKind::TPushdown,
        "tpullup" => PlannerKind::TPullup,
        "tpullupjoin" => PlannerKind::TPullupJoin,
        "titerpush" => PlannerKind::TIterPush,
        "tpushconj" => PlannerKind::TPushConj,
        "tcombined" => PlannerKind::TCombined,
        "bdisj" => PlannerKind::BDisj,
        "bpushconj" => PlannerKind::BPushConj,
        _ => return None,
    })
}

fn main() -> Result<()> {
    eprintln!("loading synthetic IMDB-like dataset (scale 0.1)…");
    let mut db = Database::new();
    for t in generate_imdb(&ImdbConfig {
        scale: 0.1,
        seed: 42,
    })? {
        db.register(t)?;
    }
    eprintln!("tables: {}\n", db.catalog().table_names().join(", "));
    eprintln!("basilisk sql shell — end queries with `;`, \\q to quit");

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    let mut planner = PlannerKind::TCombined;
    loop {
        if buffer.is_empty() {
            eprint!("basilisk> ");
        } else {
            eprint!("      ... ");
        }
        std::io::stderr().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let trimmed = line.trim();
        if buffer.is_empty() {
            match trimmed {
                "\\q" | "\\quit" | "exit" => break,
                "\\tables" => {
                    for name in db.catalog().table_names() {
                        let t = db.catalog().table(name)?;
                        println!(
                            "  {name} ({} rows): {}",
                            t.num_rows(),
                            t.column_names().join(", ")
                        );
                    }
                    continue;
                }
                t if t.starts_with("\\planner") => {
                    match t.split_whitespace().nth(1).and_then(planner_by_name) {
                        Some(k) => {
                            planner = k;
                            println!("planner set to {k}");
                        }
                        None => println!(
                            "usage: \\planner <TPushdown|TPullup|TIterPush|TPushConj|TCombined|BDisj|BPushConj>"
                        ),
                    }
                    continue;
                }
                "" => continue,
                _ => {}
            }
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let stmt = buffer.trim().trim_end_matches(';').trim().to_string();
        buffer.clear();

        if let Some(rest) = stmt.strip_prefix("\\explain ") {
            match db.explain(rest, planner) {
                Ok(text) => println!("{text}"),
                Err(e) => println!("error: {e}"),
            }
            match db.explain(rest, PlannerKind::BDisj) {
                Ok(text) => println!("-- vs BDisj --\n{text}"),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }

        match db.sql_with(&stmt, planner) {
            Ok(result) => {
                print!("{}", result.to_table_string(25));
                println!(
                    "[{} | plan {:.1}µs | exec {:.2}ms]\n",
                    result
                        .chosen
                        .map(|k| k.name())
                        .unwrap_or(result.planner.name()),
                    result.timings.planning.as_secs_f64() * 1e6,
                    result.timings.execution.as_secs_f64() * 1e3
                );
            }
            Err(e) => println!("error: {e}"),
        }
    }
    Ok(())
}
