//! Concurrent serving soak/differential suite.
//!
//! N client threads fire a mixed workload — synthetic DNF/CNF joins and
//! JOB-style disjunctive statements, several literal variants per shape —
//! at one shared [`Server`], and every response must be **bit-for-bit
//! equal** to the serial single-session reference (ordered merges make
//! parallel output deterministic; exclusive contexts make concurrent
//! output session-clean). Error paths and cache evictions must strand
//! nothing in any arena (`outstanding() == 0`), and plan-cache hit
//! accounting must stay exact under eviction pressure.
//!
//! The CI tier-1 matrix runs this suite under `BASILISK_THREADS=4` (the
//! servers below also pin explicit worker counts, so the parallel path
//! is exercised on every matrix entry), and a dedicated `--release`
//! stress entry re-runs the interleaved-regions soak.
//!
//! Region interleaving is covered by [`interleaved_regions_soak`]: many
//! clients fan out parallel regions on one shared pool at once, and the
//! region table must admit all of them without a single slot wait.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use basilisk::{Catalog, Priority, Request, ServeResult, Server, ServerConfig, Value};
use basilisk_workload::{generate_imdb, generate_synthetic, ImdbConfig, SyntheticConfig};

fn soak_catalog() -> Catalog {
    let mut cat = Catalog::new();
    // Small tables: the zipf-skewed fid columns make the 3-way join
    // output superlinear in row count, and this suite's job is
    // concurrency coverage, not scale.
    for t in generate_synthetic(&SyntheticConfig {
        rows: 600,
        num_attrs: 4,
        ..SyntheticConfig::default()
    })
    .unwrap()
    {
        cat.add_table(t).unwrap();
    }
    for t in generate_imdb(&ImdbConfig {
        scale: 0.08,
        seed: 42,
    })
    .unwrap()
    {
        cat.add_table(t).unwrap();
    }
    cat
}

/// The statement mix: every entry is one *shape* with several literal
/// variants (all variants normalize to the same plan-cache key).
fn workload() -> Vec<Vec<String>> {
    let synth_dnf = |s: f64| {
        format!(
            "SELECT t0.id FROM t0 JOIN t1 ON t0.id = t1.fid JOIN t2 ON t0.id = t2.fid \
             WHERE t1.a1 < {s} AND t2.a1 < {s:.3} OR t1.a2 < {s} AND t2.a2 < {s:.4} \
             OR t1.a3 < {s} AND t2.a3 < {s:.5}"
        )
    };
    let synth_cnf = |s: f64| {
        format!(
            "SELECT t0.id FROM t0 JOIN t1 ON t0.id = t1.fid JOIN t2 ON t0.id = t2.fid \
             WHERE (t1.a1 < {s} OR t2.a1 < {s:.3}) AND (t1.a2 < {s} OR t2.a2 < {s:.4})"
        )
    };
    let job_scores = |y1: i64, s1: &str, y2: i64, s2: &str| {
        format!(
            "SELECT t.id, t.production_year FROM title t \
             JOIN movie_info_idx mi ON t.id = mi.movie_id \
             WHERE (t.production_year > {y1} AND mi.info > '{s1}') \
             OR (t.production_year > {y2} AND mi.info > '{s2}')"
        )
    };
    let job_companies = |pat: &str, y: i64| {
        format!(
            "SELECT t.id FROM title t JOIN movie_companies mc ON t.id = mc.movie_id \
             WHERE mc.note LIKE '{pat}' OR t.production_year < {y} OR t.title ILIKE '%a%'"
        )
    };
    let single_table = |lo: i64, hi: i64| {
        format!(
            "SELECT t.id FROM title t \
             WHERE t.production_year BETWEEN {lo} AND {hi} OR t.kind_id IN (1, 2)"
        )
    };
    vec![
        vec![synth_dnf(0.2), synth_dnf(0.3), synth_dnf(0.1)],
        vec![synth_cnf(0.3), synth_cnf(0.45)],
        vec![
            job_scores(2000, "6.0", 1980, "8.0"),
            job_scores(1990, "5.0", 1950, "9.0"),
        ],
        vec![job_companies("%co%", 1950), job_companies("%(2%", 1990)],
        vec![single_table(1950, 1980), single_table(1900, 1930)],
        vec![
            "SELECT COUNT(*) FROM title t WHERE t.production_year > 1990 \
             OR t.title LIKE '%e%'"
                .to_string(),
        ],
    ]
}

/// Bit-for-bit fingerprint of a result: column names and every value of
/// every row, in engine order.
fn fingerprint(r: &ServeResult) -> Vec<(String, Vec<Value>)> {
    r.columns
        .iter()
        .map(|(cref, col)| {
            (
                cref.to_string(),
                (0..r.row_count).map(|i| col.value(i)).collect(),
            )
        })
        .collect()
}

fn serial_reference(cat: &Catalog) -> Server {
    Server::new(
        cat.clone(),
        ServerConfig::builder()
            .contexts(1)
            .workers(1)
            .build()
            .unwrap(),
    )
}

/// The tentpole differential: 6 client threads × mixed statements ×
/// rounds against one parallel server ≡ serial single-session output.
#[test]
fn concurrent_soak_matches_serial() {
    let cat = soak_catalog();
    let statements: Vec<String> = workload().into_iter().flatten().collect();
    let reference = {
        let serial = serial_reference(&cat);
        statements
            .iter()
            .map(|sql| fingerprint(&serial.sql(sql).unwrap()))
            .collect::<Vec<_>>()
    };

    let server = Arc::new(Server::new(
        cat.clone(),
        ServerConfig::builder()
            .contexts(3)
            .workers(4)
            .morsel_rows(256)
            .build()
            .unwrap(),
    ));
    // Warm the plan cache serially so the concurrent phase is pure
    // cached traffic — which makes the accounting below exact (cold
    // concurrent misses may legitimately double-plan a shape).
    for sql in statements.iter() {
        server.sql(sql).unwrap();
    }
    let warm = server.stats();
    assert_eq!(
        warm.statements_prepared,
        workload().len() as u64,
        "one plan per shape after warm-up"
    );

    let statements = Arc::new(statements);
    let reference = Arc::new(reference);

    const CLIENTS: usize = 4;
    const ROUNDS: usize = 2;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let server = Arc::clone(&server);
            let statements = Arc::clone(&statements);
            let reference = Arc::clone(&reference);
            std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    for i in 0..statements.len() {
                        // Rotate per client so different statements are in
                        // flight simultaneously.
                        let k = (i + c + round) % statements.len();
                        let r = server.sql(&statements[k]).unwrap();
                        assert_eq!(
                            fingerprint(&r),
                            reference[k],
                            "client {c} round {round} diverged on: {}",
                            statements[k]
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let stats = server.stats();
    let total = (CLIENTS * ROUNDS * statements.len()) as u64;
    assert_eq!(stats.statements_executed - warm.statements_executed, total);
    assert_eq!(
        stats.cache_hits - warm.cache_hits,
        total,
        "warm concurrent traffic is pure hits: {stats:?}"
    );
    assert_eq!(
        stats.statements_prepared, warm.statements_prepared,
        "the concurrent phase did zero parse/plan work"
    );
    assert_eq!(stats.queue_depth, 0, "system drained");
    assert!(stats.queue_high_water >= 1);
    assert_eq!(server.outstanding(), 0, "all arenas clean after the soak");
}

/// Prepared-statement traffic from many threads over one shared handle:
/// zero plan work after prepare, per-binding results equal to the serial
/// reference.
#[test]
fn concurrent_prepared_bindings_match_serial() {
    let cat = soak_catalog();
    let serial = serial_reference(&cat);
    let shape = |y: i64, s: &str| {
        format!(
            "SELECT t.id FROM title t JOIN movie_info_idx mi ON t.id = mi.movie_id \
             WHERE t.production_year > {y} OR mi.info > '{s}'"
        )
    };
    let bindings: Vec<(i64, &str)> = vec![(2000, "7.0"), (1980, "9.5"), (1930, "2.0"), (2015, "0")];
    let reference: Vec<_> = bindings
        .iter()
        .map(|(y, s)| fingerprint(&serial.sql(&shape(*y, s)).unwrap()))
        .collect();

    let server = Arc::new(Server::new(
        cat,
        ServerConfig::builder()
            .contexts(4)
            .workers(2)
            .morsel_rows(256)
            .build()
            .unwrap(),
    ));
    let prepared = server.prepare(&shape(2000, "7.0")).unwrap();
    assert_eq!(prepared.param_count(), 2);
    let reference = Arc::new(reference);
    let bindings = Arc::new(bindings);

    let handles: Vec<_> = (0..4)
        .map(|c| {
            let server = Arc::clone(&server);
            let prepared = prepared.clone();
            let reference = Arc::clone(&reference);
            let bindings = Arc::clone(&bindings);
            std::thread::spawn(move || {
                for round in 0..4 {
                    let k = (c + round) % bindings.len();
                    let (y, s) = bindings[k];
                    let r = server
                        .execute_prepared(&prepared, &[Value::Int(y), Value::from(s)])
                        .unwrap();
                    assert_eq!(fingerprint(&r), reference[k], "binding {k}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        server.stats().statements_prepared,
        1,
        "16 executions, one plan"
    );
    assert_eq!(server.outstanding(), 0);
}

/// Interleaved-regions soak: several clients fan out parallel regions on
/// one shared pool *simultaneously* (no exclusive-region admission), at
/// `workers ∈ {2, 4}`. Checks, per worker count:
///
/// - every response is bit-for-bit equal to the serial reference even
///   while other clients' regions are in flight on the same workers;
/// - the default region table admits every in-flight region — zero slot
///   waits (`region_waits == 0`), since live regions are bounded by the
///   context pool;
/// - an injected **mid-region eval failure** in one client's statement
///   (runtime type error on worker threads) discards that region's
///   buffers into their producing arenas while concurrent regions keep
///   running — `outstanding() == 0` at the end proves both directions.
#[test]
fn interleaved_regions_soak() {
    let cat = soak_catalog();
    let statements: Vec<String> = workload().into_iter().flatten().collect();
    let reference = {
        let serial = serial_reference(&cat);
        statements
            .iter()
            .map(|sql| fingerprint(&serial.sql(sql).unwrap()))
            .collect::<Vec<_>>()
    };
    let statements = Arc::new(statements);
    let reference = Arc::new(reference);
    // Fails mid evaluation on worker threads (Str column vs Int literal
    // inside a fanned-out region) — not at parse or plan time.
    let runtime_err = "SELECT t.id FROM title t \
                       WHERE t.production_year > 1900 OR t.title > 5";

    for workers in [2usize, 4] {
        const CONTEXTS: usize = 4;
        let server = Arc::new(Server::new(
            cat.clone(),
            ServerConfig::builder()
                .contexts(CONTEXTS)
                .workers(workers)
                // Narrow morsels so even the small soak tables fan out.
                .morsel_rows(128)
                .build()
                .unwrap(),
        ));
        for sql in statements.iter() {
            server.sql(sql).unwrap();
        }

        const CLIENTS: usize = 6;
        const ROUNDS: usize = 2;
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let server = Arc::clone(&server);
                let statements = Arc::clone(&statements);
                let reference = Arc::clone(&reference);
                std::thread::spawn(move || {
                    for round in 0..ROUNDS {
                        for i in 0..statements.len() {
                            // One client poisons its own region mid-round;
                            // everyone else keeps streaming good traffic.
                            if c == 0 && i == statements.len() / 2 {
                                assert!(server.sql(runtime_err).is_err());
                            }
                            let k = (2 * i + c + round) % statements.len();
                            let r = server.sql(&statements[k]).unwrap();
                            assert_eq!(
                                fingerprint(&r),
                                reference[k],
                                "workers={workers} client {c} round {round} \
                                 diverged on: {}",
                                statements[k]
                            );
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let stats = server.stats();
        assert!(
            stats.parallel_regions > 0,
            "workload fanned out regions: {stats:?}"
        );
        assert_eq!(
            stats.region_waits, 0,
            "default region table admits every in-flight region: {stats:?}"
        );
        assert_eq!(stats.region_wait_total_micros, 0);
        assert_eq!(stats.mean_region_wait(), std::time::Duration::ZERO);
        assert!(
            stats.region_max_concurrent as usize <= CONTEXTS,
            "a coordinator holds at most one region slot at a time: {stats:?}"
        );
        assert!(
            stats.errors >= ROUNDS as u64,
            "injected failures surfaced: {stats:?}"
        );
        assert_eq!(
            server.outstanding(),
            0,
            "workers={workers}: failed regions discarded into their \
             producing arenas while concurrent regions proceeded"
        );
    }
}

/// Error paths under concurrency: parse errors, plan errors, bind-type
/// errors and runtime eval errors (serial and parallel) must all surface
/// as errors — and leave every arena with `outstanding() == 0`.
#[test]
fn concurrent_errors_strand_nothing() {
    let cat = soak_catalog();
    let server = Arc::new(Server::new(
        cat,
        ServerConfig::builder()
            .contexts(2)
            .workers(4)
            .morsel_rows(256)
            .build()
            .unwrap(),
    ));
    // A runtime type error (Str column vs Int literal) that fails *mid
    // evaluation* on worker threads.
    let runtime_err = "SELECT t.id FROM title t \
                       WHERE t.production_year > 1900 OR t.title > 5";
    let good = "SELECT t.id FROM title t WHERE t.production_year > 1990";
    let handles: Vec<_> = (0..4)
        .map(|c| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                for round in 0..6 {
                    match (c + round) % 4 {
                        0 => assert!(server.sql(runtime_err).is_err()),
                        1 => assert!(server.sql("SELECT * FROM nope").is_err()),
                        2 => assert!(server.sql("SELECT broken").is_err()),
                        _ => assert!(server.sql(good).unwrap().row_count > 0),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Bind-type error through a prepared handle.
    let stmt = server
        .prepare("SELECT t.id FROM title t WHERE t.title LIKE '%x%'")
        .unwrap();
    assert!(server.execute_prepared(&stmt, &[Value::Int(7)]).is_err());
    let stats = server.stats();
    assert!(stats.errors >= 13, "{stats:?}");
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(
        server.outstanding(),
        0,
        "error paths recycled every buffer into its own arena"
    );
}

/// Plan-cache behavior under eviction pressure: thrashing shapes beyond
/// capacity evicts (counted), a held prepared handle keeps working, and
/// a stable working set returns to pure hits.
#[test]
fn cache_eviction_pressure_keeps_hits_exact() {
    let cat = soak_catalog();
    let server = Server::new(
        cat,
        ServerConfig::builder()
            .contexts(1)
            .workers(1)
            .cache_capacity(2)
            .build()
            .unwrap(),
    );
    let shape = |col: &str, v: i64| format!("SELECT t.id FROM title t WHERE t.{col} > {v}");
    let a = shape("production_year", 1990);
    let b = shape("kind_id", 3);
    let c = shape("id", 100);
    // Prepare A and hold the handle across the eviction storm.
    let held = server.prepare(&a).unwrap();
    let after_prepare = server.stats();

    // Cycle three shapes through a two-slot cache: every round trips at
    // least one eviction once warm.
    for _ in 0..4 {
        for sql in [&a, &b, &c] {
            server.sql(sql).unwrap();
        }
    }
    let s = server.stats();
    assert!(s.cache_evictions > 0, "{s:?}");
    assert_eq!(
        (s.cache_hits + s.cache_misses) - (after_prepare.cache_hits + after_prepare.cache_misses),
        12
    );
    assert!(s.cache_misses >= 3, "three shapes, capacity two");

    // The held handle still executes with zero plan work, evicted or not.
    let planned = server.stats().statements_prepared;
    let r = server.execute_prepared(&held, &[Value::Int(2000)]).unwrap();
    assert!(r.row_count > 0);
    assert_eq!(server.stats().statements_prepared, planned);
    // A live result pins its pooled columns; release it so the final
    // leak check sees a fully drained server.
    drop(r);

    // A stable working set (≤ capacity) becomes pure hits again.
    let before = server.stats();
    for _ in 0..6 {
        server.sql(&a).unwrap();
        server.sql(&b).unwrap();
    }
    let after = server.stats();
    let new_hits = after.cache_hits - before.cache_hits;
    let new_misses = after.cache_misses - before.cache_misses;
    assert!(new_misses <= 2, "at most one reload per shape: {after:?}");
    assert_eq!(new_hits + new_misses, 12);
    assert_eq!(server.outstanding(), 0, "evictions leak nothing");
}

/// Admission under pressure: more clients than queue slots; rejected
/// requests error with "busy", accepted ones are all answered, and the
/// high-water mark reflects real concurrency.
#[test]
fn bounded_admission_under_load() {
    let cat = soak_catalog();
    let server = Arc::new(Server::new(
        cat,
        ServerConfig::builder()
            .contexts(1)
            .queue_limit(2)
            .workers(1)
            .build()
            .unwrap(),
    ));
    let sql = "SELECT t.id FROM title t WHERE t.production_year > 1950 \
               AND t.title LIKE '%a%' OR t.kind_id IN (1, 2, 3)";
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let mut ok = 0u64;
                let mut busy = 0u64;
                for _ in 0..20 {
                    match server.sql(sql) {
                        Ok(r) => {
                            assert!(r.row_count > 0);
                            ok += 1;
                        }
                        Err(e) => {
                            assert!(e.to_string().contains("busy"), "{e}");
                            busy += 1;
                        }
                    }
                }
                (ok, busy)
            })
        })
        .collect();
    let (mut ok, mut busy) = (0, 0);
    for h in handles {
        let (o, b) = h.join().unwrap();
        ok += o;
        busy += b;
    }
    assert_eq!(ok + busy, 120);
    let s = server.stats();
    assert_eq!(s.statements_executed, ok);
    assert_eq!(s.rejected, busy);
    assert!(s.queue_high_water <= 2, "bounded by the queue limit");
    assert_eq!(s.queue_depth, 0);
    assert_eq!(server.outstanding(), 0);
}

/// The PR-7 fairness pin: one flood client hammering ad-hoc SQL from
/// three threads — at *High* priority, the most bandwidth the
/// deficit-round-robin dispatcher will sell — must not starve polite
/// single-threaded prepared clients, and must not be starved itself.
///
/// Checks, on one shared two-context server:
///
/// - every polite client completes its fixed run while the flood is
///   live (the old strict-FIFO gate let the flood take 3 of every 4
///   grants);
/// - per-lane throughput stays within a 4× band: DRR grants the
///   high-priority flood lane at most ~2× a normal lane's bandwidth, no
///   matter how many threads feed it;
/// - lane counters reconcile exactly with the server totals
///   (`sum(dispatched) == statements_executed`, all lanes drained,
///   nothing rejected) and the usual invariants hold (`region_waits ==
///   0`, `outstanding() == 0`).
#[test]
fn flood_client_cannot_starve_polite_lanes() {
    let cat = soak_catalog();
    let server = Arc::new(Server::new(
        cat,
        ServerConfig::builder()
            .contexts(2)
            .workers(1)
            .build()
            .unwrap(),
    ));
    const POLITE: usize = 3;
    const PER: u64 = 30;

    let prepared = server
        .prepare(
            "SELECT t0.id FROM t0 JOIN t1 ON t0.id = t1.fid \
             WHERE t1.a1 < 0.4 OR t1.a2 < 0.3",
        )
        .unwrap();
    let polite: Vec<_> = (0..POLITE)
        .map(|p| {
            let server = Arc::clone(&server);
            let prepared = prepared.clone();
            std::thread::spawn(move || {
                let tag = format!("polite-{p}");
                for i in 0..PER {
                    let x = 0.2 + 0.01 * (i % 7) as f64;
                    let params = [Value::Float(x), Value::Float(x / 2.0)];
                    let r = server
                        .submit(Request::prepared(&prepared, &params).client(&tag))
                        .unwrap();
                    assert!(r.cache_hit, "prepared bindings re-use the plan");
                }
            })
        })
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    let flood: Vec<_> = (0..3)
        .map(|_| {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let x = 0.1 + 0.001 * (n % 50) as f64;
                    let sql = format!(
                        "SELECT t0.id FROM t0 JOIN t1 ON t0.id = t1.fid \
                         WHERE t1.a2 < {x} OR t1.a3 < {x:.4}"
                    );
                    server
                        .submit(Request::sql(&sql).client("flood").priority(Priority::High))
                        .unwrap();
                    n += 1;
                }
                n
            })
        })
        .collect();

    for h in polite {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let flood_done: u64 = flood.into_iter().map(|h| h.join().unwrap()).sum();

    let s = server.stats();
    assert_eq!(s.errors, 0);
    assert_eq!(s.lanes.len(), POLITE + 1, "one lane per client tag");
    for lane in &s.lanes {
        assert_eq!(lane.depth, 0, "lane {} drained", lane.client);
        assert_eq!(lane.rejected, 0, "queue_limit was never hit");
        assert_eq!(
            lane.admitted, lane.dispatched,
            "lane {}: every admitted ticket was granted",
            lane.client
        );
        if lane.client != "flood" {
            assert_eq!(
                lane.dispatched, PER,
                "lane {} finished its run",
                lane.client
            );
        }
    }
    let flood_lane = s.lanes.iter().find(|l| l.client == "flood").unwrap();
    assert_eq!(flood_lane.dispatched, flood_done);
    assert!(
        flood_lane.wait_total_micros > 0,
        "the flood actually queued"
    );

    // The fairness band: three threads of high-priority flood buy at
    // most ~2× one polite lane's bandwidth, and the flood is not
    // starved either.
    let max = s.lanes.iter().map(|l| l.dispatched).max().unwrap();
    let min = s.lanes.iter().map(|l| l.dispatched).min().unwrap();
    assert!(
        max <= 4 * min,
        "lane throughput spread {max}/{min} exceeds the DRR band \
         (flood {flood_done}, polite {PER} each)"
    );

    // Counters reconcile exactly with the server totals.
    assert_eq!(
        s.lanes.iter().map(|l| l.dispatched).sum::<u64>(),
        s.statements_executed
    );
    assert!(s.queue_high_water >= 1, "contention actually happened");
    assert_eq!(s.queue_depth, 0);
    assert_eq!(s.region_waits, 0);
    assert_eq!(server.outstanding(), 0);
}

#[test]
#[ignore]
fn profile_single_client() {
    let cat = soak_catalog();
    let server = Server::new(
        cat,
        ServerConfig::builder()
            .contexts(3)
            .workers(4)
            .morsel_rows(256)
            .build()
            .unwrap(),
    );
    for sql in workload().into_iter().flatten() {
        let t0 = std::time::Instant::now();
        let r = server.sql(&sql).unwrap();
        println!(
            "{:>10.1?} rows={:<6} {}",
            t0.elapsed(),
            r.row_count,
            &sql[..60.min(sql.len())]
        );
        let t0 = std::time::Instant::now();
        let r2 = server.sql(&sql).unwrap();
        println!(
            "{:>10.1?} rows={:<6} (cached repeat)",
            t0.elapsed(),
            r2.row_count
        );
    }
}
