//! Failing fixture: names an encoded column's raw buffer accessor
//! outside crates/storage.

fn peek(enc: &basilisk_storage::EncodedColumn) -> usize {
    // The string below must NOT fire (scanner blanks string contents);
    // the call on the next line must.
    let _doc = "raw_codes is storage-private";
    enc.raw_codes().len()
}
