//! Traditional relational operators over index relations.

use std::sync::Arc;

use basilisk_expr::eval::eval_node_mask;
use basilisk_expr::{ColumnRef, ExprId, PredicateTree};
use basilisk_storage::Column;
use basilisk_types::{BasiliskError, MaskArena, Result};

use crate::hash::JoinTable;
use crate::relation::{join_key, IdxRelation, RelProvider, TableSet};

/// Filter: evaluate a predicate-tree node over the relation and keep the
/// tuples where it is *true* (SQL WHERE semantics — unknown drops).
///
/// Uses the vectorized [`TruthMask`](basilisk_types::TruthMask) path, so
/// the traditional engine and the tagged engine share one evaluation
/// kernel and their benchmark comparison stays apples-to-apples. All
/// scratch (the all-ones selection, the result mask, the index decode
/// buffer) comes from `arena` and is recycled before returning.
pub fn filter(
    tables: &TableSet,
    relation: &IdxRelation,
    tree: &PredicateTree,
    node: ExprId,
    arena: &MaskArena,
) -> Result<IdxRelation> {
    let provider = RelProvider::new(tables, relation);
    let sel = arena.bitmap_ones(relation.len());
    let mask = eval_node_mask(tree, node, &provider, &sel, arena)?;
    let out = relation.select_bitmap_in(mask.trues(), arena);
    arena.recycle_bitmap(sel);
    arena.recycle_mask(mask);
    Ok(out)
}

/// Which side of a hash join the hash table is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinSide {
    Left,
    Right,
    /// Build from whichever input has fewer tuples (the paper estimates
    /// both sides and picks the cheaper one).
    Smaller,
}

/// Hash equi-join of two index relations on `left_key = right_key`.
///
/// NULL keys never match. The output covers the union of both sides'
/// tables, in left-then-right column order.
pub fn hash_join(
    tables: &TableSet,
    left: &IdxRelation,
    right: &IdxRelation,
    left_key: &ColumnRef,
    right_key: &ColumnRef,
    side: JoinSide,
) -> Result<IdxRelation> {
    if !left.covers(&left_key.table) || !right.covers(&right_key.table) {
        return Err(BasiliskError::Exec(format!(
            "join keys {left_key} / {right_key} not covered by inputs"
        )));
    }
    let build_left = match side {
        JoinSide::Left => true,
        JoinSide::Right => false,
        JoinSide::Smaller => left.len() <= right.len(),
    };
    let (build, probe, build_key, probe_key) = if build_left {
        (left, right, left_key, right_key)
    } else {
        (right, left, right_key, left_key)
    };

    let build_col = fetch_key_column(tables, build, build_key)?;
    let probe_col = fetch_key_column(tables, probe, probe_key)?;

    // One hash table for the whole build side (§2.5.3's "one giant hash
    // table" — in the untagged engine there are no slices to share it
    // across, but the structure is identical). CSR layout + FxHash: no
    // per-key Vec allocations, no SipHash on the hot path.
    let table = JoinTable::build(&build_col, |i| i as u32);

    let mut build_sel: Vec<u32> = Vec::new();
    let mut probe_sel: Vec<u32> = Vec::new();
    for j in 0..probe.len() {
        if let Some(k) = join_key(&probe_col, j) {
            for &i in table.probe(&k) {
                build_sel.push(i);
                probe_sel.push(j as u32);
            }
        }
    }

    let (left_sel, right_sel) = if build_left {
        (build_sel, probe_sel)
    } else {
        (probe_sel, build_sel)
    };
    Ok(combine(left, right, &left_sel, &right_sel))
}

/// Assemble the joined relation from per-side tuple selections.
pub fn combine(
    left: &IdxRelation,
    right: &IdxRelation,
    left_sel: &[u32],
    right_sel: &[u32],
) -> IdxRelation {
    debug_assert_eq!(left_sel.len(), right_sel.len());
    let mut tables = Vec::with_capacity(left.tables().len() + right.tables().len());
    let mut cols = Vec::with_capacity(tables.capacity());
    for (t, c) in left.tables().iter().zip(left.cols()) {
        tables.push(t.clone());
        cols.push(Arc::new(
            left_sel
                .iter()
                .map(|&i| c[i as usize])
                .collect::<Vec<u32>>(),
        ));
    }
    for (t, c) in right.tables().iter().zip(right.cols()) {
        tables.push(t.clone());
        cols.push(Arc::new(
            right_sel
                .iter()
                .map(|&i| c[i as usize])
                .collect::<Vec<u32>>(),
        ));
    }
    IdxRelation::from_parts(tables, cols)
}

fn fetch_key_column(tables: &TableSet, relation: &IdxRelation, key: &ColumnRef) -> Result<Column> {
    let handle = tables.column(key)?;
    handle.gather(relation.col(&key.table)?)
}

/// Union with duplicate elimination — the operator BDisj appends to merge
/// per-root-clause results (§5: "an additional, potentially expensive
/// union operator is also required to filter out duplicate tuples").
/// Tuples are identified by their base-table indices; inputs must cover
/// the same tables (column order may differ).
pub fn union_all_dedup(inputs: &[IdxRelation]) -> Result<IdxRelation> {
    let Some(first) = inputs.first() else {
        return Err(BasiliskError::Exec("union of zero inputs".into()));
    };
    let ref_tables: Vec<String> = first.tables().to_vec();
    let mut seen: crate::hash::FxHashSet<Vec<u32>> = crate::hash::FxHashSet::default();
    let mut out_cols: Vec<Vec<u32>> = vec![Vec::new(); ref_tables.len()];

    for rel in inputs {
        // Map reference column order onto this input's order.
        let perm: Vec<usize> = ref_tables
            .iter()
            .map(|t| {
                rel.tables()
                    .iter()
                    .position(|u| u == t)
                    .ok_or_else(|| BasiliskError::Exec(format!("union input missing table {t}")))
            })
            .collect::<Result<_>>()?;
        if rel.tables().len() != ref_tables.len() {
            return Err(BasiliskError::Exec(
                "union inputs cover different table sets".into(),
            ));
        }
        for i in 0..rel.len() {
            let tuple: Vec<u32> = perm.iter().map(|&p| rel.cols()[p][i]).collect();
            if seen.insert(tuple.clone()) {
                for (c, v) in out_cols.iter_mut().zip(&tuple) {
                    c.push(*v);
                }
            }
        }
    }
    Ok(IdxRelation::from_parts(
        ref_tables,
        out_cols.into_iter().map(Arc::new).collect(),
    ))
}

/// Projection: materialize the requested columns' values for every tuple.
pub fn project(
    tables: &TableSet,
    relation: &IdxRelation,
    columns: &[ColumnRef],
) -> Result<Vec<(ColumnRef, Column)>> {
    let mut out = Vec::with_capacity(columns.len());
    for cref in columns {
        let handle = tables.column(cref)?;
        let rows = relation.col(&cref.table)?;
        out.push((cref.clone(), handle.gather(rows)?));
    }
    Ok(out)
}

/// Count-only projection (the figure harnesses verify result cardinality
/// without materializing values).
pub fn project_count(relation: &IdxRelation) -> usize {
    relation.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use basilisk_expr::{and, col, or, PredicateTree};
    use basilisk_storage::{Table, TableBuilder};
    use basilisk_types::{DataType, MaskArena, Value};

    fn title() -> Arc<Table> {
        let mut b = TableBuilder::new("title")
            .column("id", DataType::Int)
            .column("year", DataType::Int);
        for (id, year) in [(1, 2008), (2, 2001), (3, 1994), (4, 1994), (5, 1972)] {
            b.push_row(vec![(id as i64).into(), (year as i64).into()])
                .unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    fn scores() -> Arc<Table> {
        let mut b = TableBuilder::new("scores")
            .column("movie_id", DataType::Int)
            .column("score", DataType::Str);
        for (mid, s) in [(1, "9.0"), (3, "9.3"), (4, "8.9"), (5, "9.2"), (6, "7.5")] {
            b.push_row(vec![(mid as i64).into(), s.into()]).unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    fn tset() -> TableSet {
        TableSet::from_tables(vec![("t".into(), title()), ("s".into(), scores())])
    }

    #[test]
    fn filter_keeps_true_rows() {
        let ts = tset();
        let rel = IdxRelation::base("t", 5);
        let tree = PredicateTree::build(&col("t", "year").gt(2000i64));
        let out = filter(&ts, &rel, &tree, tree.root(), &MaskArena::new()).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(**out.col("t").unwrap(), vec![0, 1]);
    }

    #[test]
    fn filter_complex_predicate() {
        let ts = tset();
        let rel = IdxRelation::base("t", 5);
        let e = or(vec![
            col("t", "year").gt(2000i64),
            col("t", "year").lt(1980i64),
        ]);
        let tree = PredicateTree::build(&e);
        let out = filter(&ts, &rel, &tree, tree.root(), &MaskArena::new()).unwrap();
        assert_eq!(out.len(), 3); // 2008, 2001, 1972
    }

    #[test]
    fn hash_join_matches_keys() {
        let ts = tset();
        let t = IdxRelation::base("t", 5);
        let s = IdxRelation::base("s", 5);
        let out = hash_join(
            &ts,
            &t,
            &s,
            &ColumnRef::new("t", "id"),
            &ColumnRef::new("s", "movie_id"),
            JoinSide::Smaller,
        )
        .unwrap();
        // t ids 1..5 join s movie_ids {1,3,4,5,6} → 4 matches.
        assert_eq!(out.len(), 4);
        assert_eq!(out.tables(), &["t".to_string(), "s".to_string()]);
        // verify a concrete pair: t.id=1 ↔ s.movie_id=1
        let tcol = out.col("t").unwrap();
        let scol = out.col("s").unwrap();
        let pos = (0..out.len()).find(|&i| tcol[i] == 0).unwrap();
        assert_eq!(scol[pos], 0);
    }

    #[test]
    fn hash_join_build_side_invariant() {
        let ts = tset();
        let t = IdxRelation::base("t", 5);
        let s = IdxRelation::base("s", 5);
        let lk = ColumnRef::new("t", "id");
        let rk = ColumnRef::new("s", "movie_id");
        let a = hash_join(&ts, &t, &s, &lk, &rk, JoinSide::Left).unwrap();
        let b = hash_join(&ts, &t, &s, &lk, &rk, JoinSide::Right).unwrap();
        assert_eq!(a.len(), b.len());
        let mut pa: Vec<(u32, u32)> = (0..a.len())
            .map(|i| (a.col("t").unwrap()[i], a.col("s").unwrap()[i]))
            .collect();
        let mut pb: Vec<(u32, u32)> = (0..b.len())
            .map(|i| (b.col("t").unwrap()[i], b.col("s").unwrap()[i]))
            .collect();
        pa.sort_unstable();
        pb.sort_unstable();
        assert_eq!(pa, pb);
    }

    #[test]
    fn hash_join_null_keys_never_match() {
        let mut b = TableBuilder::new("l").column("k", DataType::Int);
        b.push_row(vec![Value::Null]).unwrap();
        b.push_row(vec![1i64.into()]).unwrap();
        let l = Arc::new(b.finish().unwrap());
        let mut b = TableBuilder::new("r").column("k", DataType::Int);
        b.push_row(vec![Value::Null]).unwrap();
        b.push_row(vec![1i64.into()]).unwrap();
        let r = Arc::new(b.finish().unwrap());
        let ts = TableSet::from_tables(vec![("l".into(), l), ("r".into(), r)]);
        let out = hash_join(
            &ts,
            &IdxRelation::base("l", 2),
            &IdxRelation::base("r", 2),
            &ColumnRef::new("l", "k"),
            &ColumnRef::new("r", "k"),
            JoinSide::Smaller,
        )
        .unwrap();
        assert_eq!(out.len(), 1, "only the 1=1 pair; NULL≠NULL");
    }

    #[test]
    fn join_key_not_covered_errors() {
        let ts = tset();
        let t = IdxRelation::base("t", 5);
        let s = IdxRelation::base("s", 5);
        assert!(hash_join(
            &ts,
            &t,
            &s,
            &ColumnRef::new("s", "movie_id"),
            &ColumnRef::new("t", "id"),
            JoinSide::Smaller,
        )
        .is_err());
    }

    #[test]
    fn union_dedups_across_inputs() {
        let a = IdxRelation::base("t", 5).select(&[0, 1, 2]);
        let b = IdxRelation::base("t", 5).select(&[2, 3]);
        let u = union_all_dedup(&[a, b]).unwrap();
        assert_eq!(u.len(), 4);
        let mut rows: Vec<u32> = u.col("t").unwrap().to_vec();
        rows.sort_unstable();
        assert_eq!(rows, vec![0, 1, 2, 3]);
    }

    #[test]
    fn union_handles_column_order_permutation() {
        // Build two joined relations with swapped table order.
        let ts = tset();
        let t = IdxRelation::base("t", 5);
        let s = IdxRelation::base("s", 5);
        let lk = ColumnRef::new("t", "id");
        let rk = ColumnRef::new("s", "movie_id");
        let ab = hash_join(&ts, &t, &s, &lk, &rk, JoinSide::Smaller).unwrap();
        let ba = hash_join(&ts, &s, &t, &rk, &lk, JoinSide::Smaller).unwrap();
        let u = union_all_dedup(&[ab.clone(), ba]).unwrap();
        assert_eq!(u.len(), ab.len(), "identical content dedups fully");
    }

    #[test]
    fn union_rejects_mismatched_tables() {
        let a = IdxRelation::base("t", 3);
        let b = IdxRelation::base("u", 3);
        assert!(union_all_dedup(&[a, b]).is_err());
        assert!(union_all_dedup(&[]).is_err());
    }

    #[test]
    fn project_materializes_values() {
        let ts = tset();
        let rel = IdxRelation::base("t", 5).select(&[4, 0]);
        let out = project(
            &ts,
            &rel,
            &[ColumnRef::new("t", "id"), ColumnRef::new("t", "year")],
        )
        .unwrap();
        assert_eq!(out[0].1.as_ints().unwrap(), &[5, 1]);
        assert_eq!(out[1].1.as_ints().unwrap(), &[1972, 2008]);
        assert_eq!(project_count(&rel), 2);
    }

    /// End-to-end Query 1 under traditional execution, all predicates
    /// applied after the join (the "no optimization" baseline of §1).
    #[test]
    fn query1_join_then_filter() {
        let ts = tset();
        let joined = hash_join(
            &ts,
            &IdxRelation::base("t", 5),
            &IdxRelation::base("s", 5),
            &ColumnRef::new("t", "id"),
            &ColumnRef::new("s", "movie_id"),
            JoinSide::Smaller,
        )
        .unwrap();
        let q1 = or(vec![
            and(vec![
                col("t", "year").gt(2000i64),
                col("s", "score").gt("7.0"),
            ]),
            and(vec![
                col("t", "year").gt(1980i64),
                col("s", "score").gt("8.0"),
            ]),
        ]);
        let tree = PredicateTree::build(&q1);
        let out = filter(&ts, &joined, &tree, tree.root(), &MaskArena::new()).unwrap();
        // Matches: (1,2008,9.0) via both clauses; (3,1994,9.3) and
        // (4,1994,8.9) via clause 2. Movie 5 (1972) fails both.
        assert_eq!(out.len(), 3);
    }
}
