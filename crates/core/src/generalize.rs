//! Tag generalization — Algorithm 1 (§3.2) with the three-valued extension
//! of §3.4 and optional atom-implication enrichment.
//!
//! `GeneralizeTag` propagates a tag's assignments upward in the predicate
//! tree wherever Boolean implication allows:
//!
//! * (a) the parent is a NOT node;
//! * (b) the assignment is *true* and the parent is an OR node;
//! * (c) the assignment is *false* and the parent is an AND node;
//! * (d) the parent is an OR node and all its children are assigned
//!   false-or-unknown (3VL: the parent gets the OR-fold, e.g.
//!   `false OR unknown → unknown`);
//! * (e) the parent is an AND node and all its children are assigned
//!   true-or-unknown (AND-fold).
//!
//! `topmostAssignments` then keeps only assignments with no assigned
//! ancestor on *some* root path — an assignment is dropped only when
//! **every** instance (= every upward path, since duplicates share a DAG
//! node) is covered, which is what lets tagged execution evaluate each
//! duplicated predicate exactly once.

use std::collections::BTreeMap;

use basilisk_expr::subsume::Closure;
use basilisk_expr::{ExprId, NodeKind, PredicateTree};
use basilisk_types::Truth;

use crate::tag::Tag;

/// Pure Algorithm 1: generalize a tag by Boolean propagation only.
pub fn generalize_tag(tree: &PredicateTree, tag: &Tag) -> Tag {
    let mut asg = tag.to_map();
    propagate(tree, &mut asg);
    topmost(tree, &asg)
}

/// Generalize with the atom-implication closure applied first (the
/// "smart planner" variant used by the §3.3 tag-map builders): implied
/// atom assignments (`year > 2000 = T ⇒ year > 1980 = T`) are added before
/// upward propagation, which both shrinks the tag space further and
/// exposes root assignments earlier.
///
/// Returns `None` when the closure finds the assignment set
/// unsatisfiable — the corresponding relational slice is provably empty
/// and the planner can discard it outright.
pub fn generalize_tag_closed(
    tree: &PredicateTree,
    closure: Option<&Closure<'_>>,
    tag: &Tag,
) -> Option<Tag> {
    let mut asg = tag.to_map();
    if let Some(c) = closure {
        if !c.close(&mut asg) {
            return None;
        }
    }
    propagate(tree, &mut asg);
    Some(topmost(tree, &asg))
}

/// The truth value of the *root* (the query's whole predicate expression)
/// determined by a tag, if any. `Some(True)` means every tuple in the
/// slice belongs to the final result; `Some(False)`/`Some(Unknown)` means
/// none does (Precept 1 + §3.4); `None` means undetermined — more filters
/// are needed.
pub fn root_truth(tree: &PredicateTree, closure: Option<&Closure<'_>>, tag: &Tag) -> Option<Truth> {
    let mut asg = tag.to_map();
    if let Some(c) = closure {
        if !c.close(&mut asg) {
            // Unsatisfiable slice: treat as "never in the result".
            return Some(Truth::False);
        }
    }
    propagate(tree, &mut asg);
    asg.get(&tree.root()).copied()
}

/// Fringe-based upward propagation (the core loop of Algorithm 1).
fn propagate(tree: &PredicateTree, asg: &mut BTreeMap<ExprId, Truth>) {
    let mut fringe: Vec<ExprId> = asg.keys().copied().collect();
    while let Some(pred) = fringe.pop() {
        let value = asg[&pred];
        for &parent in tree.parents(pred) {
            if asg.contains_key(&parent) {
                continue;
            }
            let propagated = match tree.kind(parent) {
                // (a) NOT always propagates, negating.
                NodeKind::Not(_) => Some(value.not()),
                NodeKind::Or(children) => {
                    if value == Truth::True {
                        // (b) true short-circuits OR.
                        Some(Truth::True)
                    } else if children
                        .iter()
                        .all(|c| matches!(asg.get(c), Some(Truth::False) | Some(Truth::Unknown)))
                    {
                        // (d) all children false/unknown: 3VL OR-fold.
                        Some(Truth::any(children.iter().map(|c| asg[c])))
                    } else {
                        None
                    }
                }
                NodeKind::And(children) => {
                    if value == Truth::False {
                        // (c) false short-circuits AND.
                        Some(Truth::False)
                    } else if children
                        .iter()
                        .all(|c| matches!(asg.get(c), Some(Truth::True) | Some(Truth::Unknown)))
                    {
                        // (e) all children true/unknown: 3VL AND-fold.
                        Some(Truth::all(children.iter().map(|c| asg[c])))
                    } else {
                        None
                    }
                }
                NodeKind::Atom(_) => unreachable!("atoms have no children"),
            };
            if let Some(v) = propagated {
                asg.insert(parent, v);
                fringe.push(parent);
            }
        }
    }
}

/// Collect only the topmost assignments: walk down from the root, stopping
/// at the first assigned node on each path.
fn topmost(tree: &PredicateTree, asg: &BTreeMap<ExprId, Truth>) -> Tag {
    if asg.is_empty() {
        return Tag::empty();
    }
    let mut out: BTreeMap<ExprId, Truth> = BTreeMap::new();
    let mut visited = vec![false; tree.len()];
    collect_topmost(tree, tree.root(), asg, &mut out, &mut visited);
    Tag::from_map(&out)
}

fn collect_topmost(
    tree: &PredicateTree,
    node: ExprId,
    asg: &BTreeMap<ExprId, Truth>,
    out: &mut BTreeMap<ExprId, Truth>,
    visited: &mut [bool],
) {
    if let Some(&v) = asg.get(&node) {
        out.insert(node, v);
        return;
    }
    if visited[node.index()] {
        return;
    }
    visited[node.index()] = true;
    for &c in tree.children(node) {
        collect_topmost(tree, c, asg, out, visited);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basilisk_expr::{and, col, not, or, Expr};

    /// Query 1's predicate tree:
    /// (P1: year>2000 ∧ P4: score>'7.0') ∨ (P2: year>1980 ∧ P3: score>'8.0')
    fn query1() -> (PredicateTree, [ExprId; 4], [ExprId; 2]) {
        let e = or(vec![
            and(vec![
                col("t", "year").gt(2000i64),
                col("mi_idx", "score").gt("7.0"),
            ]),
            and(vec![
                col("t", "year").gt(1980i64),
                col("mi_idx", "score").gt("8.0"),
            ]),
        ]);
        let tree = PredicateTree::build(&e);
        let find = |text: &str| {
            tree.atom_ids()
                .into_iter()
                .find(|&id| tree.display(id) == text)
                .unwrap()
        };
        let p1 = find("t.year > 2000");
        let p2 = find("t.year > 1980");
        let p3 = find("mi_idx.score > '8.0'");
        let p4 = find("mi_idx.score > '7.0'");
        // a1 = P1 ∧ P4, a2 = P2 ∧ P3
        let a1 = *tree.parents(p1).iter().find(|&&p| tree.is_and(p)).unwrap();
        let a2 = *tree.parents(p2).iter().find(|&&p| tree.is_and(p)).unwrap();
        (tree, [p1, p2, p3, p4], [a1, a2])
    }

    /// The paper's Figure 2 walkthrough: {P1=F, P2=T, P3=T} → {root = T}.
    #[test]
    fn figure2_walkthrough() {
        let (tree, [p1, p2, p3, _p4], _) = query1();
        let tag = Tag::from_pairs([(p1, Truth::False), (p2, Truth::True), (p3, Truth::True)]);
        let g = generalize_tag(&tree, &tag);
        assert_eq!(g, Tag::from_pairs([(tree.root(), Truth::True)]));
    }

    /// §3.3's example: {P1=F} generalizes to {P1∧P4 = F} (the false
    /// assignment climbs to the AND but no further).
    #[test]
    fn false_climbs_to_and_only() {
        let (tree, [p1, ..], [a1, _a2]) = query1();
        let tag = Tag::from_pairs([(p1, Truth::False)]);
        let g = generalize_tag(&tree, &tag);
        assert_eq!(g, Tag::from_pairs([(a1, Truth::False)]));
    }

    /// §3.3: {A1=F, P2=F} generalizes to root=F (movies before 1980 are
    /// out entirely) — Precept 1's discard signal.
    #[test]
    fn both_clauses_false_gives_root_false() {
        let (tree, [_, p2, ..], [a1, _]) = query1();
        let tag = Tag::from_pairs([(a1, Truth::False), (p2, Truth::False)]);
        let g = generalize_tag(&tree, &tag);
        assert_eq!(g, Tag::from_pairs([(tree.root(), Truth::False)]));
    }

    /// A true assignment alone cannot climb through an AND.
    #[test]
    fn true_does_not_climb_and_alone() {
        let (tree, [p1, ..], _) = query1();
        let tag = Tag::from_pairs([(p1, Truth::True)]);
        let g = generalize_tag(&tree, &tag);
        assert_eq!(g, tag, "no propagation possible");
    }

    #[test]
    fn empty_tag_stays_empty() {
        let (tree, ..) = query1();
        assert_eq!(generalize_tag(&tree, &Tag::empty()), Tag::empty());
    }

    /// Idempotence: generalizing twice changes nothing.
    #[test]
    fn idempotent() {
        let (tree, [p1, p2, p3, p4], _) = query1();
        for tag in [
            Tag::from_pairs([(p1, Truth::False)]),
            Tag::from_pairs([(p1, Truth::True), (p4, Truth::True)]),
            Tag::from_pairs([(p2, Truth::False), (p3, Truth::Unknown)]),
        ] {
            let g1 = generalize_tag(&tree, &tag);
            let g2 = generalize_tag(&tree, &g1);
            assert_eq!(g1, g2);
        }
    }

    /// 3VL propagation (§3.4): false OR unknown → unknown at the root.
    #[test]
    fn three_valued_or_fold() {
        let (tree, [p1, p2, _p3, p4], [a1, a2]) = query1();
        // A1 = F via P1=F; A2 unknown via P2=U (year NULL) and P3... —
        // drive A2 to U directly: P2=U, P3 must also be assigned for the
        // fold; use P2=U, P3=T: U AND T = U.
        let p3 = {
            // find P3 again from the tuple
            let _ = p4;
            tree.atom_ids()
                .into_iter()
                .find(|&id| tree.display(id) == "mi_idx.score > '8.0'")
                .unwrap()
        };
        let tag = Tag::from_pairs([(p1, Truth::False), (p2, Truth::Unknown), (p3, Truth::True)]);
        let g = generalize_tag(&tree, &tag);
        // A1=F (c); A2 = U∧T = U (e); root = F∨U = U (d).
        assert_eq!(g, Tag::from_pairs([(tree.root(), Truth::Unknown)]));
        let _ = (a1, a2);
    }

    /// NOT propagation (condition (a)) with negation of the value.
    #[test]
    fn not_propagation() {
        let e = and(vec![not(col("t", "x").is_null()), col("t", "y").gt(1i64)]);
        let tree = PredicateTree::build(&e);
        let isnull = tree
            .atom_ids()
            .into_iter()
            .find(|&id| tree.display(id) == "t.x IS NULL")
            .unwrap();
        let tag = Tag::from_pairs([(isnull, Truth::True)]);
        let g = generalize_tag(&tree, &tag);
        // IS NULL = T → NOT(...) = F → AND = F = root.
        assert_eq!(g, Tag::from_pairs([(tree.root(), Truth::False)]));
        // Unknown through NOT stays unknown (can't conclude root).
        let tag = Tag::from_pairs([(isnull, Truth::Unknown)]);
        let g = generalize_tag(&tree, &tag);
        let not_node = tree.parents(isnull)[0];
        assert_eq!(g, Tag::from_pairs([(not_node, Truth::Unknown)]));
    }

    /// Duplicate subexpressions: A appears in both clauses of
    /// (A∧B) ∨ (A∧C). A=F kills both clauses at once.
    #[test]
    fn duplicate_atom_false_kills_both_clauses() {
        let a = || col("t", "a").gt(1i64);
        let e = or(vec![
            and(vec![a(), col("t", "b").gt(2i64)]),
            and(vec![a(), col("t", "c").gt(3i64)]),
        ]);
        let tree = PredicateTree::build(&e);
        let a_id = tree
            .atom_ids()
            .into_iter()
            .find(|&id| tree.display(id) == "t.a > 1")
            .unwrap();
        let g = generalize_tag(&tree, &Tag::from_pairs([(a_id, Truth::False)]));
        assert_eq!(g, Tag::from_pairs([(tree.root(), Truth::False)]));
        // A=T propagates into neither clause; topmost keeps A itself
        // because at least one instance is uncovered.
        let g = generalize_tag(&tree, &Tag::from_pairs([(a_id, Truth::True)]));
        assert_eq!(g, Tag::from_pairs([(a_id, Truth::True)]));
    }

    /// Duplicate instance partially covered: assignment survives topmost
    /// because one path to the root is uncovered.
    #[test]
    fn partial_coverage_keeps_assignment() {
        let a = || col("t", "a").gt(1i64);
        let b = col("t", "b").gt(2i64);
        let c = col("t", "c").gt(3i64);
        let e = or(vec![and(vec![a(), b]), and(vec![a(), c])]);
        let tree = PredicateTree::build(&e);
        let find = |s: &str| {
            tree.atom_ids()
                .into_iter()
                .find(|&id| tree.display(id) == s)
                .unwrap()
        };
        let a_id = find("t.a > 1");
        let b_id = find("t.b > 2");
        // A=T, B=T → clause1 = T → root = T; everything collapses.
        let g = generalize_tag(
            &tree,
            &Tag::from_pairs([(a_id, Truth::True), (b_id, Truth::True)]),
        );
        assert_eq!(g, Tag::from_pairs([(tree.root(), Truth::True)]));
        // A=T, B=F → clause1 = F; A=T still visible through clause2's path.
        let g = generalize_tag(
            &tree,
            &Tag::from_pairs([(a_id, Truth::True), (b_id, Truth::False)]),
        );
        let and1 = tree
            .parents(b_id)
            .iter()
            .copied()
            .find(|&p| tree.is_and(p))
            .unwrap();
        assert_eq!(
            g,
            Tag::from_pairs([(and1, Truth::False), (a_id, Truth::True)])
        );
    }

    /// Closure-enriched generalization reproduces the paper's §2 example:
    /// with subsumption, {year>2000 = T, score>'8.0' = T} determines the
    /// root even though plain propagation cannot.
    #[test]
    fn closure_enrichment_determines_root() {
        let (tree, [p1, _p2, p3, _p4], _) = query1();
        let closure = Closure::new(&tree);
        let tag = Tag::from_pairs([(p1, Truth::True), (p3, Truth::True)]);
        // Plain Algorithm 1: stuck (each AND is missing a child).
        let plain = generalize_tag(&tree, &tag);
        assert_eq!(plain, tag);
        // With closure: P1=T ⇒ P2=T, P3=T ⇒ P4=T ⇒ both clauses true.
        let closed = generalize_tag_closed(&tree, Some(&closure), &tag).unwrap();
        assert_eq!(closed, Tag::from_pairs([(tree.root(), Truth::True)]));
        assert_eq!(root_truth(&tree, Some(&closure), &tag), Some(Truth::True));
        assert_eq!(root_truth(&tree, None, &tag), None);
    }

    /// Contradictory tags are flagged.
    #[test]
    fn contradiction_returns_none() {
        let e: Expr = or(vec![col("t", "x").lt(5i64), col("t", "x").gt(9i64)]);
        let tree = PredicateTree::build(&e);
        let find = |s: &str| {
            tree.atom_ids()
                .into_iter()
                .find(|&id| tree.display(id) == s)
                .unwrap()
        };
        let closure = Closure::new(&tree);
        let tag = Tag::from_pairs([
            (find("t.x < 5"), Truth::True),
            (find("t.x > 9"), Truth::True),
        ]);
        assert_eq!(generalize_tag_closed(&tree, Some(&closure), &tag), None);
        assert_eq!(
            root_truth(&tree, Some(&closure), &tag),
            Some(Truth::False),
            "unsatisfiable slice can never reach the output"
        );
    }

    /// root_truth on an already-rooted tag.
    #[test]
    fn root_truth_direct() {
        let (tree, ..) = query1();
        let t = Tag::from_pairs([(tree.root(), Truth::True)]);
        assert_eq!(root_truth(&tree, None, &t), Some(Truth::True));
        let t = Tag::from_pairs([(tree.root(), Truth::False)]);
        assert_eq!(root_truth(&tree, None, &t), Some(Truth::False));
        assert_eq!(root_truth(&tree, None, &Tag::empty()), None);
    }
}
