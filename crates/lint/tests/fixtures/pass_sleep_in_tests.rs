// Fixture: sleep confined to a `#[cfg(test)]` module — `no-sleep`
// stays quiet even though the file itself is production code.

pub fn production_path() {}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    #[test]
    fn slow_consumer() {
        std::thread::sleep(Duration::from_millis(1));
        super::production_path();
    }
}
