//! Synchronization façade: `std::sync` in normal builds, an instrumented
//! schedule-exploring runtime under `--cfg basilisk_check`.
//!
//! The concurrent core of the engine (`basilisk-sched`'s region table,
//! `basilisk-serve`'s deficit-round-robin admission gate) enforces its
//! invariants with tests — but tests only see the schedules the OS
//! happens to produce. This module is how the repo systematically widens
//! that set. Every crate that synchronizes imports `Mutex` / `Condvar` /
//! `RwLock` / atomics **from here instead of `std::sync`** (enforced by
//! `basilisk-lint` for `sched` and `serve`):
//!
//! * **Normal builds** (`cfg(not(basilisk_check))`): every name is a
//!   plain re-export of the `std::sync` original — zero cost, zero
//!   behavior change. The bench gates pin this.
//! * **Check builds** (`RUSTFLAGS="--cfg basilisk_check"`): the same
//!   names resolve to instrumented wrappers that route every sync
//!   operation through a global check runtime which
//!
//!   1. records a **lock-order graph** (an edge `a → b` whenever a
//!      thread acquires `b` while holding `a`, per lock instance) and
//!      panics the moment an edge closes a cycle — a deadlock *potential*
//!      is reported even when the actual deadlock schedule was not hit;
//!   2. injects **seeded PCT-style preemptions**: every sync operation
//!      is a schedule point where the current thread may yield (or spin
//!      briefly) based on a deterministic per-thread decision stream
//!      derived from the installed seed, the thread's stable key (its
//!      name) and its operation count — so a seed corpus explores
//!      thousands of distinct interleavings and a failing seed re-runs
//!      the exact perturbation pattern that exposed it;
//!   3. converts parked condvar waits into bounded slices and panics a
//!      waiter that exceeds the stall budget — turning **missed wakeups
//!      and real deadlocks** into replayable findings instead of hung
//!      CI jobs;
//!   4. keeps a **buffer-ownership registry** used by
//!      [`MaskArena`](crate::MaskArena): pooled mask/bitmap buffers are
//!      tagged with the arena that produced them at checkout and
//!      asserted to recycle into that same arena (ROADMAP parallel
//!      ownership rule 3).
//!
//! The driver lives in the `basilisk-check` crate: scenarios drive the
//! region-table and admission protocols under a seed corpus and replay
//! any failure by seed (`cargo run -p basilisk-check --bin check_model`
//! with `RUSTFLAGS="--cfg basilisk_check"`).
//!
//! Only the API surface the engine actually uses is wrapped (`lock`,
//! `wait`, `notify_*`, `read`/`write`, and the atomic ops on
//! `AtomicBool`/`AtomicU64`/`AtomicUsize`). `Arc`, `Barrier`,
//! `LockResult` and friends are always the `std` originals.

#[cfg(not(basilisk_check))]
pub use std::sync::{
    Arc, Condvar, LockResult, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Atomic types routed through the façade (plus `Ordering`, which is
/// always the `std` enum).
#[cfg(not(basilisk_check))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

#[cfg(basilisk_check)]
pub use std::sync::{Arc, LockResult};

#[cfg(basilisk_check)]
pub use instrumented::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Atomic types routed through the façade (plus `Ordering`, which is
/// always the `std` enum).
#[cfg(basilisk_check)]
pub mod atomic {
    pub use super::instrumented::{AtomicBool, AtomicU64, AtomicUsize};
    pub use std::sync::atomic::Ordering;
}

/// Control surface of the check runtime: seed installation, counter
/// snapshots, and the arena buffer-ownership registry. Only present in
/// `--cfg basilisk_check` builds; the `basilisk-check` explorer is the
/// intended caller.
#[cfg(basilisk_check)]
pub mod check {
    pub use super::instrumented::{
        buffer_produced, buffer_recycled, new_arena_id, reset, set_seed, set_stall_millis, stats,
        CheckStats,
    };
}

#[cfg(basilisk_check)]
mod instrumented {
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::ops::{Deref, DerefMut};
    use std::panic::Location;
    use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as O};
    use std::sync::{
        Condvar as StdCondvar, LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard,
        OnceLock, PoisonError, RwLock as StdRwLock,
    };
    use std::time::Duration;

    /// Granularity of instrumented condvar waits: a parked waiter wakes
    /// every slice to account its stall budget.
    const STALL_SLICE_MS: u64 = 50;
    /// Default stall budget before a parked waiter panics with a
    /// missed-wakeup / deadlock finding.
    const DEFAULT_STALL_MS: u64 = 5_000;

    // ---------------------------------------------------------------
    // Runtime singleton
    // ---------------------------------------------------------------

    #[derive(Default)]
    struct Graph {
        /// `edges[a]` holds every lock `b` some thread acquired while
        /// holding `a`.
        edges: HashMap<u64, Vec<u64>>,
        created: HashMap<u64, &'static Location<'static>>,
    }

    impl Graph {
        /// Depth-first path search `from ⟶* to` over the edge set.
        fn path_exists(&self, from: u64, to: u64, seen: &mut Vec<u64>) -> bool {
            if from == to {
                return true;
            }
            if seen.contains(&from) {
                return false;
            }
            seen.push(from);
            self.edges
                .get(&from)
                .is_some_and(|next| next.iter().any(|&n| self.path_exists(n, to, seen)))
        }

        fn loc(&self, id: u64) -> String {
            self.created
                .get(&id)
                .map(|l| format!("{}:{}", l.file(), l.line()))
                .unwrap_or_else(|| format!("lock #{id}"))
        }
    }

    struct Runtime {
        seed: StdAtomicU64,
        stall_millis: StdAtomicU64,
        next_lock: StdAtomicU64,
        next_thread: StdAtomicU64,
        next_arena: StdAtomicU64,
        schedule_points: StdAtomicU64,
        yields: StdAtomicU64,
        stalls: StdAtomicU64,
        graph: StdMutex<Graph>,
        /// Buffer-ownership registry: heap address of a pooled buffer →
        /// the arena id that checked it out.
        owners: StdMutex<HashMap<usize, u64>>,
    }

    fn rt() -> &'static Runtime {
        static RT: OnceLock<Runtime> = OnceLock::new();
        RT.get_or_init(|| Runtime {
            seed: StdAtomicU64::new(0),
            stall_millis: StdAtomicU64::new(DEFAULT_STALL_MS),
            next_lock: StdAtomicU64::new(1),
            next_thread: StdAtomicU64::new(1),
            next_arena: StdAtomicU64::new(1),
            schedule_points: StdAtomicU64::new(0),
            yields: StdAtomicU64::new(0),
            stalls: StdAtomicU64::new(0),
            graph: StdMutex::new(Graph::default()),
            owners: StdMutex::new(HashMap::new()),
        })
    }

    fn relock<T>(r: LockResult<StdMutexGuard<'_, T>>) -> StdMutexGuard<'_, T> {
        r.unwrap_or_else(PoisonError::into_inner)
    }

    // ---------------------------------------------------------------
    // Control surface (re-exported as `sync::check`)
    // ---------------------------------------------------------------

    /// Counter snapshot of the check runtime since the last [`reset`].
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct CheckStats {
        /// Sync operations that passed through a schedule point.
        pub schedule_points: u64,
        /// Schedule points at which the runtime injected a preemption.
        pub yields: u64,
        /// Condvar waits that blew their stall budget (each also
        /// panicked in the waiting thread).
        pub stalls: u64,
        /// Edges currently in the lock-order graph.
        pub lock_edges: u64,
        /// Buffers currently tracked by the ownership registry.
        pub tracked_buffers: u64,
    }

    /// Install the exploration seed for subsequent schedule decisions.
    pub fn set_seed(seed: u64) {
        rt().seed.store(seed, O::SeqCst);
    }

    /// Override the condvar stall budget (missed-wakeup detection
    /// threshold) in milliseconds.
    pub fn set_stall_millis(ms: u64) {
        rt().stall_millis.store(ms.max(STALL_SLICE_MS), O::SeqCst);
    }

    /// Clear the lock-order graph, the ownership registry, the counters
    /// and the calling thread's decision stream — called by the explorer
    /// between seeds so findings never leak across runs.
    pub fn reset() {
        let r = rt();
        r.schedule_points.store(0, O::SeqCst);
        r.yields.store(0, O::SeqCst);
        r.stalls.store(0, O::SeqCst);
        {
            let mut g = relock(r.graph.lock());
            g.edges.clear();
            g.created.clear();
        }
        relock(r.owners.lock()).clear();
        THREAD.with(|t| *t.borrow_mut() = None);
        HELD.with(|h| h.borrow_mut().clear());
    }

    /// Snapshot the runtime counters.
    pub fn stats() -> CheckStats {
        let r = rt();
        CheckStats {
            schedule_points: r.schedule_points.load(O::SeqCst),
            yields: r.yields.load(O::SeqCst),
            stalls: r.stalls.load(O::SeqCst),
            lock_edges: relock(r.graph.lock())
                .edges
                .values()
                .map(|v| v.len() as u64)
                .sum(),
            tracked_buffers: relock(r.owners.lock()).len() as u64,
        }
    }

    /// Allocate a fresh arena id for the buffer-ownership registry.
    pub fn new_arena_id() -> u64 {
        rt().next_arena.fetch_add(1, O::SeqCst)
    }

    /// Record that arena `arena` checked out the buffer whose heap
    /// storage starts at `key` (0 = untracked, e.g. a zero-capacity
    /// buffer).
    pub fn buffer_produced(key: usize, arena: u64) {
        if key == 0 {
            return;
        }
        relock(rt().owners.lock()).insert(key, arena);
    }

    /// Assert ROADMAP ownership rule 3 at recycle time: a tracked buffer
    /// must return to the arena that produced it. Unknown keys (buffers
    /// born outside any arena, or whose storage was reallocated while
    /// checked out) are allowed through.
    pub fn buffer_recycled(key: usize, arena: u64, shape: &'static str) {
        if key == 0 {
            return;
        }
        if let Some(owner) = relock(rt().owners.lock()).remove(&key) {
            assert!(
                owner == arena,
                "basilisk-check: {shape} buffer produced by arena #{owner} was recycled \
                 into arena #{arena} — buffers must return to the arena that produced them \
                 (ROADMAP parallel ownership rule 3)"
            );
        }
    }

    // ---------------------------------------------------------------
    // Schedule points + lock-order tracking
    // ---------------------------------------------------------------

    struct ThreadState {
        key: u64,
        ops: u64,
    }

    thread_local! {
        static THREAD: RefCell<Option<ThreadState>> = const { RefCell::new(None) };
        /// Lock ids currently held by this thread, acquisition order.
        static HELD: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    }

    fn splitmix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    fn fnv(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// A stable per-thread key: named threads (resident workers, the
    /// explorer's coordinators) hash their name so the same logical
    /// thread replays the same decision stream across runs; unnamed
    /// threads fall back to registration order.
    fn thread_decision(seed: u64) -> u64 {
        THREAD.with(|t| {
            let mut t = t.borrow_mut();
            let st = t.get_or_insert_with(|| ThreadState {
                key: match std::thread::current().name() {
                    Some(name) => fnv(name),
                    None => rt().next_thread.fetch_add(1, O::SeqCst) ^ 0x517c_c1b7_2722_0a95,
                },
                ops: 0,
            });
            st.ops = st.ops.wrapping_add(1);
            splitmix(seed ^ st.key.rotate_left(17) ^ st.ops)
        })
    }

    /// The heart of the explorer: every sync operation lands here, and
    /// the seeded decision stream of the current thread decides whether
    /// to keep running or hand the core over (optionally widening the
    /// window with a short spin first). PCT-flavored: each thread's
    /// preemption appetite is itself seed-derived, so some seeds starve a
    /// coordinator, others a worker.
    fn schedule_point() {
        let r = rt();
        r.schedule_points.fetch_add(1, O::Relaxed);
        let seed = r.seed.load(O::Relaxed);
        let d = thread_decision(seed);
        let appetite = 20 + (splitmix(seed ^ (d >> 32)) % 250);
        if d % 1000 < appetite {
            r.yields.fetch_add(1, O::Relaxed);
            if d & (1 << 12) != 0 {
                for _ in 0..((d >> 20) & 0x1ff) {
                    std::hint::spin_loop();
                }
            }
            std::thread::yield_now();
        }
    }

    /// Record the intent to acquire `id`: schedule point, then for every
    /// lock already held add an order edge and fail on cycle formation.
    fn lock_acquiring(id: u64, loc: &'static Location<'static>) {
        schedule_point();
        let held: Vec<u64> = HELD.with(|h| h.borrow().clone());
        if held.contains(&id) {
            let g = relock(rt().graph.lock());
            panic!(
                "basilisk-check: re-entrant acquisition of lock {} — self-deadlock",
                g.loc(id)
            );
        }
        if held.is_empty() {
            return;
        }
        let mut g = relock(rt().graph.lock());
        g.created.entry(id).or_insert(loc);
        for &h in &held {
            if g.edges.get(&h).is_some_and(|next| next.contains(&id)) {
                continue;
            }
            // Inserting h → id closes a cycle iff id already reaches h.
            let mut seen = Vec::new();
            if g.path_exists(id, h, &mut seen) {
                let chain: Vec<String> = seen.iter().map(|&n| g.loc(n)).collect();
                panic!(
                    "basilisk-check: lock-order cycle — acquiring {} while holding {} \
                     closes a cycle (existing reverse path through [{}]); a schedule \
                     interleaving these acquisition orders deadlocks",
                    g.loc(id),
                    g.loc(h),
                    chain.join(" -> "),
                );
            }
            g.edges.entry(h).or_default().push(id);
        }
    }

    fn lock_acquired(id: u64) {
        HELD.with(|h| h.borrow_mut().push(id));
    }

    fn lock_released(id: u64) {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(pos) = h.iter().rposition(|&x| x == id) {
                h.remove(pos);
            }
        });
    }

    fn new_lock_id(loc: &'static Location<'static>) -> u64 {
        let id = rt().next_lock.fetch_add(1, O::SeqCst);
        relock(rt().graph.lock()).created.insert(id, loc);
        id
    }

    // ---------------------------------------------------------------
    // Mutex / Condvar / RwLock wrappers
    // ---------------------------------------------------------------

    /// Instrumented drop-in for [`std::sync::Mutex`].
    pub struct Mutex<T: ?Sized> {
        id: u64,
        loc: &'static Location<'static>,
        inner: StdMutex<T>,
    }

    impl<T> Mutex<T> {
        #[track_caller]
        pub fn new(value: T) -> Mutex<T> {
            let loc = Location::caller();
            Mutex {
                id: new_lock_id(loc),
                loc,
                inner: StdMutex::new(value),
            }
        }
    }

    impl<T: ?Sized> Mutex<T> {
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            lock_acquiring(self.id, self.loc);
            match self.inner.lock() {
                Ok(g) => {
                    lock_acquired(self.id);
                    Ok(MutexGuard {
                        id: self.id,
                        loc: self.loc,
                        inner: Some(g),
                    })
                }
                Err(p) => {
                    lock_acquired(self.id);
                    Err(PoisonError::new(MutexGuard {
                        id: self.id,
                        loc: self.loc,
                        inner: Some(p.into_inner()),
                    }))
                }
            }
        }
    }

    impl<T: Default> Default for Mutex<T> {
        #[track_caller]
        fn default() -> Mutex<T> {
            Mutex::new(T::default())
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.inner.fmt(f)
        }
    }

    /// Guard for the instrumented [`Mutex`]; pops the held-lock stack on
    /// drop.
    pub struct MutexGuard<'a, T: ?Sized> {
        id: u64,
        loc: &'static Location<'static>,
        inner: Option<StdMutexGuard<'a, T>>,
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            if self.inner.take().is_some() {
                lock_released(self.id);
            }
        }
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard holds the lock")
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard holds the lock")
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            (**self).fmt(f)
        }
    }

    /// Instrumented drop-in for [`std::sync::Condvar`]: waits run in
    /// bounded slices so a waiter that never gets its wakeup becomes a
    /// replayable stall finding instead of a hung process.
    pub struct Condvar {
        inner: StdCondvar,
    }

    impl Condvar {
        pub const fn new() -> Condvar {
            Condvar {
                inner: StdCondvar::new(),
            }
        }

        pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            let id = guard.id;
            let loc = guard.loc;
            let std_guard = guard.inner.take().expect("guard holds the lock");
            lock_released(id);
            schedule_point();
            let rewrap = |g: StdMutexGuard<'a, T>| {
                lock_acquired(id);
                MutexGuard {
                    id,
                    loc,
                    inner: Some(g),
                }
            };
            let budget = rt().stall_millis.load(O::Relaxed);
            let mut waited = 0u64;
            let mut g = std_guard;
            loop {
                match self
                    .inner
                    .wait_timeout(g, Duration::from_millis(STALL_SLICE_MS))
                {
                    Ok((back, timeout)) => {
                        if !timeout.timed_out() {
                            return Ok(rewrap(back));
                        }
                        waited += STALL_SLICE_MS;
                        if waited >= budget {
                            rt().stalls.fetch_add(1, O::Relaxed);
                            // Rewrap before panicking so the lock is
                            // released (and HELD stays exact) during
                            // unwind.
                            let _guard = rewrap(back);
                            panic!(
                                "basilisk-check: condvar wait stalled for {waited} ms on the \
                                 mutex created at {} — possible missed wakeup or deadlock",
                                loc,
                            );
                        }
                        g = back;
                    }
                    Err(p) => {
                        let (back, _) = p.into_inner();
                        return Err(PoisonError::new(rewrap(back)));
                    }
                }
            }
        }

        pub fn notify_one(&self) {
            schedule_point();
            self.inner.notify_one();
        }

        pub fn notify_all(&self) {
            schedule_point();
            self.inner.notify_all();
        }
    }

    impl Default for Condvar {
        fn default() -> Condvar {
            Condvar::new()
        }
    }

    /// Instrumented drop-in for [`std::sync::RwLock`]. Reader and writer
    /// acquisitions share one node in the lock-order graph (the cycle
    /// report does not distinguish the mode).
    pub struct RwLock<T: ?Sized> {
        id: u64,
        loc: &'static Location<'static>,
        inner: StdRwLock<T>,
    }

    impl<T> RwLock<T> {
        #[track_caller]
        pub fn new(value: T) -> RwLock<T> {
            let loc = Location::caller();
            RwLock {
                id: new_lock_id(loc),
                loc,
                inner: StdRwLock::new(value),
            }
        }
    }

    impl<T: ?Sized> RwLock<T> {
        pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
            lock_acquiring(self.id, self.loc);
            match self.inner.read() {
                Ok(g) => {
                    lock_acquired(self.id);
                    Ok(RwLockReadGuard {
                        id: self.id,
                        inner: Some(g),
                    })
                }
                Err(p) => {
                    lock_acquired(self.id);
                    Err(PoisonError::new(RwLockReadGuard {
                        id: self.id,
                        inner: Some(p.into_inner()),
                    }))
                }
            }
        }

        pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
            lock_acquiring(self.id, self.loc);
            match self.inner.write() {
                Ok(g) => {
                    lock_acquired(self.id);
                    Ok(RwLockWriteGuard {
                        id: self.id,
                        inner: Some(g),
                    })
                }
                Err(p) => {
                    lock_acquired(self.id);
                    Err(PoisonError::new(RwLockWriteGuard {
                        id: self.id,
                        inner: Some(p.into_inner()),
                    }))
                }
            }
        }
    }

    /// Guard for [`RwLock::read`].
    pub struct RwLockReadGuard<'a, T: ?Sized> {
        id: u64,
        inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    }

    impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
        fn drop(&mut self) {
            if self.inner.take().is_some() {
                lock_released(self.id);
            }
        }
    }

    impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard holds the lock")
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockReadGuard<'_, T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            (**self).fmt(f)
        }
    }

    /// Guard for [`RwLock::write`].
    pub struct RwLockWriteGuard<'a, T: ?Sized> {
        id: u64,
        inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    }

    impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
        fn drop(&mut self) {
            if self.inner.take().is_some() {
                lock_released(self.id);
            }
        }
    }

    impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard holds the lock")
        }
    }

    impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard holds the lock")
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockWriteGuard<'_, T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            (**self).fmt(f)
        }
    }

    // ---------------------------------------------------------------
    // Atomics
    // ---------------------------------------------------------------

    macro_rules! instrumented_atomic {
        ($name:ident, $std:path, $prim:ty) => {
            /// Instrumented drop-in for the `std` atomic of the same
            /// name: every operation is a schedule point.
            #[derive(Default, Debug)]
            pub struct $name(pub(self) $std);

            impl $name {
                pub const fn new(v: $prim) -> $name {
                    $name(<$std>::new(v))
                }

                pub fn load(&self, order: super::atomic::Ordering) -> $prim {
                    schedule_point();
                    self.0.load(order)
                }

                pub fn store(&self, v: $prim, order: super::atomic::Ordering) {
                    schedule_point();
                    self.0.store(v, order);
                }

                pub fn swap(&self, v: $prim, order: super::atomic::Ordering) -> $prim {
                    schedule_point();
                    self.0.swap(v, order)
                }
            }
        };
    }

    macro_rules! instrumented_atomic_int {
        ($name:ident, $std:path, $prim:ty) => {
            instrumented_atomic!($name, $std, $prim);

            impl $name {
                pub fn fetch_add(&self, v: $prim, order: super::atomic::Ordering) -> $prim {
                    schedule_point();
                    self.0.fetch_add(v, order)
                }

                pub fn fetch_sub(&self, v: $prim, order: super::atomic::Ordering) -> $prim {
                    schedule_point();
                    self.0.fetch_sub(v, order)
                }

                pub fn fetch_max(&self, v: $prim, order: super::atomic::Ordering) -> $prim {
                    schedule_point();
                    self.0.fetch_max(v, order)
                }

                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: super::atomic::Ordering,
                    failure: super::atomic::Ordering,
                ) -> Result<$prim, $prim> {
                    schedule_point();
                    self.0.compare_exchange(current, new, success, failure)
                }

                pub fn compare_exchange_weak(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: super::atomic::Ordering,
                    failure: super::atomic::Ordering,
                ) -> Result<$prim, $prim> {
                    schedule_point();
                    self.0.compare_exchange_weak(current, new, success, failure)
                }
            }
        };
    }

    instrumented_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    instrumented_atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    instrumented_atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

    #[cfg(test)]
    mod tests {
        use super::*;

        /// The runtime is process-global, so tests that `reset()` it must
        /// not interleave: the default harness runs tests on parallel
        /// threads, and one test's reset would erase another's lock-order
        /// edges mid-assertion.
        static SERIAL: StdMutex<()> = StdMutex::new(());

        fn serial() -> StdMutexGuard<'static, ()> {
            SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
        }

        /// Opposite-order acquisition of the same lock pair must be
        /// reported as a cycle at edge-formation time — no actual
        /// deadlock schedule needed.
        #[test]
        fn lock_order_cycle_is_reported() {
            let _s = serial();
            reset();
            let a = Mutex::new(0u32);
            let b = Mutex::new(0u32);
            {
                let _ga = a.lock().unwrap();
                let _gb = b.lock().unwrap();
            }
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
            }))
            .unwrap_err();
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("lock-order cycle"), "{msg}");
            reset();
        }

        #[test]
        fn consistent_order_is_clean() {
            let _s = serial();
            reset();
            let a = Mutex::new(0u32);
            let b = Mutex::new(0u32);
            for _ in 0..3 {
                let _ga = a.lock().unwrap();
                let _gb = b.lock().unwrap();
            }
            assert_eq!(stats().stalls, 0);
            reset();
        }

        #[test]
        fn reentrant_lock_is_reported() {
            let _s = serial();
            reset();
            let a = Mutex::new(0u32);
            let _g = a.lock().unwrap();
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _again = a.lock().unwrap();
            }))
            .unwrap_err();
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("re-entrant"), "{msg}");
            reset();
        }

        /// A waiter whose notify never comes panics with a stall finding
        /// instead of hanging the process.
        #[test]
        fn missed_wakeup_stalls_and_panics() {
            let _s = serial();
            reset();
            set_stall_millis(100);
            let m = Mutex::new(());
            let cv = Condvar::new();
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let g = m.lock().unwrap();
                let _g = cv.wait(g).unwrap();
            }))
            .unwrap_err();
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("stalled"), "{msg}");
            assert_eq!(stats().stalls, 1);
            set_stall_millis(super::DEFAULT_STALL_MS);
            reset();
        }

        #[test]
        fn ownership_registry_catches_cross_arena_recycle() {
            let _s = serial();
            reset();
            let a = new_arena_id();
            let b = new_arena_id();
            buffer_produced(0x1000, a);
            let err = std::panic::catch_unwind(|| {
                buffer_recycled(0x1000, b, "mask");
            })
            .unwrap_err();
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("recycled"), "{msg}");
            // Same-arena round trip is clean.
            buffer_produced(0x2000, a);
            buffer_recycled(0x2000, a, "mask");
            reset();
        }

        /// Same seed, same thread name, same op index → same decision;
        /// different seeds diverge. (The decision stream is what makes a
        /// failing seed replay its perturbation pattern.)
        #[test]
        fn decision_stream_is_seed_deterministic() {
            let stream = |seed: u64| -> Vec<u64> {
                (1..64u64)
                    .map(|op| splitmix(seed ^ fnv("basilisk-worker-0").rotate_left(17) ^ op))
                    .collect()
            };
            assert_eq!(stream(7), stream(7));
            assert_ne!(stream(7), stream(8));
        }
    }
}
