//! SQL three-valued logic (§3.4 of the paper).
//!
//! Tag assignments in tagged execution map predicate expressions to one of
//! three truth values. The tables below are the SQL-standard Kleene logic
//! the paper cites (Melton & Simon): e.g. `FALSE OR UNKNOWN = UNKNOWN`.

use std::fmt;

/// A ternary truth value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Truth {
    False,
    Unknown,
    True,
}

impl Truth {
    /// All three truth values, handy for exhaustive tests.
    pub const ALL: [Truth; 3] = [Truth::False, Truth::Unknown, Truth::True];

    /// Ternary AND: true only if both true; false if either false.
    #[inline]
    pub fn and(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Unknown,
        }
    }

    /// Ternary OR: false only if both false; true if either true.
    #[inline]
    pub fn or(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Unknown,
        }
    }

    /// Ternary NOT: unknown stays unknown.
    #[inline]
    #[allow(clippy::should_implement_trait)] // 3VL not, deliberately method-form
    pub fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    /// Fold of [`Truth::and`] over an iterator; identity is `True`.
    pub fn all<I: IntoIterator<Item = Truth>>(iter: I) -> Truth {
        iter.into_iter().fold(Truth::True, Truth::and)
    }

    /// Fold of [`Truth::or`] over an iterator; identity is `False`.
    pub fn any<I: IntoIterator<Item = Truth>>(iter: I) -> Truth {
        iter.into_iter().fold(Truth::False, Truth::or)
    }

    /// Convert SQL's "NULL-able boolean" (`None` = unknown).
    #[inline]
    pub fn from_option(b: Option<bool>) -> Truth {
        match b {
            Some(true) => Truth::True,
            Some(false) => Truth::False,
            None => Truth::Unknown,
        }
    }

    /// `Some(bool)` for definite values, `None` for unknown.
    #[inline]
    pub fn to_option(self) -> Option<bool> {
        match self {
            Truth::True => Some(true),
            Truth::False => Some(false),
            Truth::Unknown => None,
        }
    }

    /// A WHERE clause admits a row only when the predicate is *true*
    /// (unknown rows are filtered out, per the SQL standard).
    #[inline]
    pub fn passes_where(self) -> bool {
        self == Truth::True
    }

    /// One-letter code used in tag rendering: `T`, `F`, `U`.
    pub fn code(self) -> char {
        match self {
            Truth::True => 'T',
            Truth::False => 'F',
            Truth::Unknown => 'U',
        }
    }
}

impl From<bool> for Truth {
    fn from(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }
}

impl fmt::Display for Truth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Truth::*;

    #[test]
    fn and_table_matches_sql_standard() {
        assert_eq!(True.and(True), True);
        assert_eq!(True.and(False), False);
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(Unknown.and(Unknown), Unknown);
        assert_eq!(False.and(False), False);
    }

    #[test]
    fn or_table_matches_sql_standard() {
        assert_eq!(True.or(False), True);
        assert_eq!(True.or(Unknown), True);
        // The exact example given in §3.4: false OR unknown → unknown.
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(Unknown.or(Unknown), Unknown);
        assert_eq!(False.or(False), False);
    }

    #[test]
    fn not_table() {
        assert_eq!(True.not(), False);
        assert_eq!(False.not(), True);
        assert_eq!(Unknown.not(), Unknown);
    }

    #[test]
    fn de_morgan_holds_in_3vl() {
        for a in Truth::ALL {
            for b in Truth::ALL {
                assert_eq!(a.and(b).not(), a.not().or(b.not()));
                assert_eq!(a.or(b).not(), a.not().and(b.not()));
            }
        }
    }

    #[test]
    fn and_or_are_commutative_associative() {
        for a in Truth::ALL {
            for b in Truth::ALL {
                assert_eq!(a.and(b), b.and(a));
                assert_eq!(a.or(b), b.or(a));
                for c in Truth::ALL {
                    assert_eq!(a.and(b).and(c), a.and(b.and(c)));
                    assert_eq!(a.or(b).or(c), a.or(b.or(c)));
                }
            }
        }
    }

    #[test]
    fn distributivity_holds_in_3vl() {
        for a in Truth::ALL {
            for b in Truth::ALL {
                for c in Truth::ALL {
                    assert_eq!(a.and(b.or(c)), a.and(b).or(a.and(c)));
                    assert_eq!(a.or(b.and(c)), a.or(b).and(a.or(c)));
                }
            }
        }
    }

    #[test]
    fn folds() {
        assert_eq!(Truth::all([True, True, True]), True);
        assert_eq!(Truth::all([True, Unknown]), Unknown);
        assert_eq!(Truth::all([Unknown, False]), False);
        assert_eq!(Truth::all([]), True);
        assert_eq!(Truth::any([False, False]), False);
        assert_eq!(Truth::any([False, Unknown]), Unknown);
        assert_eq!(Truth::any([Unknown, True]), True);
        assert_eq!(Truth::any([]), False);
    }

    #[test]
    fn conversions() {
        assert_eq!(Truth::from_option(Some(true)), True);
        assert_eq!(Truth::from_option(None), Unknown);
        assert_eq!(Unknown.to_option(), None);
        assert_eq!(Truth::from(true), True);
        assert!(True.passes_where());
        assert!(!Unknown.passes_where());
        assert!(!False.passes_where());
        assert_eq!(format!("{True}{False}{Unknown}"), "TFU");
    }
}
