//! Degenerate-statistics regression test: planning over **empty tables**
//! must stay well-defined. Before the estimator clamped its outputs,
//! empty tables could surface `NaN`/`inf` selectivities that poisoned
//! the benefit-based plan search ordering; every planner must now
//! produce a finite-cost plan that executes to an empty result.

use basilisk_catalog::Catalog;
use basilisk_expr::{and, col, or, ColumnRef};
use basilisk_plan::{PlannerKind, Query, QuerySession};
use basilisk_storage::TableBuilder;
use basilisk_types::DataType;

fn empty_catalog() -> Catalog {
    let mut cat = Catalog::new();
    let b = TableBuilder::new("title")
        .column("id", DataType::Int)
        .column("year", DataType::Int);
    cat.add_table(b.finish().unwrap()).unwrap();
    let b = TableBuilder::new("scores")
        .column("movie_id", DataType::Int)
        .column("score", DataType::Float);
    cat.add_table(b.finish().unwrap()).unwrap();
    cat
}

fn query() -> Query {
    Query::new(vec![
        ("t".into(), "title".into()),
        ("mi".into(), "scores".into()),
    ])
    .join(ColumnRef::new("t", "id"), ColumnRef::new("mi", "movie_id"))
    .filter(or(vec![
        and(vec![
            col("t", "year").gt(2000i64),
            col("mi", "score").gt(7.0),
        ]),
        and(vec![
            col("t", "year").gt(1980i64),
            col("mi", "score").gt(8.0),
        ]),
    ]))
    .select(vec![ColumnRef::new("t", "id")])
}

#[test]
fn every_planner_handles_empty_tables() {
    let cat = empty_catalog();
    let session = QuerySession::new(&cat, query()).unwrap();
    for kind in [
        PlannerKind::TPushdown,
        PlannerKind::TPullup,
        PlannerKind::TIterPush,
        PlannerKind::TPushConj,
        PlannerKind::TCombined,
        PlannerKind::BPushConj,
        PlannerKind::BDisj,
    ] {
        let plan = session.plan(kind).unwrap_or_else(|e| {
            panic!("planner {kind} failed on empty tables: {e}");
        });
        let cost = plan.estimated_cost();
        assert!(cost.is_finite(), "planner {kind} cost {cost} not finite");
        assert!(cost >= 0.0, "planner {kind} cost {cost} negative");
        let out = session.execute(&plan).unwrap();
        assert_eq!(out.count(), 0, "planner {kind} on empty tables");
    }
}

#[test]
fn empty_tables_are_allocation_free_too() {
    let cat = empty_catalog();
    let session = QuerySession::new(&cat, query()).unwrap();
    let plan = session.plan(PlannerKind::TCombined).unwrap();
    session.execute(&plan).unwrap();
    session.reset_arena_stats();
    session.execute(&plan).unwrap();
    assert_eq!(session.arena_stats().fresh(), 0, "zero-row plans also pool");
}
