//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the minimal API surface `basilisk-workload` actually uses: [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`]. The generator is splitmix64 — deterministic, fast,
//! and statistically fine for synthetic-data generation (this is not a
//! cryptographic RNG, and neither is the real `StdRng` contractually).

/// Core entropy source: everything else derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Sampling helpers, available on every [`RngCore`] (including unsized
/// `&mut R` receivers, mirroring rand's generic-over-`?Sized` design).
pub trait Rng: RngCore {
    /// Sample a value of `T` from the "standard" distribution: the full
    /// domain for integers/bools, `[0, 1)` for floats.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }

    /// Uniform sample from a (half-open or inclusive) range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, `seed_from_u64` only.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types uniformly samplable from a range (ties a range's element type to
/// `gen_range`'s return type for inference, as in real rand).
pub trait SampleUniform: Sized {
    /// Uniform in `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform in `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is negligible for the tiny spans used here.
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        Self::sample_half_open(rng, lo, hi)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5..17);
            assert!((-5..17).contains(&v));
            let v = rng.gen_range(1..=3);
            assert!((1..=3).contains(&v));
            let u: usize = rng.gen_range(0..9);
            assert!(u < 9);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let x: f64 = rng.gen_range(2.0..4.0);
            assert!((2.0..4.0).contains(&x));
        }
    }

    #[test]
    fn unsized_receiver_works() {
        fn sample_via_dyn_width<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0.0..1.0).contains(&sample_via_dyn_width(&mut rng)));
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
