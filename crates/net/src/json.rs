//! A minimal, dependency-free JSON value: enough for the wire envelopes
//! and nothing more.
//!
//! Two properties matter to the protocol and are pinned by tests:
//!
//! * **Integer/float separation.** [`Json::Int`] and [`Json::Float`] are
//!   distinct variants: `i64` values serialize as bare digit runs and
//!   parse back exactly (no `f64` detour, no precision loss at the
//!   53-bit boundary), while floats always serialize with a `.` or an
//!   exponent so the parser can tell them apart (`7` is an `Int`, `7.0`
//!   a `Float`).
//! * **Float round-trips.** Finite floats serialize via Rust's
//!   shortest-round-trip formatting (`{:?}`), so parse(serialize(f))
//!   reproduces `f` bit-for-bit. Non-finite floats (JSON cannot carry
//!   them) are the *caller's* problem; [`Json::write`] panics in debug
//!   builds and emits `null` in release.

use std::fmt;

/// Nesting depth limit: a parser guard, not a protocol feature (the
/// envelopes nest 4 levels deep; a hostile peer nests a million).
const MAX_DEPTH: usize = 64;

#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    /// Insertion-ordered (serialization is deterministic; no map).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match; the writers never duplicate).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(f) => Some(*f),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize into `out` (compact form, no whitespace).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                out.push_str(itoa(*i).as_str());
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // `{:?}` is shortest-round-trip and always contains
                    // a '.' or exponent, so the value parses back as a
                    // Float with identical bits.
                    let s = format!("{f:?}");
                    debug_assert!(
                        s.contains('.') || s.contains('e') || s.contains('E'),
                        "float formatting must be self-identifying: {s}"
                    );
                    out.push_str(&s);
                } else {
                    debug_assert!(false, "non-finite float has no JSON form: {f}");
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse one JSON document; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

fn itoa(i: i64) -> String {
    i.to_string()
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Array(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Object(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("invalid number at offset {start}"))
        } else {
            // Bare digit runs that overflow i64 fall back to f64 (JSON
            // itself doesn't bound them; the protocol never emits such).
            match text.parse::<i64>() {
                Ok(i) => Ok(Json::Int(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Float)
                    .map_err(|_| format!("invalid number at offset {start}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must
                                // follow with the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err("unpaired surrogate".into());
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or("invalid code point")?
                            } else {
                                char::from_u32(hi).ok_or("unpaired surrogate")?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // the encoding is already valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(j: &Json) -> Json {
        Json::parse(&j.to_string()).unwrap()
    }

    #[test]
    fn scalars_roundtrip() {
        for j in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(i64::MAX),
            Json::Int(i64::MIN),
            Json::Float(0.1),
            Json::Float(-1234.5e-9),
            Json::Float(1e300),
            Json::Str("".into()),
            Json::Str("plain".into()),
            Json::Str("esc \" \\ \n \r \t \u{0001} 端 🦀".into()),
        ] {
            assert_eq!(roundtrip(&j), j, "{j}");
        }
    }

    #[test]
    fn int_float_distinction_survives_the_wire() {
        // 7 and 7.0 are different values to the engine; the wire keeps
        // them apart.
        assert_eq!(Json::parse("7").unwrap(), Json::Int(7));
        assert_eq!(Json::parse("7.0").unwrap(), Json::Float(7.0));
        assert_eq!(Json::parse("7e0").unwrap(), Json::Float(7.0));
        assert_eq!(roundtrip(&Json::Float(7.0)), Json::Float(7.0));
        // i64 values beyond 2^53 survive exactly (no f64 detour).
        let big = (1i64 << 53) + 1;
        assert_eq!(roundtrip(&Json::Int(big)), Json::Int(big));
    }

    #[test]
    fn float_bits_roundtrip() {
        for f in [
            0.1f64,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            -0.0,
            2.2250738585072014e-308,
        ] {
            let back = roundtrip(&Json::Float(f));
            match back {
                Json::Float(g) => assert_eq!(g.to_bits(), f.to_bits(), "{f}"),
                other => panic!("float parsed as {other}"),
            }
        }
    }

    #[test]
    fn containers_and_lookup() {
        let doc = Json::Object(vec![
            ("ok".into(), Json::Bool(true)),
            (
                "rows".into(),
                Json::Array(vec![Json::Int(1), Json::Null, Json::Str("x".into())]),
            ),
            (
                "nested".into(),
                Json::Object(vec![("k".into(), Json::Int(2))]),
            ),
        ]);
        let back = roundtrip(&doc);
        assert_eq!(back, doc);
        assert_eq!(back.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            back.get("rows").and_then(Json::as_array).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            back.get("nested")
                .and_then(|n| n.get("k"))
                .and_then(Json::as_i64),
            Some(2)
        );
        assert!(back.get("absent").is_none());
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            Json::parse(r#""a\u0041\u00e9\ud83e\udd80""#).unwrap(),
            Json::Str("aAé🦀".into())
        );
        assert!(Json::parse(r#""\ud83e""#).is_err(), "unpaired surrogate");
        assert!(Json::parse(r#""\ud83e\u0041""#).is_err(), "bad low half");
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "",
            "{",
            "[",
            "\"",
            "{\"a\"",
            "{\"a\":}",
            "[1,",
            "nul",
            "tru",
            "01x",
            "1 2",
            "{\"a\":1,}",
            "\u{0007}",
            "\"\\q\"",
            "\"\\u12\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        // Depth bomb hits the guard, not the stack.
        let bomb = "[".repeat(100_000);
        assert!(Json::parse(&bomb).is_err());
    }
}
