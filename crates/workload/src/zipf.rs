//! Inverse-CDF Zipf sampling.
//!
//! §5.2: "their values were randomly generated using a Zipf distribution
//! with a shape parameter value of 1.5". P(X = k) ∝ 1/k^s over 1..=n; the
//! most common value is 1 — which is what drives the sharp runtime jump at
//! outer-factor 0.6 in Fig. 4d (the head value enters the result).

use rand::Rng;

/// A Zipf(n, s) sampler over `1..=n` built on a precomputed CDF.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// `n` must be ≥ 1; `s` is the shape parameter (larger = more skew).
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n >= 1, "Zipf needs at least one value");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point droop at the tail.
        *cdf.last_mut().unwrap() = 1.0;
        Zipf { cdf }
    }

    /// Draw one value in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.cdf.len() - 1) + 1) as u64
    }

    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// P(X = k) for diagnostics/tests.
    pub fn pmf(&self, k: usize) -> f64 {
        assert!((1..=self.cdf.len()).contains(&k));
        if k == 1 {
            self.cdf[0]
        } else {
            self.cdf[k - 1] - self.cdf[k - 2]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one_and_decreases() {
        let z = Zipf::new(100, 1.5);
        let total: f64 = (1..=100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..100 {
            assert!(z.pmf(k) >= z.pmf(k + 1));
        }
        assert_eq!(z.n(), 100);
    }

    #[test]
    fn samples_match_pmf_roughly() {
        let z = Zipf::new(50, 1.5);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let mut counts = vec![0usize; 51];
        for _ in 0..n {
            let v = z.sample(&mut rng) as usize;
            assert!((1..=50).contains(&v));
            counts[v] += 1;
        }
        // Head frequency close to pmf(1) (≈ 0.38 for s=1.5, n=50).
        let head = counts[1] as f64 / n as f64;
        assert!(
            (head - z.pmf(1)).abs() < 0.01,
            "head {head} vs {}",
            z.pmf(1)
        );
        // Monotone-ish: 1 is the most common value.
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
    }

    #[test]
    fn degenerate_single_value() {
        let z = Zipf::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }

    #[test]
    fn shape_controls_skew() {
        let flat = Zipf::new(100, 0.5);
        let steep = Zipf::new(100, 2.5);
        assert!(steep.pmf(1) > flat.pmf(1));
        assert!(steep.pmf(100) < flat.pmf(100));
    }

    #[test]
    fn deterministic_with_seed() {
        let z = Zipf::new(100, 1.5);
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(1);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(1);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
