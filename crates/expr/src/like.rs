//! SQL `LIKE` pattern matching.
//!
//! `%` matches any run of characters (including empty), `_` matches exactly
//! one character. This is the "expensive regex pattern matching predicate"
//! of the paper's TPullup/TIterPush examples (`t.title ILIKE
//! '%godfather%'`), implemented with the classic two-pointer wildcard
//! algorithm — linear in practice, no backtracking blowup.

/// Match `text` against a SQL LIKE `pattern`.
///
/// When `case_insensitive` is set, ASCII letters compare case-folded
/// (matching `ILIKE` semantics for the ASCII workloads used here).
pub fn like_match(text: &str, pattern: &str, case_insensitive: bool) -> bool {
    let t = text.as_bytes();
    let p = pattern.as_bytes();
    let eq = |a: u8, b: u8| {
        if case_insensitive {
            a.eq_ignore_ascii_case(&b)
        } else {
            a == b
        }
    };

    let (mut ti, mut pi) = (0usize, 0usize);
    // Backtrack state: position of the last `%` and the text position we
    // resumed from after it.
    let (mut star_pi, mut star_ti): (Option<usize>, usize) = (None, 0);

    while ti < t.len() {
        if pi < p.len() && p[pi] == b'%' {
            star_pi = Some(pi);
            star_ti = ti;
            pi += 1;
        } else if pi < p.len() && (p[pi] == b'_' || eq(p[pi], t[ti])) {
            // `_` must consume one character; operate on bytes but avoid
            // splitting UTF-8 sequences: `_` consumes a full code point.
            if p[pi] == b'_' {
                ti += utf8_len(t[ti]);
            } else {
                ti += 1;
            }
            pi += 1;
        } else if let Some(sp) = star_pi {
            // Retry: let the last `%` swallow one more character.
            pi = sp + 1;
            star_ti += utf8_len(t[star_ti]);
            ti = star_ti;
        } else {
            return false;
        }
    }
    // Only trailing `%`s may remain.
    while pi < p.len() && p[pi] == b'%' {
        pi += 1;
    }
    pi == p.len()
}

#[inline]
fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >> 5 == 0b110 => 2,
        b if b >> 4 == 0b1110 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match() {
        assert!(like_match("abc", "abc", false));
        assert!(!like_match("abc", "abd", false));
        assert!(!like_match("abc", "ab", false));
        assert!(!like_match("ab", "abc", false));
        assert!(like_match("", "", false));
    }

    #[test]
    fn percent_wildcard() {
        assert!(like_match("The Godfather", "%godfather%", true));
        assert!(!like_match("The Godfather", "%godfather%", false));
        assert!(like_match("The Godfather", "%Godfather", false));
        assert!(like_match("The Godfather", "The%", false));
        assert!(like_match("abc", "%", false));
        assert!(like_match("", "%", false));
        assert!(like_match("abc", "%%", false));
        assert!(like_match("abcabc", "%b%b%", false));
        assert!(!like_match("abc", "%d%", false));
    }

    #[test]
    fn underscore_wildcard() {
        assert!(like_match("abc", "a_c", false));
        assert!(!like_match("abbc", "a_c", false));
        assert!(like_match("abc", "___", false));
        assert!(!like_match("abc", "__", false));
        assert!(!like_match("ab", "___", false));
        assert!(like_match("abc", "_b_", false));
    }

    #[test]
    fn mixed_wildcards() {
        assert!(like_match("Iron Man 3", "%Man_3", false));
        assert!(like_match("Iron Man 3", "Iron%_", false));
        assert!(like_match("spider-man", "%man", false));
        assert!(!like_match("spider-men", "%man", false));
        assert!(like_match("xayb", "x%_b", false));
    }

    #[test]
    fn pathological_patterns_terminate_quickly() {
        let text = "a".repeat(2000);
        let pattern = "%a%a%a%a%a%a%a%a%b";
        assert!(!like_match(&text, pattern, false));
        let pattern = format!("%{}", "a".repeat(50));
        assert!(like_match(&text, &pattern, false));
    }

    #[test]
    fn unicode_underscore_consumes_code_point() {
        assert!(like_match("wörld", "w_rld", false));
        assert!(like_match("日本", "__", false));
        assert!(!like_match("日本", "_", false));
        assert!(like_match("日本語", "%語", false));
    }

    #[test]
    fn case_insensitive_is_ascii_folded() {
        assert!(like_match("HELLO", "hello", true));
        assert!(like_match("Hello World", "%WORLD", true));
        assert!(!like_match("HELLO", "hello", false));
    }
}
