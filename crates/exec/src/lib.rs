//! The traditional (untagged) execution engine.
//!
//! This is the baseline execution model of §1: operators consume and
//! produce plain relations. Like the paper's system, intermediates are
//! **index relations** (§2.5.1): an `n`-tuple is `n` row indices into the
//! `n` base tables it joins; values are only materialized at projection
//! time (or to evaluate a predicate / join key).
//!
//! The same [`IdxRelation`] / [`TableSet`] machinery is reused by the
//! tagged engine in `basilisk-core`, which differs only in carrying a
//! tag → bitmap map alongside the index relation.

#![forbid(unsafe_code)]

mod hash;
mod ops;
mod par;
mod relation;

pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher, JoinTable};
pub use ops::{
    combine, filter, filter_par, hash_join, hash_join_par, project, project_count, project_in,
    relation_atom_profiles, union_all_dedup, JoinSide,
};
pub use par::{eval_mask_parallel, partitioned_probe};
pub use relation::{join_key, IdxRelation, RelProvider, TableSet};
