//! The prepared-statement plan cache.
//!
//! Two maps, one lifecycle:
//!
//! * the **statement cache** — an LRU keyed by the *normalized* text
//!   (literals replaced by `?n`; see [`basilisk_sql::normalize_select`])
//!   plus the planner kind, holding an [`Arc<PreparedStatement>`]: the
//!   parsed template, the catalog-derived session parts (table set,
//!   three-valued flag), the chosen [`Plan`] with its tag maps, and the
//!   prepare-time predicate tree the plan's `ExprId`s address;
//! * the **text cache** — a smaller LRU from *raw* SQL text to
//!   `(statement, pre-extracted parameters)`, so a byte-identical
//!   repeat of a query skips even lexing: the hot path of
//!   `Database::sql` in a serving loop is pure bind + execute.
//!
//! Eviction drops the cache's reference only: [`Prepared`] handles held
//! by clients keep their statement alive and executable (they simply no
//! longer accelerate other sessions). Capacity-pressure evictions are
//! counted for [`ServeStats`](crate::ServeStats).

use basilisk_types::sync::{Arc, Mutex};
use std::collections::HashMap;

use basilisk_exec::TableSet;
use basilisk_expr::PredicateTree;
use basilisk_plan::{Plan, PlannerKind, Query};
use basilisk_types::Value;

/// One cached statement: everything needed to go from bound parameter
/// values to execution without touching the parser or a planner.
pub struct PreparedStatement {
    /// Normalized cache key (without the planner-kind prefix).
    pub(crate) key: String,
    /// The logical query template, prepare-time literals in place.
    pub(crate) query: Query,
    /// The predicate tree the cached plan's `ExprId`s address — the
    /// congruence reference for rebinding.
    pub(crate) tree: Option<PredicateTree>,
    pub(crate) param_count: usize,
    pub(crate) plan: Plan,
    pub(crate) planner: PlannerKind,
    pub(crate) chosen: Option<PlannerKind>,
    pub(crate) tables: TableSet,
    pub(crate) three_valued: bool,
    pub(crate) limit: Option<usize>,
    pub(crate) is_count: bool,
}

/// A client-held handle to a cached statement (see
/// [`Server::prepare`](crate::Server::prepare)). Cloning is cheap;
/// handles stay valid across cache evictions.
#[derive(Clone)]
pub struct Prepared {
    pub(crate) inner: Arc<PreparedStatement>,
}

impl Prepared {
    /// Number of `?n` parameters
    /// [`Server::execute_prepared`](crate::Server::execute_prepared)
    /// expects.
    pub fn param_count(&self) -> usize {
        self.inner.param_count
    }

    /// The normalized statement text this handle was prepared from.
    pub fn key(&self) -> &str {
        &self.inner.key
    }

    /// The planner the cached plan was built with.
    pub fn planner(&self) -> PlannerKind {
        self.inner.planner
    }
}

struct LruEntry<V> {
    value: V,
    stamp: u64,
}

/// A small stamp-based LRU. Capacity is bounded and modest (hundreds of
/// statements); eviction scans for the oldest stamp, which keeps the
/// structure a single `HashMap` — no order list to desynchronize.
struct Lru<V> {
    map: HashMap<String, LruEntry<V>>,
    capacity: usize,
    tick: u64,
}

impl<V> Lru<V> {
    fn new(capacity: usize) -> Self {
        Lru {
            map: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
        }
    }

    fn get(&mut self, key: &str) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|e| {
            e.stamp = tick;
            &e.value
        })
    }

    /// Insert, returning how many entries were evicted (0 or 1).
    fn insert(&mut self, key: String, value: V) -> u64 {
        self.tick += 1;
        let mut evicted = 0;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
                evicted = 1;
            }
        }
        self.map.insert(
            key,
            LruEntry {
                value,
                stamp: self.tick,
            },
        );
        evicted
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// A raw-text entry: the statement it accelerates plus the parameter
/// values extracted from that exact text.
pub(crate) type TextEntry = (Arc<PreparedStatement>, Arc<Vec<Value>>);

/// The two-level cache (see the module docs). Thread-safe; lock scope is
/// a map probe, never a parse or a plan.
pub(crate) struct PlanCache {
    statements: Mutex<Lru<Arc<PreparedStatement>>>,
    texts: Mutex<Lru<TextEntry>>,
}

impl PlanCache {
    pub(crate) fn new(capacity: usize) -> Self {
        PlanCache {
            statements: Mutex::new(Lru::new(capacity)),
            // Raw texts are strictly more numerous than shapes; give the
            // text level the same budget (entries are two Arcs).
            texts: Mutex::new(Lru::new(capacity)),
        }
    }

    /// Composite key: plans depend on the planner kind too.
    fn full_key(planner: PlannerKind, key: &str) -> String {
        format!("{planner}\u{1}{key}")
    }

    pub(crate) fn get_statement(
        &self,
        planner: PlannerKind,
        key: &str,
    ) -> Option<Arc<PreparedStatement>> {
        self.statements
            .lock()
            .unwrap()
            .get(&Self::full_key(planner, key))
            .cloned()
    }

    /// Returns the number of evicted statements.
    pub(crate) fn put_statement(&self, stmt: &Arc<PreparedStatement>) -> u64 {
        self.statements
            .lock()
            .unwrap()
            .insert(Self::full_key(stmt.planner, &stmt.key), Arc::clone(stmt))
    }

    pub(crate) fn get_text(&self, planner: PlannerKind, sql: &str) -> Option<TextEntry> {
        self.texts
            .lock()
            .unwrap()
            .get(&Self::full_key(planner, sql))
            .cloned()
    }

    /// Text-level entries are an accelerator; their eviction is not a
    /// plan eviction and is not counted.
    pub(crate) fn put_text(
        &self,
        planner: PlannerKind,
        sql: &str,
        stmt: &Arc<PreparedStatement>,
        params: Arc<Vec<Value>>,
    ) {
        self.texts
            .lock()
            .unwrap()
            .insert(Self::full_key(planner, sql), (Arc::clone(stmt), params));
    }

    pub(crate) fn cached_statements(&self) -> usize {
        self.statements.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru: Lru<u32> = Lru::new(2);
        assert_eq!(lru.insert("a".into(), 1), 0);
        assert_eq!(lru.insert("b".into(), 2), 0);
        // Touch a so b becomes the victim.
        assert_eq!(lru.get("a"), Some(&1));
        assert_eq!(lru.insert("c".into(), 3), 1);
        assert_eq!(lru.get("b"), None, "b evicted");
        assert_eq!(lru.get("a"), Some(&1));
        assert_eq!(lru.get("c"), Some(&3));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn lru_reinsert_same_key_is_not_an_eviction() {
        let mut lru: Lru<u32> = Lru::new(2);
        lru.insert("a".into(), 1);
        lru.insert("b".into(), 2);
        assert_eq!(lru.insert("a".into(), 10), 0, "update in place");
        assert_eq!(lru.get("a"), Some(&10));
        assert_eq!(lru.len(), 2);
    }
}
