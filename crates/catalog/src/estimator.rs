//! The per-query cardinality estimator (§4.1).

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use basilisk_expr::eval::eval_atom;
use basilisk_expr::{Atom, CmpOp, ColumnRef, ExprId, NodeKind, PredicateTree};
use basilisk_storage::{EncCmpOp, Table};
use basilisk_types::{BasiliskError, Result, Truth};

use crate::catalog::Catalog;
use crate::stats::TableStats;

/// Upper bound on the number of rows sampled when measuring an atom's
/// selectivity. Sampling is a deterministic stride so repeated planning of
/// the same query sees identical estimates.
const SAMPLE_CAP: usize = 2_000;

struct AliasInfo {
    table: Arc<Table>,
    stats: Arc<TableStats>,
}

/// Resolves query aliases to tables and produces the cardinality estimates
/// the cost models need:
///
/// * atom selectivities are **measured** on a sample and cached ("we
///   measure and use the selectivities of predicates"),
/// * connectives combine measured selectivities under the independence
///   assumption,
/// * equi-joins use PostgreSQL's `1 / max(ndv(left), ndv(right))` rule.
pub struct Estimator {
    aliases: HashMap<String, AliasInfo>,
    atom_sel: RefCell<HashMap<Atom, f64>>,
}

impl Estimator {
    /// `aliases` maps query alias → catalog table name (e.g. `t → title`).
    pub fn new(catalog: &Catalog, aliases: &[(String, String)]) -> Result<Estimator> {
        let mut map = HashMap::with_capacity(aliases.len());
        for (alias, table_name) in aliases {
            let table = catalog.table(table_name)?;
            let stats = catalog.stats(table_name)?;
            if map
                .insert(alias.clone(), AliasInfo { table, stats })
                .is_some()
            {
                return Err(BasiliskError::Plan(format!("duplicate alias {alias}")));
            }
        }
        Ok(Estimator {
            aliases: map,
            atom_sel: RefCell::new(HashMap::new()),
        })
    }

    fn alias(&self, alias: &str) -> Result<&AliasInfo> {
        self.aliases
            .get(alias)
            .ok_or_else(|| BasiliskError::Plan(format!("unknown alias {alias}")))
    }

    /// Base-table cardinality of an alias.
    pub fn rows(&self, alias: &str) -> Result<f64> {
        Ok(self.alias(alias)?.stats.rows as f64)
    }

    /// Fraction of NULLs in a column (0 when fully valid).
    pub fn null_frac(&self, col: &ColumnRef) -> Result<f64> {
        let info = self.alias(&col.table)?;
        let stats = info
            .stats
            .column(&col.column)
            .ok_or_else(|| BasiliskError::Plan(format!("no statistics for column {col}")))?;
        Ok(stats.null_frac)
    }

    /// Distinct-value count of a column (non-null), at least 1.
    pub fn ndv(&self, col: &ColumnRef) -> Result<f64> {
        let info = self.alias(&col.table)?;
        let stats = info
            .stats
            .column(&col.column)
            .ok_or_else(|| BasiliskError::Plan(format!("no statistics for column {col}")))?;
        Ok(stats.ndv.max(1.0))
    }

    /// Measured selectivity (fraction of rows evaluating to *true*) of a
    /// base predicate, cached per atom. Always a finite value in
    /// `[0, 1]` — empty tables measure as 0, never `NaN`/`inf`.
    pub fn atom_selectivity(&self, atom: &Atom) -> Result<f64> {
        if let Some(&s) = self.atom_sel.borrow().get(atom) {
            return Ok(s);
        }
        let s = clamp01(self.measure(atom)?);
        self.atom_sel.borrow_mut().insert(atom.clone(), s);
        Ok(s)
    }

    fn measure(&self, atom: &Atom) -> Result<f64> {
        let info = self.alias(atom.table())?;
        let handle = info.table.column(&atom.column().column)?;
        let n = handle.len();
        if n == 0 {
            // Empty table: no row can satisfy the atom. Returning early
            // also guards the sample-stride and `trues / len` divisions
            // below against `0 / 0 = NaN`.
            return Ok(0.0);
        }
        // Encoded columns carry per-zone min/max: for range predicates
        // that is an exact population count per zone interpolated within
        // the zone, which beats a strided sample wherever the data is
        // clustered (sampling assumes the value spread is uniform across
        // the column — zone maps see the skew). Unsupported pairings
        // (`None`) fall through to sampling.
        if let (Atom::Cmp { op, value, .. }, Some(enc)) = (atom, handle.encoded()) {
            if !value.is_null() {
                if let Some(s) = enc.zone_selectivity(zone_cmp_op(*op), value) {
                    return Ok(s);
                }
            }
        }
        let column = if n <= SAMPLE_CAP {
            handle.scan()?.as_ref().clone()
        } else {
            let stride = (n / SAMPLE_CAP).max(1);
            let rows: Vec<u32> = (0..SAMPLE_CAP).map(|i| (i * stride) as u32).collect();
            handle.gather(&rows)?
        };
        let truths = eval_atom(atom, &column)?;
        if truths.is_empty() {
            return Ok(0.0);
        }
        let trues = truths.iter().filter(|&&t| t == Truth::True).count();
        Ok(trues as f64 / truths.len() as f64)
    }

    /// Selectivity of an arbitrary predicate-tree node: measured atoms
    /// combined under the independence assumption. Clamped into `[0, 1]`
    /// so degenerate statistics can never produce a selectivity outside
    /// the probability range and poison the benefit-based plan search.
    pub fn node_selectivity(&self, tree: &PredicateTree, id: ExprId) -> Result<f64> {
        Ok(clamp01(match tree.kind(id) {
            NodeKind::Atom(a) => self.atom_selectivity(a)?,
            NodeKind::Not(c) => 1.0 - self.node_selectivity(tree, *c)?,
            NodeKind::And(cs) => {
                let mut s = 1.0;
                for &c in cs {
                    s *= self.node_selectivity(tree, c)?;
                }
                s
            }
            NodeKind::Or(cs) => {
                let mut miss = 1.0;
                for &c in cs {
                    miss *= 1.0 - self.node_selectivity(tree, c)?;
                }
                1.0 - miss
            }
        }))
    }

    /// PostgreSQL-style equi-join selectivity: `1 / max(ndv(l), ndv(r))`,
    /// clamped into `[0, 1]` ([`Self::ndv`] floors at 1, so empty tables
    /// yield selectivity 1 over 0 estimated rows rather than `inf`).
    pub fn join_selectivity(&self, left: &ColumnRef, right: &ColumnRef) -> Result<f64> {
        let l = self.ndv(left)?;
        let r = self.ndv(right)?;
        Ok(clamp01(1.0 / l.max(r)))
    }

    /// Estimated output cardinality of `left ⋈ right` given input
    /// cardinalities (which may already reflect applied filters).
    pub fn join_output_rows(
        &self,
        left_rows: f64,
        right_rows: f64,
        left_key: &ColumnRef,
        right_key: &ColumnRef,
    ) -> Result<f64> {
        Ok(left_rows * right_rows * self.join_selectivity(left_key, right_key)?)
    }

    /// Aliases known to this estimator (sorted, for deterministic plans).
    pub fn aliases(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.aliases.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }
}

fn zone_cmp_op(op: CmpOp) -> EncCmpOp {
    match op {
        CmpOp::Eq => EncCmpOp::Eq,
        CmpOp::Ne => EncCmpOp::Ne,
        CmpOp::Lt => EncCmpOp::Lt,
        CmpOp::Le => EncCmpOp::Le,
        CmpOp::Gt => EncCmpOp::Gt,
        CmpOp::Ge => EncCmpOp::Ge,
    }
}

/// Force a selectivity into the probability range. Non-finite inputs
/// (the `0/0` and `x/0` artifacts degenerate statistics used to produce)
/// conservatively become 0 — an empty input satisfies nothing.
fn clamp01(s: f64) -> f64 {
    if s.is_finite() {
        s.clamp(0.0, 1.0)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basilisk_expr::{and, col, not, or};
    use basilisk_storage::TableBuilder;
    use basilisk_types::DataType;

    fn setup() -> (Catalog, Estimator) {
        let mut b = TableBuilder::new("title")
            .column("id", DataType::Int)
            .column("year", DataType::Int);
        for i in 0..100i64 {
            // years 1950..2049: 49 rows satisfy year > 2000
            b.push_row(vec![i.into(), (1950 + i).into()]).unwrap();
        }
        let mut cat = Catalog::new();
        cat.add_table(b.finish().unwrap()).unwrap();

        let mut b = TableBuilder::new("scores")
            .column("movie_id", DataType::Int)
            .column("score", DataType::Float);
        for i in 0..200i64 {
            b.push_row(vec![(i % 50).into(), ((i % 10) as f64 / 10.0).into()])
                .unwrap();
        }
        cat.add_table(b.finish().unwrap()).unwrap();

        let est = Estimator::new(
            &cat,
            &[("t".into(), "title".into()), ("s".into(), "scores".into())],
        )
        .unwrap();
        (cat, est)
    }

    #[test]
    fn rows_and_ndv() {
        let (_c, est) = setup();
        assert_eq!(est.rows("t").unwrap(), 100.0);
        assert_eq!(est.rows("s").unwrap(), 200.0);
        assert!(est.rows("x").is_err());
        assert_eq!(est.ndv(&ColumnRef::new("t", "id")).unwrap(), 100.0);
        assert_eq!(est.ndv(&ColumnRef::new("s", "movie_id")).unwrap(), 50.0);
        assert!(est.ndv(&ColumnRef::new("t", "nope")).is_err());
        assert_eq!(est.aliases(), vec!["s", "t"]);
    }

    #[test]
    fn measured_atom_selectivity() {
        let (_c, est) = setup();
        let tree = PredicateTree::build(&col("t", "year").gt(2000i64));
        let s = est.node_selectivity(&tree, tree.root()).unwrap();
        assert!((s - 0.49).abs() < 1e-9, "measured {s}");
        // cached path
        let s2 = est.node_selectivity(&tree, tree.root()).unwrap();
        assert_eq!(s, s2);
    }

    #[test]
    fn independence_combinations() {
        let (_c, est) = setup();
        // year > 2000 (0.49) AND score < 0.5 (0.5 on s)
        let e = and(vec![
            col("t", "year").gt(2000i64),
            col("s", "score").lt(0.5),
        ]);
        let tree = PredicateTree::build(&e);
        let s = est.node_selectivity(&tree, tree.root()).unwrap();
        assert!((s - 0.49 * 0.5).abs() < 1e-9);

        let e = or(vec![
            col("t", "year").gt(2000i64),
            col("s", "score").lt(0.5),
        ]);
        let tree = PredicateTree::build(&e);
        let s = est.node_selectivity(&tree, tree.root()).unwrap();
        assert!((s - (1.0 - 0.51 * 0.5)).abs() < 1e-9);

        let e = not(col("t", "year").gt(2000i64));
        let tree = PredicateTree::build(&e);
        let s = est.node_selectivity(&tree, tree.root()).unwrap();
        assert!((s - 0.51).abs() < 1e-9);
    }

    #[test]
    fn join_estimates_pg_style() {
        let (_c, est) = setup();
        let l = ColumnRef::new("t", "id");
        let r = ColumnRef::new("s", "movie_id");
        // ndv(t.id)=100, ndv(s.movie_id)=50 → sel = 1/100
        let sel = est.join_selectivity(&l, &r).unwrap();
        assert!((sel - 0.01).abs() < 1e-12);
        let out = est.join_output_rows(100.0, 200.0, &l, &r).unwrap();
        assert!((out - 200.0).abs() < 1e-9);
    }

    #[test]
    fn null_frac_reported() {
        let mut b = TableBuilder::new("n").column("x", DataType::Int);
        for v in [Value::Int(1), Value::Null, Value::Int(3), Value::Null] {
            b.push_row(vec![v]).unwrap();
        }
        let mut cat = Catalog::new();
        cat.add_table(b.finish().unwrap()).unwrap();
        let est = Estimator::new(&cat, &[("n".into(), "n".into())]).unwrap();
        let f = est.null_frac(&ColumnRef::new("n", "x")).unwrap();
        assert!((f - 0.5).abs() < 1e-12);
        assert!(est.null_frac(&ColumnRef::new("n", "zz")).is_err());
    }

    use basilisk_types::Value;

    /// Empty tables must yield finite, in-range estimates everywhere —
    /// no `0/0 = NaN` or `1/0 = inf` poisoning the plan search.
    #[test]
    fn empty_tables_yield_finite_selectivities() {
        let mut cat = Catalog::new();
        let b = TableBuilder::new("e1")
            .column("id", DataType::Int)
            .column("year", DataType::Int);
        cat.add_table(b.finish().unwrap()).unwrap();
        let b = TableBuilder::new("e2")
            .column("movie_id", DataType::Int)
            .column("score", DataType::Float);
        cat.add_table(b.finish().unwrap()).unwrap();
        let est = Estimator::new(
            &cat,
            &[("a".into(), "e1".into()), ("b".into(), "e2".into())],
        )
        .unwrap();

        assert_eq!(est.rows("a").unwrap(), 0.0);
        assert_eq!(est.ndv(&ColumnRef::new("a", "id")).unwrap(), 1.0, "floored");

        let e = or(vec![
            and(vec![
                col("a", "year").gt(2000i64),
                col("b", "score").gt(7.0),
            ]),
            not(col("a", "year").lt(1950i64)),
        ]);
        let tree = PredicateTree::build(&e);
        for id in tree.atom_ids() {
            let s = est.atom_selectivity(tree.atom(id).unwrap()).unwrap();
            assert!(s.is_finite() && (0.0..=1.0).contains(&s), "atom sel {s}");
        }
        let s = est.node_selectivity(&tree, tree.root()).unwrap();
        assert!(s.is_finite() && (0.0..=1.0).contains(&s), "node sel {s}");

        let jsel = est
            .join_selectivity(&ColumnRef::new("a", "id"), &ColumnRef::new("b", "movie_id"))
            .unwrap();
        assert!(
            jsel.is_finite() && (0.0..=1.0).contains(&jsel),
            "join sel {jsel}"
        );
        let out = est
            .join_output_rows(
                0.0,
                0.0,
                &ColumnRef::new("a", "id"),
                &ColumnRef::new("b", "movie_id"),
            )
            .unwrap();
        assert_eq!(out, 0.0);
    }

    #[test]
    fn encoded_tables_estimate_ranges_from_zone_maps() {
        // 4096 rows, values clustered by position: the first quarter holds
        // 0..1024, the rest a constant 1_000_000. A strided sample works
        // here too, but the zone path must produce the (near-)exact
        // fraction without touching any payload.
        let mut b = TableBuilder::new("z").column("v", DataType::Int).encoded();
        for i in 0..4096i64 {
            let v = if i < 1024 { i } else { 1_000_000 };
            b.push_row(vec![v.into()]).unwrap();
        }
        let mut cat = Catalog::new();
        cat.add_table(b.finish().unwrap()).unwrap();
        let est = Estimator::new(&cat, &[("z".into(), "z".into())]).unwrap();
        let tree = PredicateTree::build(&col("z", "v").lt(1024i64));
        let s = est.node_selectivity(&tree, tree.root()).unwrap();
        assert!((s - 0.25).abs() < 0.02, "zone estimate {s}, want ~0.25");
        // Equality on the constant cluster: ~3/4 of the rows.
        let tree = PredicateTree::build(&col("z", "v").eq(1_000_000i64));
        let s = est.node_selectivity(&tree, tree.root()).unwrap();
        assert!(s > 0.5, "zone estimate {s}, want well above half");
    }

    #[test]
    fn duplicate_alias_rejected() {
        let (cat, _) = setup();
        let r = Estimator::new(
            &cat,
            &[("t".into(), "title".into()), ("t".into(), "scores".into())],
        );
        assert!(r.is_err());
    }
}
