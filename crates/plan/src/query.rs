//! The logical query: the unit planners plan.

use basilisk_expr::{ColumnRef, Expr};
use basilisk_types::{BasiliskError, Result};

/// An equi-join condition `left = right` between two aliased columns.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JoinCond {
    pub left: ColumnRef,
    pub right: ColumnRef,
}

impl JoinCond {
    pub fn new(left: ColumnRef, right: ColumnRef) -> Self {
        JoinCond { left, right }
    }

    /// The two aliases this condition connects.
    pub fn aliases(&self) -> (&str, &str) {
        (&self.left.table, &self.right.table)
    }

    /// The condition oriented so that `left` belongs to `alias`, if it
    /// touches `alias` at all.
    pub fn oriented_from(&self, alias: &str) -> Option<JoinCond> {
        if self.left.table == alias {
            Some(self.clone())
        } else if self.right.table == alias {
            Some(JoinCond {
                left: self.right.clone(),
                right: self.left.clone(),
            })
        } else {
            None
        }
    }
}

impl std::fmt::Display for JoinCond {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} = {}", self.left, self.right)
    }
}

/// A select-project-join query with an arbitrary boolean predicate — the
/// query class the paper evaluates (§5).
#[derive(Debug, Clone)]
pub struct Query {
    /// `(alias, table name)` pairs, e.g. `("t", "title")`.
    pub aliases: Vec<(String, String)>,
    /// Equi-join conditions. The induced join graph must be connected
    /// (this system does not plan cross products) and acyclic.
    pub joins: Vec<JoinCond>,
    /// The WHERE predicate; `None` means no filtering.
    pub predicate: Option<Expr>,
    /// Projected columns; empty means "count only" (the harnesses verify
    /// cardinalities).
    pub projection: Vec<ColumnRef>,
}

impl Query {
    pub fn new(aliases: Vec<(String, String)>) -> Query {
        Query {
            aliases,
            joins: Vec::new(),
            predicate: None,
            projection: Vec::new(),
        }
    }

    pub fn join(mut self, left: ColumnRef, right: ColumnRef) -> Query {
        self.joins.push(JoinCond::new(left, right));
        self
    }

    pub fn filter(mut self, predicate: Expr) -> Query {
        self.predicate = Some(predicate);
        self
    }

    pub fn select(mut self, columns: Vec<ColumnRef>) -> Query {
        self.projection = columns;
        self
    }

    pub fn alias_names(&self) -> Vec<&str> {
        self.aliases.iter().map(|(a, _)| a.as_str()).collect()
    }

    pub fn has_alias(&self, alias: &str) -> bool {
        self.aliases.iter().any(|(a, _)| a == alias)
    }

    /// Sanity-check the query: every referenced alias exists, and the join
    /// graph connects all aliases.
    pub fn validate(&self) -> Result<()> {
        if self.aliases.is_empty() {
            return Err(BasiliskError::Plan("query has no tables".into()));
        }
        let mut seen = std::collections::HashSet::new();
        for (a, _) in &self.aliases {
            if !seen.insert(a.as_str()) {
                return Err(BasiliskError::Plan(format!("duplicate alias {a}")));
            }
        }
        for j in &self.joins {
            for alias in [&j.left.table, &j.right.table] {
                if !self.has_alias(alias) {
                    return Err(BasiliskError::Plan(format!(
                        "join condition {j} references unknown alias {alias}"
                    )));
                }
            }
        }
        if let Some(p) = &self.predicate {
            for t in p.tables() {
                if !self.has_alias(t) {
                    return Err(BasiliskError::Plan(format!(
                        "predicate references unknown alias {t}"
                    )));
                }
            }
        }
        for c in &self.projection {
            if !self.has_alias(&c.table) {
                return Err(BasiliskError::Plan(format!(
                    "projection references unknown alias {}",
                    c.table
                )));
            }
        }
        // Connectivity.
        if self.aliases.len() > 1 {
            let mut reach = std::collections::HashSet::new();
            reach.insert(self.aliases[0].0.as_str());
            let mut changed = true;
            while changed {
                changed = false;
                for j in &self.joins {
                    let (a, b) = j.aliases();
                    if reach.contains(a) && reach.insert(b) {
                        changed = true;
                    }
                    if reach.contains(b) && reach.insert(a) {
                        changed = true;
                    }
                }
            }
            if reach.len() != self.aliases.len() {
                return Err(BasiliskError::Plan(
                    "join graph is disconnected (cross products are not planned)".into(),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basilisk_expr::col;

    fn q1() -> Query {
        Query::new(vec![
            ("t".into(), "title".into()),
            ("mi".into(), "movie_info_idx".into()),
        ])
        .join(ColumnRef::new("t", "id"), ColumnRef::new("mi", "movie_id"))
        .filter(col("t", "year").gt(2000i64))
        .select(vec![ColumnRef::new("t", "id")])
    }

    #[test]
    fn builder_and_validate() {
        let q = q1();
        assert!(q.validate().is_ok());
        assert_eq!(q.alias_names(), vec!["t", "mi"]);
        assert!(q.has_alias("t"));
        assert!(!q.has_alias("x"));
    }

    #[test]
    fn join_cond_orientation() {
        let j = JoinCond::new(ColumnRef::new("t", "id"), ColumnRef::new("mi", "movie_id"));
        assert_eq!(j.aliases(), ("t", "mi"));
        let o = j.oriented_from("mi").unwrap();
        assert_eq!(o.left, ColumnRef::new("mi", "movie_id"));
        assert!(j.oriented_from("z").is_none());
        assert_eq!(j.to_string(), "t.id = mi.movie_id");
    }

    #[test]
    fn validate_rejects_bad_queries() {
        // unknown alias in join
        let mut q = q1();
        q.joins[0].left.table = "zz".into();
        assert!(q.validate().is_err());

        // unknown alias in predicate
        let mut q = q1();
        q.predicate = Some(col("zz", "x").lt(1i64));
        assert!(q.validate().is_err());

        // unknown alias in projection
        let mut q = q1();
        q.projection = vec![ColumnRef::new("zz", "x")];
        assert!(q.validate().is_err());

        // duplicate alias
        let q = Query::new(vec![
            ("t".into(), "title".into()),
            ("t".into(), "title".into()),
        ]);
        assert!(q.validate().is_err());

        // disconnected graph
        let q = Query::new(vec![("a".into(), "x".into()), ("b".into(), "y".into())]);
        assert!(q.validate().is_err());

        // empty
        assert!(Query::new(vec![]).validate().is_err());
    }
}
