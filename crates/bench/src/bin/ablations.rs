//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Tag generalization** (§3.2) vs the naive strategy (§3.1):
//!    measures the tag-space blowup and runtime cost of carrying
//!    ungeneralized tags.
//! 2. **Atom-subsumption closure** on/off: the `year>2000 ⇒ year>1980`
//!    reasoning the paper's planner uses (§2.2).
//! 3. **Disk vs memory** execution: the same query over disk-resident
//!    tables through the LFU page cache (§5 "System").
//!
//! Usage: ablations [--rows 10000] [--reps 3] [--seed 7]

#![forbid(unsafe_code)]

use std::sync::Arc;

use basilisk::{Catalog, PlannerKind, QuerySession, TagMapStrategy};
use basilisk_bench::{measure, Args};
use basilisk_storage::{LfuPageCache, Table};
use basilisk_workload::{dnf_query, generate_synthetic, SyntheticConfig};

fn main() {
    let args = Args::parse();
    let rows = args.get_usize("--rows", 10_000);
    let reps = args.get_usize("--reps", 3);
    let seed = args.get_usize("--seed", 7) as u64;

    let cfg = SyntheticConfig {
        rows,
        num_attrs: 7,
        zipf_shape: 1.5,
        seed,
    };
    let tables = generate_synthetic(&cfg).expect("generate");
    let mut catalog = Catalog::new();
    for t in &tables {
        catalog.add_table(t.clone()).expect("register");
    }

    ablation_generalization(&catalog, reps);
    ablation_closure(&catalog, reps);
    ablation_disk(&tables, reps);
}

/// §3.1 vs §3.2: run TPushdown under the naive strategy and the
/// generalized strategy; report runtime and the number of distinct tags
/// reaching the final operator.
fn ablation_generalization(catalog: &Catalog, reps: usize) {
    println!("\n== Ablation 1: tag generalization (vs naive §3.1 tags) ==");
    println!(
        "{:>9} {:>8} {:>12} {:>10}",
        "strategy", "clauses", "runtime(s)", "rows"
    );
    for clauses in 2..=4 {
        let q = dnf_query(clauses, 0.2, None);
        for (name, strategy) in [
            ("naive", TagMapStrategy::Naive),
            ("general", TagMapStrategy::Generalized { use_closure: true }),
        ] {
            let session = QuerySession::new(catalog, q.clone())
                .expect("session")
                .with_strategy(strategy);
            let mut secs = 0.0;
            let mut rows = 0;
            for _ in 0..reps {
                let (out, t) = session.run(PlannerKind::TPushdown).expect("run");
                secs += t.total().as_secs_f64();
                rows = out.count();
            }
            println!(
                "{:>9} {:>8} {:>12.3} {:>10}",
                name,
                clauses,
                secs / reps as f64,
                rows
            );
        }
    }
    println!("# naive tags double per filter (§3.1's 2^n blowup); generalized stay flat");
}

/// Subsumption closure on/off.
fn ablation_closure(catalog: &Catalog, reps: usize) {
    println!("\n== Ablation 2: atom-subsumption closure ==");
    println!("{:>9} {:>12} {:>10}", "closure", "runtime(s)", "rows");
    // A query with subsumable predicates on the same attribute:
    // (t1.a1 < 0.2 ∧ t2.a1 < 0.2) ∨ (t1.a1 < 0.5 ∧ t2.a1 < 0.5)
    use basilisk::{and, col, or, Query};
    use basilisk_expr::ColumnRef;
    let q = Query::new(vec![
        ("t0".into(), "t0".into()),
        ("t1".into(), "t1".into()),
        ("t2".into(), "t2".into()),
    ])
    .join(ColumnRef::new("t0", "id"), ColumnRef::new("t1", "fid"))
    .join(ColumnRef::new("t0", "id"), ColumnRef::new("t2", "fid"))
    .filter(or(vec![
        and(vec![col("t1", "a1").lt(0.2), col("t2", "a1").lt(0.2)]),
        and(vec![col("t1", "a1").lt(0.5), col("t2", "a1").lt(0.5)]),
    ]));
    for (name, use_closure) in [("off", false), ("on", true)] {
        let session = QuerySession::new(catalog, q.clone())
            .expect("session")
            .with_strategy(TagMapStrategy::Generalized { use_closure });
        let mut secs = 0.0;
        let mut rows = 0;
        for _ in 0..reps {
            let (out, t) = session.run(PlannerKind::TPushdown).expect("run");
            secs += t.total().as_secs_f64();
            rows = out.count();
        }
        println!("{:>9} {:>12.3} {:>10}", name, secs / reps as f64, rows);
    }
    println!("# closure skips redundant filter slices and prunes join pairings earlier");
}

/// Disk-resident vs in-memory execution of the same query.
fn ablation_disk(tables: &[Table], reps: usize) {
    println!("\n== Ablation 3: disk (LFU page cache) vs memory ==");
    let dir = std::env::temp_dir().join(format!("basilisk-ablation-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    for t in tables {
        t.save(&dir.join(t.name())).expect("save");
    }
    let q = dnf_query(2, 0.2, None);

    let mut mem_catalog = Catalog::new();
    for t in tables {
        mem_catalog.add_table(t.clone()).expect("register");
    }
    let mem = measure(&mem_catalog, &q, PlannerKind::TCombined, reps).expect("mem");

    for cache_pages in [32usize, 4096] {
        let cache = Arc::new(LfuPageCache::new(cache_pages));
        let mut disk_catalog = Catalog::new();
        for t in tables {
            let loaded = Table::load(&dir.join(t.name()), Arc::clone(&cache)).expect("load");
            disk_catalog.add_table(loaded).expect("register");
        }
        let disk = measure(&disk_catalog, &q, PlannerKind::TCombined, reps).expect("disk");
        assert_eq!(mem.rows, disk.rows);
        let stats = cache.stats();
        println!(
            "disk (cache {:>5} pages): {:>8.3}s   hits {:>7} misses {:>6} evictions {:>6}",
            cache_pages,
            disk.total_secs(),
            stats.hits,
            stats.misses,
            stats.evictions
        );
    }
    println!("mem                      : {:>8.3}s", mem.total_secs());
    let _ = std::fs::remove_dir_all(&dir);
}
