//! The interned predicate tree (§3.2, Figure 2).
//!
//! Tag generalization represents the query's predicate expression as a
//! tree whose leaves are base predicates and whose intermediate nodes are
//! AND/OR/NOT. Two structural properties from the paper are enforced here:
//!
//! 1. **Normalization**: "an intermediate node cannot be of the same type
//!    as their parent" — nested ANDs/ORs are flattened, double negation is
//!    removed, single-child connectives collapse.
//! 2. **Duplicate sharing**: "the same predicate expression may appear
//!    multiple times in the predicate tree, so the 'parents' function
//!    returns the parent for each instance". We intern structurally equal
//!    subexpressions into a single node with a *list of parents*, making
//!    the tree a rooted DAG. Algorithm 1's per-instance propagation and
//!    the "every instance has a covered ancestor" checks then become
//!    per-parent / per-path conditions on the DAG.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use crate::atom::Atom;
use crate::expr::Expr;

/// Identifier of one interned predicate-tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub u32);

impl ExprId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The payload of a node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeKind {
    Atom(Atom),
    /// Children sorted by id (AND is commutative, so this canonicalizes).
    And(Vec<ExprId>),
    Or(Vec<ExprId>),
    Not(ExprId),
}

#[derive(Debug, Clone)]
struct Node {
    kind: NodeKind,
    parents: Vec<ExprId>,
}

/// The interned, normalized predicate tree of one query.
#[derive(Debug, Clone)]
pub struct PredicateTree {
    nodes: Vec<Node>,
    root: ExprId,
    interned: HashMap<NodeKind, ExprId>,
}

impl PredicateTree {
    /// Build the tree for a predicate expression, normalizing as described
    /// in the module docs.
    pub fn build(expr: &Expr) -> PredicateTree {
        let mut tree = PredicateTree {
            nodes: Vec::new(),
            root: ExprId(0),
            interned: HashMap::new(),
        };
        let normalized = normalize(expr);
        tree.root = tree.intern(&normalized);
        tree.compute_parents();
        tree
    }

    fn intern(&mut self, expr: &Expr) -> ExprId {
        let kind = match expr {
            Expr::Atom(a) => NodeKind::Atom(a.clone()),
            Expr::Not(c) => {
                let cid = self.intern(c);
                NodeKind::Not(cid)
            }
            Expr::And(cs) | Expr::Or(cs) => {
                let mut ids: Vec<ExprId> = cs.iter().map(|c| self.intern(c)).collect();
                ids.sort_unstable();
                ids.dedup();
                if ids.len() == 1 {
                    return ids[0];
                }
                if matches!(expr, Expr::And(_)) {
                    NodeKind::And(ids)
                } else {
                    NodeKind::Or(ids)
                }
            }
        };
        if let Some(&id) = self.interned.get(&kind) {
            return id;
        }
        let id = ExprId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: kind.clone(),
            parents: Vec::new(),
        });
        self.interned.insert(kind, id);
        id
    }

    fn compute_parents(&mut self) {
        let edges: Vec<(ExprId, ExprId)> = self
            .nodes
            .iter()
            .enumerate()
            .flat_map(|(i, n)| {
                let parent = ExprId(i as u32);
                n.children()
                    .iter()
                    .map(move |&c| (c, parent))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (child, parent) in edges {
            let parents = &mut self.nodes[child.index()].parents;
            if !parents.contains(&parent) {
                parents.push(parent);
            }
        }
    }

    /// The root node: the query's entire predicate expression.
    pub fn root(&self) -> ExprId {
        self.root
    }

    /// Number of interned nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All node ids.
    pub fn ids(&self) -> impl Iterator<Item = ExprId> {
        (0..self.nodes.len() as u32).map(ExprId)
    }

    pub fn kind(&self, id: ExprId) -> &NodeKind {
        &self.nodes[id.index()].kind
    }

    /// Parents of `id` — one entry per *distinct* parent node; a node with
    /// several instances in the original tree has several parents here.
    pub fn parents(&self, id: ExprId) -> &[ExprId] {
        &self.nodes[id.index()].parents
    }

    pub fn children(&self, id: ExprId) -> &[ExprId] {
        self.nodes[id.index()].children()
    }

    pub fn is_atom(&self, id: ExprId) -> bool {
        matches!(self.kind(id), NodeKind::Atom(_))
    }

    pub fn is_and(&self, id: ExprId) -> bool {
        matches!(self.kind(id), NodeKind::And(_))
    }

    pub fn is_or(&self, id: ExprId) -> bool {
        matches!(self.kind(id), NodeKind::Or(_))
    }

    pub fn is_not(&self, id: ExprId) -> bool {
        matches!(self.kind(id), NodeKind::Not(_))
    }

    pub fn atom(&self, id: ExprId) -> Option<&Atom> {
        match self.kind(id) {
            NodeKind::Atom(a) => Some(a),
            _ => None,
        }
    }

    /// Ids of every atom node.
    pub fn atom_ids(&self) -> Vec<ExprId> {
        self.ids().filter(|&id| self.is_atom(id)).collect()
    }

    /// The table aliases referenced under `id`.
    pub fn tables(&self, id: ExprId) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        self.visit_atoms(id, &mut |a| {
            out.insert(a.table());
        });
        out
    }

    fn visit_atoms<'a>(&'a self, id: ExprId, f: &mut impl FnMut(&'a Atom)) {
        match self.kind(id) {
            NodeKind::Atom(a) => f(a),
            NodeKind::Not(c) => self.visit_atoms(*c, f),
            NodeKind::And(cs) | NodeKind::Or(cs) => {
                for &c in cs {
                    self.visit_atoms(c, f);
                }
            }
        }
    }

    /// Atom ids under `id` (deduplicated, in id order).
    pub fn atoms_under(&self, id: ExprId) -> Vec<ExprId> {
        let mut set = BTreeSet::new();
        self.collect_atoms_under(id, &mut set);
        set.into_iter().collect()
    }

    fn collect_atoms_under(&self, id: ExprId, out: &mut BTreeSet<ExprId>) {
        match self.kind(id) {
            NodeKind::Atom(_) => {
                out.insert(id);
            }
            NodeKind::Not(c) => self.collect_atoms_under(*c, out),
            NodeKind::And(cs) | NodeKind::Or(cs) => {
                for &c in cs {
                    self.collect_atoms_under(c, out);
                }
            }
        }
    }

    /// True if `anc` is a strict ancestor of `id` (reachable upward).
    pub fn is_ancestor(&self, anc: ExprId, id: ExprId) -> bool {
        if anc == id {
            return false;
        }
        let mut stack = vec![id];
        let mut seen = vec![false; self.nodes.len()];
        while let Some(n) = stack.pop() {
            for &p in self.parents(n) {
                if p == anc {
                    return true;
                }
                if !seen[p.index()] {
                    seen[p.index()] = true;
                    stack.push(p);
                }
            }
        }
        false
    }

    /// "Every instance of `id` has an ancestor with an assignment":
    /// true iff every upward path from `id` to the root passes through a
    /// node for which `is_assigned` returns true (the node itself counts).
    pub fn is_covered(&self, id: ExprId, is_assigned: &impl Fn(ExprId) -> bool) -> bool {
        let mut memo: HashMap<ExprId, bool> = HashMap::new();
        self.covered_rec(id, is_assigned, &mut memo)
    }

    fn covered_rec(
        &self,
        id: ExprId,
        is_assigned: &impl Fn(ExprId) -> bool,
        memo: &mut HashMap<ExprId, bool>,
    ) -> bool {
        if let Some(&v) = memo.get(&id) {
            return v;
        }
        let v = if is_assigned(id) {
            true
        } else if id == self.root {
            false
        } else {
            let parents = self.parents(id).to_vec();
            !parents.is_empty()
                && parents
                    .iter()
                    .all(|&p| self.covered_rec(p, is_assigned, memo))
        };
        memo.insert(id, v);
        v
    }

    /// Reconstruct the [`Expr`] for a node (used by baseline planners that
    /// execute subexpressions as stand-alone predicates).
    pub fn to_expr(&self, id: ExprId) -> Expr {
        match self.kind(id) {
            NodeKind::Atom(a) => Expr::Atom(a.clone()),
            NodeKind::Not(c) => Expr::Not(Box::new(self.to_expr(*c))),
            NodeKind::And(cs) => Expr::And(cs.iter().map(|&c| self.to_expr(c)).collect()),
            NodeKind::Or(cs) => Expr::Or(cs.iter().map(|&c| self.to_expr(c)).collect()),
        }
    }

    /// Render a node as SQL-ish text.
    pub fn display(&self, id: ExprId) -> String {
        self.to_expr(id).to_string()
    }

    /// True when `other` has exactly this tree's DAG — node for node, id
    /// for id — with atoms allowed to differ **only in their literal
    /// values** (same column, same comparison operator, same LIKE case
    /// mode, same IN-list arity, same variant).
    ///
    /// This is the soundness guard for reusing a cached plan under
    /// parameter rebinding: plans address the tree by [`ExprId`], and
    /// because interning dedups *by content*, two bindings of the same
    /// statement template can intern to different DAGs (e.g. `t.a = ?1
    /// OR t.a = ?2` collapses to a single node when both parameters
    /// coincide). A congruent rebound tree is guaranteed to give every
    /// cached id the same meaning; a non-congruent one must be re-planned.
    pub fn congruent_modulo_values(&self, other: &PredicateTree) -> bool {
        use crate::atom::Atom;
        if self.nodes.len() != other.nodes.len() || self.root != other.root {
            return false;
        }
        self.nodes
            .iter()
            .zip(&other.nodes)
            .all(|(a, b)| match (&a.kind, &b.kind) {
                (NodeKind::Atom(x), NodeKind::Atom(y)) => match (x, y) {
                    (
                        Atom::Cmp {
                            col: ca, op: oa, ..
                        },
                        Atom::Cmp {
                            col: cb, op: ob, ..
                        },
                    ) => ca == cb && oa == ob,
                    (
                        Atom::Like {
                            col: ca,
                            case_insensitive: ia,
                            ..
                        },
                        Atom::Like {
                            col: cb,
                            case_insensitive: ib,
                            ..
                        },
                    ) => ca == cb && ia == ib,
                    (Atom::IsNull { col: ca }, Atom::IsNull { col: cb }) => ca == cb,
                    (
                        Atom::InList {
                            col: ca,
                            values: va,
                        },
                        Atom::InList {
                            col: cb,
                            values: vb,
                        },
                    ) => ca == cb && va.len() == vb.len(),
                    _ => false,
                },
                (NodeKind::And(xs), NodeKind::And(ys)) | (NodeKind::Or(xs), NodeKind::Or(ys)) => {
                    xs == ys
                }
                (NodeKind::Not(x), NodeKind::Not(y)) => x == y,
                _ => false,
            })
    }
}

impl Node {
    fn children(&self) -> &[ExprId] {
        match &self.kind {
            NodeKind::Atom(_) => &[],
            NodeKind::Not(c) => std::slice::from_ref(c),
            NodeKind::And(cs) | NodeKind::Or(cs) => cs,
        }
    }
}

/// Normalize an expression: remove double negation, flatten nested
/// same-type connectives, collapse single-child connectives.
fn normalize(expr: &Expr) -> Expr {
    match expr {
        Expr::Atom(a) => Expr::Atom(a.clone()),
        Expr::Not(c) => match normalize(c) {
            Expr::Not(inner) => *inner,
            other => Expr::Not(Box::new(other)),
        },
        Expr::And(cs) => {
            let mut flat = Vec::new();
            for c in cs {
                match normalize(c) {
                    Expr::And(inner) => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            if flat.len() == 1 {
                flat.into_iter().next().unwrap()
            } else {
                Expr::And(flat)
            }
        }
        Expr::Or(cs) => {
            let mut flat = Vec::new();
            for c in cs {
                match normalize(c) {
                    Expr::Or(inner) => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            if flat.len() == 1 {
                flat.into_iter().next().unwrap()
            } else {
                Expr::Or(flat)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{and, col, not, or};

    fn query1() -> Expr {
        or(vec![
            and(vec![
                col("t", "year").gt(2000i64),
                col("mi_idx", "score").gt("7.0"),
            ]),
            and(vec![
                col("t", "year").gt(1980i64),
                col("mi_idx", "score").gt("8.0"),
            ]),
        ])
    }

    #[test]
    fn builds_query1_shape() {
        let tree = PredicateTree::build(&query1());
        // 4 atoms + 2 ANDs + 1 OR
        assert_eq!(tree.len(), 7);
        let root = tree.root();
        assert!(tree.is_or(root));
        assert_eq!(tree.children(root).len(), 2);
        for &c in tree.children(root) {
            assert!(tree.is_and(c));
            assert_eq!(tree.parents(c), &[root]);
            for &a in tree.children(c) {
                assert!(tree.is_atom(a));
            }
        }
        assert_eq!(tree.atom_ids().len(), 4);
    }

    #[test]
    fn duplicate_subexpressions_share_a_node_with_two_parents() {
        // (A AND B) OR (A AND C): atom A appears twice but is one node.
        let a = || col("t", "x").gt(1i64);
        let e = or(vec![
            and(vec![a(), col("t", "y").gt(2i64)]),
            and(vec![a(), col("t", "z").gt(3i64)]),
        ]);
        let tree = PredicateTree::build(&e);
        assert_eq!(tree.atom_ids().len(), 3);
        let a_id = tree
            .atom_ids()
            .into_iter()
            .find(|&id| tree.atom(id).unwrap().to_string() == "t.x > 1")
            .unwrap();
        assert_eq!(tree.parents(a_id).len(), 2, "A has two AND parents");
    }

    #[test]
    fn normalization_flattens_and_collapses() {
        let e = and(vec![
            Expr::And(vec![col("t", "a").lt(1i64), col("t", "b").lt(2i64)]),
            col("t", "c").lt(3i64),
        ]);
        let tree = PredicateTree::build(&e);
        assert!(tree.is_and(tree.root()));
        assert_eq!(tree.children(tree.root()).len(), 3);
        for &c in tree.children(tree.root()) {
            assert!(tree.is_atom(c), "no AND under AND");
        }
        // double negation
        let e = not(not(col("t", "a").lt(1i64)));
        let tree = PredicateTree::build(&e);
        assert!(tree.is_atom(tree.root()));
        // Or(x, x) collapses to x
        let e = Expr::Or(vec![col("t", "a").lt(1i64), col("t", "a").lt(1i64)]);
        let tree = PredicateTree::build(&e);
        assert!(tree.is_atom(tree.root()));
    }

    #[test]
    fn tables_and_atoms_under() {
        let tree = PredicateTree::build(&query1());
        let root = tree.root();
        assert_eq!(
            tree.tables(root).into_iter().collect::<Vec<_>>(),
            vec!["mi_idx", "t"]
        );
        let and0 = tree.children(root)[0];
        assert_eq!(tree.atoms_under(and0).len(), 2);
        assert_eq!(tree.atoms_under(root).len(), 4);
    }

    #[test]
    fn ancestor_queries() {
        let tree = PredicateTree::build(&query1());
        let root = tree.root();
        let and0 = tree.children(root)[0];
        let atom = tree.children(and0)[0];
        assert!(tree.is_ancestor(root, atom));
        assert!(tree.is_ancestor(and0, atom));
        assert!(!tree.is_ancestor(atom, root));
        assert!(!tree.is_ancestor(atom, atom));
        let and1 = tree.children(root)[1];
        assert!(!tree.is_ancestor(and0, and1));
    }

    #[test]
    fn coverage_requires_every_path() {
        // A appears under both ANDs; covering only one AND is not enough.
        let a = || col("t", "x").gt(1i64);
        let e = or(vec![
            and(vec![a(), col("t", "y").gt(2i64)]),
            and(vec![a(), col("t", "z").gt(3i64)]),
        ]);
        let tree = PredicateTree::build(&e);
        let a_id = tree
            .atom_ids()
            .into_iter()
            .find(|&id| tree.atom(id).unwrap().to_string() == "t.x > 1")
            .unwrap();
        let and0 = tree.parents(a_id)[0];
        assert!(!tree.is_covered(a_id, &|id| id == and0));
        let both: Vec<ExprId> = tree.parents(a_id).to_vec();
        assert!(tree.is_covered(a_id, &|id| both.contains(&id)));
        assert!(tree.is_covered(a_id, &|id| id == tree.root()));
        assert!(tree.is_covered(a_id, &|id| id == a_id), "self counts");
        assert!(!tree.is_covered(tree.root(), &|_| false));
    }

    #[test]
    fn to_expr_roundtrip_display() {
        let tree = PredicateTree::build(&query1());
        let rendered = tree.display(tree.root());
        // The interner may reorder commutative children, so re-parse
        // structurally: same atom set and same shape.
        let back = PredicateTree::build(&tree.to_expr(tree.root()));
        assert_eq!(back.len(), tree.len());
        assert!(rendered.contains("t.year > 2000"));
        assert!(rendered.contains("OR"));
    }

    #[test]
    fn not_nodes_in_tree() {
        let e = and(vec![not(col("t", "a").is_null()), col("t", "b").lt(5i64)]);
        let tree = PredicateTree::build(&e);
        let root = tree.root();
        assert!(tree.is_and(root));
        let not_node = tree
            .children(root)
            .iter()
            .copied()
            .find(|&c| tree.is_not(c))
            .unwrap();
        assert_eq!(tree.children(not_node).len(), 1);
        assert!(tree.is_atom(tree.children(not_node)[0]));
        assert_eq!(tree.atoms_under(root).len(), 2);
    }

    #[test]
    fn congruence_modulo_values() {
        let shape = |a: i64, b: i64| {
            or(vec![
                and(vec![col("t", "x").gt(a), col("t", "y").lt(b)]),
                col("t", "z").is_null(),
            ])
        };
        let t1 = PredicateTree::build(&shape(1, 2));
        let t2 = PredicateTree::build(&shape(100, -7));
        assert!(t1.congruent_modulo_values(&t2), "values are free");
        assert!(t1.congruent_modulo_values(&t1));
        // Different operator → not congruent.
        let t3 = PredicateTree::build(&or(vec![
            and(vec![col("t", "x").ge(1i64), col("t", "y").lt(2i64)]),
            col("t", "z").is_null(),
        ]));
        assert!(!t1.congruent_modulo_values(&t3));
        // Value-dependent collapse: two equal atoms intern to ONE node,
        // so binding equal parameters changes the DAG — must be caught.
        let tpl = PredicateTree::build(&Expr::Or(vec![
            col("t", "a").gt(1i64),
            col("t", "a").gt(2i64),
        ]));
        let collapsed = PredicateTree::build(&Expr::Or(vec![
            col("t", "a").gt(5i64),
            col("t", "a").gt(5i64),
        ]));
        assert!(!tpl.congruent_modulo_values(&collapsed));
    }

    #[test]
    fn single_atom_root() {
        let tree = PredicateTree::build(&col("t", "a").lt(1i64));
        assert_eq!(tree.len(), 1);
        assert!(tree.is_atom(tree.root()));
        assert!(tree.parents(tree.root()).is_empty());
    }
}
