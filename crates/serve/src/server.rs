//! The resident server: one shared worker pool, a pool of reusable
//! execution contexts, fair lane-based admission and the plan cache.
//!
//! # Request lifecycle
//!
//! ```text
//! client thread ──► Request (client tag, priority) ──► admission lane
//!        ──► DRR dispatch / context grant ──► bind params
//!        ──► congruence guard ──► execute cached plan ──► project/limit
//!        ──► context return (sweep) ──► Response
//! ```
//!
//! * **Admission** queues every request as a *ticket* in its client's
//!   fairness lane; a deficit-round-robin dispatcher grants contexts
//!   across lanes so no client can starve another (see the
//!   [`admission`](crate::admission) module docs). At most
//!   `queue_limit` requests may be in the system (queued + executing);
//!   beyond that, admission rejects immediately with the typed,
//!   retryable [`BasiliskError::Busy`] so clients can back off.
//! * **Contexts** ([`ExecContext`]) carry a warm session arena and a
//!   handle to the server's one [`WorkerPool`]. A context serves one
//!   request at a time and is swept on return, so arena steady state
//!   holds *across statements*: repeated traffic of cached shapes
//!   allocates nothing once each context's pools are warm.
//! * **The plan cache** keys on normalized statement text (literals →
//!   `?n`); hits bind fresh literal values into the cached template and
//!   re-drive the cached plan — zero parse, zero plan. A congruence
//!   guard re-plans the rare binding whose literal values change the
//!   predicate DAG itself (see
//!   [`PredicateTree::congruent_modulo_values`]).
//!
//! [`Server::submit`] is the one public entry point (a [`Request`] in, a
//! [`Response`] or typed [`ServeError`] out — what the wire layer
//! speaks); [`Server::sql`] and [`Server::execute_prepared`] are thin
//! wrappers over the same path for embedded callers.

use std::sync::Arc;
use std::time::{Duration, Instant};

use basilisk_catalog::{Catalog, Estimator};
use basilisk_expr::{ColumnRef, PredicateTree};
use basilisk_plan::{
    ExecContext, Plan, PlanTimings, PlannerKind, Query, QueryOutput, QuerySession,
};
use basilisk_sched::WorkerPool;
use basilisk_sql::{bind_params, normalize_select, Projection};
use basilisk_storage::Column;
use basilisk_types::{
    BasiliskError, HistogramSnapshot, MetricsRegistry, Result, SlowLog, Tracer, Value,
};

use crate::admission::Admission;
use crate::api::{Command, OutputColumns, Priority, Request, Response, ServeError};
use crate::cache::{PlanCache, Prepared, PreparedStatement};
use crate::stats::{ServeStats, SlowQuery, StatsRecorder};

/// Server sizing knobs. `Default` targets a small interactive server;
/// build a custom configuration through the validating
/// [`ServerConfig::builder`] (fields are checked at construction, so a
/// [`Server`] never discovers a bad sizing at first request).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    contexts: usize,
    queue_limit: usize,
    cache_capacity: usize,
    workers: Option<usize>,
    morsel_rows: Option<usize>,
    region_slots: Option<usize>,
    default_planner: PlannerKind,
    slow_log_capacity: usize,
    slow_threshold_micros: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            contexts: 4,
            queue_limit: 256,
            cache_capacity: 256,
            workers: None,
            morsel_rows: None,
            region_slots: None,
            default_planner: PlannerKind::TCombined,
            slow_log_capacity: 16,
            slow_threshold_micros: 10_000,
        }
    }
}

impl ServerConfig {
    /// Start a validating builder from the default configuration.
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            config: ServerConfig::default(),
            queue_limit: None,
        }
    }

    /// Number of reusable execution contexts = maximum concurrently
    /// *executing* requests.
    pub fn contexts(&self) -> usize {
        self.contexts
    }

    /// Maximum requests in the system (queued + executing) before
    /// admission rejects with [`BasiliskError::Busy`].
    pub fn queue_limit(&self) -> usize {
        self.queue_limit
    }

    /// Plan-cache capacity (distinct statement shapes × planner kinds).
    pub fn cache_capacity(&self) -> usize {
        self.cache_capacity
    }

    /// Workers in the shared pool; `None` = the engine default
    /// (`BASILISK_THREADS`, else available parallelism).
    pub fn workers(&self) -> Option<usize> {
        self.workers
    }

    /// Morsel granularity override for the shared pool.
    pub fn morsel_rows(&self) -> Option<usize> {
        self.morsel_rows
    }

    /// Region-table size override for the shared pool; `None` = the
    /// scheduler default
    /// ([`DEFAULT_REGION_SLOTS`](basilisk_sched::DEFAULT_REGION_SLOTS)).
    /// `Some(1)` restores exclusive-region admission (one parallel
    /// region at a time) — the interleaving benchmark's baseline.
    pub fn region_slots(&self) -> Option<usize> {
        self.region_slots
    }

    /// Planner used by [`Server::sql`] / [`Server::prepare`].
    pub fn default_planner(&self) -> PlannerKind {
        self.default_planner
    }

    /// Entries the slow-query ring retains (newest win once full).
    pub fn slow_log_capacity(&self) -> usize {
        self.slow_log_capacity
    }

    /// Total-latency threshold (µs) at or above which a request is
    /// recorded into the slow-query ring; `u64::MAX` disables retention.
    pub fn slow_threshold_micros(&self) -> u64 {
        self.slow_threshold_micros
    }
}

/// Validating builder for [`ServerConfig`] (see the field accessors for
/// what each knob means). Invalid sizings fail at [`build`] time with a
/// [`BasiliskError::Plan`], not at the first request:
///
/// * `contexts >= 1` — a server with no execution contexts can serve
///   nothing;
/// * `queue_limit >= contexts` — a system bound below the context count
///   would strand idle contexts (left unset, the limit grows with the
///   context count: `max(256, contexts)`);
/// * `region_slots != Some(0)` — a zero-slot region table would
///   deadlock every parallel region.
///
/// [`build`]: ServerConfigBuilder::build
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
    /// Explicit queue limit, if any; the default scales with `contexts`.
    queue_limit: Option<usize>,
}

impl ServerConfigBuilder {
    pub fn contexts(mut self, contexts: usize) -> Self {
        self.config.contexts = contexts;
        self
    }

    pub fn queue_limit(mut self, queue_limit: usize) -> Self {
        self.queue_limit = Some(queue_limit);
        self
    }

    pub fn cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.config.cache_capacity = cache_capacity;
        self
    }

    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = Some(workers);
        self
    }

    /// `None` (the default) defers to the engine default; this setter
    /// exists for callers forwarding an optional override.
    pub fn workers_opt(mut self, workers: Option<usize>) -> Self {
        self.config.workers = workers;
        self
    }

    pub fn morsel_rows(mut self, morsel_rows: usize) -> Self {
        self.config.morsel_rows = Some(morsel_rows);
        self
    }

    pub fn region_slots(mut self, region_slots: usize) -> Self {
        self.config.region_slots = Some(region_slots);
        self
    }

    pub fn default_planner(mut self, planner: PlannerKind) -> Self {
        self.config.default_planner = planner;
        self
    }

    pub fn slow_log_capacity(mut self, capacity: usize) -> Self {
        self.config.slow_log_capacity = capacity;
        self
    }

    /// See [`ServerConfig::slow_threshold_micros`]; `0` records every
    /// request (useful in tests), `u64::MAX` disables the ring.
    pub fn slow_threshold_micros(mut self, micros: u64) -> Self {
        self.config.slow_threshold_micros = micros;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<ServerConfig> {
        let mut config = self.config;
        if config.contexts == 0 {
            return Err(BasiliskError::Plan(
                "server config: contexts must be >= 1".into(),
            ));
        }
        config.queue_limit = match self.queue_limit {
            Some(limit) if limit < config.contexts => {
                return Err(BasiliskError::Plan(format!(
                    "server config: queue_limit ({limit}) must be >= contexts ({})",
                    config.contexts
                )));
            }
            Some(limit) => limit,
            None => config.queue_limit.max(config.contexts),
        };
        if config.workers == Some(0) {
            return Err(BasiliskError::Plan(
                "server config: workers must be >= 1".into(),
            ));
        }
        if config.morsel_rows == Some(0) {
            return Err(BasiliskError::Plan(
                "server config: morsel_rows must be >= 1".into(),
            ));
        }
        if config.region_slots == Some(0) {
            return Err(BasiliskError::Plan(
                "server config: region_slots must be >= 1 \
                 (a zero-slot region table deadlocks every parallel region)"
                    .into(),
            ));
        }
        if config.slow_log_capacity == 0 {
            return Err(BasiliskError::Plan(
                "server config: slow_log_capacity must be >= 1 \
                 (disable retention with slow_threshold_micros = u64::MAX instead)"
                    .into(),
            ));
        }
        Ok(config)
    }
}

/// A resident Basilisk server (see the module and crate docs).
///
/// `Server` is `Send + Sync`: share one behind an `Arc` across any
/// number of client threads and call [`Server::submit`] /
/// [`Server::sql`] / [`Server::execute_prepared`] concurrently.
pub struct Server {
    catalog: Catalog,
    pool: Arc<WorkerPool>,
    gate: Arc<Admission>,
    cache: PlanCache,
    stats: Arc<StatsRecorder>,
    metrics: MetricsRegistry,
    slow: Arc<SlowLog<SlowQuery>>,
    slow_threshold_micros: u64,
    default_planner: PlannerKind,
}

impl Server {
    /// Build a server over a catalog snapshot.
    pub fn new(catalog: Catalog, config: ServerConfig) -> Server {
        let workers = config.workers.unwrap_or_else(WorkerPool::default_workers);
        let mut pool = WorkerPool::new(workers);
        if let Some(rows) = config.morsel_rows {
            pool = pool.with_morsel_rows(rows);
        }
        if let Some(slots) = config.region_slots {
            pool = pool.with_region_slots(slots);
        }
        let pool = Arc::new(pool);
        let contexts: Vec<ExecContext> = (0..config.contexts.max(1))
            .map(|_| ExecContext::with_pool(Arc::clone(&pool)))
            .collect();
        let gate = Arc::new(Admission::new(contexts, config.queue_limit));
        let stats = Arc::new(StatsRecorder::default());
        let slow = Arc::new(SlowLog::new(config.slow_log_capacity));
        let metrics = MetricsRegistry::new();
        register_collectors(&metrics, &stats, &gate, &pool, &slow);
        Server {
            catalog,
            pool,
            gate,
            cache: PlanCache::new(config.cache_capacity),
            stats,
            metrics,
            slow,
            slow_threshold_micros: config.slow_threshold_micros,
            default_planner: config.default_planner,
        }
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Render the Prometheus text exposition page the `/v1/metrics`
    /// route serves: `basilisk_serve_*` (request counters, per-lane
    /// admission counters, the latency histogram), `basilisk_sched_*`
    /// (tasks, steals, park/notify traffic, per-worker busy time, region
    /// occupancy) and `basilisk_arena_*` (outstanding/pooled buffers,
    /// per-shape checkout counters). Metric names are a contract — see
    /// ROADMAP "Observability".
    pub fn metrics_prometheus(&self) -> String {
        self.metrics.render()
    }

    /// The metrics registry, for embedders that want to register
    /// additional collectors onto the same exposition page.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Snapshot of the slow-query ring, newest first, each entry with
    /// its monotonically increasing sequence number (see
    /// [`ServerConfig::slow_threshold_micros`]).
    pub fn slow_queries(&self) -> Vec<(u64, Arc<SlowQuery>)> {
        self.slow.snapshot()
    }

    /// The shared worker pool (per-worker arenas included).
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    pub fn default_planner(&self) -> PlannerKind {
        self.default_planner
    }

    /// Counter snapshot (cache hits/misses/evictions, queue high-water,
    /// latency histogram), overlaid with the shared pool's
    /// region-occupancy counters (regions fanned out, slot waits and
    /// their µs histogram, concurrency high-water) and the admission
    /// gate's per-client lane counters.
    pub fn stats(&self) -> ServeStats {
        let mut s = self.stats.snapshot();
        let r = self.pool.region_stats();
        s.parallel_regions = r.regions;
        s.region_waits = r.waits;
        s.region_wait_total_micros = r.wait_total_micros;
        s.region_wait_buckets = r.wait_buckets;
        s.region_slots = r.slots;
        s.region_max_concurrent = r.max_concurrent;
        let mut zones = self.pool.arena_stats();
        for st in self.gate.with_free(|ctx| ctx.arena().stats()) {
            zones.merge(&st);
        }
        s.skipped_morsels_total = zones.zone_skipped_morsels;
        s.scanned_morsels_total = zones.zone_scanned_morsels;
        s.lanes = self.gate.lane_stats();
        s
    }

    /// Number of statement shapes currently cached.
    pub fn cached_statements(&self) -> usize {
        self.cache.cached_statements()
    }

    /// Sweep every idle context (reclaiming buffers of dropped results)
    /// and return the total count of still-outstanding pooled buffers
    /// across idle-context arenas and the shared pool's worker arenas.
    /// With no request in flight and every result dropped, this is zero
    /// — the leak-test invariant.
    pub fn outstanding(&self) -> usize {
        let per_ctx: usize = self
            .gate
            .with_free(|ctx| {
                ctx.sweep();
                ctx.arena().outstanding()
            })
            .into_iter()
            .sum();
        per_ctx + self.pool.outstanding()
    }

    /// The wire-ready entry point: one [`Request`] in, a [`Response`] or
    /// a typed [`ServeError`] out. Every front end — in-process callers,
    /// the `basilisk-net` HTTP/JSON listener — funnels through here; the
    /// request's client tag picks its fairness lane and its priority its
    /// deficit-round-robin cost (see the `admission` module docs).
    pub fn submit(&self, request: Request<'_>) -> std::result::Result<Response, ServeError> {
        // Tracing is opt-in per request; an untraced request pays one
        // `Option` check per recording site (the `trace_overhead_max`
        // bench gate pins the disabled path).
        let tracer = request.trace.then(Tracer::new);
        match request.command {
            Command::Sql(sql) => {
                let planner = request.planner.unwrap_or(self.default_planner);
                self.sql_inner(sql, planner, request.client, request.priority, tracer)
            }
            Command::Execute(stmt, params) => {
                self.execute_inner(stmt, params, request.client, request.priority, tracer)
            }
        }
        .map_err(ServeError::from)
    }

    /// Run a SQL statement with the default planner (a thin wrapper over
    /// the [`Server::submit`] path for embedded callers).
    pub fn sql(&self, sql: &str) -> Result<Response> {
        self.sql_with(sql, self.default_planner)
    }

    /// Run a SQL statement with an explicit planner, through the plan
    /// cache: byte-identical repeats skip even lexing; same-shape
    /// statements with different literals skip parsing and planning and
    /// just bind.
    pub fn sql_with(&self, sql: &str, planner: PlannerKind) -> Result<Response> {
        self.sql_inner(sql, planner, "", Priority::Normal, None)
    }

    fn sql_inner(
        &self,
        sql: &str,
        planner: PlannerKind,
        client: &str,
        priority: Priority,
        tracer: Option<Tracer>,
    ) -> Result<Response> {
        // Level 1: exact text. The parameters were extracted when this
        // text first came through, so the hot path is bind + execute.
        if let Some((stmt, params)) = self.cache.get_text(planner, sql) {
            self.stats.cache_hit();
            return self.run_statement(&stmt, &params, true, client, priority, tracer);
        }
        // Level 2: normalized shape.
        let parse_span = tracer.as_ref().map(|t| t.begin("parse"));
        let normalized = normalize_select(sql).inspect_err(|_| self.stats.error())?;
        if let (Some(t), Some(s)) = (tracer.as_ref(), parse_span) {
            t.end(s);
        }
        if let Some(stmt) = self.cache.get_statement(planner, &normalized.key) {
            self.stats.cache_hit();
            let params = Arc::new(normalized.params);
            self.cache
                .put_text(planner, sql, &stmt, Arc::clone(&params));
            return self.run_statement(&stmt, &params, true, client, priority, tracer);
        }
        // Miss: plan, cache, execute.
        self.stats.cache_miss();
        let params = Arc::new(normalized.params);
        let stmt = self
            .plan_statement(normalized.key, params.len(), normalized.stmt, planner)
            .inspect_err(|_| self.stats.error())?;
        self.stats.evicted(self.cache.put_statement(&stmt));
        self.cache
            .put_text(planner, sql, &stmt, Arc::clone(&params));
        self.run_statement(&stmt, &params, false, client, priority, tracer)
    }

    /// Parse, normalize and plan `sql`, returning a reusable handle.
    /// Re-preparing an already-cached shape is a cache hit and does no
    /// planning.
    pub fn prepare(&self, sql: &str) -> Result<Prepared> {
        self.prepare_with(sql, self.default_planner)
    }

    pub fn prepare_with(&self, sql: &str, planner: PlannerKind) -> Result<Prepared> {
        let normalized = normalize_select(sql).inspect_err(|_| self.stats.error())?;
        if let Some(inner) = self.cache.get_statement(planner, &normalized.key) {
            self.stats.cache_hit();
            return Ok(Prepared { inner });
        }
        self.stats.cache_miss();
        let inner = self
            .plan_statement(
                normalized.key,
                normalized.params.len(),
                normalized.stmt,
                planner,
            )
            .inspect_err(|_| self.stats.error())?;
        self.stats.evicted(self.cache.put_statement(&inner));
        Ok(Prepared { inner })
    }

    /// Execute a prepared statement with fresh parameter values — never
    /// parses, and re-plans only if the binding changes the predicate's
    /// DAG (value-coincidence; see the module docs). A thin wrapper over
    /// the [`Server::submit`] path.
    pub fn execute_prepared(&self, prepared: &Prepared, params: &[Value]) -> Result<Response> {
        self.execute_inner(prepared, params, "", Priority::Normal, None)
    }

    fn execute_inner(
        &self,
        prepared: &Prepared,
        params: &[Value],
        client: &str,
        priority: Priority,
        tracer: Option<Tracer>,
    ) -> Result<Response> {
        if params.len() != prepared.inner.param_count {
            self.stats.error();
            return Err(BasiliskError::Plan(format!(
                "statement takes {} parameter(s), {} supplied",
                prepared.inner.param_count,
                params.len()
            )));
        }
        self.run_statement(&prepared.inner, params, true, client, priority, tracer)
    }

    /// Full parse-and-plan of one statement shape (the cache-miss path).
    fn plan_statement(
        &self,
        key: String,
        param_count: usize,
        parsed: basilisk_sql::SelectStmt,
        planner: PlannerKind,
    ) -> Result<Arc<PreparedStatement>> {
        self.stats.prepared();
        let limit = parsed.limit;
        let star = matches!(parsed.projection, Projection::Star);
        let is_count = matches!(parsed.projection, Projection::Count);
        let mut query = parsed.into_query();
        if star {
            let mut cols = Vec::new();
            for (alias, table_name) in &query.aliases {
                let table = self.catalog.table(table_name)?;
                for name in table.column_names() {
                    cols.push(ColumnRef::new(alias.clone(), name));
                }
            }
            query.projection = cols;
        }
        // Plan on a throwaway serial context: planning never executes,
        // so it needs no workers and warms no arena.
        let session = QuerySession::new(&self.catalog, query)?.with_context(ExecContext::new(1));
        let plan = session.plan(planner)?;
        Ok(Arc::new(PreparedStatement {
            key,
            query: session.query().clone(),
            tree: session.tree().cloned(),
            param_count,
            chosen: plan.chosen_planner(),
            plan,
            planner,
            tables: session.tables().clone(),
            three_valued: session.three_valued(),
            limit,
            is_count,
        }))
    }

    /// Bind, admit, execute, materialize, release.
    fn run_statement(
        &self,
        stmt: &Arc<PreparedStatement>,
        params: &[Value],
        cache_hit: bool,
        client: &str,
        priority: Priority,
        tracer: Option<Tracer>,
    ) -> Result<Response> {
        let t_total = Instant::now();
        let plan_span = tracer.as_ref().map(|t| t.begin("plan"));
        let t_bind = Instant::now();
        let mut query = stmt.query.clone();
        if stmt.param_count > 0 {
            let template = query
                .predicate
                .as_ref()
                .expect("parameters imply a predicate");
            query.predicate = Some(bind_params(template, params).inspect_err(|_| {
                self.stats.error();
            })?);
        }
        // Two reasons the cached plan may not be reusable for this
        // binding, both rare and both re-planned on the spot:
        //  * congruence — the plan addresses the prepare-time predicate
        //    DAG by node id, and a binding whose values collapse or
        //    split nodes changes the DAG;
        //  * NULL upgrade — a NULL bound into a statement planned
        //    two-valued makes its atom evaluate to unknown on every
        //    row, which only three-valued tag maps handle (the re-plan
        //    detects the NULL literal and builds them).
        let bound_tree = query.predicate.as_ref().map(PredicateTree::build);
        let congruent = match (&stmt.tree, &bound_tree) {
            (None, None) => true,
            (Some(a), Some(b)) => a.congruent_modulo_values(b),
            _ => false,
        };
        let null_upgrade = !stmt.three_valued && params.iter().any(|v| matches!(v, Value::Null));
        let reusable = congruent && !null_upgrade;
        let bind_time = t_bind.elapsed();
        if let (Some(t), Some(s)) = (tracer.as_ref(), plan_span) {
            t.attr(s, "cache_hit", i64::from(cache_hit && reusable));
            t.attr(s, "rebind", i64::from(!reusable));
            t.end(s);
        }

        let wait_span = tracer.as_ref().map(|t| {
            let s = t.begin("admission_wait");
            t.attr(s, "lane", client);
            t.attr(s, "priority", priority.as_str());
            s
        });
        let (ctx, queue_wait) = self.gate.acquire(client, priority, &self.stats)?;
        if let (Some(t), Some(s)) = (tracer.as_ref(), wait_span) {
            t.end(s);
        }
        let (ctx, result) =
            self.execute_on_context(stmt, query, reusable, bind_time, ctx, tracer.as_ref());
        self.gate.release(ctx, &self.stats);
        match result {
            Ok(mut r) => {
                r.cache_hit = cache_hit && reusable;
                r.queue_wait = queue_wait;
                self.stats.executed(r.timings.total());
                let trace = tracer.map(Tracer::finish);
                let total_micros = t_total.elapsed().as_micros() as u64;
                if self.slow_threshold_micros != u64::MAX
                    && total_micros >= self.slow_threshold_micros
                {
                    self.slow.push(SlowQuery {
                        statement: stmt.key.clone(),
                        client: client.to_string(),
                        priority: priority.as_str(),
                        row_count: r.row_count,
                        cache_hit: r.cache_hit,
                        queue_wait_micros: queue_wait.as_micros() as u64,
                        total_micros,
                        trace: trace.clone(),
                    });
                }
                r.trace = trace;
                Ok(r)
            }
            Err(e) => {
                self.stats.error();
                Err(e)
            }
        }
    }

    /// The context-holding span of a request. Always returns the context
    /// (error paths included) so the gate never leaks capacity.
    fn execute_on_context(
        &self,
        stmt: &PreparedStatement,
        query: Query,
        reusable: bool,
        bind_time: Duration,
        ctx: ExecContext,
        tracer: Option<&Tracer>,
    ) -> (ExecContext, Result<Response>) {
        // Build the session without surrendering the context on failure.
        let (session, plan, planning) = if reusable {
            let est = match Estimator::new(&self.catalog, &query.aliases) {
                Ok(e) => e,
                Err(e) => return (ctx, Err(e)),
            };
            let session =
                QuerySession::prepared(est, query, stmt.tables.clone(), stmt.three_valued, ctx);
            (session, None, bind_time)
        } else {
            // The binding invalidated the cached plan (value-coincident
            // DAG change, or a NULL requiring three-valued maps):
            // re-plan this execution from scratch on the checked-out
            // context (`QuerySession::new` re-derives the three-valued
            // flag from the bound predicate, NULL literals included).
            let t0 = Instant::now();
            self.stats.prepared();
            let session = match QuerySession::new(&self.catalog, query) {
                Ok(s) => s,
                Err(e) => return (ctx, Err(e)),
            };
            let session = session.with_context(ctx);
            match session.plan(stmt.planner) {
                Ok(p) => (session, Some(p), bind_time + t0.elapsed()),
                Err(e) => return (session.into_context(), Err(e)),
            }
        };
        let plan: &Plan = plan.as_ref().unwrap_or(&stmt.plan);

        let t1 = Instant::now();
        let result = (|| -> Result<Response> {
            let exec_span = tracer.map(|t| t.begin("execute"));
            let output = session.execute_traced(plan, tracer)?;
            if let (Some(t), Some(s)) = (tracer, exec_span) {
                t.attr(s, "rows", output.count());
                t.end(s);
            }
            let execution = t1.elapsed();
            let (columns, row_count) =
                self.materialize(&session, &output, stmt.limit, stmt.is_count)?;
            Ok(Response {
                columns,
                row_count,
                planner: stmt.planner,
                chosen: stmt.chosen,
                timings: PlanTimings {
                    planning,
                    execution,
                },
                cache_hit: false,           // set by the caller
                queue_wait: Duration::ZERO, // set by the caller
                trace: None,                // set by the caller
            })
        })();
        (session.into_context(), result)
    }

    /// Shared lowering of an executed output: `COUNT(*)`, projection and
    /// `LIMIT`.
    fn materialize(
        &self,
        session: &QuerySession,
        output: &QueryOutput,
        limit: Option<usize>,
        is_count: bool,
    ) -> Result<(OutputColumns, usize)> {
        let full_count = output.count();
        if is_count {
            // COUNT(*): one row, one synthetic column (LIMIT 0 still
            // yields the count row, matching SQL aggregates).
            return Ok((
                vec![(
                    ColumnRef::new("", "count(*)"),
                    Arc::new(Column::from_ints(vec![full_count as i64])),
                )],
                1,
            ));
        }
        let mut columns = session.project(output)?;
        let mut row_count = full_count;
        if let Some(l) = limit {
            if l < row_count {
                let keep: Vec<u32> = (0..l as u32).collect();
                for (_, col) in &mut columns {
                    *col = Arc::new(col.gather(&keep));
                }
                row_count = l;
            }
        }
        Ok((columns, row_count))
    }
}

/// Wire the server's three metric sources into the registry. Collectors
/// only *read* existing lock-free counters at scrape time, so the
/// request path pays nothing for exposition.
fn register_collectors(
    metrics: &MetricsRegistry,
    stats: &Arc<StatsRecorder>,
    gate: &Arc<Admission>,
    pool: &Arc<WorkerPool>,
    slow: &Arc<SlowLog<SlowQuery>>,
) {
    let s = Arc::clone(stats);
    let g = Arc::clone(gate);
    let sl = Arc::clone(slow);
    metrics.register(move |sink| {
        let snap = s.snapshot();
        sink.counter(
            "basilisk_serve_cache_hits_total",
            "Requests served from the plan cache.",
            &[],
            snap.cache_hits,
        );
        sink.counter(
            "basilisk_serve_cache_misses_total",
            "Requests that parsed and planned.",
            &[],
            snap.cache_misses,
        );
        sink.counter(
            "basilisk_serve_cache_evictions_total",
            "Cached statements evicted by LRU pressure.",
            &[],
            snap.cache_evictions,
        );
        sink.counter(
            "basilisk_serve_statements_prepared_total",
            "Statements parsed and planned.",
            &[],
            snap.statements_prepared,
        );
        sink.counter(
            "basilisk_serve_statements_executed_total",
            "Statements executed to completion.",
            &[],
            snap.statements_executed,
        );
        sink.counter(
            "basilisk_serve_errors_total",
            "Requests that returned an error after admission.",
            &[],
            snap.errors,
        );
        sink.counter(
            "basilisk_serve_rejected_total",
            "Requests rejected at admission (queue full).",
            &[],
            snap.rejected,
        );
        sink.gauge(
            "basilisk_serve_queue_depth",
            "Requests currently queued or executing.",
            &[],
            snap.queue_depth,
        );
        sink.gauge(
            "basilisk_serve_queue_high_water",
            "Highest simultaneous queue depth observed.",
            &[],
            snap.queue_high_water,
        );
        sink.histogram(
            "basilisk_serve_latency_micros",
            "Per-query serving latency.",
            &s.latency_snapshot(),
        );
        sink.counter(
            "basilisk_serve_slow_recorded_total",
            "Requests recorded into the slow-query ring.",
            &[],
            sl.recorded(),
        );
        for lane in g.lane_stats() {
            let client: &str = &lane.client;
            sink.counter(
                "basilisk_serve_lane_admitted_total",
                "Requests admitted into the lane.",
                &[("client", client)],
                lane.admitted,
            );
            sink.counter(
                "basilisk_serve_lane_dispatched_total",
                "Requests the DRR dispatcher granted a context.",
                &[("client", client)],
                lane.dispatched,
            );
            sink.counter(
                "basilisk_serve_lane_rejected_total",
                "Requests rejected while targeting the lane.",
                &[("client", client)],
                lane.rejected,
            );
            sink.gauge(
                "basilisk_serve_lane_depth",
                "Tickets currently queued in the lane.",
                &[("client", client)],
                lane.depth,
            );
            sink.counter(
                "basilisk_serve_lane_wait_micros_total",
                "Microseconds admitted requests spent queued.",
                &[("client", client)],
                lane.wait_total_micros,
            );
        }
    });

    let p = Arc::clone(pool);
    metrics.register(move |sink| {
        let sch = p.sched_stats();
        sink.gauge(
            "basilisk_sched_workers",
            "Configured worker count of the shared pool.",
            &[],
            sch.workers,
        );
        sink.counter(
            "basilisk_sched_tasks_total",
            "Tasks executed (morsel and subtree closures).",
            &[],
            sch.tasks,
        );
        sink.counter(
            "basilisk_sched_steals_total",
            "Tasks claimed from another worker's deque.",
            &[],
            sch.steals,
        );
        sink.counter(
            "basilisk_sched_parks_total",
            "Times a resident worker parked on the work condvar.",
            &[],
            sch.parks,
        );
        sink.counter(
            "basilisk_sched_notifies_total",
            "Wakeup broadcasts issued by region publication.",
            &[],
            sch.notifies,
        );
        let workers = sch.workers as usize;
        for (i, &busy) in sch.busy_micros.iter().enumerate() {
            let label = if i < workers {
                i.to_string()
            } else {
                "inline".to_string()
            };
            sink.counter(
                "basilisk_sched_worker_busy_micros_total",
                "Busy microseconds per worker arena.",
                &[("worker", &label)],
                busy,
            );
        }
        let r = p.region_stats();
        sink.counter(
            "basilisk_sched_regions_total",
            "Parallel regions fanned out on the shared pool.",
            &[],
            r.regions,
        );
        sink.counter(
            "basilisk_sched_region_waits_total",
            "Regions that waited for a region-table slot.",
            &[],
            r.waits,
        );
        sink.histogram(
            "basilisk_sched_region_wait_micros",
            "Region-slot wait times.",
            &HistogramSnapshot::from_parts(r.wait_buckets, r.wait_total_micros),
        );
        sink.gauge(
            "basilisk_sched_region_slots",
            "Size of the pool's region table.",
            &[],
            r.slots,
        );
        sink.gauge(
            "basilisk_sched_region_max_concurrent",
            "Highest number of simultaneously live regions observed.",
            &[],
            r.max_concurrent,
        );
    });

    let p = Arc::clone(pool);
    let g = Arc::clone(gate);
    metrics.register(move |sink| {
        let mut shapes = p.arena_stats();
        let mut outstanding = p.outstanding();
        let mut pooled = p.pooled();
        for (o, pl, st) in g.with_free(|ctx| {
            (
                ctx.arena().outstanding(),
                ctx.arena().pooled(),
                ctx.arena().stats(),
            )
        }) {
            outstanding += o;
            pooled += pl;
            shapes.merge(&st);
        }
        sink.gauge(
            "basilisk_arena_outstanding",
            "Pooled buffers currently checked out (idle contexts and worker arenas).",
            &[],
            outstanding as u64,
        );
        sink.gauge(
            "basilisk_arena_pooled",
            "Buffers parked in the pools, ready for reuse.",
            &[],
            pooled as u64,
        );
        for (shape, ps) in shapes.by_shape() {
            sink.counter(
                "basilisk_arena_fresh_total",
                "Pool misses (new heap buffers) since the last reset.",
                &[("shape", shape)],
                ps.fresh as u64,
            );
            sink.counter(
                "basilisk_arena_reused_total",
                "Pool hits since the last reset.",
                &[("shape", shape)],
                ps.reused as u64,
            );
        }
        // Encoded-storage zone-map effectiveness (see ROADMAP "Storage
        // encodings"): morsels proven from min/max/null bounds alone vs
        // morsels the encoded kernels had to touch.
        sink.counter(
            "basilisk_storage_skipped_morsels_total",
            "Atom-morsels decided by zone maps without touching data.",
            &[],
            shapes.zone_skipped_morsels,
        );
        sink.counter(
            "basilisk_storage_scanned_morsels_total",
            "Atom-morsels evaluated by encoded kernels over the payload.",
            &[],
            shapes.zone_scanned_morsels,
        );
    });
}

// One server, many client threads: keep the property pinned.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Server>();
    assert_send_sync::<Prepared>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_default() {
        let built = ServerConfig::builder().build().unwrap();
        let default = ServerConfig::default();
        assert_eq!(built.contexts(), default.contexts());
        assert_eq!(built.queue_limit(), default.queue_limit());
        assert_eq!(built.cache_capacity(), default.cache_capacity());
        assert_eq!(built.workers(), default.workers());
        assert_eq!(built.morsel_rows(), default.morsel_rows());
        assert_eq!(built.region_slots(), default.region_slots());
        assert_eq!(built.default_planner(), default.default_planner());
    }

    #[test]
    fn builder_validates_at_construction() {
        assert!(ServerConfig::builder().contexts(0).build().is_err());
        assert!(ServerConfig::builder()
            .contexts(4)
            .queue_limit(3)
            .build()
            .is_err());
        assert!(ServerConfig::builder().region_slots(0).build().is_err());
        assert!(ServerConfig::builder().workers(0).build().is_err());
        assert!(ServerConfig::builder().morsel_rows(0).build().is_err());
        // Every rejection is a Plan error (configuration, not runtime).
        match ServerConfig::builder().contexts(0).build() {
            Err(BasiliskError::Plan(m)) => assert!(m.contains("contexts"), "{m}"),
            other => panic!("expected Plan error, got {other:?}"),
        }
    }

    #[test]
    fn builder_scales_default_queue_limit_with_contexts() {
        // Unset queue_limit tracks large context pools instead of
        // failing the `queue_limit >= contexts` check.
        let c = ServerConfig::builder().contexts(1000).build().unwrap();
        assert_eq!(c.queue_limit(), 1000);
        let c = ServerConfig::builder().contexts(2).build().unwrap();
        assert_eq!(c.queue_limit(), 256, "default floor kept");
        // Explicit values are taken verbatim when valid.
        let c = ServerConfig::builder()
            .contexts(2)
            .queue_limit(2)
            .build()
            .unwrap();
        assert_eq!(c.queue_limit(), 2);
    }
}
