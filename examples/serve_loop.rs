//! The serving loop, end to end: a resident [`Server`] taking repeated
//! statement shapes from several client threads.
//!
//! ```text
//! cargo run --release --example serve_loop
//! ```
//!
//! Demonstrates the PR-5 layer: `Database::serve()` snapshots the
//! catalog into a concurrent server (shared resident worker pool,
//! reusable execution contexts, bounded FIFO admission); clients send
//! the *same statement shape with different literals*, so after the
//! first request everything is a plan-cache hit — bind + execute, zero
//! parse/plan — and a prepared statement does the same explicitly.
//! Prints per-mode row counts (which must agree between the SQL and
//! prepared paths) and the server's counter snapshot.

use std::sync::Arc;

use basilisk_repro::{Database, ServerConfig, Value};
use basilisk_workload::{generate_imdb, ImdbConfig};

fn main() {
    let mut db = Database::new();
    for table in generate_imdb(&ImdbConfig {
        scale: 0.3,
        seed: 7,
    })
    .expect("generate IMDB data")
    {
        db.register(table).expect("register table");
    }

    let server = Arc::new(
        db.serve_with(
            ServerConfig::builder()
                .contexts(4)
                .workers(2)
                .build()
                .expect("valid sizing"),
        ),
    );

    // Four clients, each sweeping a different decade band of the same
    // statement shape.
    let sql = |year: i64, info: &str| {
        format!(
            "SELECT t.id FROM title t JOIN movie_info_idx mi ON t.id = mi.movie_id \
             WHERE (t.production_year > {year} AND mi.info > '{info}') \
             OR t.production_year < 1925"
        )
    };
    // Warm the plan cache serially first: concurrent cold misses on one
    // shape can legitimately race into a double-plan, and this example
    // pins "one shape, one plan" below.
    server.sql(&sql(1950, "6.0")).expect("warm the plan cache");
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let mut rows = Vec::new();
                for step in 0..4 {
                    let year = 1950 + c * 10 + step * 2;
                    let r = server.sql(&sql(year, "6.0")).expect("serve sql");
                    rows.push((year, r.row_count, r.cache_hit));
                }
                rows
            })
        })
        .collect();

    println!("client  year  rows   cached");
    let mut sql_counts = std::collections::BTreeMap::new();
    for (c, h) in clients.into_iter().enumerate() {
        for (year, rows, cached) in h.join().expect("client thread") {
            println!("  {c}    {year}  {rows:>6}  {cached}");
            sql_counts.insert(year, rows);
        }
    }

    // The same shape as a prepared statement: bind values, re-drive the
    // cached plan. Counts must agree with the SQL path exactly.
    let stmt = server
        .prepare(&sql(1950, "6.0"))
        .expect("prepare statement");
    println!("\nprepared statement: {} parameter(s)", stmt.param_count());
    for (&year, &expect) in &sql_counts {
        let r = server
            .execute_prepared(
                &stmt,
                &[Value::Int(year), Value::from("6.0"), Value::Int(1925)],
            )
            .expect("execute prepared");
        assert_eq!(r.row_count, expect, "prepared ≠ sql at year {year}");
    }
    println!(
        "prepared path matches the SQL path on all {} bindings",
        sql_counts.len()
    );

    let s = server.stats();
    println!(
        "\nserver stats: {} executed | cache {} hit / {} miss / {} evicted | \
         {} planned | queue high-water {} | p50 {:?} p99 {:?}",
        s.statements_executed,
        s.cache_hits,
        s.cache_misses,
        s.cache_evictions,
        s.statements_prepared,
        s.queue_high_water,
        s.quantile_latency(0.5),
        s.quantile_latency(0.99),
    );
    println!(
        "region table: {} parallel regions | peak {} concurrent | \
         {} slot waits (mean {:?})",
        s.parallel_regions,
        s.region_max_concurrent,
        s.region_waits,
        s.mean_region_wait(),
    );
    assert_eq!(
        s.region_waits, 0,
        "default region table never makes a request wait"
    );
    assert_eq!(s.statements_prepared, 1, "one shape, one plan");
    assert_eq!(server.outstanding(), 0, "server drained");
    println!("zero parse/plan on the hot path; all arenas clean");
}
