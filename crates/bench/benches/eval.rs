//! Scalar vs vectorized predicate evaluation.
//!
//! Measures the two evaluation paths of `basilisk_expr::eval` on a wide
//! (6-arm) disjunction over 64k rows at several selectivities:
//!
//! * `scalar` — the reference `eval_node` path: one `Vec<Truth>` per node,
//!   per-element Kleene combines.
//! * `vectorized` — the `eval_node_mask` path: `TruthMask` atoms plus
//!   word-parallel connective combines (the path every engine operator
//!   uses).
//! * `vectorized_sparse` — the same mask path under a ~6% selection
//!   bitmap, the tagged-filter shape (evaluate only the union of slices).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use basilisk_expr::eval::{eval_node, eval_node_mask, MapProvider};
use basilisk_expr::{and, col, or, ColumnRef, Expr, PredicateTree};
use basilisk_storage::Column;
use basilisk_types::Bitmap;

const ROWS: usize = 65_536;

/// Deterministic pseudo-random ints in [0, 1000).
fn column(seed: u64) -> Column {
    let mut state = seed;
    Column::from_ints(
        (0..ROWS)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) % 1000) as i64
            })
            .collect(),
    )
}

fn provider() -> MapProvider {
    MapProvider::new(ROWS)
        .with(ColumnRef::new("t", "a"), column(1))
        .with(ColumnRef::new("t", "b"), column(2))
        .with(ColumnRef::new("t", "c"), column(3))
}

/// A 6-arm disjunction of conjunctions over three columns; `t` sweeps the
/// per-atom selectivity.
fn wide_disjunction(t: i64) -> Expr {
    or(vec![
        and(vec![col("t", "a").lt(t), col("t", "b").lt(t)]),
        and(vec![col("t", "b").lt(t), col("t", "c").lt(t)]),
        and(vec![col("t", "a").ge(1000 - t), col("t", "c").lt(t)]),
        and(vec![col("t", "c").ge(1000 - t), col("t", "a").lt(t)]),
        and(vec![col("t", "b").ge(1000 - t), col("t", "c").ge(1000 - t)]),
        and(vec![col("t", "a").lt(t), col("t", "c").ge(1000 - t)]),
    ])
}

fn bench_eval(c: &mut Criterion) {
    let prov = provider();
    let mut group = c.benchmark_group("eval_disjunction_64k");
    group.sample_size(30);
    for pct in [10i64, 50, 90] {
        let tree = PredicateTree::build(&wide_disjunction(pct * 10));
        let root = tree.root();
        let full = Bitmap::all_set(ROWS);

        group.bench_with_input(BenchmarkId::new("scalar", pct), &pct, |b, _| {
            b.iter(|| eval_node(&tree, root, &prov).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("vectorized", pct), &pct, |b, _| {
            b.iter(|| eval_node_mask(&tree, root, &prov, &full).unwrap())
        });

        // The tagged-filter shape: evaluate only a sparse union of slices.
        let sparse = Bitmap::from_indices(ROWS, (0..ROWS).filter(|i| i % 16 == 0));
        group.bench_with_input(BenchmarkId::new("vectorized_sparse", pct), &pct, |b, _| {
            b.iter(|| eval_node_mask(&tree, root, &prov, &sparse).unwrap())
        });
    }
    group.finish();
}

fn bench_connectives_only(c: &mut Criterion) {
    // Isolate connective combining from atom evaluation: pre-evaluate the
    // atoms once, then compare per-element OR-folding of Vec<Truth>
    // against word-parallel TruthMask::or_with.
    use basilisk_types::{Truth, TruthMask};
    let prov = provider();
    let tree = PredicateTree::build(&wide_disjunction(500));
    let atoms = tree.atom_ids();
    let scalar_vecs: Vec<Vec<Truth>> = atoms
        .iter()
        .map(|&id| eval_node(&tree, id, &prov).unwrap())
        .collect();
    let masks: Vec<TruthMask> = scalar_vecs
        .iter()
        .map(|v| TruthMask::from_truths(v))
        .collect();

    let mut group = c.benchmark_group("or_fold_atoms_64k");
    group.sample_size(30);
    group.bench_function("scalar", |b| {
        b.iter(|| {
            let mut acc = scalar_vecs[0].clone();
            for v in &scalar_vecs[1..] {
                for (a, &x) in acc.iter_mut().zip(v) {
                    *a = a.or(x);
                }
            }
            acc
        })
    });
    group.bench_function("vectorized", |b| {
        b.iter(|| {
            let mut acc = masks[0].clone();
            for m in &masks[1..] {
                acc.or_with(m);
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_eval, bench_connectives_only);
criterion_main!(benches);
