//! Encoded (compressed) in-memory columns with zone statistics.
//!
//! Two real encodings plus a typed pass-through:
//!
//! * **Frame-of-reference bit-packing** for ints: values are stored as
//!   `value - min` deltas, packed at the minimal bit width. A 1M-row
//!   column of years occupies ~12 bits/row instead of 64.
//! * **Dictionary** for strings: the distinct values, sorted, live once
//!   in a [`StrData`]; rows are `u32` codes into it. Because the
//!   dictionary is *sorted*, every comparison against a string literal
//!   becomes a comparison against one or two code thresholds — kernels
//!   compare codes, never bytes.
//! * Floats and bools keep their natural layout (they are already
//!   fixed-width; zone maps still apply).
//!
//! Alongside the payload every column carries **zone maps**: min/max,
//! row and null counts per [`ZONE_ROWS`]-row zone. `ZONE_ROWS` is a
//! multiple of 64, so any word-aligned [`Morsel`] covers whole zones
//! plus at most two partial ones, and a conservative aggregate over the
//! overlapped zones is a sound summary of the morsel. When the
//! aggregate *decides* a predicate ("every valid row matches" / "no
//! valid row matches" / "every row is null"), the evaluator fills whole
//! `TruthMask` words from validity alone and never touches the payload
//! — see [`EncodedColumn::prune_cmp`] and [`EncodedColumn::fill_decided`].
//!
//! Kleene semantics are preserved throughout: a decided morsel still
//! routes its null lanes to `Unknown`, exactly as the decoded kernels
//! in `basilisk-expr` do (`tru = cmp & valid & sel`, `unk = !valid &
//! sel`).
//!
//! The raw buffers (`raw_codes` / `raw_packed` / `raw_dict`) are public
//! for the storage crate's own disk writer and tests, but they are an
//! internal surface: `basilisk-lint` forbids touching them outside
//! `crates/storage` — everything above the storage API goes through the
//! fill/prune kernels or [`EncodedColumn::decode`].

use std::cmp::Ordering;

use basilisk_types::{Bitmap, DataType, Morsel, Truth, TruthMask, Value};

use crate::column::{Column, ColumnData, StrData};

/// Rows per zone. A multiple of 64 (whole bitmap words) and a divisor
/// of the default 64k morsel, so default morsels cover exactly 64 zones.
pub const ZONE_ROWS: usize = 1024;

/// Comparison operators in the storage kernel's own vocabulary.
/// `basilisk-expr` maps its `CmpOp` onto this (the dependency points
/// expr → storage, so storage cannot name expr's type).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncCmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Value bounds of one zone's *valid* rows.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ZoneBounds {
    Int {
        min: i64,
        max: i64,
    },
    Float {
        min: f64,
        max: f64,
    },
    /// Dictionary codes; the sorted dictionary makes code order string order.
    Code {
        min: u32,
        max: u32,
    },
    Bool {
        min: bool,
        max: bool,
    },
    /// Valid rows exist but are not totally ordered (a float NaN): never prune.
    Unordered,
}

/// Statistics for one [`ZONE_ROWS`]-row zone.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Zone {
    rows: u32,
    nulls: u32,
    /// `None` when every row in the zone is null.
    bounds: Option<ZoneBounds>,
}

impl Zone {
    /// Conservative union of two zones' statistics.
    fn merge(self, other: Zone) -> Zone {
        let bounds = match (self.bounds, other.bounds) {
            (None, b) | (b, None) => b,
            (Some(a), Some(b)) => Some(match (a, b) {
                (ZoneBounds::Int { min: a0, max: a1 }, ZoneBounds::Int { min: b0, max: b1 }) => {
                    ZoneBounds::Int {
                        min: a0.min(b0),
                        max: a1.max(b1),
                    }
                }
                (
                    ZoneBounds::Float { min: a0, max: a1 },
                    ZoneBounds::Float { min: b0, max: b1 },
                ) => ZoneBounds::Float {
                    min: a0.min(b0),
                    max: a1.max(b1),
                },
                (ZoneBounds::Code { min: a0, max: a1 }, ZoneBounds::Code { min: b0, max: b1 }) => {
                    ZoneBounds::Code {
                        min: a0.min(b0),
                        max: a1.max(b1),
                    }
                }
                (ZoneBounds::Bool { min: a0, max: a1 }, ZoneBounds::Bool { min: b0, max: b1 }) => {
                    ZoneBounds::Bool {
                        min: a0 & b0,
                        max: a1 | b1,
                    }
                }
                _ => ZoneBounds::Unordered,
            }),
        };
        Zone {
            rows: self.rows + other.rows,
            nulls: self.nulls + other.nulls,
            bounds,
        }
    }
}

/// The encoded payload. Placeholder values of null lanes are encoded
/// too, so decode reproduces the source column bit-for-bit; zone bounds
/// ignore them.
enum EncodedData {
    /// `value(i) = reference + unpack(packed, i, width)`, deltas packed
    /// little-endian at `width` bits each.
    ForInt {
        reference: i64,
        width: u32,
        packed: Vec<u64>,
        len: usize,
    },
    /// `value(i) = dict[codes[i]]`; `dict` is sorted and duplicate-free.
    DictStr {
        dict: StrData,
        codes: Vec<u32>,
    },
    Float(Vec<f64>),
    Bool(Vec<bool>),
}

/// A compressed column plus zone maps; shared immutably across workers.
pub struct EncodedColumn {
    data: EncodedData,
    validity: Option<Bitmap>,
    zones: Vec<Zone>,
}

// Workers evaluate against one shared `Arc<EncodedColumn>`.
const _: fn() = || {
    fn assert_sync<T: Send + Sync>() {}
    assert_sync::<EncodedColumn>();
};

impl EncodedColumn {
    /// Encode `column`. Ints get frame-of-reference bit-packing,
    /// strings a sorted dictionary; floats/bools keep their layout.
    pub fn encode(column: &Column) -> EncodedColumn {
        let data = match column.data() {
            ColumnData::Int(v) => encode_for(v),
            ColumnData::Str(s) => encode_dict(s),
            ColumnData::Float(v) => EncodedData::Float(v.clone()),
            ColumnData::Bool(v) => EncodedData::Bool(v.clone()),
        };
        let validity = column.validity().cloned();
        let zones = build_zones(&data, validity.as_ref());
        EncodedColumn {
            data,
            validity,
            zones,
        }
    }

    pub fn len(&self) -> usize {
        match &self.data {
            EncodedData::ForInt { len, .. } => *len,
            EncodedData::DictStr { codes, .. } => codes.len(),
            EncodedData::Float(v) => v.len(),
            EncodedData::Bool(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn data_type(&self) -> DataType {
        match &self.data {
            EncodedData::ForInt { .. } => DataType::Int,
            EncodedData::DictStr { .. } => DataType::Str,
            EncodedData::Float(_) => DataType::Float,
            EncodedData::Bool(_) => DataType::Bool,
        }
    }

    pub fn validity(&self) -> Option<&Bitmap> {
        self.validity.as_ref()
    }

    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// Payload bytes of the encoded form (zone maps and validity excluded).
    pub fn encoded_bytes(&self) -> usize {
        match &self.data {
            EncodedData::ForInt { packed, .. } => 16 + packed.len() * 8,
            EncodedData::DictStr { dict, codes } => {
                let (offsets, bytes) = dict.raw();
                offsets.len() * 4 + bytes.len() + codes.len() * 4
            }
            EncodedData::Float(v) => v.len() * 8,
            EncodedData::Bool(v) => v.len(),
        }
    }

    /// Decode back to a plain column — bit-for-bit the column that was
    /// encoded, placeholder values of null lanes included.
    pub fn decode(&self) -> Column {
        let data = match &self.data {
            EncodedData::ForInt {
                reference,
                width,
                packed,
                len,
            } => ColumnData::Int(
                (0..*len)
                    .map(|i| reference.wrapping_add(unpack_at(packed, i, *width) as i64))
                    .collect(),
            ),
            EncodedData::DictStr { dict, codes } => {
                let mut s = StrData::with_capacity(codes.len(), 0);
                for &c in codes {
                    s.push(dict.get(c as usize));
                }
                ColumnData::Str(s)
            }
            EncodedData::Float(v) => ColumnData::Float(v.clone()),
            EncodedData::Bool(v) => ColumnData::Bool(v.clone()),
        };
        Column::new(data, self.validity.clone())
            .expect("encoded column invariant: validity length matches data")
    }

    /// Decode arbitrary row indices (may repeat / be unsorted), exactly
    /// like [`Column::gather`] on the decoded column would.
    pub fn gather(&self, rows: &[u32]) -> Column {
        let data = match &self.data {
            EncodedData::ForInt {
                reference,
                width,
                packed,
                ..
            } => ColumnData::Int(
                rows.iter()
                    .map(|&r| reference.wrapping_add(unpack_at(packed, r as usize, *width) as i64))
                    .collect(),
            ),
            EncodedData::DictStr { dict, codes } => {
                let mut s = StrData::with_capacity(rows.len(), 0);
                for &r in rows {
                    s.push(dict.get(codes[r as usize] as usize));
                }
                ColumnData::Str(s)
            }
            EncodedData::Float(v) => {
                ColumnData::Float(rows.iter().map(|&r| v[r as usize]).collect())
            }
            EncodedData::Bool(v) => ColumnData::Bool(rows.iter().map(|&r| v[r as usize]).collect()),
        };
        let validity = self.validity.as_ref().map(|v| {
            let mut out = Bitmap::new(rows.len());
            for (j, &r) in rows.iter().enumerate() {
                if v.get(r as usize) {
                    out.set(j);
                }
            }
            out
        });
        Column::new(data, validity).expect("gathered validity length matches rows")
    }

    // ---- zone pruning ----------------------------------------------------

    /// Can `col OP lit` be decided for *every valid row* of `morsel`
    /// from zone statistics alone? `Some(True)`: all valid rows match.
    /// `Some(False)`: none do. `Some(Unknown)`: the morsel is entirely
    /// null. `None`: undecided — evaluate the payload.
    pub fn prune_cmp(&self, op: EncCmpOp, lit: &Value, morsel: Morsel) -> Option<Truth> {
        let agg = self.aggregate_zones(morsel)?;
        if agg.nulls == agg.rows {
            return Some(Truth::Unknown);
        }
        let decided = match (agg.bounds?, lit) {
            (ZoneBounds::Int { min, max }, Value::Int(l)) => decide_ord(op, min.cmp(l), max.cmp(l)),
            (ZoneBounds::Float { min, max }, Value::Float(l)) => decide_float(op, min, max, *l),
            (ZoneBounds::Float { min, max }, Value::Int(l)) => {
                decide_float(op, min, max, *l as f64)
            }
            (ZoneBounds::Code { min, max }, Value::Str(s)) => {
                let EncodedData::DictStr { dict, .. } = &self.data else {
                    return None;
                };
                let (p_lt, p_le) = dict_thresholds(dict, s);
                decide_code(op, min, max, p_lt, p_le)
            }
            (ZoneBounds::Bool { min, max }, Value::Bool(l)) => {
                decide_ord(op, min.cmp(l), max.cmp(l))
            }
            _ => None,
        }?;
        Some(if decided { Truth::True } else { Truth::False })
    }

    /// `Some(true)`: every row of `morsel` is null. `Some(false)`: none
    /// is. `None`: mixed — evaluate the validity words.
    pub fn prune_is_null(&self, morsel: Morsel) -> Option<bool> {
        if self.validity.is_none() {
            return Some(false);
        }
        let agg = self.aggregate_zones(morsel)?;
        if agg.nulls == 0 {
            Some(false)
        } else if agg.nulls == agg.rows {
            Some(true)
        } else {
            None
        }
    }

    /// Conservative union of the zones overlapping `morsel`. Partial
    /// overlap only widens the aggregate, so every decision drawn from
    /// it holds for the morsel's rows.
    fn aggregate_zones(&self, morsel: Morsel) -> Option<Zone> {
        if morsel.is_empty() || morsel.end() > self.len() {
            return None;
        }
        let z0 = morsel.start() / ZONE_ROWS;
        let z1 = (morsel.end() - 1) / ZONE_ROWS;
        let mut acc: Option<Zone> = None;
        for z in z0..=z1 {
            let zone = *self.zones.get(z)?;
            acc = Some(match acc {
                None => zone,
                Some(a) => a.merge(zone),
            });
        }
        acc
    }

    // ---- word-granular fills ---------------------------------------------

    /// Fill `out` (a morsel-length mask) for a morsel whose comparison
    /// outcome is already decided, from validity words alone: decided
    /// `True` → valid selected lanes true, null selected lanes unknown;
    /// `False` → null lanes still unknown; `Unknown` → every selected
    /// lane unknown. This is exactly what the decoded kernel would
    /// produce, minus the payload reads.
    pub fn fill_decided(&self, decision: Truth, sel: &Bitmap, morsel: Morsel, out: &mut TruthMask) {
        let wr = morsel.word_range();
        let sel_words = &sel.words()[wr.clone()];
        let valid_words = self.validity.as_ref().map(|v| &v.words()[wr]);
        for (w, &s) in sel_words.iter().enumerate() {
            if s == 0 {
                continue; // `out` is all-false from checkout
            }
            let valid = valid_words.map_or(u64::MAX, |v| v[w]);
            match decision {
                Truth::True => out.set_word(w, valid & s, !valid & s),
                Truth::False => out.set_word(w, 0, !valid & s),
                Truth::Unknown => out.set_word(w, 0, s),
            }
        }
    }

    /// `IS NULL` from validity words — never touches the payload.
    pub fn fill_is_null(&self, sel: &Bitmap, morsel: Morsel, out: &mut TruthMask) {
        let Some(validity) = &self.validity else {
            return; // no nulls: all-false, which `out` already is
        };
        let wr = morsel.word_range();
        let sel_words = &sel.words()[wr.clone()];
        let valid_words = &validity.words()[wr];
        for (w, &s) in sel_words.iter().enumerate() {
            if s != 0 {
                out.set_word(w, !valid_words[w] & s, 0);
            }
        }
    }

    /// Evaluate `col OP lit` over `morsel` directly against the encoded
    /// payload — FOR deltas and dictionary codes are compared in code
    /// space; nothing is decoded. Returns `false` (out untouched) when
    /// the type pairing has no encoded kernel and the caller must fall
    /// back to the decoded path.
    pub fn fill_cmp(
        &self,
        op: EncCmpOp,
        lit: &Value,
        sel: &Bitmap,
        morsel: Morsel,
        out: &mut TruthMask,
    ) -> bool {
        match (&self.data, lit) {
            (
                EncodedData::ForInt {
                    reference,
                    width,
                    packed,
                    ..
                },
                Value::Int(l),
            ) => {
                // Translate the literal into delta space once. Outside
                // the encoded domain the outcome is uniform per op.
                let lr = (*l as i128) - (*reference as i128);
                if lr < 0 {
                    // literal below every stored value: x > lit everywhere
                    let all = matches!(op, EncCmpOp::Gt | EncCmpOp::Ge | EncCmpOp::Ne);
                    self.fill_decided(Truth::from(all), sel, morsel, out);
                } else if lr > u64::MAX as i128 {
                    // literal above every stored value: x < lit everywhere
                    let all = matches!(op, EncCmpOp::Lt | EncCmpOp::Le | EncCmpOp::Ne);
                    self.fill_decided(Truth::from(all), sel, morsel, out);
                } else {
                    let lc = lr as u64;
                    let (width, packed) = (*width, packed.as_slice());
                    macro_rules! run {
                        ($test:expr) => {
                            self.fill_pred(sel, morsel, out, |i| {
                                let c = unpack_at(packed, i, width);
                                $test(c)
                            })
                        };
                    }
                    match op {
                        EncCmpOp::Eq => run!(|c| c == lc),
                        EncCmpOp::Ne => run!(|c| c != lc),
                        EncCmpOp::Lt => run!(|c| c < lc),
                        EncCmpOp::Le => run!(|c| c <= lc),
                        EncCmpOp::Gt => run!(|c| c > lc),
                        EncCmpOp::Ge => run!(|c| c >= lc),
                    }
                }
                true
            }
            (EncodedData::DictStr { dict, codes }, Value::Str(s)) => {
                // The sorted dictionary turns every operator into one or
                // two code thresholds; rows compare codes, not bytes.
                let (p_lt, p_le) = dict_thresholds(dict, s);
                let codes = codes.as_slice();
                macro_rules! run {
                    ($test:expr) => {
                        self.fill_pred(sel, morsel, out, |i| {
                            let c = codes[i];
                            $test(c)
                        })
                    };
                }
                match op {
                    EncCmpOp::Eq => run!(|c| c >= p_lt && c < p_le),
                    EncCmpOp::Ne => run!(|c| c < p_lt || c >= p_le),
                    EncCmpOp::Lt => run!(|c| c < p_lt),
                    EncCmpOp::Le => run!(|c| c < p_le),
                    EncCmpOp::Gt => run!(|c| c >= p_le),
                    EncCmpOp::Ge => run!(|c| c >= p_lt),
                }
                true
            }
            (EncodedData::Float(v), Value::Float(_) | Value::Int(_)) => {
                let l = match lit {
                    Value::Float(f) => *f,
                    Value::Int(i) => *i as f64,
                    _ => unreachable!(),
                };
                let v = v.as_slice();
                // IEEE operators: every NaN comparison false except `!=`,
                // matching the decoded kernel.
                macro_rules! run {
                    ($test:expr) => {
                        self.fill_pred(sel, morsel, out, |i| {
                            let x = v[i];
                            $test(x)
                        })
                    };
                }
                match op {
                    EncCmpOp::Eq => run!(|x| x == l),
                    EncCmpOp::Ne => run!(|x| x != l),
                    EncCmpOp::Lt => run!(|x| x < l),
                    EncCmpOp::Le => run!(|x| x <= l),
                    EncCmpOp::Gt => run!(|x| x > l),
                    EncCmpOp::Ge => run!(|x| x >= l),
                }
                true
            }
            (EncodedData::Bool(v), Value::Bool(l)) => {
                let (v, l) = (v.as_slice(), *l);
                macro_rules! run {
                    ($test:expr) => {
                        self.fill_pred(sel, morsel, out, |i| {
                            let x = v[i];
                            $test(x)
                        })
                    };
                }
                match op {
                    EncCmpOp::Eq => run!(|x| x == l),
                    EncCmpOp::Ne => run!(|x| x != l),
                    EncCmpOp::Lt => run!(|x: bool| !x & l),
                    EncCmpOp::Le => run!(|x: bool| !x | l),
                    EncCmpOp::Gt => run!(|x: bool| x & !l),
                    EncCmpOp::Ge => run!(|x: bool| x | !l),
                }
                true
            }
            _ => false,
        }
    }

    /// Evaluate an arbitrary string predicate (LIKE, IN-list) **per
    /// dictionary entry** instead of per row: `map` runs once for each
    /// distinct value, rows look the verdict up by code. Returns `false`
    /// when this is not a dictionary column.
    pub fn fill_str_map(
        &self,
        sel: &Bitmap,
        morsel: Morsel,
        out: &mut TruthMask,
        mut map: impl FnMut(&str) -> Truth,
    ) -> bool {
        let EncodedData::DictStr { dict, codes } = &self.data else {
            return false;
        };
        let table: Vec<Truth> = (0..dict.len()).map(|k| map(dict.get(k))).collect();
        let wr = morsel.word_range();
        let sel_words = &sel.words()[wr.clone()];
        let valid_words = self.validity.as_ref().map(|v| &v.words()[wr]);
        for (w, &s) in sel_words.iter().enumerate() {
            if s == 0 {
                continue;
            }
            let valid = valid_words.map_or(u64::MAX, |v| v[w]);
            let base = morsel.start() + w * 64;
            let top = 64.min(morsel.end() - base);
            let (mut tru, mut unk) = (0u64, 0u64);
            for b in 0..top {
                if s >> b & 1 == 0 {
                    continue;
                }
                if valid >> b & 1 == 0 {
                    unk |= 1 << b;
                    continue;
                }
                match table[codes[base + b] as usize] {
                    Truth::True => tru |= 1 << b,
                    Truth::Unknown => unk |= 1 << b,
                    Truth::False => {}
                }
            }
            out.set_word(w, tru, unk);
        }
        true
    }

    /// Branchless fill: run `test` (over **global** row indices) for
    /// every lane of each selected word, then route invalid lanes to
    /// `Unknown` and unselected lanes to `False` with two word ANDs —
    /// the same shape as the decoded `fill_cmp_words` kernel.
    fn fill_pred(
        &self,
        sel: &Bitmap,
        morsel: Morsel,
        out: &mut TruthMask,
        test: impl Fn(usize) -> bool,
    ) {
        let wr = morsel.word_range();
        let sel_words = &sel.words()[wr.clone()];
        let valid_words = self.validity.as_ref().map(|v| &v.words()[wr]);
        for (w, &s) in sel_words.iter().enumerate() {
            if s == 0 {
                continue;
            }
            let base = morsel.start() + w * 64;
            let top = 64.min(morsel.end() - base);
            let mut cmp = 0u64;
            for b in 0..top {
                cmp |= (test(base + b) as u64) << b;
            }
            let valid = valid_words.map_or(u64::MAX, |v| v[w]);
            out.set_word(w, cmp & valid & s, !valid & s);
        }
    }

    // ---- estimation ------------------------------------------------------

    /// Selectivity of `col OP lit` estimated from zone maps alone:
    /// decided zones count exactly, straddled zones interpolate within
    /// their min/max span. `None` when the pairing is not estimable
    /// (type mismatch, NaN-poisoned zones) — callers fall back to
    /// sampling.
    pub fn zone_selectivity(&self, op: EncCmpOp, lit: &Value) -> Option<f64> {
        let n = self.len();
        if n == 0 {
            return Some(0.0);
        }
        if lit.is_null() {
            return Some(0.0);
        }
        let mut true_rows = 0.0f64;
        for zone in &self.zones {
            let valid = (zone.rows - zone.nulls) as f64;
            if valid == 0.0 {
                continue;
            }
            let frac = match (zone.bounds?, lit) {
                (ZoneBounds::Int { min, max }, Value::Int(l)) => {
                    frac_discrete(op, min as f64, max as f64, *l as f64)
                }
                (ZoneBounds::Float { min, max }, Value::Float(l)) => {
                    frac_continuous(op, min, max, *l)?
                }
                (ZoneBounds::Float { min, max }, Value::Int(l)) => {
                    frac_continuous(op, min, max, *l as f64)?
                }
                (ZoneBounds::Code { min, max }, Value::Str(s)) => {
                    let EncodedData::DictStr { dict, .. } = &self.data else {
                        return None;
                    };
                    let (p_lt, p_le) = dict_thresholds(dict, s);
                    frac_code(op, min, max, p_lt, p_le)
                }
                (ZoneBounds::Bool { min, max }, Value::Bool(l)) => {
                    frac_discrete(op, min as u8 as f64, max as u8 as f64, *l as u8 as f64)
                }
                _ => return None,
            };
            true_rows += frac.clamp(0.0, 1.0) * valid;
        }
        Some((true_rows / n as f64).clamp(0.0, 1.0))
    }

    // ---- raw access (storage-internal; linted outside crates/storage) ----

    /// Dictionary codes of a string column. Internal surface — see the
    /// module docs and the `basilisk-lint` encoded-buffer rule.
    pub fn raw_codes(&self) -> Option<&[u32]> {
        match &self.data {
            EncodedData::DictStr { codes, .. } => Some(codes),
            _ => None,
        }
    }

    /// Sorted dictionary of a string column. Internal surface.
    pub fn raw_dict(&self) -> Option<&StrData> {
        match &self.data {
            EncodedData::DictStr { dict, .. } => Some(dict),
            _ => None,
        }
    }

    /// `(packed words, reference, bit width)` of an int column. Internal
    /// surface.
    pub fn raw_packed(&self) -> Option<(&[u64], i64, u32)> {
        match &self.data {
            EncodedData::ForInt {
                reference,
                width,
                packed,
                ..
            } => Some((packed, *reference, *width)),
            _ => None,
        }
    }
}

// ---- encoders ------------------------------------------------------------

/// Bits needed to represent `max_delta`.
pub(crate) fn bits_for(max_delta: u64) -> u32 {
    if max_delta == 0 {
        0
    } else {
        64 - max_delta.leading_zeros()
    }
}

/// Write `delta` (low `width` bits) at packed position `i`.
pub(crate) fn pack_at(packed: &mut [u64], i: usize, width: u32, delta: u64) {
    if width == 0 {
        return;
    }
    let bit = i * width as usize;
    let (w, off) = (bit / 64, (bit % 64) as u32);
    packed[w] |= delta << off;
    if off + width > 64 {
        packed[w + 1] |= delta >> (64 - off);
    }
}

/// Read the `width`-bit delta at packed position `i`.
pub(crate) fn unpack_at(packed: &[u64], i: usize, width: u32) -> u64 {
    if width == 0 {
        return 0;
    }
    let bit = i * width as usize;
    let (w, off) = (bit / 64, (bit % 64) as u32);
    let mut val = packed[w] >> off;
    if off + width > 64 {
        val |= packed[w + 1] << (64 - off);
    }
    if width == 64 {
        val
    } else {
        val & ((1u64 << width) - 1)
    }
}

fn encode_for(v: &[i64]) -> EncodedData {
    let reference = v.iter().copied().min().unwrap_or(0);
    // `v[i] >= reference`, so the two's-complement wrapping difference
    // is exactly the non-negative mathematical delta as a u64.
    let max_delta = v
        .iter()
        .map(|&x| x.wrapping_sub(reference) as u64)
        .max()
        .unwrap_or(0);
    let width = bits_for(max_delta);
    let mut packed = vec![0u64; (v.len() * width as usize).div_ceil(64)];
    for (i, &x) in v.iter().enumerate() {
        pack_at(&mut packed, i, width, x.wrapping_sub(reference) as u64);
    }
    EncodedData::ForInt {
        reference,
        width,
        packed,
        len: v.len(),
    }
}

fn encode_dict(s: &StrData) -> EncodedData {
    let mut uniq: Vec<&str> = s.iter().collect();
    uniq.sort_unstable();
    uniq.dedup();
    let total: usize = uniq.iter().map(|u| u.len()).sum();
    let mut dict = StrData::with_capacity(uniq.len(), total);
    for u in &uniq {
        dict.push(u);
    }
    let codes = (0..s.len())
        .map(|i| {
            uniq.binary_search(&s.get(i))
                .expect("value is in its own dictionary") as u32
        })
        .collect();
    EncodedData::DictStr { dict, codes }
}

fn build_zones(data: &EncodedData, validity: Option<&Bitmap>) -> Vec<Zone> {
    let n = match data {
        EncodedData::ForInt { len, .. } => *len,
        EncodedData::DictStr { codes, .. } => codes.len(),
        EncodedData::Float(v) => v.len(),
        EncodedData::Bool(v) => v.len(),
    };
    let is_valid = |i: usize| validity.is_none_or(|v| v.get(i));
    let mut zones = Vec::with_capacity(n.div_ceil(ZONE_ROWS));
    let mut start = 0usize;
    while start < n {
        let end = (start + ZONE_ROWS).min(n);
        let mut nulls = 0u32;
        let mut bounds: Option<ZoneBounds> = None;
        for i in start..end {
            if !is_valid(i) {
                nulls += 1;
                continue;
            }
            bounds = Some(match (data, bounds) {
                (
                    EncodedData::ForInt {
                        reference,
                        width,
                        packed,
                        ..
                    },
                    b,
                ) => {
                    let x = reference.wrapping_add(unpack_at(packed, i, *width) as i64);
                    match b {
                        None => ZoneBounds::Int { min: x, max: x },
                        Some(ZoneBounds::Int { min, max }) => ZoneBounds::Int {
                            min: min.min(x),
                            max: max.max(x),
                        },
                        Some(other) => other,
                    }
                }
                (EncodedData::DictStr { codes, .. }, b) => {
                    let c = codes[i];
                    match b {
                        None => ZoneBounds::Code { min: c, max: c },
                        Some(ZoneBounds::Code { min, max }) => ZoneBounds::Code {
                            min: min.min(c),
                            max: max.max(c),
                        },
                        Some(other) => other,
                    }
                }
                (EncodedData::Float(v), b) => {
                    let x = v[i];
                    if x.is_nan() {
                        ZoneBounds::Unordered
                    } else {
                        match b {
                            None => ZoneBounds::Float { min: x, max: x },
                            Some(ZoneBounds::Float { min, max }) => ZoneBounds::Float {
                                min: min.min(x),
                                max: max.max(x),
                            },
                            Some(other) => other,
                        }
                    }
                }
                (EncodedData::Bool(v), b) => {
                    let x = v[i];
                    match b {
                        None => ZoneBounds::Bool { min: x, max: x },
                        Some(ZoneBounds::Bool { min, max }) => ZoneBounds::Bool {
                            min: min & x,
                            max: max | x,
                        },
                        Some(other) => other,
                    }
                }
            });
        }
        zones.push(Zone {
            rows: (end - start) as u32,
            nulls,
            bounds,
        });
        start = end;
    }
    zones
}

// ---- decision helpers ----------------------------------------------------

/// `(dict < s, dict <= s)` partition points: `Lt` is code `< p_lt`,
/// `Le` is `< p_le`, `Eq` is the (possibly empty) range between them.
fn dict_thresholds(dict: &StrData, s: &str) -> (u32, u32) {
    (
        dict_partition(dict, |d| d < s),
        dict_partition(dict, |d| d <= s),
    )
}

fn dict_partition(dict: &StrData, pred: impl Fn(&str) -> bool) -> u32 {
    let (mut lo, mut hi) = (0usize, dict.len());
    while lo < hi {
        let mid = (lo + hi) / 2;
        if pred(dict.get(mid)) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo as u32
}

/// Decide an operator from the orderings of a zone's min and max
/// against the literal: `Some(true)` = every valid row matches,
/// `Some(false)` = none does, `None` = straddles.
fn decide_ord(op: EncCmpOp, lo: Ordering, hi: Ordering) -> Option<bool> {
    use Ordering::*;
    let all = match op {
        EncCmpOp::Eq => lo == Equal && hi == Equal,
        EncCmpOp::Ne => hi == Less || lo == Greater,
        EncCmpOp::Lt => hi == Less,
        EncCmpOp::Le => hi != Greater,
        EncCmpOp::Gt => lo == Greater,
        EncCmpOp::Ge => lo != Less,
    };
    if all {
        return Some(true);
    }
    let none = match op {
        EncCmpOp::Eq => hi == Less || lo == Greater,
        EncCmpOp::Ne => lo == Equal && hi == Equal,
        EncCmpOp::Lt => lo != Less,
        EncCmpOp::Le => lo == Greater,
        EncCmpOp::Gt => hi != Greater,
        EncCmpOp::Ge => hi == Less,
    };
    if none {
        Some(false)
    } else {
        None
    }
}

fn decide_float(op: EncCmpOp, min: f64, max: f64, l: f64) -> Option<bool> {
    if l.is_nan() {
        // Every comparison with NaN is false except `!=` — uniform
        // across the morsel, so always decided.
        return Some(op == EncCmpOp::Ne);
    }
    // Bounds exist only when the zone saw no NaN, so the order is total.
    decide_ord(op, min.partial_cmp(&l)?, max.partial_cmp(&l)?)
}

/// Decide an operator in dictionary-code space: rows hold codes in
/// `[min, max]`, the operator's true-set is `[0, p_lt)`, `[p_lt, p_le)`,
/// etc. — interval containment/disjointness decides.
fn decide_code(op: EncCmpOp, min: u32, max: u32, p_lt: u32, p_le: u32) -> Option<bool> {
    let (all, none) = match op {
        EncCmpOp::Lt => (max < p_lt, min >= p_lt),
        EncCmpOp::Le => (max < p_le, min >= p_le),
        EncCmpOp::Gt => (min >= p_le, max < p_le),
        EncCmpOp::Ge => (min >= p_lt, max < p_lt),
        EncCmpOp::Eq => (
            p_lt < p_le && min >= p_lt && max < p_le,
            max < p_lt || min >= p_le,
        ),
        EncCmpOp::Ne => (
            max < p_lt || min >= p_le,
            p_lt < p_le && min >= p_lt && max < p_le,
        ),
    };
    if all {
        Some(true)
    } else if none {
        Some(false)
    } else {
        None
    }
}

// ---- interpolation helpers (estimator) -----------------------------------

/// Fraction of a discrete uniform `[min, max]` domain satisfying the op.
fn frac_discrete(op: EncCmpOp, min: f64, max: f64, l: f64) -> f64 {
    let span = max - min + 1.0;
    let l = l.floor();
    match op {
        EncCmpOp::Lt => (l - min) / span,
        EncCmpOp::Le => (l - min + 1.0) / span,
        EncCmpOp::Gt => (max - l) / span,
        EncCmpOp::Ge => (max - l + 1.0) / span,
        EncCmpOp::Eq => {
            if l >= min && l <= max {
                1.0 / span
            } else {
                0.0
            }
        }
        EncCmpOp::Ne => 1.0 - frac_discrete(EncCmpOp::Eq, min, max, l),
    }
}

/// Fraction of a continuous uniform `[min, max]` domain satisfying the
/// op; `None` only for a NaN literal (handled by the caller's fallback).
fn frac_continuous(op: EncCmpOp, min: f64, max: f64, l: f64) -> Option<f64> {
    if l.is_nan() {
        return Some(if op == EncCmpOp::Ne { 1.0 } else { 0.0 });
    }
    let span = max - min;
    if span <= 0.0 {
        // Point zone: decide exactly.
        let hit = match op {
            EncCmpOp::Eq => min == l,
            EncCmpOp::Ne => min != l,
            EncCmpOp::Lt => min < l,
            EncCmpOp::Le => min <= l,
            EncCmpOp::Gt => min > l,
            EncCmpOp::Ge => min >= l,
        };
        return Some(if hit { 1.0 } else { 0.0 });
    }
    Some(match op {
        EncCmpOp::Lt | EncCmpOp::Le => (l - min) / span,
        EncCmpOp::Gt | EncCmpOp::Ge => (max - l) / span,
        EncCmpOp::Eq => 0.0,
        EncCmpOp::Ne => 1.0,
    })
}

/// Fraction of the zone's code range `[min, max]` inside the op's
/// true-interval.
fn frac_code(op: EncCmpOp, min: u32, max: u32, p_lt: u32, p_le: u32) -> f64 {
    let span = (max - min + 1) as f64;
    let overlap = |lo: u32, hi: u32| -> f64 {
        // true-codes are [lo, hi); zone codes are [min, max]
        let a = lo.max(min) as f64;
        let b = (hi.min(max.saturating_add(1))).max(lo) as f64;
        (b - a).max(0.0)
    };
    match op {
        EncCmpOp::Lt => overlap(0, p_lt) / span,
        EncCmpOp::Le => overlap(0, p_le) / span,
        EncCmpOp::Gt => overlap(p_le, u32::MAX) / span,
        EncCmpOp::Ge => overlap(p_lt, u32::MAX) / span,
        EncCmpOp::Eq => overlap(p_lt, p_le) / span,
        EncCmpOp::Ne => 1.0 - overlap(p_lt, p_le) / span,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;
    use basilisk_types::{MaskArena, Value};

    fn nullable_ints(vals: &[Option<i64>]) -> Column {
        let mut b = ColumnBuilder::new(DataType::Int);
        for v in vals {
            b.push(v.map_or(Value::Null, Value::Int)).unwrap();
        }
        b.finish()
    }

    #[test]
    fn pack_roundtrip_all_widths() {
        for width in 0..=64u32 {
            let vals: Vec<u64> = (0..200u64)
                .map(|i| {
                    if width == 0 {
                        0
                    } else if width == 64 {
                        i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    } else {
                        (i.wrapping_mul(0x9E37_79B9)) & ((1u64 << width) - 1)
                    }
                })
                .collect();
            let mut packed = vec![0u64; (vals.len() * width as usize).div_ceil(64)];
            for (i, &v) in vals.iter().enumerate() {
                pack_at(&mut packed, i, width, v);
            }
            for (i, &v) in vals.iter().enumerate() {
                assert_eq!(unpack_at(&packed, i, width), v, "width {width} idx {i}");
            }
        }
    }

    #[test]
    fn int_roundtrip_including_extremes() {
        let col = Column::from_ints(vec![i64::MIN, i64::MAX, 0, -1, 42]);
        let enc = EncodedColumn::encode(&col);
        assert_eq!(enc.decode(), col);
        assert_eq!(enc.data_type(), DataType::Int);
    }

    #[test]
    fn str_dict_roundtrip_multibyte() {
        let col = Column::from_strs(&["züge", "", "abc", "züge", "ære", "abc"]);
        let enc = EncodedColumn::encode(&col);
        assert_eq!(enc.decode(), col);
        let dict = enc.raw_dict().unwrap();
        assert_eq!(dict.len(), 4, "dictionary holds distinct values only");
        // Compression: codes (4B) beat repeated strings for long values.
        assert!(enc.raw_codes().unwrap().len() == col.len());
    }

    #[test]
    fn nulls_roundtrip_with_placeholders() {
        let col = nullable_ints(&[Some(3), None, Some(-7), None, Some(9)]);
        let enc = EncodedColumn::encode(&col);
        assert_eq!(enc.decode(), col);
        assert_eq!(enc.validity().unwrap().count_ones(), 3);
    }

    #[test]
    fn gather_matches_decoded_gather() {
        let col = nullable_ints(&[Some(5), None, Some(1), Some(8), None]);
        let enc = EncodedColumn::encode(&col);
        let rows = [4u32, 0, 0, 2, 1];
        assert_eq!(enc.gather(&rows), col.gather(&rows));
        let strs = Column::from_strs(&["b", "a", "c", "b"]);
        let enc = EncodedColumn::encode(&strs);
        assert_eq!(enc.gather(&[3, 1, 0]), strs.gather(&[3, 1, 0]));
    }

    #[test]
    fn zone_prune_decides_disjoint_ranges() {
        // Two zones: [0, 1023] and [1024, 2047].
        let col = Column::from_ints((0..2048).collect());
        let enc = EncodedColumn::encode(&col);
        assert_eq!(enc.zone_count(), 2);
        let morsels = Morsel::split(2048, 1024);
        let (m0, m1) = (morsels[0], morsels[1]);
        assert_eq!(
            enc.prune_cmp(EncCmpOp::Lt, &Value::Int(1024), m0),
            Some(Truth::True)
        );
        assert_eq!(
            enc.prune_cmp(EncCmpOp::Lt, &Value::Int(1024), m1),
            Some(Truth::False)
        );
        assert_eq!(enc.prune_cmp(EncCmpOp::Lt, &Value::Int(500), m0), None);
        assert_eq!(
            enc.prune_cmp(EncCmpOp::Eq, &Value::Int(5000), m1),
            Some(Truth::False)
        );
        assert_eq!(
            enc.prune_cmp(EncCmpOp::Ge, &Value::Int(1024), m1),
            Some(Truth::True)
        );
    }

    #[test]
    fn zone_prune_all_null_morsel_is_unknown() {
        let col = nullable_ints(&vec![None; 128]);
        let enc = EncodedColumn::encode(&col);
        let m = Morsel::full(128);
        assert_eq!(
            enc.prune_cmp(EncCmpOp::Eq, &Value::Int(1), m),
            Some(Truth::Unknown)
        );
        assert_eq!(enc.prune_is_null(m), Some(true));
    }

    #[test]
    fn nan_poisons_zone_bounds() {
        let col = Column::from_floats(vec![1.0, f64::NAN, 3.0]);
        let enc = EncodedColumn::encode(&col);
        let m = Morsel::full(3);
        assert_eq!(enc.prune_cmp(EncCmpOp::Lt, &Value::Float(10.0), m), None);
        // …but a NaN *literal* is decided for any bounds.
        let clean = EncodedColumn::encode(&Column::from_floats(vec![1.0, 2.0]));
        assert_eq!(
            clean.prune_cmp(EncCmpOp::Ne, &Value::Float(f64::NAN), Morsel::full(2)),
            Some(Truth::True)
        );
    }

    #[test]
    fn fill_decided_routes_nulls_to_unknown() {
        let col = nullable_ints(&[Some(1), None, Some(3), None]);
        let enc = EncodedColumn::encode(&col);
        let arena = MaskArena::new();
        let sel = Bitmap::all_set(4);
        let m = Morsel::full(4);
        let mut out = arena.mask(4);
        enc.fill_decided(Truth::True, &sel, m, &mut out);
        assert_eq!(out.get(0), Truth::True);
        assert_eq!(out.get(1), Truth::Unknown);
        assert_eq!(out.get(2), Truth::True);
        assert_eq!(out.get(3), Truth::Unknown);
        let mut out2 = arena.mask(4);
        enc.fill_decided(Truth::False, &sel, m, &mut out2);
        assert_eq!(out2.get(0), Truth::False);
        assert_eq!(out2.get(1), Truth::Unknown);
    }

    #[test]
    fn encoded_cmp_matches_semantics_in_code_space() {
        let col = Column::from_strs(&["delta", "alpha", "echo", "bravo", "delta"]);
        let enc = EncodedColumn::encode(&col);
        let arena = MaskArena::new();
        let sel = Bitmap::all_set(5);
        let m = Morsel::full(5);
        for (op, expected) in [
            (EncCmpOp::Eq, [true, false, false, false, true]),
            (EncCmpOp::Lt, [false, true, false, true, false]),
            (EncCmpOp::Ge, [true, false, true, false, true]),
            (EncCmpOp::Ne, [false, true, true, true, false]),
        ] {
            let mut out = arena.mask(5);
            assert!(enc.fill_cmp(op, &Value::from("delta"), &sel, m, &mut out));
            for (i, &e) in expected.iter().enumerate() {
                assert_eq!(out.get(i), Truth::from(e), "{op:?} lane {i}");
            }
            arena.recycle_mask(out);
        }
        // Absent literal: Eq empty-range, Ne everything (valid lanes).
        let mut out = arena.mask(5);
        assert!(enc.fill_cmp(EncCmpOp::Eq, &Value::from("coyote"), &sel, m, &mut out));
        assert_eq!(out.count_true(), 0);
    }

    #[test]
    fn encoded_int_cmp_out_of_domain_literals() {
        let col = Column::from_ints(vec![10, 20, 30]);
        let enc = EncodedColumn::encode(&col);
        let arena = MaskArena::new();
        let sel = Bitmap::all_set(3);
        let m = Morsel::full(3);
        let mut out = arena.mask(3);
        // literal below the frame reference
        assert!(enc.fill_cmp(EncCmpOp::Gt, &Value::Int(-5), &sel, m, &mut out));
        assert_eq!(out.count_true(), 3);
        let mut out = arena.mask(3);
        assert!(enc.fill_cmp(EncCmpOp::Lt, &Value::Int(-5), &sel, m, &mut out));
        assert_eq!(out.count_true(), 0);
    }

    #[test]
    fn unsupported_pairings_fall_back() {
        let col = Column::from_ints(vec![1, 2]);
        let enc = EncodedColumn::encode(&col);
        let arena = MaskArena::new();
        let sel = Bitmap::all_set(2);
        let m = Morsel::full(2);
        let mut out = arena.mask(2);
        // Int column vs float literal: no encoded kernel (decoded path
        // owns the cross-type semantics).
        assert!(!enc.fill_cmp(EncCmpOp::Lt, &Value::Float(1.5), &sel, m, &mut out));
        // Str map over a non-dict column.
        assert!(!enc.fill_str_map(&sel, m, &mut out, |_| Truth::True));
    }

    #[test]
    fn zone_selectivity_tracks_skew() {
        // Skewed: 0..100 in the first zone-span of rows, 100_000 beyond.
        let vals: Vec<i64> = (0..4096)
            .map(|i| if i < 1024 { i % 100 } else { 100_000 })
            .collect();
        let enc = EncodedColumn::encode(&Column::from_ints(vals));
        let s = enc
            .zone_selectivity(EncCmpOp::Lt, &Value::Int(100))
            .unwrap();
        // Exactly the first quarter of rows match; uniform-spread would
        // have guessed ~0.1%.
        assert!((s - 0.25).abs() < 0.01, "got {s}");
        let none = enc
            .zone_selectivity(EncCmpOp::Gt, &Value::Int(200_000))
            .unwrap();
        assert_eq!(none, 0.0);
    }

    #[test]
    fn compression_is_real() {
        let n = 64 * 1024;
        let ints = Column::from_ints((0..n as i64).map(|i| 1900 + (i % 128)).collect());
        let enc = EncodedColumn::encode(&ints);
        assert!(
            enc.encoded_bytes() * 4 < n * 8,
            "7-bit packing should beat 64-bit rows by ≥4×: {} vs {}",
            enc.encoded_bytes(),
            n * 8
        );
        let strs: Vec<String> = (0..n).map(|i| format!("country-{}", i % 20)).collect();
        let enc = EncodedColumn::encode(&Column::from_strs(&strs));
        assert!(
            enc.encoded_bytes() < n * 8,
            "dict codes beat inline strings"
        );
    }

    #[test]
    fn ragged_tail_morsel_fills() {
        // 100 rows: last word holds 36 lanes; morsel end is off-word.
        let col = Column::from_ints((0..100).collect());
        let enc = EncodedColumn::encode(&col);
        let arena = MaskArena::new();
        let sel = Bitmap::all_set(100);
        let m = Morsel::full(100);
        let mut out = arena.mask(100);
        assert!(enc.fill_cmp(EncCmpOp::Ge, &Value::Int(90), &sel, m, &mut out));
        assert_eq!(out.count_true(), 10);
        let mut out = arena.mask(100);
        enc.fill_decided(Truth::True, &sel, m, &mut out);
        assert_eq!(out.count_true(), 100);
    }
}
