//! The top-level database object.

use std::path::Path;
use std::sync::{Arc, Mutex};

use basilisk_catalog::Catalog;
use basilisk_plan::{PlannerKind, Query, QuerySession};
use basilisk_serve::{Prepared, Server, ServerConfig};
use basilisk_sql::{parse_select, Projection};
use basilisk_storage::{LfuPageCache, Table};
use basilisk_types::{Result, Value};

use crate::result::SqlResult;

/// A Basilisk database: a catalog of registered tables plus the page cache
/// used for disk-resident tables.
///
/// SQL entry points ([`Database::sql`], [`Database::prepare`] /
/// [`Database::execute_prepared`]) run on an internal resident
/// [`Server`]: one shared worker pool, reusable execution contexts and a
/// prepared-statement plan cache, so repeated statements skip parsing and
/// planning (byte-identical repeats skip even lexing). The server is a
/// catalog *snapshot*, rebuilt lazily after any registration.
pub struct Database {
    catalog: Catalog,
    cache: Arc<LfuPageCache>,
    default_planner: PlannerKind,
    /// Worker-count override for sessions this database builds; `None`
    /// defers to the engine default (`BASILISK_THREADS`, else the
    /// machine's available parallelism).
    workers: Option<usize>,
    /// The lazily built internal serving core; dropped (and rebuilt on
    /// next use) whenever the catalog or engine configuration changes.
    engine: Mutex<Option<Arc<Server>>>,
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

impl Database {
    /// An empty database with a default-size page cache (4096 pages ≈
    /// 32 MiB).
    pub fn new() -> Database {
        Database::with_cache_pages(4096)
    }

    pub fn with_cache_pages(pages: usize) -> Database {
        Database {
            catalog: Catalog::new(),
            cache: Arc::new(LfuPageCache::new(pages)),
            default_planner: PlannerKind::TCombined,
            workers: None,
            engine: Mutex::new(None),
        }
    }

    /// Change the planner used by [`Database::sql`] (default TCombined).
    pub fn set_default_planner(&mut self, kind: PlannerKind) {
        self.default_planner = kind;
        self.invalidate_engine();
    }

    /// Set the worker count for intra-query parallelism on every session
    /// this database builds (`1` = serial execution; the default follows
    /// `BASILISK_THREADS`, else the machine's available parallelism).
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = Some(workers.max(1));
        self.invalidate_engine();
    }

    /// Register an in-memory table (statistics are computed on the spot).
    pub fn register(&mut self, table: Table) -> Result<()> {
        self.catalog.add_table(table)?;
        self.invalidate_engine();
        Ok(())
    }

    /// Open a table previously saved with [`Database::save_table`] and
    /// register it (data pages stay on disk, read through the LFU cache).
    pub fn open_table(&mut self, dir: &Path) -> Result<()> {
        let table = Table::load(dir, Arc::clone(&self.cache))?;
        self.catalog.add_table(table)?;
        self.invalidate_engine();
        Ok(())
    }

    fn invalidate_engine(&mut self) {
        *self.engine.get_mut().unwrap() = None;
    }

    /// The internal serving core, built on first use. Cached plans and
    /// warm arenas live here, which is what makes repeated
    /// [`Database::sql`] calls bind-and-execute instead of
    /// parse-plan-execute.
    fn engine(&self) -> Arc<Server> {
        let mut slot = self.engine.lock().unwrap();
        Arc::clone(slot.get_or_insert_with(|| {
            // Concurrent `sql` callers on one Database execute on up to
            // `contexts` contexts; admission is effectively unbounded so
            // no caller is ever rejected (the standalone `serve()`
            // server is where backpressure policy belongs).
            let config = ServerConfig::builder()
                .contexts(2)
                .queue_limit(usize::MAX / 2)
                .workers_opt(self.workers)
                .default_planner(self.default_planner)
                .build()
                .expect("static sizing is valid");
            Arc::new(Server::new(self.catalog.clone(), config))
        }))
    }

    /// Persist a registered table to `dir`.
    pub fn save_table(&self, name: &str, dir: &Path) -> Result<()> {
        self.catalog.table(name)?.save(dir)
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn cache(&self) -> &Arc<LfuPageCache> {
        &self.cache
    }

    /// Build a planning/execution session for a programmatic [`Query`].
    pub fn session(&self, query: Query) -> Result<QuerySession> {
        let session = QuerySession::new(&self.catalog, query)?;
        Ok(match self.workers {
            Some(w) => session.with_workers(w),
            None => session,
        })
    }

    /// Parse a SQL SELECT, resolving `*` against the catalog. `LIMIT` and
    /// `COUNT(*)` are handled by [`Database::sql`]; this returns the bare
    /// logical query.
    pub fn parse(&self, sql: &str) -> Result<Query> {
        Ok(self.parse_full(sql)?.0)
    }

    fn parse_full(&self, sql: &str) -> Result<(Query, Option<usize>, bool)> {
        let stmt = parse_select(sql)?;
        let limit = stmt.limit;
        let star = matches!(stmt.projection, Projection::Star);
        let is_count = matches!(stmt.projection, Projection::Count);
        let mut query = stmt.into_query();
        if star {
            let mut cols = Vec::new();
            for (alias, table_name) in &query.aliases {
                let table = self.catalog.table(table_name)?;
                for name in table.column_names() {
                    cols.push(basilisk_expr::ColumnRef::new(alias.clone(), name));
                }
            }
            query.projection = cols;
        }
        query.validate()?;
        Ok((query, limit, is_count))
    }

    /// Run a SQL query with the default planner, through the internal
    /// plan cache: the first occurrence of a statement shape parses and
    /// plans, every later occurrence binds its literals into the cached
    /// plan and executes.
    pub fn sql(&self, sql: &str) -> Result<SqlResult> {
        self.sql_with(sql, self.default_planner)
    }

    /// Run a SQL query with an explicit planner (plans are cached per
    /// planner kind).
    pub fn sql_with(&self, sql: &str, kind: PlannerKind) -> Result<SqlResult> {
        Ok(SqlResult::from_serve(self.engine().sql_with(sql, kind)?))
    }

    /// Parse, normalize and plan a statement once, returning a reusable
    /// handle for [`Database::execute_prepared`]. Literals in the text
    /// become `?n` parameters in predicate walk order.
    pub fn prepare(&self, sql: &str) -> Result<Prepared> {
        self.engine().prepare(sql)
    }

    /// Execute a prepared statement with fresh parameter values — zero
    /// parse and zero plan work.
    pub fn execute_prepared(&self, stmt: &Prepared, params: &[Value]) -> Result<SqlResult> {
        Ok(SqlResult::from_serve(
            self.engine().execute_prepared(stmt, params)?,
        ))
    }

    /// Counter snapshot of the internal serving core (cache hits/misses/
    /// evictions, latency histogram).
    pub fn serve_stats(&self) -> basilisk_serve::ServeStats {
        self.engine().stats()
    }

    /// Build a standalone concurrent [`Server`] over a snapshot of this
    /// database's catalog, with this database's planner and worker
    /// configuration. Share it behind an `Arc` across client threads.
    pub fn serve(&self) -> Server {
        let config = ServerConfig::builder()
            .workers_opt(self.workers)
            .default_planner(self.default_planner)
            .build()
            .expect("static sizing is valid");
        self.serve_with(config)
    }

    /// [`Database::serve`] with explicit sizing.
    pub fn serve_with(&self, config: ServerConfig) -> Server {
        Server::new(self.catalog.clone(), config)
    }

    /// Serve this database over the HTTP/JSON wire protocol: build a
    /// standalone server (as [`Database::serve`]) and bind the
    /// `basilisk-net` listener to `addr` (use `"127.0.0.1:0"` for an
    /// ephemeral port; the bound address is on
    /// [`Listener::local_addr`](basilisk_net::Listener::local_addr)).
    pub fn listen(&self, addr: &str) -> std::io::Result<basilisk_net::Listener> {
        basilisk_net::Listener::bind(Arc::new(self.serve()), addr)
    }

    /// [`Database::listen`] with explicit server sizing.
    pub fn listen_with(
        &self,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<basilisk_net::Listener> {
        basilisk_net::Listener::bind(Arc::new(self.serve_with(config)), addr)
    }

    /// EXPLAIN: render the plan a planner would choose for a SQL query.
    pub fn explain(&self, sql: &str, kind: PlannerKind) -> Result<String> {
        let query = self.parse(sql)?;
        let session = self.session(query)?;
        let plan = session.plan(kind)?;
        Ok(session.explain(&plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basilisk_storage::TableBuilder;
    use basilisk_types::{DataType, Value};

    fn movie_db() -> Database {
        let mut db = Database::new();
        let mut b = TableBuilder::new("title")
            .column("id", DataType::Int)
            .column("year", DataType::Int)
            .column("name", DataType::Str);
        for (id, year, name) in [
            (1i64, 2008i64, "The Dark Knight"),
            (2, 2001, "Evolution"),
            (3, 1994, "The Shawshank Redemption"),
            (4, 1994, "Pulp Fiction"),
            (5, 1972, "The Godfather"),
            (6, 1988, "Beetlejuice"),
            (7, 2009, "Avatar"),
        ] {
            b.push_row(vec![id.into(), year.into(), name.into()])
                .unwrap();
        }
        db.register(b.finish().unwrap()).unwrap();
        let mut b = TableBuilder::new("movie_info_idx")
            .column("movie_id", DataType::Int)
            .column("score", DataType::Str);
        for (mid, s) in [
            (1i64, "9.0"),
            (3, "9.3"),
            (4, "8.9"),
            (5, "9.2"),
            (6, "7.5"),
            (7, "7.9"),
        ] {
            b.push_row(vec![mid.into(), s.into()]).unwrap();
        }
        db.register(b.finish().unwrap()).unwrap();
        db
    }

    /// Query 1 from the paper, end to end through SQL.
    #[test]
    fn query1_sql_end_to_end() {
        let db = movie_db();
        let result = db
            .sql(
                "SELECT * FROM title AS t JOIN movie_info_idx AS mi_idx \
                 ON t.id = mi_idx.movie_id \
                 WHERE (t.year > 2000 AND mi_idx.score > '7.0') \
                 OR (t.year > 1980 AND mi_idx.score > '8.0')",
            )
            .unwrap();
        // Dark Knight, Avatar (recent, >7.0) + Shawshank, Pulp Fiction
        // (post-1980, >8.0).
        assert_eq!(result.row_count, 4);
        assert_eq!(result.columns.len(), 5, "star expands all columns");
        assert!(result.chosen.is_some());
    }

    #[test]
    fn every_planner_gives_same_answer() {
        let db = movie_db();
        let sql = "SELECT t.id FROM title t JOIN movie_info_idx mi ON t.id = mi.movie_id \
                   WHERE t.year > 2000 AND mi.score > '8.0' OR t.name ILIKE '%godfather%'";
        let mut counts = Vec::new();
        for kind in [
            PlannerKind::TPushdown,
            PlannerKind::TPullup,
            PlannerKind::TIterPush,
            PlannerKind::TPushConj,
            PlannerKind::TCombined,
            PlannerKind::BDisj,
            PlannerKind::BPushConj,
        ] {
            counts.push(db.sql_with(sql, kind).unwrap().row_count);
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
        assert_eq!(counts[0], 2, "Dark Knight + The Godfather");
    }

    #[test]
    fn explain_produces_plans() {
        let db = movie_db();
        let sql = "SELECT * FROM title t JOIN movie_info_idx mi ON t.id = mi.movie_id \
                   WHERE t.year > 2000 OR mi.score > '9.0'";
        let tagged = db.explain(sql, PlannerKind::TCombined).unwrap();
        assert!(tagged.contains("tagged plan"), "{tagged}");
        let trad = db.explain(sql, PlannerKind::BDisj).unwrap();
        assert!(trad.contains("Union"), "{trad}");
    }

    #[test]
    fn save_open_roundtrip_runs_queries_from_disk() {
        let db = movie_db();
        let dir = std::env::temp_dir().join(format!("basilisk-db-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        db.save_table("title", &dir.join("title")).unwrap();
        db.save_table("movie_info_idx", &dir.join("mi")).unwrap();

        let mut db2 = Database::with_cache_pages(64);
        db2.open_table(&dir.join("title")).unwrap();
        db2.open_table(&dir.join("mi")).unwrap();
        let r = db2
            .sql("SELECT t.id FROM title t WHERE t.year > 2000")
            .unwrap();
        assert_eq!(r.row_count, 3);
        assert!(db2.cache().stats().misses > 0, "reads went through cache");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn nulls_handled_automatically() {
        let mut db = Database::new();
        let mut b = TableBuilder::new("t")
            .column("id", DataType::Int)
            .column("note", DataType::Str)
            .column("year", DataType::Int);
        for (id, note, year) in [
            (1i64, Value::from("x"), 2005i64),
            (2, Value::Null, 2010),
            (3, Value::Null, 1990),
            (4, Value::from("co-prod"), 1990),
        ] {
            b.push_row(vec![id.into(), note, year.into()]).unwrap();
        }
        db.register(b.finish().unwrap()).unwrap();
        // Row 2 has note NULL but satisfies year > 2000: the unknown slice
        // must keep it alive (three-valued tag maps auto-enabled).
        let sql = "SELECT t.id FROM t WHERE t.note LIKE '%co%' OR t.year > 2000";
        for kind in [
            PlannerKind::TCombined,
            PlannerKind::TPushdown,
            PlannerKind::BDisj,
        ] {
            let r = db.sql_with(sql, kind).unwrap();
            assert_eq!(r.row_count, 3, "rows 1,2,4 under {kind}");
        }
    }

    #[test]
    fn errors_surface() {
        let db = movie_db();
        assert!(db.sql("SELECT * FROM nope").is_err());
        assert!(db.sql("SELECT broken").is_err());
        assert!(db.sql("SELECT * FROM title t WHERE t.zz > 1").is_err());
        let mut db2 = movie_db();
        let mut b = TableBuilder::new("title").column("id", DataType::Int);
        b.push_row(vec![1i64.into()]).unwrap();
        assert!(db2.register(b.finish().unwrap()).is_err(), "duplicate");
    }

    /// Satellite of the serving PR: identical statements must not
    /// re-parse or re-plan — the second call is bind + execute.
    #[test]
    fn repeated_sql_hits_the_plan_cache() {
        let db = movie_db();
        let sql = "SELECT t.id FROM title t WHERE t.year > 2000";
        let a = db.sql(sql).unwrap();
        let s = db.serve_stats();
        assert_eq!((s.cache_hits, s.cache_misses), (0, 1));
        assert_eq!(s.statements_prepared, 1);
        let b = db.sql(sql).unwrap();
        assert_eq!(a.row_count, b.row_count);
        // Same shape, new literal: still no parse/plan.
        let c = db
            .sql("SELECT t.id FROM title t WHERE t.year > 1980")
            .unwrap();
        assert!(c.row_count >= b.row_count);
        let s = db.serve_stats();
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.statements_prepared, 1, "hot path is bind + execute");
        // Registration invalidates the snapshot (fresh server, cold cache).
        let mut db = db;
        let mut t = TableBuilder::new("extra").column("x", DataType::Int);
        t.push_row(vec![1i64.into()]).unwrap();
        db.register(t.finish().unwrap()).unwrap();
        db.sql("SELECT e.x FROM extra e").unwrap();
        assert_eq!(db.serve_stats().cache_misses, 1, "rebuilt engine");
    }

    #[test]
    fn prepare_and_execute_prepared() {
        let db = movie_db();
        let stmt = db
            .prepare(
                "SELECT t.id FROM title t JOIN movie_info_idx mi ON t.id = mi.movie_id \
                 WHERE t.year > 2000 AND mi.score > '7.0' OR t.year > 1980 AND mi.score > '8.0'",
            )
            .unwrap();
        assert_eq!(stmt.param_count(), 4);
        let r = db
            .execute_prepared(
                &stmt,
                &[
                    Value::Int(2000),
                    Value::from("7.0"),
                    Value::Int(1980),
                    Value::from("8.0"),
                ],
            )
            .unwrap();
        assert_eq!(r.row_count, 4, "query 1 verbatim");
        let r = db
            .execute_prepared(
                &stmt,
                &[
                    Value::Int(0),
                    Value::from("0"),
                    Value::Int(1),
                    Value::from("1"),
                ],
            )
            .unwrap();
        assert_eq!(r.row_count, 6, "all scored movies");
        assert_eq!(db.serve_stats().statements_prepared, 1);
    }

    #[test]
    fn standalone_server_from_database() {
        let db = movie_db();
        let srv = std::sync::Arc::new(db.serve());
        let mut handles = Vec::new();
        for _ in 0..3 {
            let srv = std::sync::Arc::clone(&srv);
            handles.push(std::thread::spawn(move || {
                srv.sql("SELECT t.id FROM title t WHERE t.year > 2000")
                    .unwrap()
                    .row_count
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 3);
        }
        assert_eq!(srv.outstanding(), 0);
    }

    #[test]
    fn default_planner_override() {
        let mut db = movie_db();
        db.set_default_planner(PlannerKind::BPushConj);
        let r = db
            .sql("SELECT t.id FROM title t WHERE t.year > 2000")
            .unwrap();
        assert_eq!(r.planner, PlannerKind::BPushConj);
        assert!(r.chosen.is_none(), "traditional plans have no subplanner");
    }
}
