//! Greedy join ordering (§4.2): "whichever join would produce the smallest
//! cardinality tagged relation is performed next (this is actually the
//! join ordering used for all our planners)".

use std::collections::BTreeSet;

use basilisk_catalog::Estimator;
use basilisk_expr::{ExprId, NodeKind, PredicateTree};
use basilisk_types::{BasiliskError, Result};

use crate::aplan::APlan;
use crate::query::JoinCond;

/// Estimate the fraction of `alias`'s rows that survive tagged filtering
/// with every predicate pushed down: a tuple is dropped only when the
/// overall predicate can no longer be satisfied no matter what the other
/// tables contribute. Computed by evaluating the predicate tree with this
/// table's atoms at their measured selectivities and every other table's
/// atom at its *optimistic* value (true under positive polarity, false
/// under negative).
pub fn local_survival(tree: &PredicateTree, est: &Estimator, alias: &str) -> Result<f64> {
    fn rec(
        tree: &PredicateTree,
        est: &Estimator,
        alias: &str,
        id: ExprId,
        positive: bool,
    ) -> Result<f64> {
        Ok(match tree.kind(id) {
            NodeKind::Atom(a) => {
                if a.table() == alias {
                    let s = est.atom_selectivity(a)?;
                    if positive {
                        s
                    } else {
                        1.0 - s
                    }
                } else {
                    1.0 // other tables can always cooperate
                }
            }
            NodeKind::Not(c) => rec(tree, est, alias, *c, !positive)?,
            NodeKind::And(cs) => {
                let mut s = 1.0;
                for &c in cs {
                    s *= rec(tree, est, alias, c, positive)?;
                }
                s
            }
            NodeKind::Or(cs) => {
                let mut miss = 1.0;
                for &c in cs {
                    miss *= 1.0 - rec(tree, est, alias, c, positive)?;
                }
                1.0 - miss
            }
        })
    }
    rec(tree, est, alias, tree.root(), true)
}

struct Component {
    plan: APlan,
    aliases: BTreeSet<String>,
    card: f64,
}

/// Build a join tree greedily from per-alias leaf plans and their
/// estimated cardinalities. The join graph must be connected and acyclic
/// (at most one condition between any two components).
pub fn greedy_join_tree(
    leaves: Vec<(String, APlan, f64)>,
    joins: &[JoinCond],
    est: &Estimator,
) -> Result<APlan> {
    let mut components: Vec<Component> = leaves
        .into_iter()
        .map(|(alias, plan, card)| Component {
            plan,
            aliases: BTreeSet::from([alias]),
            card,
        })
        .collect();
    if components.is_empty() {
        return Err(BasiliskError::Plan("no tables to join".into()));
    }

    while components.len() > 1 {
        // Candidate merges: for each join condition crossing two
        // components, the estimated output cardinality.
        let mut best: Option<(usize, usize, &JoinCond, f64)> = None;
        for cond in joins {
            let (la, ra) = cond.aliases();
            let ci = components.iter().position(|c| c.aliases.contains(la));
            let cj = components.iter().position(|c| c.aliases.contains(ra));
            let (Some(ci), Some(cj)) = (ci, cj) else {
                return Err(BasiliskError::Plan(format!(
                    "join condition {cond} references un-scanned alias"
                )));
            };
            if ci == cj {
                continue; // already merged (cycle edge) — checked below
            }
            let sel = est.join_selectivity(&cond.left, &cond.right)?;
            let card = components[ci].card * components[cj].card * sel;
            let better = match &best {
                None => true,
                Some((.., c)) => card < *c - 1e-12,
            };
            if better {
                best = Some((ci, cj, cond, card));
            }
        }
        let Some((ci, cj, cond, card)) = best else {
            return Err(BasiliskError::Plan(
                "join graph is disconnected (cross products are not planned)".into(),
            ));
        };
        // Detect a second condition between the same pair (cycle): this
        // system plans acyclic join graphs only.
        let crossing = joins
            .iter()
            .filter(|c| {
                let (la, ra) = c.aliases();
                (components[ci].aliases.contains(la) && components[cj].aliases.contains(ra))
                    || (components[ci].aliases.contains(ra) && components[cj].aliases.contains(la))
            })
            .count();
        if crossing > 1 {
            return Err(BasiliskError::Plan(format!(
                "cyclic join graph: {crossing} conditions connect the same components"
            )));
        }

        // Orient the condition so its left side is covered by the left
        // (ci) component.
        let oriented = if components[ci].aliases.contains(cond.aliases().0) {
            cond.clone()
        } else {
            JoinCond::new(cond.right.clone(), cond.left.clone())
        };
        let (lo, hi) = if ci < cj { (ci, cj) } else { (cj, ci) };
        let right_comp = components.remove(hi);
        let left_comp = components.remove(lo);
        // `remove` above may have reordered ci/cj; recover which is which.
        let (lc, rc) = if left_comp.aliases.contains(oriented.left.table.as_str()) {
            (left_comp, right_comp)
        } else {
            (right_comp, left_comp)
        };
        let mut aliases = lc.aliases;
        aliases.extend(rc.aliases);
        components.push(Component {
            plan: APlan::join(oriented, lc.plan, rc.plan),
            aliases,
            card: card.max(1.0),
        });
    }
    Ok(components.pop().expect("one component").plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use basilisk_catalog::Catalog;
    use basilisk_expr::{and, col, or, ColumnRef};
    use basilisk_storage::TableBuilder;
    use basilisk_types::DataType;

    /// Three tables: t0 (pk, 100 rows), t1/t2 (fk, 1000/10 rows).
    fn setup() -> (Catalog, Estimator) {
        let mut cat = Catalog::new();
        let mut b = TableBuilder::new("t0")
            .column("id", DataType::Int)
            .column("a", DataType::Float);
        for i in 0..100i64 {
            b.push_row(vec![i.into(), ((i % 10) as f64 / 10.0).into()])
                .unwrap();
        }
        cat.add_table(b.finish().unwrap()).unwrap();
        let mut b = TableBuilder::new("t1")
            .column("fid", DataType::Int)
            .column("a", DataType::Float);
        for i in 0..1000i64 {
            b.push_row(vec![(i % 100).into(), ((i % 10) as f64 / 10.0).into()])
                .unwrap();
        }
        cat.add_table(b.finish().unwrap()).unwrap();
        let mut b = TableBuilder::new("t2")
            .column("fid", DataType::Int)
            .column("a", DataType::Float);
        for i in 0..10i64 {
            b.push_row(vec![(i % 100).into(), ((i % 10) as f64 / 10.0).into()])
                .unwrap();
        }
        cat.add_table(b.finish().unwrap()).unwrap();
        let est = Estimator::new(
            &cat,
            &[
                ("t0".into(), "t0".into()),
                ("t1".into(), "t1".into()),
                ("t2".into(), "t2".into()),
            ],
        )
        .unwrap();
        (cat, est)
    }

    fn conds() -> Vec<JoinCond> {
        vec![
            JoinCond::new(ColumnRef::new("t0", "id"), ColumnRef::new("t1", "fid")),
            JoinCond::new(ColumnRef::new("t0", "id"), ColumnRef::new("t2", "fid")),
        ]
    }

    #[test]
    fn greedy_picks_smallest_join_first() {
        let (_cat, est) = setup();
        let leaves = vec![
            ("t0".to_string(), APlan::scan("t0"), 100.0),
            ("t1".to_string(), APlan::scan("t1"), 1000.0),
            ("t2".to_string(), APlan::scan("t2"), 10.0),
        ];
        let plan = greedy_join_tree(leaves, &conds(), &est).unwrap();
        // t0⋈t2 gives ~10 rows, t0⋈t1 gives ~1000: expect t2 joined first
        // (deeper in the tree).
        let APlan::Join { left, .. } = &plan else {
            panic!("root must be a join")
        };
        let inner_scans: Vec<&str> = left.scans();
        assert!(
            inner_scans.contains(&"t2"),
            "t2 should be in the first join: {inner_scans:?}"
        );
        assert_eq!(plan.scans().len(), 3);
    }

    #[test]
    fn join_cond_oriented_to_sides() {
        let (_cat, est) = setup();
        let leaves = vec![
            ("t1".to_string(), APlan::scan("t1"), 1000.0),
            ("t0".to_string(), APlan::scan("t0"), 100.0),
        ];
        let plan = greedy_join_tree(leaves, &conds()[..1], &est).unwrap();
        let APlan::Join { cond, left, .. } = &plan else {
            panic!()
        };
        assert!(
            left.scans().contains(&cond.left.table.as_str()),
            "left key column covered by left subplan"
        );
    }

    #[test]
    fn disconnected_graph_errors() {
        let (_cat, est) = setup();
        let leaves = vec![
            ("t0".to_string(), APlan::scan("t0"), 100.0),
            ("t1".to_string(), APlan::scan("t1"), 1000.0),
        ];
        assert!(greedy_join_tree(leaves, &[], &est).is_err());
    }

    #[test]
    fn single_table_passthrough() {
        let (_cat, est) = setup();
        let leaves = vec![("t0".to_string(), APlan::scan("t0"), 100.0)];
        let plan = greedy_join_tree(leaves, &[], &est).unwrap();
        assert_eq!(plan, APlan::scan("t0"));
    }

    #[test]
    fn local_survival_dnf() {
        let (_cat, est) = setup();
        // (t1.a<0.2 ∧ t2.a<0.2) ∨ (t1.a<0.4 ∧ t2.a<0.4)
        let e = or(vec![
            and(vec![col("t1", "a").lt(0.2), col("t2", "a").lt(0.2)]),
            and(vec![col("t1", "a").lt(0.4), col("t2", "a").lt(0.4)]),
        ]);
        let tree = PredicateTree::build(&e);
        // For t1: survive if a<0.2 (clause1 possible) or a<0.4 — i.e.
        // 1-(1-0.2)(1-0.4) = 0.52.
        let s = local_survival(&tree, &est, "t1").unwrap();
        assert!((s - 0.52).abs() < 1e-9, "got {s}");
        // t0 has no atoms: everything survives.
        let s = local_survival(&tree, &est, "t0").unwrap();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn local_survival_with_not() {
        let (_cat, est) = setup();
        // NOT (t1.a < 0.2): survival for t1 is 0.8.
        let e = basilisk_expr::not(col("t1", "a").lt(0.2));
        let tree = PredicateTree::build(&e);
        let s = local_survival(&tree, &est, "t1").unwrap();
        assert!((s - 0.8).abs() < 1e-9, "got {s}");
        // NOT over another table's atom: optimistic 1.0.
        let s = local_survival(&tree, &est, "t2").unwrap();
        assert!((s - 1.0).abs() < 1e-12);
    }
}
