// Fixture: crate root of an unsafe-free crate without the forbid
// attribute — `forbid-unsafe` must fire.

pub fn entirely_safe() {}
