//! The 33 disjunctive query groups (§5.1).
//!
//! JOB sorts its 113 queries into 33 groups; all queries in a group share
//! tables and join conditions and differ only in their filter predicates,
//! so the paper combines each group by disjunction:
//!
//! > "Combining queries 20a and 20c would give us one query which searches
//! > for superhero movies either produced after 1950 with a character
//! > named 'Iron Man' or produced after 2000 with any character with the
//! > word 'Man' in their name."
//!
//! This module generates 33 such combined queries over the synthetic IMDB
//! stand-in: each group picks a table combination (a subtree of the star
//! around `title`), one or two *theme* conjuncts shared by every variant,
//! and 2–4 variants of extra predicates; the final predicate is
//! `OR_v (theme ∧ variant_v)` — exactly the shared-subexpression DNF shape
//! §5.1 relies on (and the input `factor_common_conjuncts` turns into the
//! BPushConj-comparable AND-rooted form for Fig. 3b–d).

use basilisk_expr::{and, col, lit, or, ColumnRef, Expr};
use basilisk_plan::Query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::imdb::{CHAR_MARKERS, INFO_TYPE_RATING, KEYWORD_MARKERS, TITLE_MARKERS};

/// One combined disjunctive query group.
#[derive(Debug, Clone)]
pub struct JobQuery {
    /// Group number, 1..=33.
    pub group: usize,
    /// Short description of the group's shape.
    pub label: String,
    /// The combined disjunctive query (OR of variants, theme repeated in
    /// each clause).
    pub query: Query,
    /// Number of variants combined.
    pub variants: usize,
}

/// Which fact-table spokes a group joins, beyond `title`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Combo {
    mi: bool, // movie_info_idx (ratings)
    mk: bool, // movie_keyword + keyword
    mc: bool, // movie_companies + company_name
    ci: bool, // cast_info + char_name
}

const COMBOS: [Combo; 8] = [
    Combo {
        mi: true,
        mk: false,
        mc: false,
        ci: false,
    },
    Combo {
        mi: true,
        mk: true,
        mc: false,
        ci: false,
    },
    Combo {
        mi: false,
        mk: false,
        mc: true,
        ci: false,
    },
    Combo {
        mi: true,
        mk: false,
        mc: true,
        ci: false,
    },
    Combo {
        mi: false,
        mk: true,
        mc: false,
        ci: true,
    },
    Combo {
        mi: true,
        mk: false,
        mc: false,
        ci: true,
    },
    Combo {
        mi: false,
        mk: true,
        mc: true,
        ci: false,
    },
    Combo {
        mi: true,
        mk: true,
        mc: false,
        ci: true,
    },
];

/// Generate the 33 combined queries with a fixed seed.
pub fn job_queries(seed: u64) -> Vec<JobQuery> {
    (1..=33).map(|g| job_query(g, seed)).collect()
}

/// Generate one group's combined query.
pub fn job_query(group: usize, seed: u64) -> JobQuery {
    assert!((1..=33).contains(&group));
    let mut rng = StdRng::seed_from_u64(seed ^ (group as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let combo = COMBOS[(group - 1) % COMBOS.len()];

    // FROM / JOIN skeleton.
    let mut aliases: Vec<(String, String)> = vec![("t".into(), "title".into())];
    let mut query = Query::new(vec![]); // rebuilt below
    let mut joins: Vec<(ColumnRef, ColumnRef)> = Vec::new();
    if combo.mi {
        aliases.push(("mi_idx".into(), "movie_info_idx".into()));
        joins.push((
            ColumnRef::new("t", "id"),
            ColumnRef::new("mi_idx", "movie_id"),
        ));
    }
    if combo.mk {
        aliases.push(("mk".into(), "movie_keyword".into()));
        aliases.push(("k".into(), "keyword".into()));
        joins.push((ColumnRef::new("t", "id"), ColumnRef::new("mk", "movie_id")));
        joins.push((
            ColumnRef::new("mk", "keyword_id"),
            ColumnRef::new("k", "id"),
        ));
    }
    if combo.mc {
        aliases.push(("mc".into(), "movie_companies".into()));
        aliases.push(("cn".into(), "company_name".into()));
        joins.push((ColumnRef::new("t", "id"), ColumnRef::new("mc", "movie_id")));
        joins.push((
            ColumnRef::new("mc", "company_id"),
            ColumnRef::new("cn", "id"),
        ));
    }
    if combo.ci {
        aliases.push(("ci".into(), "cast_info".into()));
        aliases.push(("chn".into(), "char_name".into()));
        joins.push((ColumnRef::new("t", "id"), ColumnRef::new("ci", "movie_id")));
        joins.push((
            ColumnRef::new("ci", "person_role_id"),
            ColumnRef::new("chn", "id"),
        ));
    }

    // Theme conjuncts: shared by every variant. These are the JOB-style
    // highly selective "theme definition" predicates §5.1 describes.
    let mut theme: Vec<Expr> = Vec::new();
    if combo.mi {
        theme.push(col("mi_idx", "info_type_id").eq(INFO_TYPE_RATING));
    }
    if combo.mk && rng.gen_bool(0.7) {
        let kw = KEYWORD_MARKERS[rng.gen_range(0..KEYWORD_MARKERS.len())];
        theme.push(col("k", "keyword").eq(kw));
    }
    if combo.mc && rng.gen_bool(0.6) {
        theme.push(col("cn", "country_code").eq("[us]"));
    }
    if theme.is_empty() || rng.gen_bool(0.3) {
        theme.push(col("t", "kind_id").eq(1i64));
    }

    // Variants: 2–4 conjunctions of extra predicates.
    let n_variants = 2 + (group % 3);
    let mut variants: Vec<Expr> = Vec::new();
    for v in 0..n_variants {
        let mut conj: Vec<Expr> = Vec::new();
        // Always a year range (ranges differ per variant so subsumption
        // between them matters, like Query 1's year > 2000 / year > 1980).
        let year = 1960 + rng.gen_range(0..12) * 5 + v as i64 * 5;
        conj.push(col("t", "production_year").gt(year.min(2015)));
        if combo.mi {
            // String-compared ratings, tighter for older variants —
            // mirrors Query 1's score > '7.0' vs score > '8.0'.
            let rating = 5.0 + rng.gen::<f64>() * 3.0 + v as f64 * 0.4;
            conj.push(col("mi_idx", "info").gt(lit(format!("{:.1}", rating.min(9.5)))));
        }
        match rng.gen_range(0..4) {
            0 => {
                let m = TITLE_MARKERS[rng.gen_range(0..TITLE_MARKERS.len())];
                conj.push(col("t", "title").ilike(&format!("%{m}%")));
            }
            1 if combo.ci => {
                let m = CHAR_MARKERS[rng.gen_range(0..CHAR_MARKERS.len())];
                conj.push(col("chn", "name").like(&format!("%{m}%")));
            }
            2 if combo.mc => {
                if rng.gen_bool(0.5) {
                    conj.push(col("mc", "note").is_null());
                } else {
                    conj.push(col("mc", "note").like("%co-production%"));
                }
            }
            3 if combo.mk => {
                let a = KEYWORD_MARKERS[rng.gen_range(0..KEYWORD_MARKERS.len())];
                let b = KEYWORD_MARKERS[rng.gen_range(0..KEYWORD_MARKERS.len())];
                conj.push(col("k", "keyword").in_list(vec![lit(a), lit(b)]));
            }
            _ => {
                conj.push(col("t", "production_year").le(2020i64));
            }
        }
        let mut clause = theme.clone();
        clause.extend(conj);
        variants.push(and(clause));
    }

    query.aliases = aliases;
    for (l, r) in joins {
        query = query.join(l, r);
    }
    query = query.filter(or(variants.clone()));

    JobQuery {
        group,
        label: format!(
            "group {group}: {}{}{}{} · {n_variants} variants",
            if combo.mi { "mi " } else { "" },
            if combo.mk { "mk+k " } else { "" },
            if combo.mc { "mc+cn " } else { "" },
            if combo.ci { "ci+chn " } else { "" },
        ),
        query,
        variants: n_variants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imdb::{generate_imdb, ImdbConfig};
    use basilisk_catalog::Catalog;
    use basilisk_expr::factor_common_conjuncts;
    use basilisk_plan::{PlannerKind, QuerySession};

    #[test]
    fn thirty_three_valid_groups() {
        let queries = job_queries(42);
        assert_eq!(queries.len(), 33);
        for q in &queries {
            q.query
                .validate()
                .unwrap_or_else(|e| panic!("group {} invalid: {e}\n{:?}", q.group, q.query));
            assert!(q.variants >= 2);
            let p = q.query.predicate.as_ref().unwrap();
            assert!(matches!(p, Expr::Or(cs) if cs.len() == q.variants));
        }
    }

    #[test]
    fn deterministic() {
        let a = job_queries(42);
        let b = job_queries(42);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                format!("{:?}", x.query.predicate),
                format!("{:?}", y.query.predicate)
            );
        }
    }

    #[test]
    fn clauses_share_theme_so_factoring_applies() {
        for q in job_queries(42) {
            let p = q.query.predicate.as_ref().unwrap();
            let f = factor_common_conjuncts(p);
            assert!(
                matches!(&f, Expr::And(_)),
                "group {} should factor to an AND root (shared theme): {p}",
                q.group
            );
        }
    }

    /// End-to-end: a few groups run correctly on a small dataset and all
    /// planners agree.
    #[test]
    fn planners_agree_on_sample_groups() {
        let mut cat = Catalog::new();
        for t in generate_imdb(&ImdbConfig {
            scale: 0.04,
            seed: 11,
        })
        .unwrap()
        {
            cat.add_table(t).unwrap();
        }
        let mut nonempty = 0;
        for q in job_queries(42).into_iter().step_by(7) {
            let session = QuerySession::new(&cat, q.query.clone()).unwrap();
            let reference = session
                .execute(&session.plan(PlannerKind::BDisj).unwrap())
                .unwrap()
                .canonical_tuples();
            for kind in [PlannerKind::TCombined, PlannerKind::BPushConj] {
                let out = session.execute(&session.plan(kind).unwrap()).unwrap();
                assert_eq!(
                    out.canonical_tuples(),
                    reference,
                    "group {} planner {kind} disagrees",
                    q.group
                );
            }
            if !reference.is_empty() {
                nonempty += 1;
            }
        }
        assert!(nonempty >= 2, "most sampled groups return rows");
    }

    /// The factored (AND-rooted) form returns the same rows as the DNF.
    #[test]
    fn factored_form_equivalent() {
        let mut cat = Catalog::new();
        for t in generate_imdb(&ImdbConfig {
            scale: 0.03,
            seed: 13,
        })
        .unwrap()
        {
            cat.add_table(t).unwrap();
        }
        for q in job_queries(42).into_iter().step_by(11) {
            let dnf = q.query.clone();
            let mut fact = q.query.clone();
            fact.predicate = Some(factor_common_conjuncts(dnf.predicate.as_ref().unwrap()));
            let s1 = QuerySession::new(&cat, dnf).unwrap();
            let s2 = QuerySession::new(&cat, fact).unwrap();
            let r1 = s1
                .execute(&s1.plan(PlannerKind::TCombined).unwrap())
                .unwrap()
                .canonical_tuples();
            let r2 = s2
                .execute(&s2.plan(PlannerKind::BPushConj).unwrap())
                .unwrap()
                .canonical_tuples();
            assert_eq!(r1, r2, "group {}", q.group);
        }
    }
}
