//! The tagged operators (§2.2–§2.5).

use basilisk_exec::{
    combine, eval_mask_parallel, partitioned_probe, project, FxHashMap, IdxRelation, JoinTable,
    RelProvider, TableSet,
};
use basilisk_expr::eval::{eval_node_mask, profile_atoms, AtomProfile};
use basilisk_expr::{ColumnRef, PredicateTree};
use basilisk_sched::WorkerPool;
use basilisk_storage::Column;
use basilisk_types::{BasiliskError, Bitmap, MaskArena, Result};

use crate::relation::TaggedRelation;
use crate::tagmap::{FilterTagMap, JoinTagMap, ProjectionTags};

/// Tagged filter (§2.2, implementation details §2.5.2).
///
/// * The predicate is evaluated **once** over the union of all matched
///   slices' bitmaps ("fewer I/O calls to read the underlying data values
///   than evaluating the predicate expression separately for each
///   relational slice") — directly over the base relation under the union
///   selection bitmap. No sub-relation is materialized and no tuples are
///   moved; the union bitmap *is* the selection vector.
/// * The index relation is **not** modified; only the tag → bitmap map
///   changes ("even tuples which no longer belong to any relational slice
///   remain in the relation").
/// * Each evaluated slice's tuples are routed to its pos/neg/unk outputs
///   with three word-parallel bitmap intersections against the result
///   [`TruthMask`](basilisk_types::TruthMask).
/// * Slices without a matching entry pass through untouched; entries whose
///   every output was pruned drop their slice without evaluation.
///
/// All bitmaps — the union selection, the evaluation mask, and the output
/// slices themselves — are checked out of `arena`; scratch is recycled
/// before returning and the output slices go back to the pool when the
/// executor consumes the returned relation (see
/// [`TaggedRelation::recycle`]).
pub fn tagged_filter(
    tables: &TableSet,
    input: &TaggedRelation,
    tree: &PredicateTree,
    map: &FilterTagMap,
    arena: &MaskArena,
) -> Result<TaggedRelation> {
    tagged_filter_impl(tables, input, tree, map, arena, None)
}

/// [`tagged_filter`] with the predicate evaluated morsel-parallel on
/// `pool`'s workers: each worker evaluates its morsels of the
/// union-of-slices selection into masks from its private arena, the
/// coordinator stitches the disjoint word ranges back into one
/// relation-length mask, and the per-slice pos/neg/unk routing happens
/// on the stitched mask exactly as in the serial operator — so output
/// slices are bit-for-bit identical. Falls back to the serial path when
/// the pool or the relation is too small to fan out.
pub fn tagged_filter_par(
    tables: &TableSet,
    input: &TaggedRelation,
    tree: &PredicateTree,
    map: &FilterTagMap,
    arena: &MaskArena,
    pool: &WorkerPool,
) -> Result<TaggedRelation> {
    tagged_filter_impl(tables, input, tree, map, arena, Some(pool))
}

fn tagged_filter_impl(
    tables: &TableSet,
    input: &TaggedRelation,
    tree: &PredicateTree,
    map: &FilterTagMap,
    arena: &MaskArena,
    pool: Option<&WorkerPool>,
) -> Result<TaggedRelation> {
    let relation = input.relation().clone();
    let n = relation.len();

    // Split slices into pass-through / evaluated / dropped.
    let mut out_slices: Vec<(crate::Tag, Bitmap)> = Vec::new();
    let mut evaluated: Vec<(usize, &crate::tagmap::FilterTagEntry)> = Vec::new();
    let mut union = arena.bitmap(n);
    for (i, (tag, bitmap)) in input.slices().iter().enumerate() {
        match map.entry_for(tag) {
            None => push_slice(arena, &mut out_slices, tag, arena.bitmap_copy(bitmap)),
            Some(e) if e.pos.is_none() && e.neg.is_none() && e.unk.is_none() => {
                // Dead entry: Precept 1 killed every branch — drop the
                // slice without touching the data.
            }
            Some(e) => {
                evaluated.push((i, e));
                union.union_with(bitmap);
            }
        }
    }

    if !union.is_zero() {
        // Evaluate once over the union, straight off the base relation —
        // morsel-parallel when a pool is supplied.
        let provider = RelProvider::new(tables, &relation);
        let mask = match pool {
            Some(pool) => eval_mask_parallel(tree, map.node, &provider, &union, arena, pool),
            None => eval_node_mask(tree, map.node, &provider, &union, arena),
        };
        let mask = match mask {
            Ok(m) => m,
            Err(e) => {
                recycle_slices(arena, out_slices);
                arena.recycle_bitmap(union);
                return Err(e);
            }
        };

        for (slice_idx, entry) in evaluated {
            let (_, bitmap) = &input.slices()[slice_idx];
            let mut pos_bm = arena.bitmap(n);
            let mut neg_bm = arena.bitmap(n);
            let mut unk_bm = arena.bitmap(n);
            mask.split_under_into(bitmap, &mut pos_bm, &mut neg_bm, &mut unk_bm);
            push_or_recycle(arena, &mut out_slices, entry.pos.as_ref(), pos_bm);
            push_or_recycle(arena, &mut out_slices, entry.neg.as_ref(), neg_bm);
            push_or_recycle(arena, &mut out_slices, entry.unk.as_ref(), unk_bm);
        }
        arena.recycle_mask(mask);
    }
    arena.recycle_bitmap(union);

    Ok(TaggedRelation::from_slices(relation, out_slices))
}

/// Keep `bm` as the `tag` output slice, or hand it back to the pool when
/// the tag map pruned that outcome or no tuple landed in it (empty slices
/// are dropped by `from_slices` anyway; recycling here keeps the buffer).
fn push_or_recycle(
    arena: &MaskArena,
    out: &mut Vec<(crate::Tag, Bitmap)>,
    tag: Option<&crate::Tag>,
    bm: Bitmap,
) {
    match tag {
        Some(tag) if !bm.is_zero() => push_slice(arena, out, tag, bm),
        _ => arena.recycle_bitmap(bm),
    }
}

/// Push a `(tag, bitmap)` output slice, merging into an existing slice
/// with the same tag (generalization maps several inputs onto one output
/// tag). Merging here — rather than in `TaggedRelation::add_slice` — lets
/// the merged-away buffer go back to the pool instead of being dropped.
fn push_slice(
    arena: &MaskArena,
    out: &mut Vec<(crate::Tag, Bitmap)>,
    tag: &crate::Tag,
    bm: Bitmap,
) {
    match out.iter_mut().find(|(t, _)| t == tag) {
        Some((_, existing)) => {
            existing.union_with(&bm);
            arena.recycle_bitmap(bm);
        }
        None => out.push((tag.clone(), bm)),
    }
}

fn recycle_slices(arena: &MaskArena, slices: Vec<(crate::Tag, Bitmap)>) {
    for (_, bm) in slices {
        arena.recycle_bitmap(bm);
    }
}

/// Profile the atoms a [`tagged_filter`] over `map` evaluates: rebuild
/// the union-of-evaluated-slices selection exactly as the filter does
/// (pass-through and dead entries excluded — those slices are the
/// short-circuited lanes) and run
/// [`profile_atoms`](basilisk_expr::eval::profile_atoms) on the filter's
/// subtree. A tracing-only path that re-evaluates the atoms; callers
/// gate it on the request being traced.
pub fn filter_atom_profiles(
    tables: &TableSet,
    input: &TaggedRelation,
    tree: &PredicateTree,
    map: &FilterTagMap,
    arena: &MaskArena,
) -> Result<Vec<AtomProfile>> {
    let relation = input.relation();
    let mut union = arena.bitmap(relation.len());
    for (tag, bitmap) in input.slices() {
        match map.entry_for(tag) {
            Some(e) if e.pos.is_some() || e.neg.is_some() || e.unk.is_some() => {
                union.union_with(bitmap);
            }
            _ => {}
        }
    }
    let provider = RelProvider::new(tables, relation);
    let out = profile_atoms(tree, map.node, &provider, &union, arena);
    arena.recycle_bitmap(union);
    out
}

/// Tagged hash join (§2.3, implementation §2.5.3).
///
/// One hash table is built over the union of every *participating* left
/// slice ("rather than building a separate hash table for each relational
/// slice, Basilisk builds one giant hash table for all the relational
/// slices"); hash values carry the tuple's slice so probes can dispatch
/// through the `(left-slice, right-slice) → out-tag` table. Slices without
/// any tag-map entry are discarded.
pub fn tagged_join(
    tables: &TableSet,
    left: &TaggedRelation,
    right: &TaggedRelation,
    left_key: &ColumnRef,
    right_key: &ColumnRef,
    map: &JoinTagMap,
    arena: &MaskArena,
) -> Result<TaggedRelation> {
    tagged_join_impl(tables, left, right, left_key, right_key, map, arena, None)
}

/// [`tagged_join`] with a **parallel partitioned probe** over the shared
/// single-build hash table: the build side (union of participating left
/// slices) is built once serially, the participating right positions are
/// split into morsel-sized chunks probed on `pool`'s workers, and each
/// chunk's `(left, right, out-slice)` match triples are concatenated in
/// chunk order — the same order the serial probe loop emits, so the
/// joined relation and its tag slices are identical. Falls back to the
/// serial path when the probe side is too small to fan out.
#[allow(clippy::too_many_arguments)]
pub fn tagged_join_par(
    tables: &TableSet,
    left: &TaggedRelation,
    right: &TaggedRelation,
    left_key: &ColumnRef,
    right_key: &ColumnRef,
    map: &JoinTagMap,
    arena: &MaskArena,
    pool: &WorkerPool,
) -> Result<TaggedRelation> {
    tagged_join_impl(
        tables,
        left,
        right,
        left_key,
        right_key,
        map,
        arena,
        Some(pool),
    )
}

#[allow(clippy::too_many_arguments)]
fn tagged_join_impl(
    tables: &TableSet,
    left: &TaggedRelation,
    right: &TaggedRelation,
    left_key: &ColumnRef,
    right_key: &ColumnRef,
    map: &JoinTagMap,
    arena: &MaskArena,
    pool: Option<&WorkerPool>,
) -> Result<TaggedRelation> {
    if !left.relation().covers(&left_key.table) || !right.relation().covers(&right_key.table) {
        return Err(BasiliskError::Exec(format!(
            "join keys {left_key} / {right_key} not covered by inputs"
        )));
    }

    // Resolve tag-map entries to slice indices (entries naming tags whose
    // slices are empty/absent are simply unreachable).
    let left_slot: FxHashMap<&crate::Tag, u16> = left
        .slices()
        .iter()
        .enumerate()
        .map(|(i, (t, _))| (t, i as u16))
        .collect();
    let right_slot: FxHashMap<&crate::Tag, u16> = right
        .slices()
        .iter()
        .enumerate()
        .map(|(i, (t, _))| (t, i as u16))
        .collect();

    let mut out_tags: Vec<crate::Tag> = Vec::new();
    let mut pair_to_out: FxHashMap<(u16, u16), u16> = FxHashMap::default();
    for e in &map.entries {
        let (Some(&ls), Some(&rs)) = (left_slot.get(&e.left), right_slot.get(&e.right)) else {
            continue;
        };
        let out_idx = match out_tags.iter().position(|t| t == &e.out) {
            Some(i) => i as u16,
            None => {
                out_tags.push(e.out.clone());
                (out_tags.len() - 1) as u16
            }
        };
        pair_to_out.insert((ls, rs), out_idx);
    }

    // Participating tuples per side.
    let mut left_union = arena.bitmap(left.num_tuples());
    let mut right_union = arena.bitmap(right.num_tuples());
    for &(ls, rs) in pair_to_out.keys() {
        left_union.union_with(&left.slices()[ls as usize].1);
        right_union.union_with(&right.slices()[rs as usize].1);
    }

    let left_membership = left.slice_membership();
    let right_membership = right.slice_membership();

    // Build/probe preparation. One shared hash table over all
    // participating left slices (§2.5.3's "one giant hash table"), CSR
    // layout keyed with FxHash: probing a key yields a contiguous slice
    // of left positions, no per-key Vec allocs. The table interns key
    // values, so the build keys recycle right away.
    //
    // When both sides are big enough to fan out, the **build side ships
    // to the pool as a schedulable task**: one worker decodes the left
    // union, gathers build keys and builds the table while a second
    // gathers the probe-side keys — the two halves overlap each other
    // (and any other region in flight). Each task draws scratch from its
    // own worker arena; the build task recycles everything in-task (only
    // the interned table escapes), while the probe task's buffers come
    // back tagged with their producing worker (`probe_home`) and are
    // recycled there once the probe is done.
    let overlaps = pool.is_some_and(|p| {
        p.would_parallelize(left.num_tuples()) && p.would_parallelize(right.num_tuples())
    });
    let (table, right_positions, right_keys, probe_home) = if overlaps {
        let p = pool.expect("overlap implies a pool");
        let pair = p.run_pair(
            |ctx| {
                let mut pos = ctx.arena.indices();
                left_union.indices_into(&mut pos);
                let keys = match gather_keys(tables, left.relation(), left_key, &pos, ctx.arena) {
                    Ok(k) => k,
                    Err(e) => {
                        ctx.arena.recycle_indices(pos);
                        return Err(e);
                    }
                };
                let table = JoinTable::build(&keys, |j| pos[j]);
                keys.recycle(ctx.arena);
                ctx.arena.recycle_indices(pos);
                Ok(table)
            },
            |ctx| {
                let mut pos = ctx.arena.indices();
                right_union.indices_into(&mut pos);
                match gather_keys(tables, right.relation(), right_key, &pos, ctx.arena) {
                    Ok(keys) => Ok((pos, keys)),
                    Err(e) => {
                        ctx.arena.recycle_indices(pos);
                        Err(e)
                    }
                }
            },
            |_a, _table| {},
            |a, (pos, keys)| {
                keys.recycle(a);
                a.recycle_indices(pos);
            },
        );
        arena.recycle_bitmap(left_union);
        arena.recycle_bitmap(right_union);
        let ((_wt, table), (wp, (pos, keys))) = pair?;
        (table, pos, keys, Some(wp))
    } else {
        // Serial preparation: pooled decode buffers from the session
        // arena; the unions are dead once decoded.
        let mut left_positions = arena.indices();
        let mut right_positions = arena.indices();
        left_union.indices_into(&mut left_positions);
        right_union.indices_into(&mut right_positions);
        arena.recycle_bitmap(left_union);
        arena.recycle_bitmap(right_union);
        let keys =
            gather_keys(tables, left.relation(), left_key, &left_positions, arena).and_then(|lk| {
                match gather_keys(tables, right.relation(), right_key, &right_positions, arena) {
                    Ok(rk) => Ok((lk, rk)),
                    Err(e) => {
                        lk.recycle(arena);
                        Err(e)
                    }
                }
            });
        let (left_keys, right_keys) = match keys {
            Ok(k) => k,
            Err(e) => {
                // Failed executions must not shrink the pool.
                arena.recycle_indices(left_positions);
                arena.recycle_indices(right_positions);
                return Err(e);
            }
        };
        let table = JoinTable::build(&left_keys, |j| left_positions[j]);
        left_keys.recycle(arena);
        arena.recycle_indices(left_positions);
        (table, right_positions, right_keys, None)
    };
    // Recycle the probe-side buffers into the arena that produced them.
    let recycle_probe = |pos, keys: Column| match probe_home {
        Some(w) => pool.expect("probe_home implies a pool").with_arena(w, |a| {
            keys.recycle(a);
            a.recycle_indices(pos);
        }),
        None => {
            keys.recycle(arena);
            arena.recycle_indices(pos);
        }
    };

    // The probe half, over one contiguous chunk of participating right
    // positions: both the serial path (one full-range chunk) and each
    // parallel worker run exactly this loop, so chunk outputs
    // concatenated in range order equal the serial output.
    let probe_chunk = |range: std::ops::Range<usize>,
                       left_sel: &mut Vec<u32>,
                       right_sel: &mut Vec<u32>,
                       tuple_out: &mut Vec<u32>| {
        for (j, &rpos) in right_positions[range.clone()].iter().enumerate() {
            let Some(k) = basilisk_exec::join_key(&right_keys, range.start + j) else {
                continue;
            };
            let matches = table.probe(&k);
            if matches.is_empty() {
                continue;
            }
            let rs = right_membership[rpos as usize].expect("participating tuple has a slice");
            for &lpos in matches {
                let ls = left_membership[lpos as usize].expect("participating tuple has a slice");
                if let Some(&out_idx) = pair_to_out.get(&(ls, rs)) {
                    left_sel.push(lpos);
                    right_sel.push(rpos);
                    tuple_out.push(out_idx as u32);
                }
            }
        }
    };

    let mut left_sel = arena.indices();
    let mut right_sel = arena.indices();
    // Per-tuple output-slice index, widened to u32 so it can live in a
    // pooled index buffer like the selection vectors beside it.
    let mut tuple_out = arena.indices();
    let fanned_out = match pool {
        None => Ok(false),
        Some(pool) => partitioned_probe(
            pool,
            right_positions.len(),
            |worker_arena, range| {
                let mut ls = worker_arena.indices();
                let mut rs = worker_arena.indices();
                let mut to = worker_arena.indices();
                probe_chunk(range, &mut ls, &mut rs, &mut to);
                Ok((ls, rs, to))
            },
            |worker_arena, (ls, rs, to)| {
                worker_arena.recycle_indices(ls);
                worker_arena.recycle_indices(rs);
                worker_arena.recycle_indices(to);
            },
            |worker, (ls, rs, to), pool| {
                left_sel.extend_from_slice(&ls);
                right_sel.extend_from_slice(&rs);
                tuple_out.extend_from_slice(&to);
                pool.with_arena(worker, |a| {
                    a.recycle_indices(ls);
                    a.recycle_indices(rs);
                    a.recycle_indices(to);
                });
            },
        ),
    };
    let fanned_out = match fanned_out {
        Ok(f) => f,
        Err(e) => {
            arena.recycle_indices(left_sel);
            arena.recycle_indices(right_sel);
            arena.recycle_indices(tuple_out);
            recycle_probe(right_positions, right_keys);
            return Err(e);
        }
    };
    if !fanned_out {
        probe_chunk(
            0..right_positions.len(),
            &mut left_sel,
            &mut right_sel,
            &mut tuple_out,
        );
    }
    recycle_probe(right_positions, right_keys);

    let relation = combine(
        left.relation(),
        right.relation(),
        &left_sel,
        &right_sel,
        arena,
    );
    arena.recycle_indices(left_sel);
    arena.recycle_indices(right_sel);
    let mut bitmaps: Vec<Bitmap> = out_tags
        .iter()
        .map(|_| arena.bitmap(relation.len()))
        .collect();
    for (tuple, &out_idx) in tuple_out.iter().enumerate() {
        bitmaps[out_idx as usize].set(tuple);
    }
    arena.recycle_indices(tuple_out);
    let mut slices: Vec<(crate::Tag, Bitmap)> = Vec::with_capacity(out_tags.len());
    for (tag, bm) in out_tags.into_iter().zip(bitmaps) {
        // Empty output slices would be dropped by `from_slices`; recycle
        // their buffers instead of leaking them from the pool.
        if bm.is_zero() {
            arena.recycle_bitmap(bm);
        } else {
            slices.push((tag, bm));
        }
    }
    Ok(TaggedRelation::from_slices(relation, slices))
}

/// Gather the key *values* at the given relation positions. The
/// positions → base-row translation runs through the word-parallel
/// gather kernel into pooled index scratch, and the materialized value
/// [`Column`] draws its buffers from the arena's value pool — the caller
/// recycles it once the build/probe consuming it is done.
fn gather_keys(
    tables: &TableSet,
    relation: &IdxRelation,
    key: &ColumnRef,
    positions: &[u32],
    arena: &MaskArena,
) -> Result<Column> {
    let idx_col = relation.col(&key.table)?;
    let mut rows = arena.indices();
    basilisk_types::gather_u32_into(idx_col, positions, &mut rows);
    let out = tables.column(key).and_then(|h| h.gather_in(&rows, arena));
    arena.recycle_indices(rows);
    out
}

/// Final tag-based selection before projection (§2.4): keep only tuples in
/// slices the projection admits. The union bitmap and the index decode
/// buffer are pooled scratch, recycled before returning.
pub fn tagged_select_final(
    rel: &TaggedRelation,
    allowed: &ProjectionTags,
    arena: &MaskArena,
) -> IdxRelation {
    let union = rel.union_of_in(&allowed.allowed, arena);
    let out = rel.relation().select_bitmap_in(&union, arena);
    arena.recycle_bitmap(union);
    out
}

/// Tag-filtered projection: materialize `columns` for admitted tuples.
/// The intermediate selected relation is pooled scratch here (only the
/// materialized values escape), so it is recycled before returning.
pub fn tagged_project(
    tables: &TableSet,
    rel: &TaggedRelation,
    allowed: &ProjectionTags,
    columns: &[ColumnRef],
    arena: &MaskArena,
) -> Result<Vec<(ColumnRef, Column)>> {
    let selected = tagged_select_final(rel, allowed, arena);
    let out = project(tables, &selected, columns);
    selected.recycle(arena);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::Tag;
    use crate::tagmap::{TagMapBuilder, TagMapStrategy};
    use basilisk_exec::{filter as plain_filter, hash_join, JoinSide};
    use basilisk_expr::{and, col, or, Expr, PredicateTree};
    use basilisk_storage::{Table, TableBuilder};
    use basilisk_types::{DataType, Value};
    use std::sync::Arc;

    fn arena() -> MaskArena {
        MaskArena::new()
    }

    /// The exact data from the paper's Examples 1–4.
    fn title() -> Arc<Table> {
        let mut b = TableBuilder::new("title")
            .column("title", DataType::Str)
            .column("year", DataType::Int)
            .column("id", DataType::Int);
        for (t, y, id) in [
            ("The Dark Knight", 2008, 1),
            ("Evolution", 2001, 2),
            ("The Shawshank Redemption", 1994, 3),
            ("Pulp Fiction", 1994, 4),
            ("The Godfather", 1972, 5),
            ("Beetlejuice", 1988, 6),
            ("Avatar", 2009, 7),
        ] {
            b.push_row(vec![t.into(), (y as i64).into(), (id as i64).into()])
                .unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    fn mi_idx() -> Arc<Table> {
        let mut b = TableBuilder::new("mi_idx")
            .column("score", DataType::Str)
            .column("movie_id", DataType::Int);
        for (s, mid) in [
            ("9.0", 1),
            ("9.3", 3),
            ("8.9", 4),
            ("9.2", 5),
            ("7.5", 6),
            ("7.9", 7),
        ] {
            b.push_row(vec![s.into(), (mid as i64).into()]).unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    fn tset() -> TableSet {
        TableSet::from_tables(vec![("t".into(), title()), ("mi_idx".into(), mi_idx())])
    }

    fn query1() -> Expr {
        or(vec![
            and(vec![
                col("t", "year").gt(2000i64),
                col("mi_idx", "score").gt("7.0"),
            ]),
            and(vec![
                col("t", "year").gt(1980i64),
                col("mi_idx", "score").gt("8.0"),
            ]),
        ])
    }

    fn find(tree: &PredicateTree, s: &str) -> basilisk_expr::ExprId {
        tree.atom_ids()
            .into_iter()
            .find(|&id| tree.display(id) == s)
            .unwrap()
    }

    /// The complete Figure 1 pipeline: filters on both base tables, the
    /// tagged join, the projection — verified against the paper's
    /// Examples 1–4 row sets and against traditional execution.
    #[test]
    fn figure1_full_pipeline() {
        let ts = tset();
        let tree = PredicateTree::build(&query1());
        let b = TagMapBuilder::new(&tree, TagMapStrategy::Generalized { use_closure: true });
        let p1 = find(&tree, "t.year > 2000");
        let p2 = find(&tree, "t.year > 1980");
        let p3 = find(&tree, "mi_idx.score > '8.0'");
        let p4 = find(&tree, "mi_idx.score > '7.0'");

        // Left: title → P1 → P2.
        let mut left = TaggedRelation::base(IdxRelation::base("t", 7));
        let mut tags = vec![Tag::empty()];
        for node in [p1, p2] {
            let m = b.filter_map(node, &tags);
            tags = b.filter_output_tags(&m, &tags);
            left = tagged_filter(&ts, &left, &tree, &m, &arena()).unwrap();
            assert!(left.check_mutually_exclusive());
        }
        // Example 2: {year>2000} slice = rows {Dark Knight, Evolution,
        // Avatar} (ids 0,1,6); {…,year>1980=T} slice = rows {Shawshank,
        // Pulp Fiction, Beetlejuice} (ids 2,3,5). Godfather (1972) gone.
        assert_eq!(left.num_slices(), 2);
        assert_eq!(left.num_tagged_tuples(), 6);
        let sizes: Vec<usize> = left
            .slices()
            .iter()
            .map(|(_, bm)| bm.count_ones())
            .collect();
        assert_eq!(sizes, vec![3, 3]);
        let left_tags = tags.clone();

        // Right: mi_idx → P3 → P4.
        let mut right = TaggedRelation::base(IdxRelation::base("mi_idx", 6));
        let mut rtags = vec![Tag::empty()];
        for node in [p3, p4] {
            let m = b.filter_map(node, &rtags);
            rtags = b.filter_output_tags(&m, &rtags);
            right = tagged_filter(&ts, &right, &tree, &m, &arena()).unwrap();
        }
        // Example 3: {score>8.0} = 4 rows; {score>8.0=F, score>7.0=T} = 2.
        assert_eq!(right.num_slices(), 2);
        let sizes: Vec<usize> = right
            .slices()
            .iter()
            .map(|(_, bm)| bm.count_ones())
            .collect();
        assert_eq!(sizes, vec![4, 2]);

        // Join with tag map.
        let jm = b.join_map(&left_tags, &rtags);
        assert_eq!(jm.entries.len(), 3, "the (F,F) pairing is omitted");
        let joined = tagged_join(
            &ts,
            &left,
            &right,
            &ColumnRef::new("t", "id"),
            &ColumnRef::new("mi_idx", "movie_id"),
            &jm,
            &arena(),
        )
        .unwrap();
        assert!(joined.check_mutually_exclusive());

        // Example 4: output = Dark Knight(9.0), Avatar(7.9), Shawshank
        // (9.3), Pulp Fiction(8.9) — 4 tuples.
        let proj = b.projection_tags(&b.join_output_tags(&jm));
        let final_rel = tagged_select_final(&joined, &proj, &arena());
        assert_eq!(final_rel.len(), 4);

        // Cross-check against the traditional engine.
        let joined_plain = hash_join(
            &ts,
            &IdxRelation::base("t", 7),
            &IdxRelation::base("mi_idx", 6),
            &ColumnRef::new("t", "id"),
            &ColumnRef::new("mi_idx", "movie_id"),
            JoinSide::Smaller,
            &arena(),
        )
        .unwrap();
        let expected = plain_filter(&ts, &joined_plain, &tree, tree.root(), &arena()).unwrap();
        assert_eq!(expected.len(), 4);
        let mut a: Vec<(u32, u32)> = (0..final_rel.len())
            .map(|i| {
                (
                    final_rel.col("t").unwrap()[i],
                    final_rel.col("mi_idx").unwrap()[i],
                )
            })
            .collect();
        let mut e: Vec<(u32, u32)> = (0..expected.len())
            .map(|i| {
                (
                    expected.col("t").unwrap()[i],
                    expected.col("mi_idx").unwrap()[i],
                )
            })
            .collect();
        a.sort_unstable();
        e.sort_unstable();
        assert_eq!(a, e);

        // Projection materializes the right values.
        let cols = tagged_project(
            &ts,
            &joined,
            &proj,
            &[
                ColumnRef::new("t", "title"),
                ColumnRef::new("mi_idx", "score"),
            ],
            &arena(),
        )
        .unwrap();
        assert_eq!(cols[0].1.len(), 4);
    }

    /// The atom profiler sees exactly the union a tagged filter would
    /// evaluate, and leaves no arena buffer behind.
    #[test]
    fn filter_atom_profiles_cover_the_evaluated_union() {
        let ts = tset();
        let tree = PredicateTree::build(&query1());
        let b = TagMapBuilder::new(&tree, TagMapStrategy::Generalized { use_closure: true });
        let p1 = find(&tree, "t.year > 2000");
        let base = TaggedRelation::base(IdxRelation::base("t", 7));
        let m = b.filter_map(p1, &[Tag::empty()]);
        let a = arena();
        let profiles = filter_atom_profiles(&ts, &base, &tree, &m, &a).unwrap();
        assert_eq!(profiles.len(), 1, "the filter subtree is one atom");
        assert_eq!(profiles[0].atom, "t.year > 2000");
        assert_eq!(profiles[0].lanes_evaluated, 7, "base slice is full");
        assert_eq!(profiles[0].lanes_short_circuited, 0);
        assert_eq!(profiles[0].true_count, 3, "2008, 2001, 2009");
        assert_eq!(profiles[0].unknown_count, 0);
        assert_eq!(a.outstanding(), 0, "profiling is scratch-neutral");
    }

    /// §2.5.2: the filter's underlying relation is untouched; only tags
    /// change. Tuples outside every slice remain in the relation.
    #[test]
    fn filter_does_not_rewrite_relation() {
        let ts = tset();
        let tree = PredicateTree::build(&query1());
        let b = TagMapBuilder::new(&tree, TagMapStrategy::Generalized { use_closure: true });
        let p1 = find(&tree, "t.year > 2000");
        let base = TaggedRelation::base(IdxRelation::base("t", 7));
        let m = b.filter_map(p1, &[Tag::empty()]);
        let out = tagged_filter(&ts, &base, &tree, &m, &arena()).unwrap();
        assert_eq!(out.num_tuples(), 7, "relation keeps all 7 tuples");
        assert_eq!(out.num_tagged_tuples(), 7, "both outcomes kept here");
    }

    /// Slices with no matching entry pass through untouched.
    #[test]
    fn pass_through_slice() {
        let ts = tset();
        let tree = PredicateTree::build(&query1());
        let b = TagMapBuilder::new(&tree, TagMapStrategy::Generalized { use_closure: true });
        let p1 = find(&tree, "t.year > 2000");
        let p2 = find(&tree, "t.year > 1980");

        let base = TaggedRelation::base(IdxRelation::base("t", 7));
        let m1 = b.filter_map(p1, &[Tag::empty()]);
        let after1 = tagged_filter(&ts, &base, &tree, &m1, &arena()).unwrap();
        let tags1 = b.filter_output_tags(&m1, &[Tag::empty()]);

        let m2 = b.filter_map(p2, &tags1);
        // Only the {A1=F} slice has an entry; the pos slice passes through.
        assert_eq!(m2.entries().len(), 1);
        let after2 = tagged_filter(&ts, &after1, &tree, &m2, &arena()).unwrap();
        let pos_tag = m1.entries()[0].pos.as_ref().unwrap();
        assert_eq!(
            after2.slice(pos_tag),
            after1.slice(pos_tag),
            "pass-through bitmap identical"
        );
    }

    /// Dead entries (all outputs pruned) drop the slice without evaluating.
    #[test]
    fn dead_entry_removes_slice() {
        let ts = tset();
        let tree = PredicateTree::build(&col("t", "year").gt(2000i64));
        let base = TaggedRelation::base(IdxRelation::base("t", 7));
        // Hand-build a map whose entry has no outputs.
        let map = FilterTagMap::new(
            tree.root(),
            vec![crate::tagmap::FilterTagEntry {
                input: Tag::empty(),
                pos: None,
                neg: None,
                unk: None,
            }],
        );
        let out = tagged_filter(&ts, &base, &tree, &map, &arena()).unwrap();
        assert_eq!(out.num_slices(), 0);
        assert_eq!(out.num_tuples(), 7);
    }

    /// Three-valued execution end to end: NULL years flow into the unknown
    /// slice and never reach the output.
    #[test]
    fn nulls_route_to_unknown_slice() {
        let mut b = TableBuilder::new("t")
            .column("year", DataType::Int)
            .column("id", DataType::Int);
        for (y, id) in [
            (Value::Int(2005), 1i64),
            (Value::Null, 2),
            (Value::Int(1990), 3),
        ] {
            b.push_row(vec![y, id.into()]).unwrap();
        }
        let table = Arc::new(b.finish().unwrap());
        let ts = TableSet::from_tables(vec![("t".into(), table)]);
        let tree = PredicateTree::build(&col("t", "year").gt(2000i64));
        let builder = TagMapBuilder::new(&tree, TagMapStrategy::Generalized { use_closure: true })
            .with_three_valued(true);
        let m = builder.filter_map(tree.root(), &[Tag::empty()]);
        // unknown at root is dead → no unk output, no neg output.
        assert!(m.entries()[0].unk.is_none());
        assert!(m.entries()[0].neg.is_none());
        let base = TaggedRelation::base(IdxRelation::base("t", 3));
        let out = tagged_filter(&ts, &base, &tree, &m, &arena()).unwrap();
        assert_eq!(out.num_slices(), 1);
        assert_eq!(out.num_tagged_tuples(), 1, "only year=2005 survives");
    }

    /// The tagged join discards slices without entries (§2.3).
    #[test]
    fn join_discards_unmatched_slices() {
        let ts = tset();
        let tree = PredicateTree::build(&query1());
        let b = TagMapBuilder::new(&tree, TagMapStrategy::Generalized { use_closure: true });
        let p1 = find(&tree, "t.year > 2000");

        let base_l = TaggedRelation::base(IdxRelation::base("t", 7));
        let m = b.filter_map(p1, &[Tag::empty()]);
        let left = tagged_filter(&ts, &base_l, &tree, &m, &arena()).unwrap();
        let right = TaggedRelation::base(IdxRelation::base("mi_idx", 6));

        // Tag map joining only the pos slice with the base slice.
        let pos_tag = m.entries()[0].pos.as_ref().unwrap().clone();
        let jm = JoinTagMap {
            entries: vec![crate::tagmap::JoinTagEntry {
                left: pos_tag.clone(),
                right: Tag::empty(),
                out: pos_tag.clone(),
            }],
        };
        let joined = tagged_join(
            &ts,
            &left,
            &right,
            &ColumnRef::new("t", "id"),
            &ColumnRef::new("mi_idx", "movie_id"),
            &jm,
            &arena(),
        )
        .unwrap();
        // pos slice = ids {1,2,7}; mi_idx movie_ids {1,3,4,5,6,7} →
        // matches for 1 and 7 only.
        assert_eq!(joined.num_tuples(), 2);
        assert_eq!(joined.num_slices(), 1);
        assert_eq!(joined.slices()[0].0, pos_tag);
    }

    /// Join output slices sharing a tag merge (§2.3 "output relational
    /// slices which share the same tag are merged together").
    #[test]
    fn join_merges_same_out_tag() {
        let ts = tset();
        let tree = PredicateTree::build(&query1());
        let b = TagMapBuilder::new(&tree, TagMapStrategy::Generalized { use_closure: true });
        let p1 = find(&tree, "t.year > 2000");
        let p3 = find(&tree, "mi_idx.score > '8.0'");

        let m_l = b.filter_map(p1, &[Tag::empty()]);
        let left = tagged_filter(
            &ts,
            &TaggedRelation::base(IdxRelation::base("t", 7)),
            &tree,
            &m_l,
            &arena(),
        )
        .unwrap();
        let m_r = b.filter_map(p3, &[Tag::empty()]);
        let right = tagged_filter(
            &ts,
            &TaggedRelation::base(IdxRelation::base("mi_idx", 6)),
            &tree,
            &m_r,
            &arena(),
        )
        .unwrap();

        let lt = b.filter_output_tags(&m_l, &[Tag::empty()]);
        let rt = b.filter_output_tags(&m_r, &[Tag::empty()]);
        let jm = b.join_map(&lt, &rt);
        // Entries (pos,pos) and (pos,neg-side) both map to {root=T}:
        // year>2000 ∧ score>8 ⇒ root, and year>2000 ∧ (score≤8) leaves
        // P4 unknown → different out tags actually; count distinct.
        let joined = tagged_join(
            &ts,
            &left,
            &right,
            &ColumnRef::new("t", "id"),
            &ColumnRef::new("mi_idx", "movie_id"),
            &jm,
            &arena(),
        )
        .unwrap();
        assert!(joined.check_mutually_exclusive());
        assert_eq!(
            joined.num_slices(),
            b.join_output_tags(&jm)
                .iter()
                .filter(|t| joined.slice(t).is_some())
                .count()
        );
    }

    /// Equivalence on a single-table disjunction: tagged vs plain filter.
    #[test]
    fn single_table_disjunction_equivalence() {
        let ts = tset();
        let e = or(vec![
            col("t", "year").gt(2000i64),
            col("t", "year").lt(1980i64),
        ]);
        let tree = PredicateTree::build(&e);
        let b = TagMapBuilder::new(&tree, TagMapStrategy::Generalized { use_closure: true });
        let g1 = find(&tree, "t.year > 2000");
        let l1 = find(&tree, "t.year < 1980");

        let mut rel = TaggedRelation::base(IdxRelation::base("t", 7));
        let mut tags = vec![Tag::empty()];
        for node in [g1, l1] {
            let m = b.filter_map(node, &tags);
            tags = b.filter_output_tags(&m, &tags);
            rel = tagged_filter(&ts, &rel, &tree, &m, &arena()).unwrap();
        }
        let proj = b.projection_tags(&tags);
        let got = tagged_select_final(&rel, &proj, &arena());

        let expected = plain_filter(
            &ts,
            &IdxRelation::base("t", 7),
            &tree,
            tree.root(),
            &arena(),
        )
        .unwrap();
        let mut a = got.col("t").unwrap().to_vec();
        let mut e2 = expected.col("t").unwrap().to_vec();
        a.sort_unstable();
        e2.sort_unstable();
        assert_eq!(a, e2);
    }
}
