//! Morsel-driven parallel execution for tagged plans, on a **resident**
//! worker pool.
//!
//! Basilisk's hot path is allocation-free and word-parallel *per core*;
//! this crate is how it uses more than one core. The model is
//! morsel-driven scheduling (Leis et al., SIGMOD 2014) specialized to the
//! bitmap-sliced tagged engine:
//!
//! * **Morsels** — base relations are split into fixed-size row ranges
//!   ([`Morsel`], default 64 Ki rows) aligned to the 64-bit words of every
//!   [`TruthMask`](basilisk_types::TruthMask)/
//!   [`Bitmap`](basilisk_types::Bitmap) over the relation. Alignment is
//!   what makes the merge trivial: each morsel owns a **disjoint word
//!   range**, so stitching per-morsel results into a relation-length mask
//!   is word concatenation
//!   ([`TruthMask::stitch`](basilisk_types::TruthMask::stitch)) — never a
//!   re-intersection, and never a data race.
//!
//! * **Work stealing** — [`WorkerPool::run`] distributes tasks into
//!   per-worker deques. A worker drains its own deque from the front
//!   (preserving the cache-friendly ascending row order of its block) and
//!   steals from the *back* of a victim's deque when it runs dry, so
//!   skewed morsels (one worker's rows all match, another's none) still
//!   load-balance. Results are returned in task order, which is how
//!   parallel output stays **bit-for-bit equal** to serial output:
//!   producing `results[i]` for morsel `i` commutes with who computed it.
//!
//! * **Resident threads** — the pool spawns its `workers - 1` threads
//!   once, at construction, and parks them on a condvar between parallel
//!   regions. A region is an *epoch*: [`WorkerPool::run`] publishes a
//!   type-erased job pointer under the epoch lock, bumps the epoch
//!   counter and wakes every worker; each worker executes the job exactly
//!   once and decrements a completion count the coordinator waits on.
//!   Waking a parked thread costs a condvar signal instead of a
//!   `clone`+`mmap`+schedule, so short parallel regions stop paying spawn
//!   cost — and because the threads persist, one pool can serve parallel
//!   regions from **many sessions over its lifetime** (the serving layer
//!   shares one `Arc<WorkerPool>` across every execution context;
//!   concurrent callers' regions serialize on an internal region lock,
//!   while the serial parts of their queries overlap freely).
//!
//! * **Per-worker arenas** — each worker *owns* a private
//!   [`MaskArena`]. Arenas are `Send` but deliberately not `Sync`; each
//!   lives behind its own `Mutex` that is only ever locked by its worker
//!   during an epoch (uncontended by construction) or by the coordinator
//!   between epochs, so the checkout → evaluate → recycle lifecycle (and
//!   the `fresh() == 0` steady-state guarantee, per worker) holds without
//!   a single *contended* lock. The ownership rule every parallel
//!   operator follows:
//!
//!   1. a worker checks morsel-local buffers out of **its own** arena;
//!   2. buffers that survive the task (the per-morsel result) are
//!      returned to the caller **tagged with the producing worker id**;
//!   3. the caller stitches them into session-arena buffers and recycles
//!      each one **back into the arena it came from**
//!      ([`WorkerPool::with_arena`]), keeping every arena's
//!      [`outstanding()`](MaskArena::outstanding) accounting exact —
//!      error paths included ([`WorkerPool::run`] routes results
//!      produced before a failure through the caller's `discard`
//!      callback, per producing worker).
//!
//! `workers == 1` (or a single task) runs inline on the calling thread —
//! the serial path, exactly; a one-worker pool never spawns a thread.
//! Dropping the pool signals shutdown and joins the resident threads.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use basilisk_types::{BasiliskError, MaskArena, Result, DEFAULT_MORSEL_ROWS};

pub use basilisk_types::Morsel;

/// What a task closure sees: the executing worker's id and its private
/// arena. Buffers checked out here must either be recycled here or
/// escape inside the task's result (the caller then recycles them via
/// [`WorkerPool::with_arena`] with the result's worker id).
pub struct WorkerCtx<'a> {
    pub worker: usize,
    pub arena: &'a MaskArena,
}

/// The per-epoch job: a type-erased pointer to a `Fn(worker_index)`
/// closure living on the coordinator's stack. Validity is guaranteed by
/// the epoch protocol — the coordinator does not leave [`WorkerPool::run`]
/// until every participating worker has decremented the epoch's
/// completion count, so the pointee outlives every dereference.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync + 'static));

// SAFETY: the pointee is `Sync` (shared by every worker of the epoch) and
// the epoch protocol bounds its lifetime; the pointer itself is just an
// address carried to the worker threads.
unsafe impl Send for Job {}

struct EpochState {
    /// Bumped once per parallel region; workers track the last epoch they
    /// executed so one wakeup runs one job exactly once per worker.
    epoch: u64,
    job: Option<Job>,
    /// Resident workers still executing the current epoch's job.
    running: usize,
    /// Resident workers whose job invocation panicked this epoch.
    panicked: usize,
    shutdown: bool,
}

struct Shared {
    /// One arena per worker (index 0 = the coordinating thread). Each
    /// mutex is uncontended by design: locked by its worker for the span
    /// of an epoch, and by the coordinator only between epochs.
    arenas: Vec<Mutex<MaskArena>>,
    state: Mutex<EpochState>,
    /// Workers park here between epochs.
    work: Condvar,
    /// The coordinator parks here until `running == 0`.
    done: Condvar,
}

/// Recover a guard from a poisoned lock. Pool state stays consistent
/// across a task panic (the panic is re-raised on the coordinator after
/// the epoch completes); poisoning would otherwise wedge every later
/// region of a shared pool.
fn relock<T>(r: std::sync::LockResult<MutexGuard<'_, T>>) -> MutexGuard<'_, T> {
    r.unwrap_or_else(|e| e.into_inner())
}

fn worker_main(shared: Arc<Shared>, worker: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = relock(shared.state.lock());
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    break;
                }
                st = relock(shared.work.wait(st));
            }
            seen = st.epoch;
            st.job.expect("epoch published without a job")
        };
        // SAFETY: see `Job` — the coordinator keeps the pointee alive
        // until this worker decrements `running` below.
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(worker) }));
        let mut st = relock(shared.state.lock());
        if outcome.is_err() {
            st.panicked += 1;
        }
        st.running -= 1;
        if st.running == 0 {
            shared.done.notify_all();
        }
    }
}

/// A resident set of workers: parked threads, per-worker arenas and the
/// morsel configuration. See the module docs for the execution model.
///
/// The pool is `Send + Sync`: wrap it in an `Arc` to share one set of
/// resident threads across sessions (the serving layer does exactly
/// this). Concurrent [`WorkerPool::run`] calls are admitted one region
/// at a time.
pub struct WorkerPool {
    workers: usize,
    morsel_rows: usize,
    shared: Arc<Shared>,
    /// Serializes parallel regions across concurrent `run` callers. Held
    /// for the whole region; do **not** call `run` from inside a task
    /// closure (it would self-deadlock here).
    region: Mutex<()>,
    /// Resident threads, spawned lazily by the first region that fans
    /// out (so plan-only sessions and small-table pools cost nothing)
    /// and retained until drop.
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl WorkerPool {
    /// A pool of `workers` workers (clamped to ≥ 1) with the default
    /// morsel size. Construction is cheap: the `workers - 1` resident
    /// threads are spawned by the first parallel region and parked
    /// between regions thereafter; a one-worker pool never spawns any.
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            arenas: (0..workers).map(|_| Mutex::new(MaskArena::new())).collect(),
            state: Mutex::new(EpochState {
                epoch: 0,
                job: None,
                running: 0,
                panicked: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        WorkerPool {
            workers,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            shared,
            region: Mutex::new(()),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// Spawn the resident threads if this is the pool's first parallel
    /// region (called with the region lock held).
    fn ensure_resident(&self) {
        let mut handles = relock(self.handles.lock());
        if !handles.is_empty() || self.workers <= 1 {
            return;
        }
        handles.extend((1..self.workers).map(|w| {
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name(format!("basilisk-worker-{w}"))
                .spawn(move || worker_main(shared, w))
                .expect("spawn resident worker thread")
        }));
    }

    /// Override the morsel granularity (must be a positive multiple of
    /// 64). Mainly for tests, which want many morsels over small tables.
    pub fn with_morsel_rows(mut self, rows: usize) -> WorkerPool {
        assert!(
            rows > 0 && rows.is_multiple_of(64),
            "morsel size must be a positive multiple of 64"
        );
        self.morsel_rows = rows;
        self
    }

    /// The worker count the engine should default to: the
    /// `BASILISK_THREADS` environment variable when set to a positive
    /// integer, otherwise [`std::thread::available_parallelism`].
    pub fn default_workers() -> usize {
        std::env::var("BASILISK_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    pub fn morsel_rows(&self) -> usize {
        self.morsel_rows
    }

    /// Split `len` rows into this pool's morsels.
    pub fn morsels(&self, len: usize) -> Vec<Morsel> {
        Morsel::split(len, self.morsel_rows)
    }

    /// Whether a relation of `len` rows would actually fan out: more than
    /// one worker *and* more than one morsel. Operators use this to take
    /// the untouched serial path otherwise.
    pub fn would_parallelize(&self, len: usize) -> bool {
        self.workers > 1 && len > self.morsel_rows
    }

    /// Run `f` over every task, work-stealing across the pool's resident
    /// workers, and return the results **in task order**, each tagged
    /// with the id of the worker whose arena produced it.
    ///
    /// On error, every already-produced result is handed to `discard`
    /// together with **its producing worker's arena** (so pooled buffers
    /// inside results flow back to the right pool and no arena's
    /// `outstanding()` count is left dangling), remaining tasks are
    /// abandoned, and the error with the lowest task index is returned —
    /// a deterministic choice even though scheduling is not.
    ///
    /// With one worker or at most one task, everything runs inline on the
    /// calling thread against worker 0's arena — no wakeups, no epoch.
    pub fn run<T, R, F, D>(&self, tasks: Vec<T>, f: F, discard: D) -> Result<Vec<(u32, R)>>
    where
        T: Send,
        R: Send,
        F: Fn(&WorkerCtx<'_>, T) -> Result<R> + Sync,
        D: Fn(&MaskArena, R),
    {
        let n = tasks.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        if self.workers == 1 || n == 1 {
            let arena = relock(self.shared.arenas[0].lock());
            let ctx = WorkerCtx {
                worker: 0,
                arena: &arena,
            };
            let mut out = Vec::with_capacity(n);
            for task in tasks {
                match f(&ctx, task) {
                    Ok(r) => out.push((0u32, r)),
                    Err(e) => {
                        for (_, r) in out {
                            discard(&arena, r);
                        }
                        return Err(e);
                    }
                }
            }
            return Ok(out);
        }

        // One region at a time: concurrent sessions sharing this pool
        // interleave whole regions, never single morsels.
        let _region = relock(self.region.lock());
        self.ensure_resident();

        // Distribute tasks into per-worker deques in contiguous blocks:
        // worker w starts on morsels ⌊w·n/W⌋.., so its own work scans
        // ascending row ranges (cache-friendly) and thieves take from the
        // far end of a victim's block. With fewer tasks than workers the
        // tail workers start empty and immediately look for steals.
        let workers = self.workers;
        let loaded = workers.min(n);
        let deques: Vec<Mutex<VecDeque<(usize, T)>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, task) in tasks.into_iter().enumerate() {
            let w = i * loaded / n;
            relock(deques[w].lock()).push_back((i, task));
        }
        let deques = &deques[..];
        let stop = &AtomicBool::new(false);
        let f = &f;

        type WorkerOut<R> = (Vec<(usize, R)>, Option<(usize, BasiliskError)>);
        let worker_loop = move |worker: usize, arena: &MaskArena| -> WorkerOut<R> {
            let ctx = WorkerCtx { worker, arena };
            let mut done: Vec<(usize, R)> = Vec::new();
            loop {
                if stop.load(Ordering::Relaxed) {
                    return (done, None);
                }
                // Own deque first (front: ascending order)…
                let mut claimed = relock(deques[worker].lock()).pop_front();
                // …then steal from the back of the first non-empty victim.
                if claimed.is_none() {
                    for v in 1..workers {
                        let victim = (worker + v) % workers;
                        claimed = relock(deques[victim].lock()).pop_back();
                        if claimed.is_some() {
                            break;
                        }
                    }
                }
                let Some((idx, task)) = claimed else {
                    return (done, None);
                };
                match f(&ctx, task) {
                    Ok(r) => done.push((idx, r)),
                    Err(e) => {
                        stop.store(true, Ordering::Relaxed);
                        return (done, Some((idx, e)));
                    }
                }
            }
        };

        // Per-worker result slots, written once per epoch by each worker.
        let outs: Vec<Mutex<Option<WorkerOut<R>>>> =
            (0..workers).map(|_| Mutex::new(None)).collect();
        let shared = &self.shared;
        let body = |w: usize| {
            // A worker's arena lock is uncontended while the epoch runs
            // (the coordinator only touches worker arenas between
            // epochs); locking it here upholds "one arena per worker".
            let arena = relock(shared.arenas[w].lock());
            let out = worker_loop(w, &arena);
            *relock(outs[w].lock()) = Some(out);
        };

        // Publish the epoch: type-erase `body`, wake every resident
        // worker, run worker 0 inline, then wait for the others. SAFETY:
        // the transmute only erases the borrow lifetime of the trait
        // object; the wait-for-`running == 0` below keeps `body` (and
        // everything it captures) alive past the last dereference, even
        // if worker 0's inline invocation panics.
        let body_ref: &(dyn Fn(usize) + Sync) = &body;
        let job = Job(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync + 'static)>(
                body_ref,
            )
        });
        {
            let mut st = relock(shared.state.lock());
            st.job = Some(job);
            st.running = workers - 1;
            st.panicked = 0;
            st.epoch = st.epoch.wrapping_add(1);
            shared.work.notify_all();
        }
        let own = std::panic::catch_unwind(AssertUnwindSafe(|| body(0)));
        let worker_panics = {
            let mut st = relock(shared.state.lock());
            while st.running > 0 {
                st = relock(shared.done.wait(st));
            }
            st.job = None;
            st.panicked
        };
        if let Err(p) = own {
            std::panic::resume_unwind(p);
        }
        // Worker closures don't panic on task errors (those are Results);
        // a panic inside a task closure is a real bug and surfaces here,
        // exactly like the scoped-join propagation the pool replaced.
        assert!(worker_panics == 0, "worker thread panicked");

        let mut per_worker: Vec<WorkerOut<R>> = Vec::with_capacity(workers);
        for slot in outs {
            per_worker.push(
                relock(slot.lock())
                    .take()
                    .expect("every worker writes its epoch result"),
            );
        }

        let mut error: Option<(usize, BasiliskError)> = None;
        for (_, err) in &mut per_worker {
            let failed_at = err.as_ref().map(|(idx, _)| *idx);
            if let Some(idx) = failed_at {
                if error.as_ref().is_none_or(|(best, _)| idx < *best) {
                    error = err.take();
                }
            }
        }
        if let Some((_, e)) = error {
            // Route every produced result back through the caller's
            // discard hook with its producing worker's arena.
            for (w, (done, _)) in per_worker.into_iter().enumerate() {
                let arena = relock(shared.arenas[w].lock());
                for (_, r) in done {
                    discard(&arena, r);
                }
            }
            return Err(e);
        }

        let mut slots: Vec<Option<(u32, R)>> = (0..n).map(|_| None).collect();
        for (w, (done, _)) in per_worker.into_iter().enumerate() {
            for (idx, r) in done {
                debug_assert!(slots[idx].is_none(), "task {idx} produced twice");
                slots[idx] = Some((w as u32, r));
            }
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every task produced exactly once"))
            .collect())
    }

    /// Coordinator-side access to one worker's arena — how callers
    /// recycle the pooled buffers inside a task result back into the
    /// arena that produced them. Safe between regions; while a region is
    /// in flight the lock simply blocks until that worker's epoch ends.
    pub fn with_arena<R>(&self, worker: u32, f: impl FnOnce(&MaskArena) -> R) -> R {
        f(&relock(self.shared.arenas[worker as usize].lock()))
    }

    /// Sum of `outstanding()` across all worker arenas — zero whenever no
    /// parallel region is in flight, error paths included (the leak
    /// tests' invariant).
    pub fn outstanding(&self) -> usize {
        self.shared
            .arenas
            .iter()
            .map(|a| relock(a.lock()).outstanding())
            .sum()
    }

    /// Sum of parked buffers across all worker arenas.
    pub fn pooled(&self) -> usize {
        self.shared
            .arenas
            .iter()
            .map(|a| relock(a.lock()).pooled())
            .sum()
    }

    /// Sum of fresh checkouts across all worker arenas since the last
    /// [`Self::reset_stats`].
    pub fn fresh(&self) -> usize {
        self.shared
            .arenas
            .iter()
            .map(|a| relock(a.lock()).stats().fresh())
            .sum()
    }

    /// Zero every worker arena's counters (pools stay warm).
    pub fn reset_stats(&self) {
        for a in &self.shared.arenas {
            relock(a.lock()).reset_stats();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = relock(self.shared.state.lock());
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in relock(self.handles.lock()).drain(..) {
            let _ = h.join();
        }
    }
}

// The handoff model rests on arenas being movable into the resident
// workers and on the pool being shareable across sessions; keep both
// properties pinned at compile time.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}
    assert_send::<MaskArena>();
    assert_send::<WorkerPool>();
    assert_sync::<WorkerPool>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_task_order() {
        let pool = WorkerPool::new(4).with_morsel_rows(64);
        let tasks: Vec<usize> = (0..40).collect();
        let out = pool
            .run(tasks, |_ctx, t| Ok(t * 10), |_a, _r: usize| {})
            .unwrap();
        assert_eq!(out.len(), 40);
        for (i, (_w, r)) in out.iter().enumerate() {
            assert_eq!(*r, i * 10);
        }
        // Which workers actually ran is machine-dependent (on a busy or
        // single-core host, worker 0 can legally drain every deque by
        // stealing before the other threads are scheduled), so only the
        // worker-id *range* is pinned here; order and completeness above
        // are the real contract.
        assert!(out.iter().all(|&(w, _)| (w as usize) < pool.workers()));
    }

    #[test]
    fn single_worker_runs_inline() {
        let pool = WorkerPool::new(1);
        let main_thread = std::thread::current().id();
        let out = pool
            .run(
                vec![1u32, 2, 3],
                |ctx, t| {
                    assert_eq!(std::thread::current().id(), main_thread);
                    assert_eq!(ctx.worker, 0);
                    Ok(t + 1)
                },
                |_a, _r: u32| {},
            )
            .unwrap();
        assert_eq!(
            out.into_iter().map(|(_, r)| r).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn single_task_runs_inline_even_with_many_workers() {
        let pool = WorkerPool::new(8);
        let main_thread = std::thread::current().id();
        let out = pool
            .run(
                vec![7usize],
                |_ctx, t| {
                    assert_eq!(std::thread::current().id(), main_thread);
                    Ok(t)
                },
                |_a, _r: usize| {},
            )
            .unwrap();
        assert_eq!(out, vec![(0, 7)]);
    }

    #[test]
    fn empty_task_list() {
        let pool = WorkerPool::new(4);
        let out: Vec<(u32, ())> = pool
            .run(Vec::<()>::new(), |_, _| Ok(()), |_, _| {})
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn worker_arena_buffers_round_trip() {
        let pool = WorkerPool::new(3).with_morsel_rows(64);
        // Each task checks a mask out of its worker's arena and returns
        // it; the caller recycles into the producing arena.
        let out = pool
            .run(
                (0..12).collect::<Vec<usize>>(),
                |ctx, t| Ok(ctx.arena.mask(100 + t)),
                |a, m| a.recycle_mask(m),
            )
            .unwrap();
        assert_eq!(pool.outstanding(), 12, "12 masks live across arenas");
        for (w, m) in out {
            pool.with_arena(w, |a| a.recycle_mask(m));
        }
        assert_eq!(pool.outstanding(), 0, "all masks returned home");
        assert!(pool.pooled() >= 1);
    }

    /// Steady state per worker: when the same arena serves again (the
    /// deterministic single-worker pool), warm pools cover every
    /// checkout. (Across a multi-worker pool the *assignment* of tasks
    /// to workers is nondeterministic, so only per-arena — not global —
    /// freshness is guaranteed; the differential suite covers results.)
    #[test]
    fn warm_worker_pool_is_allocation_free() {
        let pool = WorkerPool::new(1);
        let serve = |pool: &WorkerPool| {
            let out = pool
                .run(
                    (0..5).collect::<Vec<usize>>(),
                    |ctx, t| Ok(ctx.arena.mask(100 + t)),
                    |a, m| a.recycle_mask(m),
                )
                .unwrap();
            for (w, m) in out {
                pool.with_arena(w, |a| a.recycle_mask(m));
            }
        };
        serve(&pool);
        assert!(pool.fresh() > 0, "first run warms the pool");
        pool.reset_stats();
        serve(&pool);
        assert_eq!(pool.fresh(), 0, "warm worker pool serves every checkout");
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn error_reports_lowest_index_and_discards_results() {
        let pool = WorkerPool::new(4).with_morsel_rows(64);
        let discarded = AtomicUsize::new(0);
        let err = pool
            .run(
                (0..20).collect::<Vec<usize>>(),
                |ctx, t| {
                    if t == 5 || t == 13 {
                        Err(BasiliskError::Exec(format!("boom {t}")))
                    } else {
                        Ok(ctx.arena.bitmap(64))
                    }
                },
                |a, bm| {
                    discarded.fetch_add(1, Ordering::Relaxed);
                    a.recycle_bitmap(bm);
                },
            )
            .unwrap_err();
        // Both failures may or may not be reached; the reported one must
        // be the lowest-index error among those that were.
        let msg = err.to_string();
        assert!(msg.contains("boom"), "{msg}");
        assert_eq!(
            pool.outstanding(),
            0,
            "every produced buffer was discarded into its own arena"
        );
        assert!(discarded.load(Ordering::Relaxed) <= 18);
    }

    #[test]
    fn error_on_inline_path_discards_too() {
        let pool = WorkerPool::new(1);
        let err = pool
            .run(
                vec![0usize, 1, 2],
                |ctx, t| {
                    if t == 2 {
                        Err(BasiliskError::Exec("late".into()))
                    } else {
                        Ok(ctx.arena.indices())
                    }
                },
                |a, v| a.recycle_indices(v),
            )
            .unwrap_err();
        assert!(err.to_string().contains("late"));
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn stealing_drains_a_stalled_owner() {
        // One worker's tasks are slow; the other must steal the fast ones
        // from the victim's block and everything still lands in order.
        let pool = WorkerPool::new(2).with_morsel_rows(64);
        let out = pool
            .run(
                (0..8).collect::<Vec<usize>>(),
                |_ctx, t| {
                    if t == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                    Ok(t)
                },
                |_a, _r: usize| {},
            )
            .unwrap();
        let values: Vec<usize> = out.iter().map(|&(_, r)| r).collect();
        assert_eq!(values, (0..8).collect::<Vec<_>>());
    }

    /// The resident property itself: across regions, the same worker id
    /// is served by the same OS thread (no per-region spawning), and
    /// worker 0 is always the calling thread.
    #[test]
    fn resident_threads_persist_across_regions() {
        use std::collections::HashMap;
        use std::thread::ThreadId;
        let pool = WorkerPool::new(3).with_morsel_rows(64);
        let main_thread = std::thread::current().id();
        let observe = || -> HashMap<usize, ThreadId> {
            let out = pool
                .run(
                    (0..24).collect::<Vec<usize>>(),
                    |ctx, _t| {
                        // Slow tasks down slightly so every worker gets a
                        // chance to participate on busy hosts.
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        Ok((ctx.worker, std::thread::current().id()))
                    },
                    |_a, _r: (usize, ThreadId)| {},
                )
                .unwrap();
            let mut map = HashMap::new();
            for (_, (w, tid)) in out {
                let prev = map.insert(w, tid);
                assert!(prev.is_none_or(|p| p == tid), "worker {w} switched threads");
            }
            map
        };
        let first = observe();
        let second = observe();
        if let Some(tid) = first.get(&0) {
            assert_eq!(*tid, main_thread, "worker 0 is the coordinator");
        }
        for (w, tid) in &second {
            if let Some(prev) = first.get(w) {
                assert_eq!(prev, tid, "worker {w} migrated between regions");
            }
        }
    }

    /// One pool, shared by several client threads via `Arc`: regions
    /// serialize internally and every caller still gets its own results
    /// in task order.
    #[test]
    fn shared_pool_serves_concurrent_callers() {
        let pool = Arc::new(WorkerPool::new(3).with_morsel_rows(64));
        let mut handles = Vec::new();
        for c in 0..4u32 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for _round in 0..5 {
                    let out = pool
                        .run(
                            (0..16u32).collect::<Vec<u32>>(),
                            |_ctx, t| Ok(t * 2 + c * 1000),
                            |_a, _r: u32| {},
                        )
                        .unwrap();
                    let values: Vec<u32> = out.into_iter().map(|(_, r)| r).collect();
                    assert_eq!(
                        values,
                        (0..16u32).map(|t| t * 2 + c * 1000).collect::<Vec<_>>()
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn default_workers_parses_env_shape() {
        // Not asserting the ambient value (the test runner may set the
        // env); just pin that the function never returns zero.
        assert!(WorkerPool::default_workers() >= 1);
    }

    #[test]
    fn morsels_and_would_parallelize() {
        let pool = WorkerPool::new(4).with_morsel_rows(128);
        assert_eq!(pool.morsels(300).len(), 3);
        assert!(pool.would_parallelize(300));
        assert!(!pool.would_parallelize(128));
        assert!(!WorkerPool::new(1).would_parallelize(1 << 20));
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn bad_morsel_size_panics() {
        let _ = WorkerPool::new(2).with_morsel_rows(100);
    }
}
