//! Morsel-driven parallel execution for tagged plans, on a **resident**
//! worker pool with **interleaved parallel regions**.
//!
//! Basilisk's hot path is allocation-free and word-parallel *per core*;
//! this crate is how it uses more than one core. The model is
//! morsel-driven scheduling (Leis et al., SIGMOD 2014) specialized to the
//! bitmap-sliced tagged engine:
//!
//! * **Morsels** — base relations are split into fixed-size row ranges
//!   ([`Morsel`], default 64 Ki rows) aligned to the 64-bit words of every
//!   [`TruthMask`](basilisk_types::TruthMask)/
//!   [`Bitmap`](basilisk_types::Bitmap) over the relation. Alignment is
//!   what makes the merge trivial: each morsel owns a **disjoint word
//!   range**, so stitching per-morsel results into a relation-length mask
//!   is word concatenation
//!   ([`TruthMask::stitch`](basilisk_types::TruthMask::stitch)) — never a
//!   re-intersection, and never a data race.
//!
//! * **Work stealing** — [`WorkerPool::run`] distributes tasks into
//!   per-worker deques. A worker drains its own deque from the front
//!   (preserving the cache-friendly ascending row order of its block) and
//!   steals from the *back* of a victim's deque when it runs dry, so
//!   skewed morsels (one worker's rows all match, another's none) still
//!   load-balance. Results are returned in task order, which is how
//!   parallel output stays **bit-for-bit equal** to serial output:
//!   producing `results[i]` for morsel `i` commutes with who computed it.
//!
//! * **Region-tagged scheduling** — a parallel region is no longer an
//!   exclusive epoch. [`WorkerPool::run`] publishes its type-erased job
//!   into a free slot of a fixed **region table**, stamped with a
//!   monotonically increasing region id. Workers drain a *mixed* queue:
//!   each worker scans the table for regions it has not executed yet
//!   (a per-worker `seen` stamp keeps the join-once guarantee without
//!   allocation), runs the region's work-stealing body against its own
//!   arena, and moves on to the next live region. Completion accounting
//!   is **per region**: each slot counts the workers currently inside its
//!   body, and the last one out retires the slot (the body only returns
//!   once the region's deques are drained or its stop flag is set) and
//!   wakes the region's coordinator. Concurrent `run` calls from
//!   different sessions therefore fan out **simultaneously** — the only
//!   wait left is for a free slot when more regions are in flight than
//!   the table holds, and that wait is counted and timed
//!   ([`WorkerPool::region_stats`]).
//!
//! * **Resident threads** — the pool spawns its `workers` threads once,
//!   at the first region that fans out, and parks them on a condvar when
//!   the region table is empty. The coordinator publishes and waits; it
//!   never executes task bodies itself, so a session blocked in `run` is
//!   exactly a session whose region is being executed by the resident
//!   set. Waking a parked thread costs a condvar signal instead of a
//!   `clone`+`mmap`+schedule, so short parallel regions stop paying spawn
//!   cost — and because the threads persist, one pool serves regions from
//!   **many sessions over its lifetime** (the serving layer shares one
//!   `Arc<WorkerPool>` across every execution context).
//!
//! * **Per-worker arenas** — each worker *owns* a private
//!   [`MaskArena`]. Arenas are `Send` but deliberately not `Sync`; each
//!   lives behind its own `Mutex` that is only ever locked by its worker
//!   for the span of one region body (uncontended by construction) or by
//!   a coordinator recycling results between bodies. A worker that
//!   interleaves tasks from two regions still uses **one arena** — it
//!   runs one region's body to completion before claiming the next, so
//!   checkouts from different regions never interleave *within* a body,
//!   and buffers that escape a body are tagged with the producing worker
//!   id. The ownership rule every parallel operator follows:
//!
//!   1. a worker checks morsel-local buffers out of **its own** arena;
//!   2. buffers that survive the task (the per-morsel result) are
//!      returned to the caller **tagged with the producing worker id**;
//!   3. the caller stitches them into session-arena buffers and recycles
//!      each one **back into the arena it came from**
//!      ([`WorkerPool::with_arena`]), keeping every arena's
//!      [`outstanding()`](MaskArena::outstanding) accounting exact.
//!
//!   Error and discard routing is **per region**: each region's stop
//!   flag, error slot and produced-result set live on its coordinator's
//!   stack, so a failure in one region routes exactly that region's
//!   results through its caller's `discard` callback (per producing
//!   worker) while unrelated regions proceed untouched.
//!
//! `workers == 1` (or a single task) runs inline on the calling thread —
//! the serial path, exactly; a one-worker pool never spawns a thread.
//! Pools with more than one worker keep a dedicated **inline arena**
//! (index `workers`) for the single-task path, so tiny queries never
//! contend with resident workers mid-region. Dropping the pool signals
//! shutdown and joins the resident threads.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::time::Instant;

// All lock/atomic types come from the façade, never `std::sync`
// directly (enforced by basilisk-lint): normal builds get the std
// originals re-exported at zero cost, `--cfg basilisk_check` builds get
// the schedule-exploring instrumented runtime.
use basilisk_types::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use basilisk_types::sync::{Arc, Condvar, LockResult, Mutex, MutexGuard};
use basilisk_types::{BasiliskError, Histogram, MaskArena, Result, DEFAULT_MORSEL_ROWS};

pub use basilisk_types::Morsel;

/// Default size of the region table: how many parallel regions can be in
/// flight on one pool before a new [`WorkerPool::run`] waits for a slot.
/// Sized comfortably above the serving layer's default context count so
/// slot waits are an overload signal, not steady-state behavior.
pub const DEFAULT_REGION_SLOTS: usize = 16;

/// Number of power-of-two buckets in the region slot-wait histogram:
/// bucket `i` counts waits in `[2^i, 2^(i+1))` microseconds (bucket 0
/// additionally takes sub-microsecond waits, the last bucket everything
/// slower). An alias of the shared [`basilisk_types::Histogram`] shape,
/// which also records the serving layer's latency histogram.
pub const REGION_WAIT_BUCKETS: usize = basilisk_types::HISTOGRAM_BUCKETS;

/// What a task closure sees: the executing worker's id and its private
/// arena. Buffers checked out here must either be recycled here or
/// escape inside the task's result (the caller then recycles them via
/// [`WorkerPool::with_arena`] with the result's worker id).
pub struct WorkerCtx<'a> {
    pub worker: usize,
    pub arena: &'a MaskArena,
}

/// A region's type-erased job: a pointer to a `Fn(worker, arena)` body
/// living on the coordinating caller's stack. Validity is guaranteed by
/// the region protocol — a worker only dereferences the pointer between
/// incrementing the slot's `running` count (under the scheduler lock) and
/// decrementing it, and the coordinator does not leave
/// [`WorkerPool::run`] until the slot is retired, which requires
/// `running == 0`; the pointee therefore outlives every dereference.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize, &MaskArena) + Sync));

// SAFETY: the pointee is `Sync` (shared by every worker that joins the
// region) and the region protocol bounds its lifetime; the pointer itself
// is just an address carried to the worker threads.
unsafe impl Send for Job {}

/// One entry of the region table. `id == 0` means free; live slots carry
/// the region's epoch-stamped id, its job, and the number of workers
/// currently inside its body.
struct RegionSlot {
    id: u64,
    job: Option<Job>,
    running: usize,
}

struct SchedState {
    slots: Vec<RegionSlot>,
    /// Monotonic region id allocator; never reused, so a stale per-worker
    /// `seen` stamp can never alias a new region.
    next_id: u64,
    /// Occupied slots right now.
    active: usize,
    /// High-water mark of simultaneously live regions.
    max_active: u64,
    shutdown: bool,
}

/// Lock-free counters behind [`WorkerPool::region_stats`].
struct RegionCounters {
    regions: AtomicU64,
    waits: AtomicU64,
    wait_hist: Histogram,
}

/// A point-in-time copy of the pool's region-scheduling counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionStats {
    /// Fanned-out parallel regions admitted (inline runs not counted).
    pub regions: u64,
    /// Regions that had to wait for a free region-table slot.
    pub waits: u64,
    /// Total microseconds spent waiting for a slot.
    pub wait_total_micros: u64,
    /// Power-of-two microsecond buckets of individual slot waits.
    pub wait_buckets: [u64; REGION_WAIT_BUCKETS],
    /// Size of the region table.
    pub slots: u64,
    /// Highest number of simultaneously live regions observed.
    pub max_concurrent: u64,
}

/// A point-in-time copy of the pool's execution counters (see
/// [`WorkerPool::sched_stats`]): how much work the resident set did and
/// how it was scheduled, the raw material for the `/v1/metrics`
/// `basilisk_sched_*` families.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedStats {
    /// Configured worker count.
    pub workers: u64,
    /// Tasks executed (morsel and subtree closures), inline path included.
    pub tasks: u64,
    /// Tasks claimed from another worker's deque (work stealing).
    pub steals: u64,
    /// Times a resident worker parked on the work condvar.
    pub parks: u64,
    /// Wakeup broadcasts issued by region publication.
    pub notifies: u64,
    /// Busy microseconds per arena (index `workers` is the inline arena
    /// on multi-worker pools).
    pub busy_micros: Vec<u64>,
}

thread_local! {
    /// Region id most recently fanned out *from this thread* (a
    /// coordinator publishing a region records it here before blocking).
    /// Zero until the thread coordinates its first region.
    static LAST_REGION_ID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// The id of the parallel region most recently fanned out by the calling
/// thread (0 before any). Region ids are pool-global, monotonically
/// increasing and never reused; the plan interpreters stamp them onto
/// operator trace spans right after a parallel operator returns.
pub fn last_region_id() -> u64 {
    LAST_REGION_ID.with(|c| c.get())
}

/// Lock-free execution counters behind [`WorkerPool::sched_stats`]:
/// what the pool's threads actually did, as opposed to the region
/// admission accounting in [`RegionCounters`]. All relaxed — observability
/// only, never synchronization.
struct SchedCounters {
    /// Tasks executed (morsel and subtree closures), inline path included.
    tasks: AtomicU64,
    /// Tasks claimed from another worker's deque.
    steals: AtomicU64,
    /// Times a resident worker parked on the work condvar.
    parks: AtomicU64,
    /// Wakeup broadcasts issued by region publication.
    notifies: AtomicU64,
    /// Per-arena busy time (µs inside region bodies / inline runs);
    /// index `workers` is the inline arena on multi-worker pools.
    busy_micros: Vec<AtomicU64>,
}

struct Shared {
    /// One arena per worker, plus (on multi-worker pools) a trailing
    /// inline arena at index `workers` for the single-task fast path.
    /// Each mutex is uncontended by design: locked by its worker for the
    /// span of one region body, and by coordinators only to recycle
    /// escaped buffers.
    arenas: Vec<Mutex<MaskArena>>,
    state: Mutex<SchedState>,
    /// Workers park here when the region table has nothing for them.
    work: Condvar,
    /// Coordinators park here, both for their region to retire and for a
    /// free slot when the table is full.
    done: Condvar,
    counters: SchedCounters,
}

/// Recover a guard from a poisoned lock. Pool state stays consistent
/// across a task panic (the panic is re-raised on the coordinator after
/// its region completes); poisoning would otherwise wedge every later
/// region of a shared pool.
fn relock<T>(r: LockResult<MutexGuard<'_, T>>) -> MutexGuard<'_, T> {
    r.unwrap_or_else(|e| e.into_inner())
}

/// Mutation-style canary for the schedule explorer (`basilisk-check`):
/// when armed, [`WorkerPool::run`] collects its per-worker results
/// *before* waiting for region retirement — the "retire-before-last-
/// result" protocol mutation. Under an explored schedule where some
/// worker has not yet published, a result is missing and the region
/// panics, which the explorer must report; a corpus that stays green
/// with the canary armed has rotted. Compiled only under
/// `--cfg basilisk_check`; normal builds keep the correct protocol with
/// no hook at all.
#[cfg(basilisk_check)]
pub mod canary {
    use basilisk_types::sync::atomic::{AtomicBool, Ordering};

    static COLLECT_BEFORE_RETIRE: AtomicBool = AtomicBool::new(false);

    /// Arm or disarm the retire-reorder mutation (global, explorer-only).
    pub fn set_collect_before_retire(on: bool) {
        COLLECT_BEFORE_RETIRE.store(on, Ordering::SeqCst);
    }

    pub(crate) fn collect_before_retire() -> bool {
        COLLECT_BEFORE_RETIRE.load(Ordering::SeqCst)
    }
}

/// Normal builds: the canary does not exist and the branch folds away.
#[cfg(not(basilisk_check))]
#[inline(always)]
fn canary_collect_early() -> bool {
    false
}

#[cfg(basilisk_check)]
fn canary_collect_early() -> bool {
    canary::collect_before_retire()
}

fn worker_main(shared: Arc<Shared>, worker: usize) {
    let slot_count = relock(shared.state.lock()).slots.len();
    // Last region id executed per slot: the allocation-free join-once
    // guard (ids are never reused, so equality is exact).
    let mut seen = vec![0u64; slot_count];
    loop {
        let (slot_idx, job) = {
            let mut st = relock(shared.state.lock());
            'claim: loop {
                if st.shutdown {
                    return;
                }
                // Scan the region table for a region this worker has not
                // joined yet; start at a worker-dependent offset so
                // concurrent regions spread across the resident set
                // instead of convoying on slot 0.
                for off in 0..slot_count {
                    let i = (worker + off) % slot_count;
                    let slot = &mut st.slots[i];
                    if slot.id != 0 && seen[i] != slot.id {
                        seen[i] = slot.id;
                        slot.running += 1;
                        break 'claim (i, slot.job.expect("published region has a job"));
                    }
                }
                shared.counters.parks.fetch_add(1, Ordering::Relaxed);
                st = relock(shared.work.wait(st));
            }
        };
        {
            // A worker's arena lock is uncontended while the body runs
            // (coordinators only touch worker arenas to recycle escaped
            // results); locking it here upholds "one arena per worker",
            // even when this worker interleaves bodies from different
            // regions back to back.
            let arena = relock(shared.arenas[worker].lock());
            let busy_start = Instant::now();
            // SAFETY: see `Job` — `running` was incremented under the
            // scheduler lock above, so the coordinator keeps the pointee
            // alive until the decrement below. The body catches its own
            // panics; the outer guard is defense in depth for the pool's
            // accounting.
            let _ =
                std::panic::catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(worker, &arena) }));
            let micros = busy_start.elapsed().as_micros().min(u64::MAX as u128) as u64;
            shared.counters.busy_micros[worker].fetch_add(micros, Ordering::Relaxed);
        }
        let mut st = relock(shared.state.lock());
        let slot = &mut st.slots[slot_idx];
        slot.running -= 1;
        if slot.running == 0 {
            // The body only returns once the region's deques are drained
            // or its stop flag is set, so last-one-out retires the slot:
            // frees it for waiting submitters and wakes the region's
            // coordinator. No late join is possible — claims and this
            // retirement are serialized by the scheduler lock.
            slot.id = 0;
            slot.job = None;
            st.active -= 1;
            shared.done.notify_all();
        }
    }
}

/// A resident set of workers: parked threads, per-worker arenas, the
/// region table and the morsel configuration. See the module docs for
/// the execution model.
///
/// The pool is `Send + Sync`: wrap it in an `Arc` to share one set of
/// resident threads across sessions (the serving layer does exactly
/// this). Concurrent [`WorkerPool::run`] calls interleave — each gets its
/// own region-table slot and the resident workers drain all live regions'
/// tasks as a mixed queue.
pub struct WorkerPool {
    workers: usize,
    morsel_rows: usize,
    shared: Arc<Shared>,
    counters: RegionCounters,
    /// Resident threads, spawned lazily by the first region that fans
    /// out (so plan-only sessions and small-table pools cost nothing)
    /// and retained until drop.
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Heterogeneous two-task result carrier for [`WorkerPool::run_pair`].
enum Pair<A, B> {
    A(A),
    B(B),
}

impl WorkerPool {
    /// A pool of `workers` workers (clamped to ≥ 1) with the default
    /// morsel size and region table. Construction is cheap: the resident
    /// threads are spawned by the first parallel region and parked when
    /// the region table is empty thereafter; a one-worker pool never
    /// spawns any.
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        // Multi-worker pools get a trailing inline arena so the
        // single-task fast path never contends with a resident worker
        // that is mid-region.
        let arena_count = if workers > 1 { workers + 1 } else { 1 };
        let shared = Arc::new(Shared {
            arenas: (0..arena_count)
                .map(|_| Mutex::new(MaskArena::new()))
                .collect(),
            state: Mutex::new(SchedState {
                slots: (0..DEFAULT_REGION_SLOTS)
                    .map(|_| RegionSlot {
                        id: 0,
                        job: None,
                        running: 0,
                    })
                    .collect(),
                next_id: 0,
                active: 0,
                max_active: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            counters: SchedCounters {
                tasks: AtomicU64::new(0),
                steals: AtomicU64::new(0),
                parks: AtomicU64::new(0),
                notifies: AtomicU64::new(0),
                busy_micros: (0..arena_count).map(|_| AtomicU64::new(0)).collect(),
            },
        });
        WorkerPool {
            workers,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            shared,
            counters: RegionCounters {
                regions: AtomicU64::new(0),
                waits: AtomicU64::new(0),
                wait_hist: Histogram::default(),
            },
            handles: Mutex::new(Vec::new()),
        }
    }

    /// Spawn the resident threads if this is the pool's first parallel
    /// region.
    fn ensure_resident(&self) {
        let mut handles = relock(self.handles.lock());
        if !handles.is_empty() || self.workers <= 1 {
            return;
        }
        handles.extend((0..self.workers).map(|w| {
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name(format!("basilisk-worker-{w}"))
                .spawn(move || worker_main(shared, w))
                .expect("spawn resident worker thread")
        }));
    }

    /// Override the morsel granularity (must be a positive multiple of
    /// 64). Mainly for tests, which want many morsels over small tables.
    pub fn with_morsel_rows(mut self, rows: usize) -> WorkerPool {
        assert!(
            rows > 0 && rows.is_multiple_of(64),
            "morsel size must be a positive multiple of 64"
        );
        self.morsel_rows = rows;
        self
    }

    /// Override the region-table size (must be ≥ 1). A builder: call
    /// before the pool serves its first region. `1` restores the old
    /// exclusive-region admission — one parallel region at a time, every
    /// concurrent caller waiting (and counted) — which is exactly what
    /// the interleaving benchmarks use as their baseline.
    pub fn with_region_slots(self, slots: usize) -> WorkerPool {
        assert!(slots >= 1, "region table needs at least one slot");
        assert!(
            relock(self.handles.lock()).is_empty(),
            "region table must be sized before the first parallel region"
        );
        {
            let mut st = relock(self.shared.state.lock());
            st.slots = (0..slots)
                .map(|_| RegionSlot {
                    id: 0,
                    job: None,
                    running: 0,
                })
                .collect();
        }
        self
    }

    /// The worker count the engine should default to: the
    /// `BASILISK_THREADS` environment variable when set to a positive
    /// integer, otherwise [`std::thread::available_parallelism`].
    pub fn default_workers() -> usize {
        std::env::var("BASILISK_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    pub fn morsel_rows(&self) -> usize {
        self.morsel_rows
    }

    /// Split `len` rows into this pool's morsels.
    pub fn morsels(&self, len: usize) -> Vec<Morsel> {
        Morsel::split(len, self.morsel_rows)
    }

    /// Whether a relation of `len` rows would actually fan out: more than
    /// one worker *and* more than one morsel. Operators use this to take
    /// the untouched serial path otherwise.
    pub fn would_parallelize(&self, len: usize) -> bool {
        self.workers > 1 && len > self.morsel_rows
    }

    /// The arena index used by the inline (single-task / single-worker)
    /// fast path.
    fn inline_arena(&self) -> usize {
        if self.workers > 1 {
            self.workers
        } else {
            0
        }
    }

    /// Run `f` over every task, work-stealing across the pool's resident
    /// workers, and return the results **in task order**, each tagged
    /// with the id of the worker whose arena produced it.
    ///
    /// On error, every already-produced result is handed to `discard`
    /// together with **its producing worker's arena** (so pooled buffers
    /// inside results flow back to the right pool and no arena's
    /// `outstanding()` count is left dangling), remaining tasks are
    /// abandoned, and the error with the lowest task index is returned —
    /// a deterministic choice even though scheduling is not. Both the
    /// stop flag and the discard routing are private to this call's
    /// region: a failure here never perturbs other regions in flight on
    /// the same pool.
    ///
    /// With one worker or at most one task, everything runs inline on the
    /// calling thread against the inline arena — no wakeups, no region.
    ///
    /// Task closures must not call back into [`WorkerPool::run`] (or
    /// [`WorkerPool::run_pair`]) on the same pool: a body that blocks a
    /// resident worker on a nested region can deadlock the resident set.
    /// Nested work runs serially inside the task instead.
    pub fn run<T, R, F, D>(&self, tasks: Vec<T>, f: F, discard: D) -> Result<Vec<(u32, R)>>
    where
        T: Send,
        R: Send,
        F: Fn(&WorkerCtx<'_>, T) -> Result<R> + Sync,
        D: Fn(&MaskArena, R),
    {
        let n = tasks.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        if self.workers == 1 || n == 1 {
            let inline = self.inline_arena();
            let arena = relock(self.shared.arenas[inline].lock());
            let ctx = WorkerCtx {
                worker: inline,
                arena: &arena,
            };
            let counters = &self.shared.counters;
            let busy_start = Instant::now();
            let mut out = Vec::with_capacity(n);
            for task in tasks {
                counters.tasks.fetch_add(1, Ordering::Relaxed);
                match f(&ctx, task) {
                    Ok(r) => out.push((inline as u32, r)),
                    Err(e) => {
                        for (_, r) in out {
                            discard(&arena, r);
                        }
                        let micros = busy_start.elapsed().as_micros().min(u64::MAX as u128) as u64;
                        counters.busy_micros[inline].fetch_add(micros, Ordering::Relaxed);
                        return Err(e);
                    }
                }
            }
            let micros = busy_start.elapsed().as_micros().min(u64::MAX as u128) as u64;
            counters.busy_micros[inline].fetch_add(micros, Ordering::Relaxed);
            return Ok(out);
        }

        self.ensure_resident();

        // Distribute tasks into per-worker deques in contiguous blocks:
        // worker w starts on morsels ⌊w·n/W⌋.., so its own work scans
        // ascending row ranges (cache-friendly) and thieves take from the
        // far end of a victim's block. With fewer tasks than workers the
        // tail workers start empty and immediately look for steals.
        let workers = self.workers;
        let loaded = workers.min(n);
        let deques: Vec<Mutex<VecDeque<(usize, T)>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, task) in tasks.into_iter().enumerate() {
            let w = i * loaded / n;
            relock(deques[w].lock()).push_back((i, task));
        }
        let deques = &deques[..];
        let stop = &AtomicBool::new(false);
        let f = &f;

        type WorkerOut<R> = (Vec<(usize, R)>, Option<(usize, BasiliskError)>);
        let counters = &self.shared.counters;
        let worker_loop = move |worker: usize, arena: &MaskArena| -> WorkerOut<R> {
            let ctx = WorkerCtx { worker, arena };
            let mut done: Vec<(usize, R)> = Vec::new();
            loop {
                if stop.load(Ordering::Relaxed) {
                    return (done, None);
                }
                // Own deque first (front: ascending order)…
                let mut claimed = relock(deques[worker].lock()).pop_front();
                // …then steal from the back of the first non-empty victim.
                if claimed.is_none() {
                    for v in 1..workers {
                        let victim = (worker + v) % workers;
                        claimed = relock(deques[victim].lock()).pop_back();
                        if claimed.is_some() {
                            counters.steals.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                let Some((idx, task)) = claimed else {
                    return (done, None);
                };
                counters.tasks.fetch_add(1, Ordering::Relaxed);
                match f(&ctx, task) {
                    Ok(r) => done.push((idx, r)),
                    Err(e) => {
                        stop.store(true, Ordering::Relaxed);
                        return (done, Some((idx, e)));
                    }
                }
            }
        };

        // Per-worker result slots; a worker writes its slot at most once
        // per region (the join-once guard), and only participants write.
        let outs: Vec<Mutex<Option<WorkerOut<R>>>> =
            (0..workers).map(|_| Mutex::new(None)).collect();
        let panicked = &AtomicUsize::new(0);
        let body = |w: usize, arena: &MaskArena| {
            // Catch task-closure panics *inside* the body so the region's
            // accounting (and the shared pool) survives; the coordinator
            // re-raises below. Task errors are `Result`s, not panics.
            match std::panic::catch_unwind(AssertUnwindSafe(|| worker_loop(w, arena))) {
                Ok(out) => *relock(outs[w].lock()) = Some(out),
                Err(_) => {
                    panicked.fetch_add(1, Ordering::Relaxed);
                }
            }
        };

        // Publish the region: type-erase `body` and stamp it into a free
        // slot of the region table. SAFETY: the transmute only erases the
        // borrow lifetime of the trait object; the wait-for-retirement
        // below keeps `body` (and everything it captures) alive past the
        // last dereference.
        let body_ref: &(dyn Fn(usize, &MaskArena) + Sync) = &body;
        let job = Job(unsafe {
            std::mem::transmute::<
                &(dyn Fn(usize, &MaskArena) + Sync),
                *const (dyn Fn(usize, &MaskArena) + Sync + 'static),
            >(body_ref)
        });
        let (slot_idx, my_id) = {
            let mut st = relock(self.shared.state.lock());
            let mut wait_start: Option<Instant> = None;
            let slot_idx = loop {
                if let Some(i) = st.slots.iter().position(|s| s.id == 0) {
                    break i;
                }
                if wait_start.is_none() {
                    wait_start = Some(Instant::now());
                    self.counters.waits.fetch_add(1, Ordering::Relaxed);
                }
                st = relock(self.shared.done.wait(st));
            };
            if let Some(t0) = wait_start {
                let micros = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
                self.counters.wait_hist.record_micros(micros);
            }
            self.counters.regions.fetch_add(1, Ordering::Relaxed);
            st.next_id += 1;
            let id = st.next_id;
            LAST_REGION_ID.with(|c| c.set(id));
            st.slots[slot_idx] = RegionSlot {
                id,
                job: Some(job),
                running: 0,
            };
            st.active += 1;
            st.max_active = st.max_active.max(st.active as u64);
            self.shared.work.notify_all();
            self.shared
                .counters
                .notifies
                .fetch_add(1, Ordering::Relaxed);
            (slot_idx, id)
        };

        let collect = |per_worker: &mut Vec<(usize, WorkerOut<R>)>| {
            for (w, slot) in outs.iter().enumerate() {
                if let Some(out) = relock(slot.lock()).take() {
                    per_worker.push((w, out));
                }
            }
        };
        let mut per_worker: Vec<(usize, WorkerOut<R>)> = Vec::with_capacity(workers);
        // Canary (check builds only): read the result slots *before* the
        // region retires — the protocol mutation the explorer must catch.
        // The retirement wait below still runs either way, so `body`,
        // `outs` and `deques` stay alive until every worker is out.
        let collected_early = canary_collect_early();
        if collected_early {
            collect(&mut per_worker);
        }

        // Wait for the last participating worker to retire the slot. Ids
        // are never reused, so `id != my_id` (freed, or freed and already
        // reused by another caller) is exactly "my region is done".
        {
            let mut st = relock(self.shared.state.lock());
            while st.slots[slot_idx].id == my_id {
                st = relock(self.shared.done.wait(st));
            }
        }
        // Worker closures don't panic on task errors (those are Results);
        // a panic inside a task closure is a real bug and surfaces here,
        // exactly like the scoped-join propagation the pool replaced.
        assert!(
            panicked.load(Ordering::Relaxed) == 0,
            "worker thread panicked"
        );

        if !collected_early {
            collect(&mut per_worker);
        }

        let mut error: Option<(usize, BasiliskError)> = None;
        for (_, (_, err)) in &mut per_worker {
            let failed_at = err.as_ref().map(|(idx, _)| *idx);
            if let Some(idx) = failed_at {
                if error.as_ref().is_none_or(|(best, _)| idx < *best) {
                    error = err.take();
                }
            }
        }
        if let Some((_, e)) = error {
            // Route every produced result back through the caller's
            // discard hook with its producing worker's arena. This is the
            // per-region half of the `outstanding() == 0` guarantee:
            // other regions' results are not here and stay untouched.
            for (w, (done, _)) in per_worker {
                let arena = relock(self.shared.arenas[w].lock());
                for (_, r) in done {
                    discard(&arena, r);
                }
            }
            return Err(e);
        }

        let mut slots: Vec<Option<(u32, R)>> = (0..n).map(|_| None).collect();
        for (w, (done, _)) in per_worker {
            for (idx, r) in done {
                debug_assert!(slots[idx].is_none(), "task {idx} produced twice");
                slots[idx] = Some((w as u32, r));
            }
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every task produced exactly once"))
            .collect())
    }

    /// Run two *different* jobs as one two-task region and return both
    /// results, each tagged with its producing worker id — how plan
    /// interpreters ship a pair of independent subtrees (both inputs of a
    /// join; a build side overlapping probe-side preparation) over the
    /// same pool that runs their morsels.
    ///
    /// Ordering contract: with one worker the pair runs inline, `fa`
    /// strictly before `fb` — exactly the serial engine. In a fanned
    /// region, if both fail the error of `fa` wins (lowest task index),
    /// matching serial left-to-right evaluation. On any failure the
    /// surviving result is routed through its discard callback with the
    /// producing worker's arena, like [`WorkerPool::run`].
    ///
    /// Like `run`, the closures must not call back into the pool.
    pub fn run_pair<A, B, FA, FB, DA, DB>(
        &self,
        fa: FA,
        fb: FB,
        da: DA,
        db: DB,
    ) -> Result<((u32, A), (u32, B))>
    where
        A: Send,
        B: Send,
        FA: FnOnce(&WorkerCtx<'_>) -> Result<A> + Send,
        FB: FnOnce(&WorkerCtx<'_>) -> Result<B> + Send,
        DA: Fn(&MaskArena, A),
        DB: Fn(&MaskArena, B),
    {
        let fa = Mutex::new(Some(fa));
        let fb = Mutex::new(Some(fb));
        let mut out = self.run(
            vec![0u8, 1u8],
            |ctx, which| match which {
                0 => (relock(fa.lock()).take().expect("task 0 claimed once"))(ctx).map(Pair::A),
                _ => (relock(fb.lock()).take().expect("task 1 claimed once"))(ctx).map(Pair::B),
            },
            |arena, r| match r {
                Pair::A(a) => da(arena, a),
                Pair::B(b) => db(arena, b),
            },
        )?;
        let second = out.pop().expect("pair region returns two results");
        let first = out.pop().expect("pair region returns two results");
        match (first, second) {
            ((wa, Pair::A(a)), (wb, Pair::B(b))) => Ok(((wa, a), (wb, b))),
            _ => unreachable!("pair results come back in task order"),
        }
    }

    /// Coordinator-side access to one worker's arena — how callers
    /// recycle the pooled buffers inside a task result back into the
    /// arena that produced them (the inline arena included). Safe while
    /// regions are in flight: the lock simply blocks until that worker's
    /// current body ends.
    pub fn with_arena<R>(&self, worker: u32, f: impl FnOnce(&MaskArena) -> R) -> R {
        f(&relock(self.shared.arenas[worker as usize].lock()))
    }

    /// Sum of `outstanding()` across all worker arenas — zero whenever no
    /// parallel region is in flight, error paths included (the leak
    /// tests' invariant, now holding per region: a failed region discards
    /// its own results while concurrent regions proceed).
    pub fn outstanding(&self) -> usize {
        self.shared
            .arenas
            .iter()
            .map(|a| relock(a.lock()).outstanding())
            .sum()
    }

    /// Sum of parked buffers across all worker arenas.
    pub fn pooled(&self) -> usize {
        self.shared
            .arenas
            .iter()
            .map(|a| relock(a.lock()).pooled())
            .sum()
    }

    /// Sum of fresh checkouts across all worker arenas since the last
    /// [`Self::reset_stats`].
    pub fn fresh(&self) -> usize {
        self.shared
            .arenas
            .iter()
            .map(|a| relock(a.lock()).stats().fresh())
            .sum()
    }

    /// Per-shape checkout counters aggregated across all worker arenas
    /// (the `/v1/metrics` `basilisk_arena_*` families' raw material).
    pub fn arena_stats(&self) -> basilisk_types::ArenaStats {
        let mut total = basilisk_types::ArenaStats::default();
        for a in &self.shared.arenas {
            total.merge(&relock(a.lock()).stats());
        }
        total
    }

    /// Zero every worker arena's counters (pools stay warm).
    pub fn reset_stats(&self) {
        for a in &self.shared.arenas {
            relock(a.lock()).reset_stats();
        }
    }

    /// Snapshot the region-scheduling counters: regions admitted, slot
    /// waits (count, total time, histogram) and the concurrency
    /// high-water mark. The serving layer surfaces these as its
    /// region-occupancy stats.
    pub fn region_stats(&self) -> RegionStats {
        let (slots, max_concurrent) = {
            let st = relock(self.shared.state.lock());
            (st.slots.len() as u64, st.max_active)
        };
        let waits = self.counters.wait_hist.snapshot();
        RegionStats {
            regions: self.counters.regions.load(Ordering::Relaxed),
            waits: self.counters.waits.load(Ordering::Relaxed),
            wait_total_micros: waits.total_micros,
            wait_buckets: waits.buckets,
            slots,
            max_concurrent,
        }
    }

    /// Snapshot the execution counters: tasks run (steals separately),
    /// park/notify traffic, and per-arena busy time. The `/v1/metrics`
    /// route renders these as the `basilisk_sched_*` families.
    pub fn sched_stats(&self) -> SchedStats {
        let c = &self.shared.counters;
        SchedStats {
            workers: self.workers as u64,
            tasks: c.tasks.load(Ordering::Relaxed),
            steals: c.steals.load(Ordering::Relaxed),
            parks: c.parks.load(Ordering::Relaxed),
            notifies: c.notifies.load(Ordering::Relaxed),
            busy_micros: c
                .busy_micros
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = relock(self.shared.state.lock());
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in relock(self.handles.lock()).drain(..) {
            let _ = h.join();
        }
    }
}

// The handoff model rests on arenas being movable into the resident
// workers and on the pool being shareable across sessions; keep both
// properties pinned at compile time.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}
    assert_send::<MaskArena>();
    assert_send::<WorkerPool>();
    assert_sync::<WorkerPool>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use basilisk_types::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    #[test]
    fn results_come_back_in_task_order() {
        let pool = WorkerPool::new(4).with_morsel_rows(64);
        let tasks: Vec<usize> = (0..40).collect();
        let out = pool
            .run(tasks, |_ctx, t| Ok(t * 10), |_a, _r: usize| {})
            .unwrap();
        assert_eq!(out.len(), 40);
        for (i, (_w, r)) in out.iter().enumerate() {
            assert_eq!(*r, i * 10);
        }
        // Which workers actually ran is machine-dependent (on a busy or
        // single-core host, one worker can legally drain every deque by
        // stealing before the other threads are scheduled), so only the
        // worker-id *range* is pinned here; order and completeness above
        // are the real contract.
        assert!(out.iter().all(|&(w, _)| (w as usize) < pool.workers()));
    }

    #[test]
    fn single_worker_runs_inline() {
        let pool = WorkerPool::new(1);
        let main_thread = std::thread::current().id();
        let out = pool
            .run(
                vec![1u32, 2, 3],
                |ctx, t| {
                    assert_eq!(std::thread::current().id(), main_thread);
                    assert_eq!(ctx.worker, 0);
                    Ok(t + 1)
                },
                |_a, _r: u32| {},
            )
            .unwrap();
        assert_eq!(
            out.into_iter().map(|(_, r)| r).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn single_task_runs_inline_even_with_many_workers() {
        let pool = WorkerPool::new(8);
        let main_thread = std::thread::current().id();
        let out = pool
            .run(
                vec![7usize],
                |ctx, t| {
                    assert_eq!(std::thread::current().id(), main_thread);
                    // The inline path owns the dedicated trailing arena,
                    // so tiny queries never contend with resident
                    // workers mid-region.
                    assert_eq!(ctx.worker, pool.workers());
                    Ok(t)
                },
                |_a, _r: usize| {},
            )
            .unwrap();
        assert_eq!(out, vec![(pool.workers() as u32, 7)]);
        // Results recycle home through the same id.
        let m = pool.with_arena(out[0].0, |a| a.mask(64));
        pool.with_arena(out[0].0, |a| a.recycle_mask(m));
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn empty_task_list() {
        let pool = WorkerPool::new(4);
        let out: Vec<(u32, ())> = pool
            .run(Vec::<()>::new(), |_, _| Ok(()), |_, _| {})
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn worker_arena_buffers_round_trip() {
        let pool = WorkerPool::new(3).with_morsel_rows(64);
        // Each task checks a mask out of its worker's arena and returns
        // it; the caller recycles into the producing arena.
        let out = pool
            .run(
                (0..12).collect::<Vec<usize>>(),
                |ctx, t| Ok(ctx.arena.mask(100 + t)),
                |a, m| a.recycle_mask(m),
            )
            .unwrap();
        assert_eq!(pool.outstanding(), 12, "12 masks live across arenas");
        for (w, m) in out {
            pool.with_arena(w, |a| a.recycle_mask(m));
        }
        assert_eq!(pool.outstanding(), 0, "all masks returned home");
        assert!(pool.pooled() >= 1);
    }

    /// Steady state per worker: when the same arena serves again (the
    /// deterministic single-worker pool), warm pools cover every
    /// checkout. (Across a multi-worker pool the *assignment* of tasks
    /// to workers is nondeterministic, so only per-arena — not global —
    /// freshness is guaranteed; the differential suite covers results.)
    #[test]
    fn warm_worker_pool_is_allocation_free() {
        let pool = WorkerPool::new(1);
        let serve = |pool: &WorkerPool| {
            let out = pool
                .run(
                    (0..5).collect::<Vec<usize>>(),
                    |ctx, t| Ok(ctx.arena.mask(100 + t)),
                    |a, m| a.recycle_mask(m),
                )
                .unwrap();
            for (w, m) in out {
                pool.with_arena(w, |a| a.recycle_mask(m));
            }
        };
        serve(&pool);
        assert!(pool.fresh() > 0, "first run warms the pool");
        pool.reset_stats();
        serve(&pool);
        assert_eq!(pool.fresh(), 0, "warm worker pool serves every checkout");
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn error_reports_lowest_index_and_discards_results() {
        let pool = WorkerPool::new(4).with_morsel_rows(64);
        let discarded = AtomicUsize::new(0);
        let err = pool
            .run(
                (0..20).collect::<Vec<usize>>(),
                |ctx, t| {
                    if t == 5 || t == 13 {
                        Err(BasiliskError::Exec(format!("boom {t}")))
                    } else {
                        Ok(ctx.arena.bitmap(64))
                    }
                },
                |a, bm| {
                    discarded.fetch_add(1, Ordering::Relaxed);
                    a.recycle_bitmap(bm);
                },
            )
            .unwrap_err();
        // Both failures may or may not be reached; the reported one must
        // be the lowest-index error among those that were.
        let msg = err.to_string();
        assert!(msg.contains("boom"), "{msg}");
        assert_eq!(
            pool.outstanding(),
            0,
            "every produced buffer was discarded into its own arena"
        );
        assert!(discarded.load(Ordering::Relaxed) <= 18);
    }

    #[test]
    fn error_on_inline_path_discards_too() {
        let pool = WorkerPool::new(1);
        let err = pool
            .run(
                vec![0usize, 1, 2],
                |ctx, t| {
                    if t == 2 {
                        Err(BasiliskError::Exec("late".into()))
                    } else {
                        Ok(ctx.arena.indices())
                    }
                },
                |a, v| a.recycle_indices(v),
            )
            .unwrap_err();
        assert!(err.to_string().contains("late"));
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn stealing_drains_a_stalled_owner() {
        // One worker's tasks are slow; the other must steal the fast ones
        // from the victim's block and everything still lands in order.
        let pool = WorkerPool::new(2).with_morsel_rows(64);
        let out = pool
            .run(
                (0..8).collect::<Vec<usize>>(),
                |_ctx, t| {
                    if t == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                    Ok(t)
                },
                |_a, _r: usize| {},
            )
            .unwrap();
        let values: Vec<usize> = out.iter().map(|&(_, r)| r).collect();
        assert_eq!(values, (0..8).collect::<Vec<_>>());
    }

    /// The resident property itself: across regions, the same worker id
    /// is served by the same OS thread (no per-region spawning), and the
    /// coordinator never executes task bodies — it publishes and waits.
    #[test]
    fn resident_threads_persist_across_regions() {
        use std::collections::HashMap;
        use std::thread::ThreadId;
        let pool = WorkerPool::new(3).with_morsel_rows(64);
        let main_thread = std::thread::current().id();
        let observe = || -> HashMap<usize, ThreadId> {
            let out = pool
                .run(
                    (0..24).collect::<Vec<usize>>(),
                    |ctx, _t| {
                        // Slow tasks down slightly so every worker gets a
                        // chance to participate on busy hosts.
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        Ok((ctx.worker, std::thread::current().id()))
                    },
                    |_a, _r: (usize, ThreadId)| {},
                )
                .unwrap();
            let mut map = HashMap::new();
            for (_, (w, tid)) in out {
                assert_ne!(tid, main_thread, "coordinator never runs task bodies");
                let prev = map.insert(w, tid);
                assert!(prev.is_none_or(|p| p == tid), "worker {w} switched threads");
            }
            map
        };
        let first = observe();
        let second = observe();
        for (w, tid) in &second {
            if let Some(prev) = first.get(w) {
                assert_eq!(prev, tid, "worker {w} migrated between regions");
            }
        }
    }

    /// One pool, shared by several client threads via `Arc`: regions
    /// interleave and every caller still gets its own results in task
    /// order.
    #[test]
    fn shared_pool_serves_concurrent_callers() {
        let pool = Arc::new(WorkerPool::new(3).with_morsel_rows(64));
        let mut handles = Vec::new();
        for c in 0..4u32 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for _round in 0..5 {
                    let out = pool
                        .run(
                            (0..16u32).collect::<Vec<u32>>(),
                            |_ctx, t| Ok(t * 2 + c * 1000),
                            |_a, _r: u32| {},
                        )
                        .unwrap();
                    let values: Vec<u32> = out.into_iter().map(|(_, r)| r).collect();
                    assert_eq!(
                        values,
                        (0..16u32).map(|t| t * 2 + c * 1000).collect::<Vec<_>>()
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.outstanding(), 0);
    }

    /// The tentpole property: two regions from different callers are in
    /// flight *simultaneously* — their tasks rendezvous on one barrier
    /// that can only be crossed if both regions' tasks run at the same
    /// time. Under exclusive-region admission this would deadlock.
    #[test]
    fn regions_interleave_across_callers() {
        let pool = Arc::new(WorkerPool::new(4).with_morsel_rows(64));
        let barrier = Arc::new(Barrier::new(4));
        let mut handles = Vec::new();
        for caller in 0..2u32 {
            let pool = Arc::clone(&pool);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let out = pool
                    .run(
                        vec![0u32, 1],
                        |_ctx, t| {
                            barrier.wait();
                            Ok(caller * 10 + t)
                        },
                        |_a, _r: u32| {},
                    )
                    .unwrap();
                let values: Vec<u32> = out.into_iter().map(|(_, r)| r).collect();
                assert_eq!(values, vec![caller * 10, caller * 10 + 1]);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = pool.region_stats();
        assert_eq!(stats.regions, 2);
        assert_eq!(stats.max_concurrent, 2, "both regions were live at once");
        assert_eq!(stats.waits, 0, "default table never fills with 2 regions");
        assert_eq!(pool.outstanding(), 0);
    }

    /// Per-region error isolation: a failure in one region discards only
    /// that region's results; a concurrent region completes untouched and
    /// every arena settles back to `outstanding() == 0`.
    #[test]
    fn failing_region_leaves_concurrent_region_intact() {
        let pool = Arc::new(WorkerPool::new(4).with_morsel_rows(64));
        let barrier = Arc::new(Barrier::new(4));
        let ok_pool = Arc::clone(&pool);
        let ok_barrier = Arc::clone(&barrier);
        let ok = std::thread::spawn(move || {
            let out = ok_pool
                .run(
                    vec![0usize, 1],
                    |ctx, t| {
                        ok_barrier.wait();
                        Ok(ctx.arena.mask(64 + t))
                    },
                    |a, m| a.recycle_mask(m),
                )
                .unwrap();
            assert_eq!(out.len(), 2, "healthy region completed fully");
            for (w, m) in out {
                ok_pool.with_arena(w, |a| a.recycle_mask(m));
            }
        });
        let err_pool = Arc::clone(&pool);
        let err_barrier = Arc::clone(&barrier);
        let failing = std::thread::spawn(move || {
            let err = err_pool
                .run(
                    vec![0usize, 1],
                    |ctx, t| {
                        err_barrier.wait();
                        if t == 1 {
                            Err(BasiliskError::Exec("one region fails".into()))
                        } else {
                            Ok(ctx.arena.bitmap(64))
                        }
                    },
                    |a, bm| a.recycle_bitmap(bm),
                )
                .unwrap_err();
            assert!(err.to_string().contains("one region fails"));
        });
        ok.join().unwrap();
        failing.join().unwrap();
        assert_eq!(pool.outstanding(), 0, "both regions settled their arenas");
    }

    /// A one-slot region table restores exclusive admission: overlapping
    /// callers serialize, and the wait is counted and timed.
    #[test]
    fn single_slot_table_serializes_and_counts_waits() {
        let pool = Arc::new(WorkerPool::new(2).with_morsel_rows(64).with_region_slots(1));
        let entered = Arc::new(Barrier::new(2));
        let first_pool = Arc::clone(&pool);
        let first_entered = Arc::clone(&entered);
        let first = std::thread::spawn(move || {
            first_pool
                .run(
                    vec![0u32, 1],
                    |_ctx, t| {
                        if t == 0 {
                            // Hold the only slot until the main thread is
                            // provably inside its own `run` call…
                            first_entered.wait();
                            std::thread::sleep(std::time::Duration::from_millis(30));
                        }
                        Ok(t)
                    },
                    |_a, _r: u32| {},
                )
                .unwrap();
        });
        // …which cannot admit a region until the first one retires.
        entered.wait();
        pool.run(vec![0u32, 1], |_ctx, t| Ok(t), |_a, _r: u32| {})
            .unwrap();
        first.join().unwrap();
        let stats = pool.region_stats();
        assert_eq!(stats.slots, 1);
        assert_eq!(stats.regions, 2);
        assert_eq!(stats.max_concurrent, 1, "one slot admits one region");
        assert!(stats.waits >= 1, "the second region waited for the slot");
        assert!(stats.wait_total_micros > 0);
        assert_eq!(
            stats.wait_buckets.iter().sum::<u64>(),
            stats.waits,
            "every wait lands in exactly one histogram bucket"
        );
    }

    /// `run_pair` ships two heterogeneous jobs as one region: both
    /// results come back tagged, serial pools run `fa` before `fb`, and a
    /// failure routes the surviving result through its discard hook.
    #[test]
    fn run_pair_returns_both_and_discards_on_failure() {
        // Serial ordering: fa strictly before fb.
        let serial = WorkerPool::new(1);
        let order = Mutex::new(Vec::new());
        let ((_, a), (_, b)) = serial
            .run_pair(
                |_ctx| {
                    relock(order.lock()).push('a');
                    Ok(1u32)
                },
                |_ctx| {
                    relock(order.lock()).push('b');
                    Ok("two")
                },
                |_a, _r| {},
                |_a, _r| {},
            )
            .unwrap();
        assert_eq!((a, b), (1, "two"));
        assert_eq!(*relock(order.lock()), vec!['a', 'b']);

        // Parallel: results carry producing workers; buffers recycle home.
        let pool = WorkerPool::new(3).with_morsel_rows(64);
        let ((wa, ma), (wb, mb)) = pool
            .run_pair(
                |ctx| Ok(ctx.arena.mask(128)),
                |ctx| Ok(ctx.arena.mask(256)),
                |a, m| a.recycle_mask(m),
                |a, m| a.recycle_mask(m),
            )
            .unwrap();
        assert_eq!(pool.outstanding(), 2);
        pool.with_arena(wa, |a| a.recycle_mask(ma));
        pool.with_arena(wb, |a| a.recycle_mask(mb));
        assert_eq!(pool.outstanding(), 0);

        // Failure in fb discards fa's already-produced result.
        let err = pool
            .run_pair(
                |ctx| Ok(ctx.arena.indices()),
                |_ctx| -> Result<u32> { Err(BasiliskError::Exec("pair b failed".into())) },
                |a, v| a.recycle_indices(v),
                |_a, _r| {},
            )
            .unwrap_err();
        assert!(err.to_string().contains("pair b failed"));
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn default_workers_parses_env_shape() {
        // Not asserting the ambient value (the test runner may set the
        // env); just pin that the function never returns zero.
        assert!(WorkerPool::default_workers() >= 1);
    }

    #[test]
    fn morsels_and_would_parallelize() {
        let pool = WorkerPool::new(4).with_morsel_rows(128);
        assert_eq!(pool.morsels(300).len(), 3);
        assert!(pool.would_parallelize(300));
        assert!(!pool.would_parallelize(128));
        assert!(!WorkerPool::new(1).would_parallelize(1 << 20));
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn bad_morsel_size_panics() {
        let _ = WorkerPool::new(2).with_morsel_rows(100);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_region_slots_panics() {
        let _ = WorkerPool::new(2).with_region_slots(0);
    }

    /// Execution counters on the inline path: every task counted, busy
    /// time attributed to the inline arena, no fanned-region traffic.
    #[test]
    fn sched_stats_counts_inline_tasks() {
        let pool = WorkerPool::new(1);
        pool.run(
            (0..5).collect::<Vec<usize>>(),
            |_ctx, t| {
                std::thread::sleep(std::time::Duration::from_micros(50));
                Ok(t)
            },
            |_a, _r: usize| {},
        )
        .unwrap();
        let stats = pool.sched_stats();
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.tasks, 5);
        assert_eq!(stats.steals, 0);
        assert_eq!(stats.notifies, 0, "inline runs publish no region");
        assert_eq!(stats.busy_micros.len(), 1);
        assert!(stats.busy_micros[0] > 0, "inline busy time accrues");
    }

    /// Execution counters on the fanned path: tasks counted exactly,
    /// a notify per region, busy time somewhere in the resident set, and
    /// the coordinator thread observes its region's id.
    #[test]
    fn sched_stats_and_region_id_on_fanned_runs() {
        let pool = WorkerPool::new(2).with_morsel_rows(64);
        assert_eq!(last_region_id(), 0, "no region fanned out yet");
        pool.run(
            (0..8).collect::<Vec<usize>>(),
            |_ctx, t| Ok(t),
            |_a, _r: usize| {},
        )
        .unwrap();
        let first = last_region_id();
        assert!(first >= 1, "coordinator recorded its region id");
        pool.run(
            (0..8).collect::<Vec<usize>>(),
            |_ctx, t| Ok(t),
            |_a, _r: usize| {},
        )
        .unwrap();
        assert!(last_region_id() > first, "region ids are never reused");
        let stats = pool.sched_stats();
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.tasks, 16, "every task counted exactly once");
        assert_eq!(stats.notifies, 2, "one wakeup broadcast per region");
        assert_eq!(stats.busy_micros.len(), 3, "2 workers + inline arena");
        assert!(pool.sched_stats() == stats, "snapshot is stable at rest");
    }
}
