//! Join-build hashing: a fast non-cryptographic hasher and a CSR-layout
//! build table.
//!
//! The paper's execution cost is dominated by hash joins (§2.5.3). Two
//! things make the std-default approach slow on this hot path: SipHash
//! (DoS-resistant, but ~4× the cost of a multiply-rotate hash for small
//! keys) and a `HashMap<Value, Vec<u32>>` build layout that allocates one
//! `Vec` per distinct key. This module replaces both:
//!
//! * [`FxHasher`] — the rustc-hash multiply-rotate scheme (the same
//!   function rustc itself uses for interning); join keys are not
//!   attacker-controlled, so DoS resistance buys nothing here.
//! * [`JoinTable`] — a two-pass build producing a CSR (offsets + one flat
//!   row array) layout: key → contiguous `&[u32]` of build rows, with
//!   exactly three allocations regardless of key count.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use basilisk_storage::Column;
use basilisk_types::Value;

use crate::relation::join_key;

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-hash ("FxHash") 64-bit hasher: fold each word in with a
/// rotate-xor-multiply. Not DoS-resistant — use only for keys the query
/// engine itself produces.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            self.add(u64::from_le_bytes(bytes[..8].try_into().unwrap()));
            bytes = &bytes[8..];
        }
        if !bytes.is_empty() {
            let mut tail = [0u8; 8];
            tail[..bytes.len()].copy_from_slice(bytes);
            // Length byte keeps "ab" + "c" distinct from "a" + "bc".
            tail[7] = bytes.len() as u8;
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }
}

/// `BuildHasher` plugging [`FxHasher`] into std collections.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// The build side of a hash join in CSR layout: `probe(key)` returns the
/// contiguous slice of build-row ids carrying that key. NULL keys are
/// skipped at build time (SQL equi-joins never match NULLs).
pub struct JoinTable {
    key_ids: FxHashMap<Value, u32>,
    /// `rows[offsets[k]..offsets[k+1]]` are the rows of key id `k`.
    offsets: Vec<u32>,
    rows: Vec<u32>,
}

impl JoinTable {
    /// Build from a key column; entry `j` of the column corresponds to
    /// build row `row_of(j)` (identity for plain joins, a position table
    /// for tagged joins evaluating over a union of slices).
    pub fn build(keys: &Column, row_of: impl Fn(usize) -> u32) -> JoinTable {
        // Pass 1: intern keys, remember each emitted row's key id.
        let mut key_ids: FxHashMap<Value, u32> = FxHashMap::default();
        let mut emitted: Vec<(u32, u32)> = Vec::with_capacity(keys.len());
        for j in 0..keys.len() {
            if let Some(k) = join_key(keys, j) {
                let next = key_ids.len() as u32;
                let id = *key_ids.entry(k).or_insert(next);
                emitted.push((row_of(j), id));
            }
        }
        // Pass 2: counting sort into one flat row array.
        let mut offsets = vec![0u32; key_ids.len() + 1];
        for &(_, id) in &emitted {
            offsets[id as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor = offsets.clone();
        let mut rows = vec![0u32; emitted.len()];
        for &(row, id) in &emitted {
            let c = &mut cursor[id as usize];
            rows[*c as usize] = row;
            *c += 1;
        }
        JoinTable {
            key_ids,
            offsets,
            rows,
        }
    }

    /// Build rows matching `key` (empty when absent or NULL).
    pub fn probe(&self, key: &Value) -> &[u32] {
        if key.is_null() {
            return &[];
        }
        match self.key_ids.get(key) {
            Some(&id) => {
                let (s, e) = (self.offsets[id as usize], self.offsets[id as usize + 1]);
                &self.rows[s as usize..e as usize]
            }
            None => &[],
        }
    }

    /// Number of distinct non-NULL keys.
    pub fn num_keys(&self) -> usize {
        self.key_ids.len()
    }

    /// Number of build rows stored.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basilisk_storage::ColumnBuilder;
    use basilisk_types::DataType;

    #[test]
    fn csr_groups_rows_by_key() {
        let keys = Column::from_ints(vec![7, 3, 7, 9, 3, 7]);
        let table = JoinTable::build(&keys, |j| j as u32);
        assert_eq!(table.num_keys(), 3);
        assert_eq!(table.num_rows(), 6);
        let mut sevens = table.probe(&Value::Int(7)).to_vec();
        sevens.sort_unstable();
        assert_eq!(sevens, vec![0, 2, 5]);
        assert_eq!(table.probe(&Value::Int(3)).len(), 2);
        assert_eq!(table.probe(&Value::Int(9)), &[3]);
        assert_eq!(table.probe(&Value::Int(4)), &[] as &[u32]);
    }

    #[test]
    fn nulls_are_never_stored_or_matched() {
        let mut b = ColumnBuilder::new(DataType::Int);
        for v in [Value::Int(1), Value::Null, Value::Int(1)] {
            b.push(v).unwrap();
        }
        let keys = b.finish();
        let table = JoinTable::build(&keys, |j| j as u32);
        assert_eq!(table.num_rows(), 2);
        assert_eq!(table.probe(&Value::Null), &[] as &[u32]);
        assert_eq!(table.probe(&Value::Int(1)).len(), 2);
    }

    #[test]
    fn row_mapping_applies() {
        let keys = Column::from_ints(vec![5, 5]);
        let positions = [40u32, 90];
        let table = JoinTable::build(&keys, |j| positions[j]);
        let mut rows = table.probe(&Value::Int(5)).to_vec();
        rows.sort_unstable();
        assert_eq!(rows, vec![40, 90]);
    }

    #[test]
    fn string_and_float_keys() {
        let keys = Column::from_strs(&["a", "b", "a"]);
        let table = JoinTable::build(&keys, |j| j as u32);
        assert_eq!(table.probe(&Value::from("a")).len(), 2);
        let keys = Column::from_floats(vec![1.5, 1.5, 2.0]);
        let table = JoinTable::build(&keys, |j| j as u32);
        assert_eq!(table.probe(&Value::Float(1.5)).len(), 2);
    }

    #[test]
    fn fx_hasher_distinguishes_lengths() {
        use std::hash::Hasher;
        let mut a = FxHasher::default();
        a.write(b"ab");
        a.write(b"c");
        let mut b = FxHasher::default();
        b.write(b"a");
        b.write(b"bc");
        // Not a hard guarantee for every input, but the length-tagged tail
        // makes this canonical pair differ.
        assert_ne!(a.finish(), b.finish());
    }
}
