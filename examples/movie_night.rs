//! A fuller tour on the synthetic IMDB-like dataset: run one of the 33
//! disjunctive JOB-style query groups under every planner and compare.
//!
//! Run with: `cargo run --release --example movie_night [-- <group 1..33>]`

use basilisk::{factor_common_conjuncts, Catalog, PlannerKind, QuerySession, Result};
use basilisk_workload::{generate_imdb, job_query, ImdbConfig};

fn main() -> Result<()> {
    let group: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20); // the paper's superhero group

    println!("generating IMDB-like data (scale 0.2)…");
    let mut catalog = Catalog::new();
    for t in generate_imdb(&ImdbConfig {
        scale: 0.2,
        seed: 42,
    })? {
        catalog.add_table(t)?;
    }

    let jq = job_query(group, 42);
    println!("\n== {} ==", jq.label);
    println!("predicate: {}\n", jq.query.predicate.as_ref().unwrap());

    // The disjunctive (OR-rooted) form: BDisj vs the tagged planners.
    let session = QuerySession::new(&catalog, jq.query.clone())?;
    println!(
        "{:>11} {:>12} {:>12} {:>8}",
        "planner", "plan(µs)", "exec(ms)", "rows"
    );
    for kind in [
        PlannerKind::BDisj,
        PlannerKind::TPushdown,
        PlannerKind::TPullup,
        PlannerKind::TIterPush,
        PlannerKind::TCombined,
    ] {
        let (out, t) = session.run(kind)?;
        println!(
            "{:>11} {:>12.0} {:>12.2} {:>8}",
            kind.name(),
            t.planning.as_secs_f64() * 1e6,
            t.execution.as_secs_f64() * 1e3,
            out.count()
        );
    }

    // The factored (AND-rooted) form the paper uses for BPushConj.
    let mut factored = jq.query.clone();
    factored.predicate = Some(factor_common_conjuncts(
        jq.query.predicate.as_ref().unwrap(),
    ));
    println!(
        "\nfactored predicate: {}\n",
        factored.predicate.as_ref().unwrap()
    );
    let session = QuerySession::new(&catalog, factored)?;
    for kind in [
        PlannerKind::BPushConj,
        PlannerKind::TPushConj,
        PlannerKind::TCombined,
    ] {
        let (out, t) = session.run(kind)?;
        println!(
            "{:>11} {:>12.0} {:>12.2} {:>8}",
            kind.name(),
            t.planning.as_secs_f64() * 1e6,
            t.execution.as_secs_f64() * 1e3,
            out.count()
        );
    }

    println!("\nchosen tagged plan:\n{}", {
        let plan = session.plan(PlannerKind::TCombined)?;
        session.explain(&plan)
    });
    Ok(())
}
