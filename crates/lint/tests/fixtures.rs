//! Pins every lint rule against minimal passing/failing samples in
//! `tests/fixtures/` (which the workspace walker deliberately skips).
//! Each failing fixture must fire exactly its rule; each passing one
//! must stay clean — so a rule can neither silently stop firing nor
//! start flagging compliant code.

#![forbid(unsafe_code)]

use std::path::Path;

use basilisk_lint::{
    lint_source, Finding, Rules, RULE_ENCODED, RULE_FACADE, RULE_FORBID, RULE_SAFETY, RULE_SLEEP,
};

fn run(fixture: &str, rules: Rules) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    let src = std::fs::read_to_string(&path).expect("fixture exists");
    lint_source(Path::new(fixture), &src, &rules)
}

fn all_rules() -> Rules {
    Rules {
        safety: true,
        forbid: false, // fixtures are not crate roots unless the test says so
        facade: false,
        sleep: true,
        encoded: false,
    }
}

#[test]
fn safety_block_passes() {
    assert!(run("pass_safety_block.rs", all_rules()).is_empty());
}

#[test]
fn missing_safety_fires() {
    let f = run("fail_missing_safety.rs", all_rules());
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, RULE_SAFETY);
    assert_eq!(f[0].line, 4);
}

#[test]
fn unsafe_fn_doc_section_passes() {
    assert!(run("pass_unsafe_fn_doc.rs", all_rules()).is_empty());
}

#[test]
fn undocumented_unsafe_impl_fires() {
    let f = run("fail_unsafe_impl.rs", all_rules());
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, RULE_SAFETY);
}

#[test]
fn direct_mutex_import_fires() {
    let rules = Rules {
        facade: true,
        ..all_rules()
    };
    let f = run("fail_direct_mutex.rs", rules);
    assert_eq!(f.len(), 2, "use group and inline path: {f:?}");
    assert!(f.iter().all(|x| x.rule == RULE_FACADE));
    assert_eq!(f[0].line, 4);
    assert_eq!(f[1].line, 6);
}

#[test]
fn facade_imports_pass() {
    let rules = Rules {
        facade: true,
        ..all_rules()
    };
    assert!(run("pass_facade_sync.rs", rules).is_empty());
}

#[test]
fn production_sleep_fires() {
    let f = run("fail_sleep.rs", all_rules());
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, RULE_SLEEP);
    assert_eq!(f[0].line, 6);
}

#[test]
fn sleep_inside_cfg_test_module_passes() {
    assert!(run("pass_sleep_in_tests.rs", all_rules()).is_empty());
}

#[test]
fn missing_forbid_fires() {
    let rules = Rules {
        forbid: true,
        ..all_rules()
    };
    let f = run("fail_missing_forbid.rs", rules);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, RULE_FORBID);
}

#[test]
fn forbid_present_passes() {
    let rules = Rules {
        forbid: true,
        ..all_rules()
    };
    assert!(run("pass_forbid.rs", rules).is_empty());
}

#[test]
fn encoded_raw_accessor_fires() {
    let rules = Rules {
        encoded: true,
        ..all_rules()
    };
    let f = run("fail_encoded_internals.rs", rules);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, RULE_ENCODED);
    assert_eq!(f[0].line, 8, "the call fires, not the string literal");
}

#[test]
fn encoded_public_api_passes() {
    let rules = Rules {
        encoded: true,
        ..all_rules()
    };
    assert!(run("pass_encoded_api.rs", rules).is_empty());
}

/// The linter over the real workspace — the same invocation CI runs —
/// must be clean. Running it as a test too means `cargo test` alone
/// catches a violation before CI does.
#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let findings = basilisk_lint::lint_workspace(root);
    assert!(
        findings.is_empty(),
        "workspace lint findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
