//! The schedule-exploration driver CI runs (`check-model` job) and the
//! replay tool for its findings.
//!
//! ```text
//! RUSTFLAGS='--cfg basilisk_check' cargo run --release -p basilisk-check --bin check_model -- \
//!     [--seeds N] [--seed S] [--scenario NAME] [--canary] [--stall-millis MS] [--list] [--verbose]
//! ```
//!
//! Default mode runs every scenario under seeds `0..N` (default 1000)
//! and exits nonzero if any run fails, printing each finding with the
//! exact `--scenario NAME --seed S` command that replays it. `--seed`
//! replays a single seed with the panic hook live so the full assertion
//! and backtrace are visible. `--canary` arms the sched retirement
//! mutation and fails unless the corpus catches it — proof the checker
//! still detects protocol breakage.

#![forbid(unsafe_code)]

#[cfg(not(basilisk_check))]
fn main() -> std::process::ExitCode {
    eprintln!(
        "check_model does nothing in a normal build: the sync facade compiled to plain \
         std::sync aliases.\nRebuild with the instrumented runtime:\n\n    \
         RUSTFLAGS='--cfg basilisk_check' cargo run --release -p basilisk-check --bin check_model"
    );
    std::process::ExitCode::from(2)
}

#[cfg(basilisk_check)]
fn main() -> std::process::ExitCode {
    real::main()
}

#[cfg(basilisk_check)]
mod real {
    use std::process::ExitCode;

    use basilisk_check::scenarios::{self, Scenario};
    use basilisk_check::{quiet_panics, run_corpus, run_seed};
    use basilisk_types::sync::check;

    struct Args {
        seeds: u64,
        seed: Option<u64>,
        scenario: Option<String>,
        canary: bool,
        stall_millis: u64,
        list: bool,
        verbose: bool,
    }

    fn usage() -> ! {
        eprintln!(
            "usage: check_model [--seeds N] [--seed S] [--scenario NAME] [--canary] \
             [--stall-millis MS] [--list] [--verbose]"
        );
        std::process::exit(2)
    }

    fn parse_args() -> Args {
        let mut args = Args {
            seeds: 1000,
            seed: None,
            scenario: None,
            canary: false,
            stall_millis: 2000,
            list: false,
            verbose: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut num = |name: &str| -> u64 {
                it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("{name} needs an integer argument");
                    usage()
                })
            };
            match flag.as_str() {
                "--seeds" => args.seeds = num("--seeds"),
                "--seed" => args.seed = Some(num("--seed")),
                "--stall-millis" => args.stall_millis = num("--stall-millis"),
                "--scenario" => args.scenario = it.next().or_else(|| usage()),
                "--canary" => args.canary = true,
                "--list" => args.list = true,
                "--verbose" => args.verbose = true,
                "--help" | "-h" => usage(),
                other => {
                    eprintln!("unknown flag: {other}");
                    usage()
                }
            }
        }
        args
    }

    fn selected(args: &Args) -> Vec<&'static Scenario> {
        match &args.scenario {
            None => scenarios::ALL.iter().collect(),
            Some(name) => match scenarios::find(name) {
                Some(s) => vec![s],
                None => {
                    eprintln!("unknown scenario `{name}` — available:");
                    for s in scenarios::ALL {
                        eprintln!("  {}", s.name);
                    }
                    std::process::exit(2);
                }
            },
        }
    }

    pub fn main() -> ExitCode {
        let args = parse_args();
        if args.list {
            for s in scenarios::ALL {
                println!("{:14} {}", s.name, s.about);
            }
            return ExitCode::SUCCESS;
        }
        check::set_stall_millis(args.stall_millis);
        let picked = selected(&args);

        // Single-seed replay: leave the panic hook alone so the full
        // assertion message and backtrace reach the user.
        if let Some(seed) = args.seed {
            let mut failed = false;
            for s in &picked {
                println!("replaying {} under seed {seed}…", s.name);
                match run_seed(s, seed) {
                    None => println!("  clean"),
                    Some(f) => {
                        println!("  FAILED: {}", f.message);
                        failed = true;
                    }
                }
            }
            return if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            };
        }

        if args.canary {
            return canary(&args);
        }

        let report = quiet_panics(|| {
            let mut report = basilisk_check::CorpusReport::default();
            let chunk = 100u64.min(args.seeds.max(1));
            let mut next = 0u64;
            while next < args.seeds && report.findings.len() < 5 {
                let hi = (next + chunk).min(args.seeds);
                let part = run_corpus(&picked, next..hi, 5 - report.findings.len());
                report.runs += part.runs;
                report.findings.extend(part.findings);
                if args.verbose {
                    eprintln!(
                        "… seeds {next}..{hi}: {} runs, {} findings",
                        report.runs,
                        report.findings.len()
                    );
                }
                next = hi;
            }
            report
        });

        if report.is_clean() {
            println!(
                "check_model: clean — {} runs ({} scenarios × {} seeds)",
                report.runs,
                picked.len(),
                args.seeds
            );
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "check_model: {} finding(s) in {} runs:",
                report.findings.len(),
                report.runs
            );
            for f in &report.findings {
                eprintln!("{f}");
            }
            ExitCode::FAILURE
        }
    }

    /// Mutation canary: break the region-retirement protocol on purpose
    /// (collect results *before* the retirement wait) and demand the
    /// corpus notices. If the explorer can no longer catch a protocol
    /// mutation this blunt, it has rotted — fail CI.
    fn canary(args: &Args) -> ExitCode {
        let region_scenarios: Vec<&'static Scenario> = scenarios::ALL
            .iter()
            .filter(|s| s.name.starts_with("region"))
            .collect();
        let seeds = args.seeds.min(64).max(1);

        basilisk_sched::canary::set_collect_before_retire(true);
        let armed = quiet_panics(|| run_corpus(&region_scenarios, 0..seeds, 1));
        basilisk_sched::canary::set_collect_before_retire(false);

        let Some(caught) = armed.findings.first() else {
            eprintln!(
                "canary NOT detected in {} runs — the explorer failed to catch a deliberate \
                 retirement-protocol mutation; the checker has rotted",
                armed.runs
            );
            return ExitCode::FAILURE;
        };
        println!(
            "canary caught: scenario {} at seed {} ({})",
            caught.scenario, caught.seed, caught.message
        );

        // Disarmed, the same seeds must be clean again.
        let clean = quiet_panics(|| run_corpus(&region_scenarios, 0..seeds.min(8), 1));
        if clean.is_clean() {
            println!("disarmed re-run clean — canary wiring verified");
            ExitCode::SUCCESS
        } else {
            eprintln!("still failing after disarm: {}", clean.findings[0]);
            ExitCode::FAILURE
        }
    }
}
