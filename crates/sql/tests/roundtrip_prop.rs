//! Property test: pretty-printing an expression and re-parsing it yields
//! a structurally identical predicate tree.

use basilisk_expr::{col, Expr, PredicateTree};
use basilisk_sql::parse_select;
use basilisk_types::Value;
use proptest::prelude::*;

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..100).prop_map(|v| col("t", "a").gt(v)),
        (0i64..100).prop_map(|v| col("t", "b").le(v)),
        any::<bool>().prop_map(|ci| {
            if ci {
                col("t", "s").ilike("%x_y%")
            } else {
                col("t", "s").like("100%")
            }
        }),
        Just(col("t", "s").eq("it's")),
        Just(col("t", "a").is_null()),
        Just(col("t", "a").in_list(vec![Value::Int(1), Value::Float(2.5), Value::from("z")])),
    ];
    leaf.prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::And),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::Or),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_parse_roundtrip(expr in expr_strategy()) {
        let sql = format!("SELECT * FROM t WHERE {expr}");
        let stmt = parse_select(&sql)
            .unwrap_or_else(|e| panic!("failed to re-parse `{sql}`: {e}"));
        let reparsed = stmt.predicate.expect("predicate survives");
        // Compare the normalized, interned forms — the printer may rely on
        // precedence rather than parentheses, so compare trees, not text.
        let a = PredicateTree::build(&expr);
        let b = PredicateTree::build(&reparsed);
        prop_assert_eq!(
            a.len(),
            b.len(),
            "tree sizes differ for `{}` vs `{}`",
            expr,
            reparsed
        );
        prop_assert_eq!(
            a.display(a.root()),
            b.display(b.root()),
            "rendered trees differ"
        );
    }
}
