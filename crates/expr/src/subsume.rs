//! Implication closure between atoms on the same column.
//!
//! The paper's planner "was intelligent enough to realize that titles
//! produced after 2000 are also produced after 1980" (§2.2) — i.e. it
//! reasons about subsumption between comparison predicates so that the
//! filter for `t.year > 1980` is never run on the `{t.year > 2000 = T}`
//! slice, and so that join tag maps recognize which slice pairings satisfy
//! the overall predicate. This module implements that reasoning as a
//! fixpoint closure over a set of truth assignments:
//!
//! * range subsumption between comparisons (`x < 5 ⇒ x < 10`,
//!   `x > 2000 = T ⇒ x > 1980 = T`, `x > 1980 = F ⇒ x > 2000 = F`),
//! * point/list reasoning for `=`, `<>` and `IN`,
//! * NULL interplay: any definite comparison result implies `IS NULL = F`;
//!   `IS NULL = T` forces every other predicate on the column to Unknown.
//!
//! Three-valued semantics of an assignment (§3.4): `P = T` means the row's
//! value is non-null and satisfies `P`; `P = F` means non-null and fails
//! `P`; `P = U` means the evaluation was unknown (a NULL was involved).

use std::collections::BTreeMap;

use basilisk_types::{Truth, Value};

use crate::atom::{Atom, CmpOp};
use crate::tree::{ExprId, PredicateTree};

/// Precomputed closure engine for one predicate tree.
pub struct Closure<'t> {
    tree: &'t PredicateTree,
    atoms: Vec<ExprId>,
}

impl<'t> Closure<'t> {
    pub fn new(tree: &'t PredicateTree) -> Self {
        Closure {
            tree,
            atoms: tree.atom_ids(),
        }
    }

    /// Extend `assignments` with every implied atom assignment, to
    /// fixpoint. Returns `false` if a contradiction was found (the
    /// constrained set is empty — e.g. `x < 5 = T` together with
    /// `x > 9 = T`), in which case `assignments` may be partially extended.
    pub fn close(&self, assignments: &mut BTreeMap<ExprId, Truth>) -> bool {
        loop {
            let mut changed = false;
            for &src in &self.atoms {
                let Some(&truth) = assignments.get(&src) else {
                    continue;
                };
                let src_atom = self.tree.atom(src).expect("atom id");
                for &dst in &self.atoms {
                    if dst == src || assignments.contains_key(&dst) {
                        continue;
                    }
                    let dst_atom = self.tree.atom(dst).expect("atom id");
                    if let Some(implied) = implied_truth(src_atom, truth, dst_atom) {
                        assignments.insert(dst, implied);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Consistency check: no pair of assignments may contradict.
        for (i, (&a, &ta)) in assignments.iter().enumerate() {
            let Some(atom_a) = self.tree.atom(a) else {
                continue;
            };
            for (&b, &tb) in assignments.iter().skip(i + 1) {
                let Some(atom_b) = self.tree.atom(b) else {
                    continue;
                };
                if let Some(implied) = implied_truth(atom_a, ta, atom_b) {
                    if implied != tb {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Would the closure of `assignments` determine `atom`? (Does not
    /// mutate the input.)
    pub fn implied(&self, assignments: &BTreeMap<ExprId, Truth>, atom: ExprId) -> Option<Truth> {
        if let Some(&t) = assignments.get(&atom) {
            return Some(t);
        }
        let mut work = assignments.clone();
        self.close(&mut work);
        work.get(&atom).copied()
    }
}

/// What does `(src = truth)` imply about `dst` (a different atom)?
/// `None` means no implication.
pub fn implied_truth(src: &Atom, truth: Truth, dst: &Atom) -> Option<Truth> {
    if src.column() != dst.column() {
        return None;
    }

    // NULL interplay first.
    match (src, truth) {
        (Atom::IsNull { .. }, Truth::True) => {
            // Value is NULL: every other predicate on this column is U.
            return match dst {
                Atom::IsNull { .. } => None, // same atom would have same id
                _ => Some(Truth::Unknown),
            };
        }
        (Atom::IsNull { .. }, Truth::False) => {
            // Non-null, but no range information.
            return None;
        }
        (_, Truth::Unknown) => {
            // The source predicate was unknown. For single-column atoms
            // with non-null literals this means the column value is NULL.
            if atom_unknown_means_null(src) {
                return match dst {
                    Atom::IsNull { .. } => Some(Truth::True),
                    _ if atom_unknown_means_null(dst) => Some(Truth::Unknown),
                    _ => None,
                };
            }
            return None;
        }
        _ => {}
    }

    // src has a definite (T/F) result ⇒ the value is non-null.
    if let Atom::IsNull { .. } = dst {
        return Some(Truth::False);
    }

    // Range / point / list reasoning over the non-null value.
    let src_set = ConstraintSet::from_atom(src, truth == Truth::True)?;
    let dst_true = ConstraintSet::from_atom(dst, true)?;
    if src_set.subset_of(&dst_true) {
        return Some(Truth::True);
    }
    let dst_false = ConstraintSet::from_atom(dst, false)?;
    if src_set.subset_of(&dst_false) {
        return Some(Truth::False);
    }
    None
}

/// Does an Unknown result for this atom imply the column value is NULL?
/// True for atoms whose literals are non-null (the only other source of
/// U would be a NULL column value).
fn atom_unknown_means_null(atom: &Atom) -> bool {
    match atom {
        Atom::Cmp { value, .. } => !value.is_null(),
        Atom::Like { .. } => true,
        Atom::IsNull { .. } => false, // IS NULL is never unknown
        Atom::InList { values, .. } => values.iter().all(|v| !v.is_null()),
    }
}

/// The set of non-null values satisfying an atom (or its negation).
enum ConstraintSet {
    /// `{x : x OP v}` for an order comparison.
    Range(CmpOp, Value),
    /// A finite set of values.
    Points(Vec<Value>),
    /// Complement of a finite set (over non-null values).
    NotPoints(Vec<Value>),
}

impl ConstraintSet {
    fn from_atom(atom: &Atom, positive: bool) -> Option<ConstraintSet> {
        match atom {
            Atom::Cmp { op, value, .. } => {
                if value.is_null() {
                    return None;
                }
                let op = if positive { *op } else { op.negate() };
                Some(match op {
                    CmpOp::Eq => ConstraintSet::Points(vec![value.clone()]),
                    CmpOp::Ne => ConstraintSet::NotPoints(vec![value.clone()]),
                    other => ConstraintSet::Range(other, value.clone()),
                })
            }
            Atom::InList { values, .. } => {
                if values.iter().any(Value::is_null) {
                    return None;
                }
                Some(if positive {
                    ConstraintSet::Points(values.clone())
                } else {
                    ConstraintSet::NotPoints(values.clone())
                })
            }
            // LIKE and IS NULL carry no ordered-set structure.
            Atom::Like { .. } | Atom::IsNull { .. } => None,
        }
    }

    /// Conservative subset test: `true` only when provably a subset.
    fn subset_of(&self, other: &ConstraintSet) -> bool {
        match (self, other) {
            (ConstraintSet::Range(op1, v1), ConstraintSet::Range(op2, v2)) => {
                range_implies(*op1, v1, *op2, v2)
            }
            (ConstraintSet::Points(ps), ConstraintSet::Range(op, v)) => {
                ps.iter().all(|p| point_satisfies(p, *op, v) == Some(true))
            }
            (ConstraintSet::Points(ps), ConstraintSet::Points(qs)) => ps
                .iter()
                .all(|p| qs.iter().any(|q| p.sql_eq(q) == Some(true))),
            (ConstraintSet::Points(ps), ConstraintSet::NotPoints(qs)) => ps
                .iter()
                .all(|p| qs.iter().all(|q| p.sql_eq(q) == Some(false))),
            (ConstraintSet::Range(op, v), ConstraintSet::NotPoints(qs)) => {
                qs.iter().all(|q| point_satisfies(q, *op, v) == Some(false))
            }
            // Complements of finite sets are unbounded; they are never
            // provably inside a range or a finite set.
            (ConstraintSet::NotPoints(_), _) => false,
            (ConstraintSet::Range(..), ConstraintSet::Points(_)) => false,
        }
    }
}

/// Is `{x : x op1 v1} ⊆ {x : x op2 v2}`? Conservative (false on
/// incomparable values).
fn range_implies(op1: CmpOp, v1: &Value, op2: CmpOp, v2: &Value) -> bool {
    use std::cmp::Ordering::*;
    let Some(ord) = v1.sql_cmp(v2) else {
        return false;
    };
    match (op1, op2) {
        (CmpOp::Lt, CmpOp::Lt) => ord != Greater, // v1 <= v2
        (CmpOp::Lt, CmpOp::Le) => ord != Greater,
        (CmpOp::Le, CmpOp::Le) => ord != Greater,
        (CmpOp::Le, CmpOp::Lt) => ord == Less, // v1 < v2
        (CmpOp::Gt, CmpOp::Gt) => ord != Less, // v1 >= v2
        (CmpOp::Gt, CmpOp::Ge) => ord != Less,
        (CmpOp::Ge, CmpOp::Ge) => ord != Less,
        (CmpOp::Ge, CmpOp::Gt) => ord == Greater, // v1 > v2
        _ => false,
    }
}

/// Does the point `p` satisfy `p op v`? (`None` when incomparable.)
fn point_satisfies(p: &Value, op: CmpOp, v: &Value) -> Option<bool> {
    use std::cmp::Ordering::*;
    let ord = p.sql_cmp(v)?;
    Some(match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{and, col, or, Expr};

    fn tree_of(e: &Expr) -> PredicateTree {
        PredicateTree::build(e)
    }

    fn atom_id(tree: &PredicateTree, text: &str) -> ExprId {
        tree.atom_ids()
            .into_iter()
            .find(|&id| tree.atom(id).unwrap().to_string() == text)
            .unwrap_or_else(|| panic!("no atom {text}"))
    }

    /// The paper's example: year > 2000 = T ⇒ year > 1980 = T.
    #[test]
    fn gt_subsumption_like_the_paper() {
        let e = or(vec![
            col("t", "year").gt(2000i64),
            col("t", "year").gt(1980i64),
        ]);
        let tree = tree_of(&e);
        let a2000 = atom_id(&tree, "t.year > 2000");
        let a1980 = atom_id(&tree, "t.year > 1980");
        let closure = Closure::new(&tree);

        let mut asg = BTreeMap::from([(a2000, Truth::True)]);
        assert!(closure.close(&mut asg));
        assert_eq!(asg.get(&a1980), Some(&Truth::True));

        // And the contrapositive: year > 1980 = F ⇒ year > 2000 = F.
        let mut asg = BTreeMap::from([(a1980, Truth::False)]);
        assert!(closure.close(&mut asg));
        assert_eq!(asg.get(&a2000), Some(&Truth::False));

        // But year > 2000 = F says nothing about year > 1980.
        let mut asg = BTreeMap::from([(a2000, Truth::False)]);
        assert!(closure.close(&mut asg));
        assert_eq!(asg.get(&a1980), None);
    }

    #[test]
    fn string_scores_subsume() {
        let e = or(vec![
            col("mi", "score").gt("8.0"),
            col("mi", "score").gt("7.0"),
        ]);
        let tree = tree_of(&e);
        let a8 = atom_id(&tree, "mi.score > '8.0'");
        let a7 = atom_id(&tree, "mi.score > '7.0'");
        let closure = Closure::new(&tree);
        let mut asg = BTreeMap::from([(a8, Truth::True)]);
        assert!(closure.close(&mut asg));
        assert_eq!(asg.get(&a7), Some(&Truth::True));
    }

    #[test]
    fn disjoint_ranges_imply_false() {
        let e = or(vec![col("t", "x").lt(5i64), col("t", "x").gt(9i64)]);
        let tree = tree_of(&e);
        let lt5 = atom_id(&tree, "t.x < 5");
        let gt9 = atom_id(&tree, "t.x > 9");
        let closure = Closure::new(&tree);
        let mut asg = BTreeMap::from([(lt5, Truth::True)]);
        assert!(closure.close(&mut asg));
        assert_eq!(asg.get(&gt9), Some(&Truth::False));
    }

    #[test]
    fn eq_point_implies_ranges() {
        let e = or(vec![
            col("t", "x").eq(7i64),
            col("t", "x").gt(5i64),
            col("t", "x").lt(6i64),
            col("t", "x").ne(7i64),
        ]);
        let tree = tree_of(&e);
        let closure = Closure::new(&tree);
        let mut asg = BTreeMap::from([(atom_id(&tree, "t.x = 7"), Truth::True)]);
        assert!(closure.close(&mut asg));
        assert_eq!(asg.get(&atom_id(&tree, "t.x > 5")), Some(&Truth::True));
        assert_eq!(asg.get(&atom_id(&tree, "t.x < 6")), Some(&Truth::False));
        assert_eq!(asg.get(&atom_id(&tree, "t.x <> 7")), Some(&Truth::False));
    }

    #[test]
    fn in_list_reasoning() {
        let e = or(vec![
            col("t", "x").in_list(vec![Value::Int(1), Value::Int(2)]),
            col("t", "x").lt(5i64),
            col("t", "x").in_list(vec![Value::Int(1), Value::Int(2), Value::Int(3)]),
        ]);
        let tree = tree_of(&e);
        let small = atom_id(&tree, "t.x IN (1, 2)");
        let big = atom_id(&tree, "t.x IN (1, 2, 3)");
        let lt5 = atom_id(&tree, "t.x < 5");
        let closure = Closure::new(&tree);
        let mut asg = BTreeMap::from([(small, Truth::True)]);
        assert!(closure.close(&mut asg));
        assert_eq!(asg.get(&lt5), Some(&Truth::True));
        assert_eq!(asg.get(&big), Some(&Truth::True));
        // Range excludes the whole list ⇒ IN = F.
        let mut asg = BTreeMap::from([(lt5, Truth::False)]);
        assert!(closure.close(&mut asg));
        assert_eq!(asg.get(&small), Some(&Truth::False));
        assert_eq!(
            asg.get(&big),
            Some(&Truth::False),
            "x >= 5 excludes all of 1,2,3"
        );
    }

    #[test]
    fn null_interplay() {
        let e = or(vec![
            col("t", "x").is_null(),
            col("t", "x").gt(5i64),
            col("t", "x").lt(3i64),
        ]);
        let tree = tree_of(&e);
        let isnull = atom_id(&tree, "t.x IS NULL");
        let gt5 = atom_id(&tree, "t.x > 5");
        let lt3 = atom_id(&tree, "t.x < 3");
        let closure = Closure::new(&tree);

        // IS NULL = T forces comparisons to U.
        let mut asg = BTreeMap::from([(isnull, Truth::True)]);
        assert!(closure.close(&mut asg));
        assert_eq!(asg.get(&gt5), Some(&Truth::Unknown));
        assert_eq!(asg.get(&lt3), Some(&Truth::Unknown));

        // A definite comparison result implies non-null.
        let mut asg = BTreeMap::from([(gt5, Truth::False)]);
        assert!(closure.close(&mut asg));
        assert_eq!(asg.get(&isnull), Some(&Truth::False));

        // An unknown comparison implies NULL, which cascades.
        let mut asg = BTreeMap::from([(gt5, Truth::Unknown)]);
        assert!(closure.close(&mut asg));
        assert_eq!(asg.get(&isnull), Some(&Truth::True));
        assert_eq!(asg.get(&lt3), Some(&Truth::Unknown));
    }

    #[test]
    fn contradiction_detected() {
        let e = or(vec![col("t", "x").lt(5i64), col("t", "x").gt(9i64)]);
        let tree = tree_of(&e);
        let lt5 = atom_id(&tree, "t.x < 5");
        let gt9 = atom_id(&tree, "t.x > 9");
        let closure = Closure::new(&tree);
        let mut asg = BTreeMap::from([(lt5, Truth::True), (gt9, Truth::True)]);
        assert!(!closure.close(&mut asg), "x<5 ∧ x>9 is unsatisfiable");
    }

    #[test]
    fn different_columns_do_not_interact() {
        let e = or(vec![col("t", "x").gt(5i64), col("t", "y").gt(1i64)]);
        let tree = tree_of(&e);
        let x = atom_id(&tree, "t.x > 5");
        let y = atom_id(&tree, "t.y > 1");
        let closure = Closure::new(&tree);
        let mut asg = BTreeMap::from([(x, Truth::True)]);
        assert!(closure.close(&mut asg));
        assert_eq!(asg.get(&y), None);
    }

    #[test]
    fn same_column_different_alias_does_not_interact() {
        // t1.x and t2.x are different columns even if named alike.
        let e = or(vec![col("t1", "x").gt(5i64), col("t2", "x").gt(1i64)]);
        let tree = tree_of(&e);
        let closure = Closure::new(&tree);
        let mut asg = BTreeMap::from([(atom_id(&tree, "t1.x > 5"), Truth::True)]);
        assert!(closure.close(&mut asg));
        assert_eq!(asg.len(), 1);
    }

    #[test]
    fn implied_probe_does_not_mutate() {
        let e = and(vec![col("t", "x").gt(5i64), col("t", "x").gt(3i64)]);
        let tree = tree_of(&e);
        let gt5 = atom_id(&tree, "t.x > 5");
        let gt3 = atom_id(&tree, "t.x > 3");
        let closure = Closure::new(&tree);
        let asg = BTreeMap::from([(gt5, Truth::True)]);
        assert_eq!(closure.implied(&asg, gt3), Some(Truth::True));
        assert_eq!(asg.len(), 1);
        assert_eq!(closure.implied(&asg, gt5), Some(Truth::True));
    }

    #[test]
    fn like_atoms_only_null_reasoning() {
        let e = or(vec![
            col("t", "s").like("%a%"),
            col("t", "s").like("%ab%"),
            col("t", "s").is_null(),
        ]);
        let tree = tree_of(&e);
        let a = atom_id(&tree, "t.s LIKE '%a%'");
        let ab = atom_id(&tree, "t.s LIKE '%ab%'");
        let closure = Closure::new(&tree);
        // No pattern subsumption (conservative)...
        let mut asg = BTreeMap::from([(ab, Truth::True)]);
        assert!(closure.close(&mut asg));
        assert_eq!(asg.get(&a), None);
        // ...but NULL reasoning applies.
        assert_eq!(asg.get(&atom_id(&tree, "t.s IS NULL")), Some(&Truth::False));
    }

    #[test]
    fn le_ge_boundaries() {
        let e = or(vec![
            col("t", "x").le(5i64),
            col("t", "x").lt(5i64),
            col("t", "x").ge(5i64),
            col("t", "x").gt(5i64),
            col("t", "x").le(6i64),
        ]);
        let tree = tree_of(&e);
        let closure = Closure::new(&tree);
        // x < 5 = T ⇒ x <= 5 = T, x <= 6 = T, x >= 5 = F, x > 5 = F.
        let mut asg = BTreeMap::from([(atom_id(&tree, "t.x < 5"), Truth::True)]);
        assert!(closure.close(&mut asg));
        assert_eq!(asg.get(&atom_id(&tree, "t.x <= 5")), Some(&Truth::True));
        assert_eq!(asg.get(&atom_id(&tree, "t.x <= 6")), Some(&Truth::True));
        assert_eq!(asg.get(&atom_id(&tree, "t.x >= 5")), Some(&Truth::False));
        assert_eq!(asg.get(&atom_id(&tree, "t.x > 5")), Some(&Truth::False));
        // x <= 5 = T does NOT imply x < 5.
        let mut asg = BTreeMap::from([(atom_id(&tree, "t.x <= 5"), Truth::True)]);
        assert!(closure.close(&mut asg));
        assert_eq!(asg.get(&atom_id(&tree, "t.x < 5")), None);
        assert_eq!(asg.get(&atom_id(&tree, "t.x > 5")), Some(&Truth::False));
    }
}
