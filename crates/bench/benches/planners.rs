//! Microbenchmarks: planning time per planner (the paper reports planning
//! at <0.1% of runtime except when TPullup's pull-one-node search grows
//! with the clause count, Fig. 4c).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use basilisk::{Catalog, PlannerKind, QuerySession};
use basilisk_workload::{dnf_query, generate_synthetic, job_queries, SyntheticConfig};
use basilisk_workload::{generate_imdb, ImdbConfig};

fn bench_synthetic_planning(c: &mut Criterion) {
    let cfg = SyntheticConfig {
        rows: 2_000,
        num_attrs: 7,
        zipf_shape: 1.5,
        seed: 5,
    };
    let mut catalog = Catalog::new();
    for t in generate_synthetic(&cfg).unwrap() {
        catalog.add_table(t).unwrap();
    }
    let mut group = c.benchmark_group("plan_synthetic_dnf");
    group.sample_size(20);
    for clauses in [2usize, 4, 7] {
        let q = dnf_query(clauses, 0.2, None);
        let session = QuerySession::new(&catalog, q).unwrap();
        for kind in [
            PlannerKind::TPushdown,
            PlannerKind::TPullup,
            PlannerKind::TPullupJoin,
            PlannerKind::TCombined,
            PlannerKind::BDisj,
        ] {
            group.bench_with_input(BenchmarkId::new(kind.name(), clauses), &clauses, |b, _| {
                b.iter(|| session.plan(kind).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_job_planning(c: &mut Criterion) {
    let mut catalog = Catalog::new();
    for t in generate_imdb(&ImdbConfig {
        scale: 0.05,
        seed: 5,
    })
    .unwrap()
    {
        catalog.add_table(t).unwrap();
    }
    let q = &job_queries(42)[19]; // group 20, the paper's running example
    let session = QuerySession::new(&catalog, q.query.clone()).unwrap();
    let mut group = c.benchmark_group("plan_job_group20");
    group.sample_size(20);
    for kind in [
        PlannerKind::TCombined,
        PlannerKind::BDisj,
        PlannerKind::BPushConj,
    ] {
        group.bench_function(kind.name(), |b| b.iter(|| session.plan(kind).unwrap()));
    }
    group.finish();
}

criterion_group!(benches, bench_synthetic_planning, bench_job_planning);
criterion_main!(benches);
