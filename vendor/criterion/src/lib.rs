//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! small wall-clock harness with criterion's API shape: `benchmark_group`,
//! `sample_size`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros. No statistical regression machinery — each benchmark reports
//! median / mean / min over its samples, which is enough to record the
//! perf trajectory in CI logs.
//!
//! `--test` (what `cargo test` passes to `harness = false` targets) runs
//! every benchmark exactly once as a smoke test. A substring filter
//! argument (as in `cargo bench -- filter`) restricts which benchmarks
//! run.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo/criterion pass that we accept and ignore.
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 50,
        }
    }

    fn should_run(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        if self.criterion.should_run(&full) {
            run_benchmark(&full, self.sample_size, self.criterion.test_mode, |b| f(b));
        }
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        if self.criterion.should_run(&full) {
            run_benchmark(&full, self.sample_size, self.criterion.test_mode, |b| {
                f(b, input)
            });
        }
        self
    }

    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            rendered: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            rendered: parameter.to_string(),
        }
    }
}

/// Things usable as a benchmark id: strings or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.rendered
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; its `iter` does the timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, test_mode: bool, mut f: F) {
    if test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {id} ... ok");
        return;
    }

    // Calibrate the per-sample iteration count towards ~5ms per sample,
    // starting from a single timed run.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(5);
    let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter[0];
    println!(
        "{id:<48} median {:>12}  mean {:>12}  min {:>12}  ({} samples x {} iters)",
        fmt_ns(median),
        fmt_ns(mean),
        fmt_ns(min),
        per_iter.len(),
        iters,
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render() {
        assert_eq!(
            BenchmarkId::new("f", 32).into_benchmark_id(),
            "f/32".to_string()
        );
        assert_eq!(BenchmarkId::from_parameter("x").into_benchmark_id(), "x");
    }

    #[test]
    fn bencher_measures() {
        let mut c = Criterion {
            filter: None,
            test_mode: true,
        };
        let mut group = c.benchmark_group("g");
        let mut ran = 0;
        group.sample_size(10).bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran += 1;
        });
        group.finish();
        assert_eq!(ran, 1);
    }
}
