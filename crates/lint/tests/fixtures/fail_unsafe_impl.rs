// Fixture: undocumented `unsafe impl` — `safety-comment` must fire.

struct Token(*const u8);

unsafe impl Send for Token {}
