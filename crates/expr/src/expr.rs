//! The construction-time expression AST and its builder DSL.

use std::fmt;

use basilisk_types::Value;

use crate::atom::{Atom, CmpOp, ColumnRef};

/// An arbitrarily nested boolean predicate expression.
///
/// `And`/`Or` are n-ary. This AST is what the SQL parser and the workload
/// generators produce; it is interned into a
/// [`PredicateTree`](crate::PredicateTree) before planning.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    Atom(Atom),
    And(Vec<Expr>),
    Or(Vec<Expr>),
    Not(Box<Expr>),
}

impl Expr {
    /// All atoms in the expression, in syntactic order (duplicates kept).
    pub fn atoms(&self) -> Vec<&Atom> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a Atom>) {
        match self {
            Expr::Atom(a) => out.push(a),
            Expr::And(cs) | Expr::Or(cs) => {
                for c in cs {
                    c.collect_atoms(out);
                }
            }
            Expr::Not(c) => c.collect_atoms(out),
        }
    }

    /// The set of table aliases referenced.
    pub fn tables(&self) -> std::collections::BTreeSet<&str> {
        self.atoms().into_iter().map(|a| a.table()).collect()
    }

    /// Number of nodes in the AST (diagnostics).
    pub fn size(&self) -> usize {
        match self {
            Expr::Atom(_) => 1,
            Expr::And(cs) | Expr::Or(cs) => 1 + cs.iter().map(Expr::size).sum::<usize>(),
            Expr::Not(c) => 1 + c.size(),
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
        let prec = match self {
            Expr::Atom(_) => 3,
            Expr::Not(_) => 2,
            Expr::And(_) => 1,
            Expr::Or(_) => 0,
        };
        let parens = prec < parent_prec;
        if parens {
            write!(f, "(")?;
        }
        match self {
            Expr::Atom(a) => write!(f, "{a}")?,
            Expr::Not(c) => {
                write!(f, "NOT ")?;
                c.fmt_prec(f, 2)?;
            }
            Expr::And(cs) => {
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    c.fmt_prec(f, 2)?;
                }
            }
            Expr::Or(cs) => {
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    c.fmt_prec(f, 1)?;
                }
            }
        }
        if parens {
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

impl From<Atom> for Expr {
    fn from(a: Atom) -> Expr {
        Expr::Atom(a)
    }
}

/// Entry point of the builder DSL: a column reference with comparison
/// methods. `col("t", "year").gt(lit(2000))` reads like the paper's
/// predicates.
pub fn col(table: &str, column: &str) -> ColBuilder {
    ColBuilder(ColumnRef::new(table, column))
}

/// Convert any rust literal into a [`Value`].
pub fn lit(v: impl Into<Value>) -> Value {
    v.into()
}

/// N-ary conjunction (panics on empty input — SQL has no empty AND).
pub fn and(children: Vec<Expr>) -> Expr {
    assert!(!children.is_empty(), "AND of zero expressions");
    if children.len() == 1 {
        children.into_iter().next().unwrap()
    } else {
        Expr::And(children)
    }
}

/// N-ary disjunction (panics on empty input).
pub fn or(children: Vec<Expr>) -> Expr {
    assert!(!children.is_empty(), "OR of zero expressions");
    if children.len() == 1 {
        children.into_iter().next().unwrap()
    } else {
        Expr::Or(children)
    }
}

/// Negation.
pub fn not(child: Expr) -> Expr {
    Expr::Not(Box::new(child))
}

/// Builder returned by [`col`].
#[derive(Debug, Clone)]
pub struct ColBuilder(pub ColumnRef);

impl ColBuilder {
    fn cmp(self, op: CmpOp, value: Value) -> Expr {
        Expr::Atom(Atom::Cmp {
            col: self.0,
            op,
            value,
        })
    }

    pub fn eq(self, value: impl Into<Value>) -> Expr {
        self.cmp(CmpOp::Eq, value.into())
    }

    pub fn ne(self, value: impl Into<Value>) -> Expr {
        self.cmp(CmpOp::Ne, value.into())
    }

    pub fn lt(self, value: impl Into<Value>) -> Expr {
        self.cmp(CmpOp::Lt, value.into())
    }

    pub fn le(self, value: impl Into<Value>) -> Expr {
        self.cmp(CmpOp::Le, value.into())
    }

    pub fn gt(self, value: impl Into<Value>) -> Expr {
        self.cmp(CmpOp::Gt, value.into())
    }

    pub fn ge(self, value: impl Into<Value>) -> Expr {
        self.cmp(CmpOp::Ge, value.into())
    }

    pub fn like(self, pattern: &str) -> Expr {
        Expr::Atom(Atom::Like {
            col: self.0,
            pattern: pattern.to_owned(),
            case_insensitive: false,
        })
    }

    pub fn ilike(self, pattern: &str) -> Expr {
        Expr::Atom(Atom::Like {
            col: self.0,
            pattern: pattern.to_owned(),
            case_insensitive: true,
        })
    }

    #[allow(clippy::wrong_self_convention)] // builder DSL: consumes the column ref
    pub fn is_null(self) -> Expr {
        Expr::Atom(Atom::IsNull { col: self.0 })
    }

    #[allow(clippy::wrong_self_convention)] // builder DSL: consumes the column ref
    pub fn is_not_null(self) -> Expr {
        not(Expr::Atom(Atom::IsNull { col: self.0 }))
    }

    pub fn in_list(self, values: Vec<Value>) -> Expr {
        Expr::Atom(Atom::InList {
            col: self.0,
            values,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Query 1 predicate.
    fn query1() -> Expr {
        or(vec![
            and(vec![
                col("t", "year").gt(2000i64),
                col("mi_idx", "score").gt("7.0"),
            ]),
            and(vec![
                col("t", "year").gt(1980i64),
                col("mi_idx", "score").gt("8.0"),
            ]),
        ])
    }

    #[test]
    fn display_matches_sql() {
        assert_eq!(
            query1().to_string(),
            "t.year > 2000 AND mi_idx.score > '7.0' OR t.year > 1980 AND mi_idx.score > '8.0'"
        );
        let e = and(vec![
            or(vec![col("a", "x").lt(1i64), col("b", "y").lt(2i64)]),
            col("a", "z").eq(3i64),
        ]);
        assert_eq!(e.to_string(), "(a.x < 1 OR b.y < 2) AND a.z = 3");
        let e = not(or(vec![col("a", "x").lt(1i64), col("a", "x").gt(5i64)]));
        assert_eq!(e.to_string(), "NOT (a.x < 1 OR a.x > 5)");
    }

    #[test]
    fn atoms_and_tables() {
        let q = query1();
        assert_eq!(q.atoms().len(), 4);
        let tables: Vec<_> = q.tables().into_iter().collect();
        assert_eq!(tables, vec!["mi_idx", "t"]);
        assert_eq!(q.size(), 7);
    }

    #[test]
    fn single_child_collapse() {
        let e = and(vec![col("t", "a").eq(1i64)]);
        assert!(matches!(e, Expr::Atom(_)));
        let e = or(vec![col("t", "a").eq(1i64)]);
        assert!(matches!(e, Expr::Atom(_)));
    }

    #[test]
    #[should_panic(expected = "AND of zero")]
    fn empty_and_panics() {
        and(vec![]);
    }

    #[test]
    fn builder_variants() {
        assert_eq!(col("t", "a").ge(1i64).to_string(), "t.a >= 1");
        assert_eq!(col("t", "a").le(1i64).to_string(), "t.a <= 1");
        assert_eq!(col("t", "a").ne(1i64).to_string(), "t.a <> 1");
        assert_eq!(col("t", "s").like("%x%").to_string(), "t.s LIKE '%x%'");
        assert_eq!(col("t", "s").is_null().to_string(), "t.s IS NULL");
        assert_eq!(col("t", "s").is_not_null().to_string(), "NOT t.s IS NULL");
        assert_eq!(
            col("t", "a")
                .in_list(vec![lit(1i64), lit(2i64)])
                .to_string(),
            "t.a IN (1, 2)"
        );
    }
}
