//! Vectorized three-valued evaluation of predicate-tree nodes.
//!
//! Evaluation is columnar and runs at **word granularity**: an atom is
//! evaluated over the rows selected by a [`Bitmap`] into a [`TruthMask`]
//! (two bitmaps: true lanes and unknown lanes), and connectives combine
//! child masks with whole-word bitwise Kleene identities — 64 lanes per
//! instruction. This is the execution path every engine operator uses
//! ([`eval_node_mask`] / [`eval_atom_mask`]).
//!
//! The mask path is **allocation-free in steady state**: every mask it
//! touches is checked out of the caller's [`MaskArena`], evaluated into in
//! place, and recycled as soon as a connective has folded it into its
//! accumulator. The returned mask is itself a pooled buffer — callers hand
//! it back with [`MaskArena::recycle_mask`] when done.
//!
//! Int/Float comparison atoms additionally run **branchless**: instead of
//! a per-lane `if valid { cmp } else { Unknown }` branch, the kernel packs
//! 64 comparison results into a word (`cmp → bit`), ANDs in the validity
//! word, and stores both planes with one [`TruthMask::set_word`] call —
//! see the `eval_cmp_mask` kernels.
//!
//! The original per-element path ([`eval_node`] / [`eval_atom`], producing
//! a `Vec<Truth>`) is kept as the scalar reference implementation: the
//! property suite checks the two agree lane-for-lane, and the `eval`
//! criterion bench records the speedup of the mask path over it.
//!
//! Engines provide data through [`ColumnProvider`]: the values of any
//! referenced column, aligned with the rows being evaluated — which is how
//! both the base-table path (bitmap reads) and the intermediate path
//! (index-tuple gathers, §2.5.1) plug in.

use std::collections::HashMap;
use std::sync::Arc;

use basilisk_storage::{Column, ColumnData, EncCmpOp, EncodedColumn};
use basilisk_types::{BasiliskError, Bitmap, MaskArena, Morsel, Result, Truth, TruthMask, Value};

use crate::atom::{Atom, CmpOp, ColumnRef};
use crate::like::like_match;
use crate::tree::{ExprId, NodeKind, PredicateTree};

/// Supplies column values aligned with the rows being evaluated.
pub trait ColumnProvider {
    /// Values of `col` for each row under evaluation, in row order.
    fn fetch(&self, col: &ColumnRef) -> Result<Arc<Column>>;

    /// Like [`Self::fetch`], but the caller promises to read only the
    /// positions set in `sel`. Implementations may return a column whose
    /// unselected lanes are arbitrary (but marked invalid), letting them
    /// gather — and, for disk-backed tables, read — only the selected
    /// rows. The default ignores the hint.
    fn fetch_at(&self, col: &ColumnRef, _sel: &Bitmap) -> Result<Arc<Column>> {
        self.fetch(col)
    }

    /// The encoded form of `col`, when the provider holds one whose row
    /// `i` is evaluation row `i` (zone maps are positional, so only
    /// identity-aligned relations may answer). `None` — the default —
    /// routes the atom through the decoded path.
    fn fetch_encoded(&self, _col: &ColumnRef) -> Option<Arc<EncodedColumn>> {
        None
    }

    /// Number of rows under evaluation.
    fn num_rows(&self) -> usize;
}

/// A trivial provider over pre-materialized columns (tests, samples).
pub struct MapProvider {
    columns: HashMap<ColumnRef, Arc<Column>>,
    encoded: HashMap<ColumnRef, Arc<EncodedColumn>>,
    rows: usize,
}

impl MapProvider {
    pub fn new(rows: usize) -> Self {
        MapProvider {
            columns: HashMap::new(),
            encoded: HashMap::new(),
            rows,
        }
    }

    pub fn with(mut self, col: ColumnRef, data: Column) -> Self {
        assert_eq!(data.len(), self.rows);
        self.columns.insert(col, Arc::new(data));
        self
    }

    /// Register `data` both encoded and decoded: the encoded form serves
    /// the zone-map/kernel path, the decoded one any fallback.
    pub fn with_encoded(mut self, col: ColumnRef, data: Column) -> Self {
        assert_eq!(data.len(), self.rows);
        self.encoded
            .insert(col.clone(), Arc::new(EncodedColumn::encode(&data)));
        self.columns.insert(col, Arc::new(data));
        self
    }
}

impl ColumnProvider for MapProvider {
    fn fetch(&self, col: &ColumnRef) -> Result<Arc<Column>> {
        self.columns
            .get(col)
            .cloned()
            .ok_or_else(|| BasiliskError::Schema(format!("no column {col} in provider")))
    }

    fn fetch_encoded(&self, col: &ColumnRef) -> Option<Arc<EncodedColumn>> {
        self.encoded.get(col).cloned()
    }

    fn num_rows(&self) -> usize {
        self.rows
    }
}

/// An immutable, pre-fetched column set: every column a predicate subtree
/// references, resolved once on the coordinating thread. Unlike the lazy
/// engine providers (whose interior caches make them `!Sync`), a
/// `ColumnSet` is plain shared data — `Sync` — so worker threads of the
/// morsel-parallel executor can evaluate against it concurrently. Fetch
/// errors (missing columns, failed disk reads) surface during
/// [`ColumnSet::prefetch`], *before* any worker is spawned or any worker
/// arena touched.
pub struct ColumnSet {
    columns: HashMap<ColumnRef, Arc<Column>>,
    encoded: HashMap<ColumnRef, Arc<EncodedColumn>>,
    rows: usize,
}

impl ColumnSet {
    /// Fetch every column referenced by the subtree rooted at `id`
    /// through `provider` (honoring the selection hint, exactly as the
    /// serial evaluation of that subtree would). Columns the provider can
    /// answer encoded are carried encoded too, so workers keep the
    /// zone-map path.
    pub fn prefetch(
        tree: &PredicateTree,
        id: ExprId,
        provider: &impl ColumnProvider,
        sel: &Bitmap,
    ) -> Result<ColumnSet> {
        fn collect(
            tree: &PredicateTree,
            id: ExprId,
            provider: &impl ColumnProvider,
            sel: &Bitmap,
            out: &mut HashMap<ColumnRef, Arc<Column>>,
            enc: &mut HashMap<ColumnRef, Arc<EncodedColumn>>,
        ) -> Result<()> {
            match tree.kind(id) {
                NodeKind::Atom(atom) => {
                    let col = atom.column();
                    if !out.contains_key(col) {
                        out.insert(col.clone(), provider.fetch_at(col, sel)?);
                        if let Some(e) = provider.fetch_encoded(col) {
                            enc.insert(col.clone(), e);
                        }
                    }
                    Ok(())
                }
                NodeKind::Not(c) => collect(tree, *c, provider, sel, out, enc),
                NodeKind::And(cs) | NodeKind::Or(cs) => {
                    for &c in cs {
                        collect(tree, c, provider, sel, out, enc)?;
                    }
                    Ok(())
                }
            }
        }
        let mut columns = HashMap::new();
        let mut encoded = HashMap::new();
        collect(tree, id, provider, sel, &mut columns, &mut encoded)?;
        Ok(ColumnSet {
            columns,
            encoded,
            rows: provider.num_rows(),
        })
    }
}

impl ColumnProvider for ColumnSet {
    fn fetch(&self, col: &ColumnRef) -> Result<Arc<Column>> {
        self.columns
            .get(col)
            .cloned()
            .ok_or_else(|| BasiliskError::Schema(format!("column {col} was not prefetched")))
    }

    fn fetch_encoded(&self, col: &ColumnRef) -> Option<Arc<EncodedColumn>> {
        self.encoded.get(col).cloned()
    }

    fn num_rows(&self) -> usize {
        self.rows
    }
}

// Worker threads share one `&ColumnSet`; keep the property pinned.
const _: fn() = || {
    fn assert_sync<T: Sync>() {}
    assert_sync::<ColumnSet>();
};

/// Evaluate any predicate-tree node over the provider's rows.
pub fn eval_node(
    tree: &PredicateTree,
    id: ExprId,
    provider: &impl ColumnProvider,
) -> Result<Vec<Truth>> {
    match tree.kind(id) {
        NodeKind::Atom(atom) => {
            let column = provider.fetch(atom.column())?;
            eval_atom(atom, &column)
        }
        NodeKind::Not(c) => {
            let mut v = eval_node(tree, *c, provider)?;
            for t in &mut v {
                *t = t.not();
            }
            Ok(v)
        }
        NodeKind::And(cs) => {
            let mut acc = eval_node(tree, cs[0], provider)?;
            for &c in &cs[1..] {
                let v = eval_node(tree, c, provider)?;
                for (a, b) in acc.iter_mut().zip(v) {
                    *a = a.and(b);
                }
            }
            Ok(acc)
        }
        NodeKind::Or(cs) => {
            let mut acc = eval_node(tree, cs[0], provider)?;
            for &c in &cs[1..] {
                let v = eval_node(tree, c, provider)?;
                for (a, b) in acc.iter_mut().zip(v) {
                    *a = a.or(b);
                }
            }
            Ok(acc)
        }
    }
}

/// Evaluate any predicate-tree node into a [`TruthMask`], touching only
/// the rows set in `sel`; unselected lanes come out `False`.
///
/// Atoms are evaluated at selected positions only; AND/OR combine child
/// masks as whole-word bitmap operations; NOT flips word-wise and is then
/// re-restricted to `sel` (lanes outside the selection are don't-cares and
/// must not leak in as `True`).
///
/// Every mask — the returned one included — is checked out of `arena`;
/// child masks are recycled as soon as a connective folds them in, and the
/// caller recycles the result, so repeated evaluation allocates nothing
/// once the pool is warm.
pub fn eval_node_mask(
    tree: &PredicateTree,
    id: ExprId,
    provider: &impl ColumnProvider,
    sel: &Bitmap,
    arena: &MaskArena,
) -> Result<TruthMask> {
    eval_node_mask_morsel(tree, id, provider, sel, arena, Morsel::full(sel.len()))
}

/// Morsel-granular [`eval_node_mask`]: evaluate only the rows of
/// `morsel`, producing a **morsel-length** mask whose lane `j` is row
/// `morsel.start() + j`. This is the unit of work the parallel executor
/// hands to a worker: `sel` and the provider's columns span the whole
/// relation (shared, read-only), every mask is checked out of the
/// worker's private `arena`, and because morsels are word-aligned the
/// caller merges results with [`TruthMask::stitch`] — plain word
/// concatenation over disjoint ranges.
///
/// The serial path *is* this function over [`Morsel::full`], so the two
/// agree bit-for-bit by construction.
pub fn eval_node_mask_morsel(
    tree: &PredicateTree,
    id: ExprId,
    provider: &impl ColumnProvider,
    sel: &Bitmap,
    arena: &MaskArena,
    morsel: Morsel,
) -> Result<TruthMask> {
    match tree.kind(id) {
        NodeKind::Atom(atom) => {
            if let Some(enc) = provider.fetch_encoded(atom.column()) {
                if let Some(mask) = eval_atom_encoded(atom, &enc, sel, arena, morsel) {
                    return Ok(mask);
                }
            }
            let column = provider.fetch_at(atom.column(), sel)?;
            eval_atom_mask_morsel(atom, &column, sel, arena, morsel)
        }
        NodeKind::Not(c) => {
            let mut m = eval_node_mask_morsel(tree, *c, provider, sel, arena, morsel)?;
            m.negate();
            m.restrict_to_words(&sel.words()[morsel.word_range()]);
            Ok(m)
        }
        NodeKind::And(cs) => fold_children(
            tree,
            cs,
            provider,
            sel,
            arena,
            morsel,
            TruthMask::and_with,
            and_saturated,
        ),
        NodeKind::Or(cs) => fold_children(
            tree,
            cs,
            provider,
            sel,
            arena,
            morsel,
            TruthMask::or_with,
            or_saturated,
        ),
    }
}

/// Every selected lane already `True`: T ∨ x ≡ T for every Kleene x, so
/// an OR fold over these lanes cannot change — later arms are dead.
fn or_saturated(acc: &TruthMask, sel_words: &[u64]) -> bool {
    let tru = acc.trues().words();
    sel_words.iter().enumerate().all(|(w, &s)| s & !tru[w] == 0)
}

/// Every selected lane already `False`: F ∧ x ≡ F for every Kleene x, so
/// an AND fold over these lanes cannot change — later arms are dead.
fn and_saturated(acc: &TruthMask, sel_words: &[u64]) -> bool {
    let (tru, unk) = (acc.trues().words(), acc.unknowns().words());
    sel_words
        .iter()
        .enumerate()
        .all(|(w, &s)| s & (tru[w] | unk[w]) == 0)
}

/// Fold a connective's children into the first child's mask, recycling
/// each child mask as soon as it is combined — and the accumulator too on
/// an error path, so failed evaluations never shrink the pool.
///
/// Between arms the fold checks `saturated`: once the accumulator has
/// absorbed the morsel (every selected lane at the connective's fixed
/// point — all-true for OR, all-false for AND), the remaining children
/// cannot change the result and are skipped. Combined with zone-map
/// pruning this is what turns a proven morsel into zero further work for
/// the rest of a disjunction's arms.
#[allow(clippy::too_many_arguments)]
fn fold_children(
    tree: &PredicateTree,
    children: &[ExprId],
    provider: &impl ColumnProvider,
    sel: &Bitmap,
    arena: &MaskArena,
    morsel: Morsel,
    combine: impl Fn(&mut TruthMask, &TruthMask),
    saturated: impl Fn(&TruthMask, &[u64]) -> bool,
) -> Result<TruthMask> {
    let sel_words = &sel.words()[morsel.word_range()];
    let mut acc = eval_node_mask_morsel(tree, children[0], provider, sel, arena, morsel)?;
    for &c in &children[1..] {
        if saturated(&acc, sel_words) {
            break;
        }
        match eval_node_mask_morsel(tree, c, provider, sel, arena, morsel) {
            Ok(m) => {
                combine(&mut acc, &m);
                arena.recycle_mask(m);
            }
            Err(e) => {
                arena.recycle_mask(acc);
                return Err(e);
            }
        }
    }
    Ok(acc)
}

/// Fill the morsel-length `out` by evaluating `lane` (which receives
/// **relation-global** row indices) at the positions of `sel` that fall
/// inside `morsel`.
fn fill_mask_lanes(
    out: &mut TruthMask,
    sel: &Bitmap,
    morsel: Morsel,
    mut lane: impl FnMut(usize) -> Truth,
) {
    let start = morsel.start();
    out.fill_lanes_at_words(&sel.words()[morsel.word_range()], |local| {
        lane(start + local)
    });
}

/// Evaluate a base predicate over a column into a pooled [`TruthMask`],
/// touching only the rows set in `sel`.
pub fn eval_atom_mask(
    atom: &Atom,
    column: &Column,
    sel: &Bitmap,
    arena: &MaskArena,
) -> Result<TruthMask> {
    eval_atom_mask_morsel(atom, column, sel, arena, Morsel::full(sel.len()))
}

/// Morsel-granular [`eval_atom_mask`]: `column` and `sel` span the whole
/// relation, the returned mask covers only `morsel`'s rows (see
/// [`eval_node_mask_morsel`]).
pub fn eval_atom_mask_morsel(
    atom: &Atom,
    column: &Column,
    sel: &Bitmap,
    arena: &MaskArena,
    morsel: Morsel,
) -> Result<TruthMask> {
    let n = column.len();
    assert_eq!(sel.len(), n, "selection length must match column length");
    assert!(morsel.end() <= n, "morsel beyond column length");
    let mut out = arena.mask(morsel.len());
    let filled = match atom {
        Atom::IsNull { .. } => {
            // NULL-ness is always definite.
            fill_mask_lanes(&mut out, sel, morsel, |i| Truth::from(!column.is_valid(i)));
            Ok(())
        }
        Atom::Cmp { op, value, col } => {
            eval_cmp_mask(*op, value, column, sel, &mut out, morsel).map_err(|e| annotate(e, col))
        }
        Atom::Like {
            pattern,
            case_insensitive,
            col,
        } => match column.as_strs() {
            None => Err(BasiliskError::Type(format!(
                "LIKE on non-string column {col}"
            ))),
            Some(strs) => {
                fill_mask_lanes(&mut out, sel, morsel, |i| {
                    if !column.is_valid(i) {
                        Truth::Unknown
                    } else {
                        Truth::from(like_match(strs.get(i), pattern, *case_insensitive))
                    }
                });
                Ok(())
            }
        },
        Atom::InList { values, .. } => {
            let list_has_null = values.iter().any(Value::is_null);
            fill_mask_lanes(&mut out, sel, morsel, |i| {
                if !column.is_valid(i) {
                    return Truth::Unknown;
                }
                let v = column.value(i);
                if values.iter().any(|w| v.sql_eq(w) == Some(true)) {
                    Truth::True
                } else if list_has_null {
                    // x IN (…, NULL) is UNKNOWN when no non-null element
                    // matches (SQL standard).
                    Truth::Unknown
                } else {
                    Truth::False
                }
            });
            Ok(())
        }
    };
    match filled {
        Ok(()) => Ok(out),
        Err(e) => {
            arena.recycle_mask(out);
            Err(e)
        }
    }
}

/// Evaluate a base predicate against an [`EncodedColumn`] without
/// decoding: zone maps first (a morsel proven all-true / all-false /
/// all-null is filled word-at-a-time from validity and selection words
/// alone), then the encoded kernels (FOR deltas and dictionary codes
/// compared in code space).
///
/// Returns `None` when the encoded path cannot answer — a type pairing
/// with no kernel, a misaligned relation — and the caller falls through
/// to the decoded path, which also owns error reporting. By construction
/// every lane agrees bit-for-bit with [`eval_atom_mask_morsel`] over the
/// decoded column.
pub fn eval_atom_encoded(
    atom: &Atom,
    enc: &EncodedColumn,
    sel: &Bitmap,
    arena: &MaskArena,
    morsel: Morsel,
) -> Option<TruthMask> {
    if sel.len() != enc.len() || morsel.end() > enc.len() {
        return None;
    }
    let mut out = arena.mask(morsel.len());
    match atom {
        Atom::IsNull { .. } => {
            match enc.prune_is_null(morsel) {
                Some(all_null) => {
                    arena.note_zone_skip();
                    if all_null {
                        // True on every selected lane (NULL-ness is
                        // definite); no nulls leaves the checkout's
                        // all-false as-is.
                        let sel_words = &sel.words()[morsel.word_range()];
                        for (w, &s) in sel_words.iter().enumerate() {
                            if s != 0 {
                                out.set_word(w, s, 0);
                            }
                        }
                    }
                }
                None => {
                    arena.note_zone_scan();
                    enc.fill_is_null(sel, morsel, &mut out);
                }
            }
            Some(out)
        }
        Atom::Cmp { op, value, .. } => {
            if value.is_null() {
                // x OP NULL is Unknown on every selected lane; not a
                // zone-map decision, so no counter.
                enc.fill_decided(Truth::Unknown, sel, morsel, &mut out);
                return Some(out);
            }
            let op = enc_cmp_op(*op);
            if let Some(decision) = enc.prune_cmp(op, value, morsel) {
                arena.note_zone_skip();
                enc.fill_decided(decision, sel, morsel, &mut out);
                return Some(out);
            }
            if enc.fill_cmp(op, value, sel, morsel, &mut out) {
                arena.note_zone_scan();
                Some(out)
            } else {
                arena.recycle_mask(out);
                None
            }
        }
        Atom::Like {
            pattern,
            case_insensitive,
            ..
        } => {
            // Dictionary-at-a-time: the pattern runs once per distinct
            // string, lanes just look the verdict up by code.
            let ok = enc.fill_str_map(sel, morsel, &mut out, |s| {
                Truth::from(like_match(s, pattern, *case_insensitive))
            });
            if ok {
                arena.note_zone_scan();
                Some(out)
            } else {
                arena.recycle_mask(out);
                None
            }
        }
        Atom::InList { values, .. } => {
            let list_has_null = values.iter().any(Value::is_null);
            let ok = enc.fill_str_map(sel, morsel, &mut out, |s| {
                // String-vs-non-string never equates under sql_eq, so
                // only Str list elements can hit.
                let hit = values
                    .iter()
                    .any(|w| matches!(w, Value::Str(x) if x.as_str() == s));
                if hit {
                    Truth::True
                } else if list_has_null {
                    Truth::Unknown
                } else {
                    Truth::False
                }
            });
            if ok {
                arena.note_zone_scan();
                Some(out)
            } else {
                arena.recycle_mask(out);
                None
            }
        }
    }
}

fn enc_cmp_op(op: CmpOp) -> EncCmpOp {
    match op {
        CmpOp::Eq => EncCmpOp::Eq,
        CmpOp::Ne => EncCmpOp::Ne,
        CmpOp::Lt => EncCmpOp::Lt,
        CmpOp::Le => EncCmpOp::Le,
        CmpOp::Gt => EncCmpOp::Gt,
        CmpOp::Ge => EncCmpOp::Ge,
    }
}

/// Branchless compare-into-word kernel for numeric columns.
///
/// For each 64-lane word with at least one selected lane, the comparison
/// runs over *every* lane of the word with no validity branch — `test`
/// compiles to a flag-setting compare (`setcc`, and with luck a SIMD
/// compare), each result lands in its bit — then one AND with the validity
/// word and the selection word routes invalid lanes to `Unknown` and
/// unselected lanes to `False`:
///
/// ```text
/// tru = cmp & valid & sel        unk = !valid & sel
/// ```
///
/// Lanes outside the selection may hold arbitrary (but in-bounds) data —
/// e.g. the scatter-aligned columns of `fetch_at` — which is harmless:
/// their comparison bits are masked off by `sel`.
fn fill_cmp_words<T: Copy>(
    out: &mut TruthMask,
    data: &[T],
    validity: Option<&Bitmap>,
    sel: &Bitmap,
    morsel: Morsel,
    test: impl Fn(T) -> bool,
) {
    // Word-aligned morsels make the restriction free: slice the data and
    // the selection/validity word arrays to the morsel's range and run
    // the same kernel with morsel-local word indices (the serial path is
    // the full-relation morsel).
    let wr = morsel.word_range();
    let data = &data[morsel.start()..morsel.end()];
    let n = data.len();
    let sel_words = &sel.words()[wr.clone()];
    let valid_words = validity.map(|v| &v.words()[wr]);
    for (w, &sel_word) in sel_words.iter().enumerate() {
        if sel_word == 0 {
            continue; // `out` is all-false from checkout
        }
        let base = w * 64;
        let top = 64.min(n - base);
        let lanes = &data[base..base + top];
        let mut cmp = 0u64;
        for (b, &x) in lanes.iter().enumerate() {
            cmp |= (test(x) as u64) << b;
        }
        let valid = valid_words.map_or(u64::MAX, |v| v[w]);
        out.set_word(w, cmp & valid & sel_word, !valid & sel_word);
    }
}

fn eval_cmp_mask(
    op: CmpOp,
    value: &Value,
    column: &Column,
    sel: &Bitmap,
    out: &mut TruthMask,
    morsel: Morsel,
) -> Result<()> {
    // Branchless word-granular kernels for numeric columns: dispatch on
    // the operator once, then compare straight into bit positions. The
    // plain `<`/`<=`/… operators reproduce SQL comparison semantics for
    // both types (for floats, IEEE makes every NaN comparison false
    // except `!=` — exactly `cmp_partial`).
    macro_rules! kernel {
        ($data:expr, $lit:expr, $conv:expr) => {{
            let data = $data;
            let lit = $lit;
            let conv = $conv;
            let valid = column.validity();
            match op {
                CmpOp::Eq => fill_cmp_words(out, data, valid, sel, morsel, |x| conv(x) == lit),
                CmpOp::Ne => fill_cmp_words(out, data, valid, sel, morsel, |x| conv(x) != lit),
                CmpOp::Lt => fill_cmp_words(out, data, valid, sel, morsel, |x| conv(x) < lit),
                CmpOp::Le => fill_cmp_words(out, data, valid, sel, morsel, |x| conv(x) <= lit),
                CmpOp::Gt => fill_cmp_words(out, data, valid, sel, morsel, |x| conv(x) > lit),
                CmpOp::Ge => fill_cmp_words(out, data, valid, sel, morsel, |x| conv(x) >= lit),
            }
            Ok(())
        }};
    }
    // Per-lane fallback for non-numeric payloads.
    macro_rules! lanes {
        ($data:expr, $test:expr) => {{
            let data = $data;
            let test = $test;
            fill_mask_lanes(out, sel, morsel, |i| {
                if !column.is_valid(i) {
                    Truth::Unknown
                } else {
                    Truth::from(test(&data[i]))
                }
            });
            Ok(())
        }};
    }
    match (column.data(), value) {
        (_, Value::Null) => {
            // Comparing anything to NULL is always unknown (only on the
            // selected lanes; the rest stay false/no-care).
            fill_mask_lanes(out, sel, morsel, |_| Truth::Unknown);
            Ok(())
        }
        (ColumnData::Int(data), Value::Int(lit)) => kernel!(data, *lit, |x: i64| x),
        (ColumnData::Int(data), Value::Float(lit)) => kernel!(data, *lit, |x: i64| x as f64),
        (ColumnData::Float(data), Value::Float(lit)) => kernel!(data, *lit, |x: f64| x),
        (ColumnData::Float(data), Value::Int(lit)) => kernel!(data, *lit as f64, |x: f64| x),
        (ColumnData::Str(data), Value::Str(lit)) => {
            fill_mask_lanes(out, sel, morsel, |i| {
                if !column.is_valid(i) {
                    Truth::Unknown
                } else {
                    Truth::from(cmp_ord(op, data.get(i).cmp(lit.as_str())))
                }
            });
            Ok(())
        }
        (ColumnData::Bool(data), Value::Bool(lit)) => {
            let lit = *lit;
            lanes!(data, move |x: &bool| cmp_ord(op, x.cmp(&lit)))
        }
        (col_data, lit) => Err(BasiliskError::Type(format!(
            "cannot compare {} column with literal {lit}",
            col_data.data_type()
        ))),
    }
}

/// Evaluate a base predicate over a column of values.
pub fn eval_atom(atom: &Atom, column: &Column) -> Result<Vec<Truth>> {
    let n = column.len();
    match atom {
        Atom::IsNull { .. } => {
            // NULL-ness is always definite.
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(Truth::from(!column.is_valid(i)));
            }
            Ok(out)
        }
        Atom::Cmp { op, value, col } => eval_cmp(*op, value, column).map_err(|e| annotate(e, col)),
        Atom::Like {
            pattern,
            case_insensitive,
            col,
        } => {
            let strs = column
                .as_strs()
                .ok_or_else(|| BasiliskError::Type(format!("LIKE on non-string column {col}")))?;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                if !column.is_valid(i) {
                    out.push(Truth::Unknown);
                } else {
                    out.push(Truth::from(like_match(
                        strs.get(i),
                        pattern,
                        *case_insensitive,
                    )));
                }
            }
            Ok(out)
        }
        Atom::InList { values, .. } => {
            let list_has_null = values.iter().any(Value::is_null);
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                if !column.is_valid(i) {
                    out.push(Truth::Unknown);
                    continue;
                }
                let v = column.value(i);
                let hit = values.iter().any(|w| v.sql_eq(w) == Some(true));
                out.push(if hit {
                    Truth::True
                } else if list_has_null {
                    // x IN (…, NULL) is UNKNOWN when no non-null element
                    // matches (SQL standard).
                    Truth::Unknown
                } else {
                    Truth::False
                });
            }
            Ok(out)
        }
    }
}

/// How one atom behaved during a (re-)evaluation over a selection: how
/// many lanes the engine actually looked at versus skipped, and what the
/// looked-at lanes returned. Produced by [`profile_atoms`] for operator
/// trace spans — the per-atom half of the in-process `EXPLAIN ANALYZE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomProfile {
    /// Display form of the atom (`t.year > 2000`).
    pub atom: String,
    /// Lanes the atom was evaluated on (the selection's population).
    pub lanes_evaluated: u64,
    /// Lanes outside the selection — rows the engine short-circuited
    /// (already-resolved tags, pruned slices) before reaching this atom.
    pub lanes_short_circuited: u64,
    /// Evaluated lanes that came back `True`.
    pub true_count: u64,
    /// Evaluated lanes that came back `Unknown` (NULL-involved).
    pub unknown_count: u64,
}

/// Profile every atom in the subtree rooted at `id` by evaluating each
/// over `sel`, in tree order. A tracing-only path: it re-evaluates atoms
/// (masks are checked out of `arena` and recycled before returning), so
/// callers gate it on the request being traced.
pub fn profile_atoms(
    tree: &PredicateTree,
    id: ExprId,
    provider: &impl ColumnProvider,
    sel: &Bitmap,
    arena: &MaskArena,
) -> Result<Vec<AtomProfile>> {
    fn walk(
        tree: &PredicateTree,
        id: ExprId,
        provider: &impl ColumnProvider,
        sel: &Bitmap,
        arena: &MaskArena,
        out: &mut Vec<AtomProfile>,
    ) -> Result<()> {
        match tree.kind(id) {
            NodeKind::Atom(atom) => {
                let column = provider.fetch_at(atom.column(), sel)?;
                let mask = eval_atom_mask(atom, &column, sel, arena)?;
                let evaluated = sel.count_ones() as u64;
                out.push(AtomProfile {
                    atom: atom.to_string(),
                    lanes_evaluated: evaluated,
                    lanes_short_circuited: sel.len() as u64 - evaluated,
                    // Unselected lanes come out False by construction, so
                    // these counts cover exactly the evaluated lanes.
                    true_count: mask.count_true() as u64,
                    unknown_count: mask.count_unknown() as u64,
                });
                arena.recycle_mask(mask);
                Ok(())
            }
            NodeKind::Not(c) => walk(tree, *c, provider, sel, arena, out),
            NodeKind::And(cs) | NodeKind::Or(cs) => {
                for &c in cs {
                    walk(tree, c, provider, sel, arena, out)?;
                }
                Ok(())
            }
        }
    }
    let mut out = Vec::new();
    walk(tree, id, provider, sel, arena, &mut out)?;
    Ok(out)
}

fn annotate(e: BasiliskError, col: &ColumnRef) -> BasiliskError {
    match e {
        BasiliskError::Type(m) => BasiliskError::Type(format!("{m} (column {col})")),
        other => other,
    }
}

fn eval_cmp(op: CmpOp, value: &Value, column: &Column) -> Result<Vec<Truth>> {
    let n = column.len();
    let mut out = Vec::with_capacity(n);
    macro_rules! run {
        ($data:expr, $test:expr) => {{
            for (i, x) in $data.iter().enumerate() {
                if !column.is_valid(i) {
                    out.push(Truth::Unknown);
                } else {
                    out.push(Truth::from($test(x)));
                }
            }
        }};
    }
    match (column.data(), value) {
        (_, Value::Null) => {
            // Comparing anything to NULL is always unknown.
            out.resize(n, Truth::Unknown);
        }
        (ColumnData::Int(data), Value::Int(lit)) => {
            let lit = *lit;
            run!(data, |x: &i64| cmp_ord(op, x.cmp(&lit)));
        }
        (ColumnData::Int(data), Value::Float(lit)) => {
            let lit = *lit;
            run!(data, |x: &i64| cmp_partial(
                op,
                (*x as f64).partial_cmp(&lit)
            ));
        }
        (ColumnData::Float(data), Value::Float(lit)) => {
            let lit = *lit;
            run!(data, |x: &f64| cmp_partial(op, x.partial_cmp(&lit)));
        }
        (ColumnData::Float(data), Value::Int(lit)) => {
            let lit = *lit as f64;
            run!(data, |x: &f64| cmp_partial(op, x.partial_cmp(&lit)));
        }
        (ColumnData::Str(data), Value::Str(lit)) => {
            for i in 0..n {
                if !column.is_valid(i) {
                    out.push(Truth::Unknown);
                } else {
                    out.push(Truth::from(cmp_ord(op, data.get(i).cmp(lit.as_str()))));
                }
            }
        }
        (ColumnData::Bool(data), Value::Bool(lit)) => {
            let lit = *lit;
            run!(data, |x: &bool| cmp_ord(op, x.cmp(&lit)));
        }
        (col_data, lit) => {
            return Err(BasiliskError::Type(format!(
                "cannot compare {} column with literal {lit}",
                col_data.data_type()
            )))
        }
    }
    Ok(out)
}

#[inline]
fn cmp_ord(op: CmpOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
    }
}

#[inline]
fn cmp_partial(op: CmpOp, ord: Option<std::cmp::Ordering>) -> bool {
    // NaN comparisons are false for every operator except `<>`.
    match ord {
        Some(o) => cmp_ord(op, o),
        None => op == CmpOp::Ne,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{and, col, not, or};
    use basilisk_storage::ColumnBuilder;
    use basilisk_types::DataType;

    fn truths(bits: &[i8]) -> Vec<Truth> {
        bits.iter()
            .map(|&b| match b {
                1 => Truth::True,
                0 => Truth::False,
                _ => Truth::Unknown,
            })
            .collect()
    }

    #[test]
    fn cmp_ints() {
        let c = Column::from_ints(vec![1990, 2001, 2008, 1980]);
        let atom = Atom::Cmp {
            col: ColumnRef::new("t", "year"),
            op: CmpOp::Gt,
            value: Value::Int(2000),
        };
        assert_eq!(eval_atom(&atom, &c).unwrap(), truths(&[0, 1, 1, 0]));
    }

    #[test]
    fn cmp_int_column_float_literal() {
        let c = Column::from_ints(vec![1, 2, 3]);
        let atom = Atom::Cmp {
            col: ColumnRef::new("t", "a"),
            op: CmpOp::Lt,
            value: Value::Float(2.5),
        };
        assert_eq!(eval_atom(&atom, &c).unwrap(), truths(&[1, 1, 0]));
    }

    #[test]
    fn cmp_strings_lexicographic() {
        let c = Column::from_strs(&["9.0", "7.5", "6.9", "8.0"]);
        let atom = Atom::Cmp {
            col: ColumnRef::new("mi_idx", "score"),
            op: CmpOp::Gt,
            value: Value::from("7.0"),
        };
        assert_eq!(eval_atom(&atom, &c).unwrap(), truths(&[1, 1, 0, 1]));
    }

    #[test]
    fn nulls_become_unknown() {
        let mut b = ColumnBuilder::new(DataType::Int);
        for v in [Value::Int(5), Value::Null, Value::Int(1)] {
            b.push(v).unwrap();
        }
        let c = b.finish();
        let atom = Atom::Cmp {
            col: ColumnRef::new("t", "a"),
            op: CmpOp::Gt,
            value: Value::Int(3),
        };
        assert_eq!(eval_atom(&atom, &c).unwrap(), truths(&[1, -1, 0]));
    }

    #[test]
    fn null_literal_always_unknown() {
        let c = Column::from_ints(vec![1, 2]);
        let atom = Atom::Cmp {
            col: ColumnRef::new("t", "a"),
            op: CmpOp::Eq,
            value: Value::Null,
        };
        assert_eq!(eval_atom(&atom, &c).unwrap(), truths(&[-1, -1]));
    }

    #[test]
    fn is_null_is_definite() {
        let mut b = ColumnBuilder::new(DataType::Str);
        for v in [Value::from("x"), Value::Null] {
            b.push(v).unwrap();
        }
        let c = b.finish();
        let atom = Atom::IsNull {
            col: ColumnRef::new("t", "s"),
        };
        assert_eq!(eval_atom(&atom, &c).unwrap(), truths(&[0, 1]));
    }

    #[test]
    fn like_and_ilike() {
        let c = Column::from_strs(&["The Godfather", "Pulp Fiction", "GODFATHER II"]);
        let atom = Atom::Like {
            col: ColumnRef::new("t", "title"),
            pattern: "%godfather%".into(),
            case_insensitive: true,
        };
        assert_eq!(eval_atom(&atom, &c).unwrap(), truths(&[1, 0, 1]));
        let atom = Atom::Like {
            col: ColumnRef::new("t", "title"),
            pattern: "%Godfather%".into(),
            case_insensitive: false,
        };
        assert_eq!(eval_atom(&atom, &c).unwrap(), truths(&[1, 0, 0]));
    }

    #[test]
    fn like_on_ints_is_type_error() {
        let c = Column::from_ints(vec![1]);
        let atom = Atom::Like {
            col: ColumnRef::new("t", "a"),
            pattern: "%x%".into(),
            case_insensitive: false,
        };
        assert!(eval_atom(&atom, &c).is_err());
    }

    #[test]
    fn in_list_with_null_element() {
        let c = Column::from_ints(vec![1, 2, 3]);
        let atom = Atom::InList {
            col: ColumnRef::new("t", "a"),
            values: vec![Value::Int(1), Value::Null],
        };
        // 1 matches → T; 2,3 don't match but NULL in list → U.
        assert_eq!(eval_atom(&atom, &c).unwrap(), truths(&[1, -1, -1]));
    }

    #[test]
    fn mismatched_types_error() {
        let c = Column::from_ints(vec![1]);
        let atom = Atom::Cmp {
            col: ColumnRef::new("t", "a"),
            op: CmpOp::Eq,
            value: Value::from("1"),
        };
        let err = eval_atom(&atom, &c).unwrap_err();
        assert!(err.to_string().contains("t.a"));
    }

    #[test]
    fn eval_node_connectives() {
        // (year > 2000 AND score > '7.0') OR (year > 1980 AND score > '8.0')
        let e = or(vec![
            and(vec![
                col("t", "year").gt(2000i64),
                col("t", "score").gt("7.0"),
            ]),
            and(vec![
                col("t", "year").gt(1980i64),
                col("t", "score").gt("8.0"),
            ]),
        ]);
        let tree = PredicateTree::build(&e);
        let provider = MapProvider::new(4)
            .with(
                ColumnRef::new("t", "year"),
                Column::from_ints(vec![2008, 1994, 1972, 2001]),
            )
            .with(
                ColumnRef::new("t", "score"),
                Column::from_strs(&["9.0", "9.3", "9.2", "6.0"]),
            );
        let result = eval_node(&tree, tree.root(), &provider).unwrap();
        // 2008/9.0 → both clauses: T; 1994/9.3 → second clause: T;
        // 1972/9.2 → neither (too old): F; 2001/6.0 → score too low: F.
        assert_eq!(result, truths(&[1, 1, 0, 0]));
    }

    #[test]
    fn eval_node_not_with_unknown() {
        let e = not(col("t", "a").gt(5i64));
        let tree = PredicateTree::build(&e);
        let mut b = ColumnBuilder::new(DataType::Int);
        for v in [Value::Int(10), Value::Null, Value::Int(1)] {
            b.push(v).unwrap();
        }
        let provider = MapProvider::new(3).with(ColumnRef::new("t", "a"), b.finish());
        let result = eval_node(&tree, tree.root(), &provider).unwrap();
        assert_eq!(result, truths(&[0, -1, 1]));
    }

    #[test]
    fn profile_atoms_counts_lanes_and_outcomes() {
        let e = or(vec![col("t", "a").gt(5i64), col("t", "b").gt(5i64)]);
        let tree = PredicateTree::build(&e);
        let mut a = ColumnBuilder::new(DataType::Int);
        let mut b = ColumnBuilder::new(DataType::Int);
        for v in [Value::Int(9), Value::Null, Value::Int(1), Value::Int(7)] {
            a.push(v).unwrap();
        }
        for v in [Value::Int(1), Value::Int(9), Value::Int(1), Value::Int(9)] {
            b.push(v).unwrap();
        }
        let provider = MapProvider::new(4)
            .with(ColumnRef::new("t", "a"), a.finish())
            .with(ColumnRef::new("t", "b"), b.finish());
        // Select rows 0..3 only; row 3 is short-circuited.
        let sel = Bitmap::from_indices(4, 0..3);
        let arena = MaskArena::new();
        let profiles = profile_atoms(&tree, tree.root(), &provider, &sel, &arena).unwrap();
        assert_eq!(profiles.len(), 2, "one profile per atom, in tree order");
        let pa = &profiles[0];
        assert_eq!(pa.atom, "t.a > 5");
        assert_eq!(pa.lanes_evaluated, 3);
        assert_eq!(pa.lanes_short_circuited, 1);
        assert_eq!(pa.true_count, 1, "only row 0 (9 > 5) among selected");
        assert_eq!(pa.unknown_count, 1, "row 1 is NULL");
        let pb = &profiles[1];
        assert_eq!(pb.atom, "t.b > 5");
        assert_eq!((pb.true_count, pb.unknown_count), (1, 0));
        assert_eq!(arena.outstanding(), 0, "profiling recycles its masks");
    }

    #[test]
    fn encoded_eval_matches_decoded_bit_for_bit() {
        // Mixed atom kinds over int + string columns with NULLs and a
        // ragged (non-multiple-of-64) length; the encoded provider must
        // agree with the decoded one on every lane.
        let n = 100;
        let mut ints = ColumnBuilder::new(DataType::Int);
        let mut strs = ColumnBuilder::new(DataType::Str);
        for i in 0..n {
            if i % 7 == 3 {
                ints.push(Value::Null).unwrap();
            } else {
                ints.push(Value::Int((i as i64 * 37) % 50)).unwrap();
            }
            if i % 5 == 1 {
                strs.push(Value::Null).unwrap();
            } else {
                strs.push(Value::from(format!("name-{}", i % 9).as_str()))
                    .unwrap();
            }
        }
        let (ints, strs) = (ints.finish(), strs.finish());
        let e = or(vec![
            and(vec![col("t", "a").gt(25i64), col("t", "s").like("name-3%")]),
            col("t", "s").is_null(),
            col("t", "s").in_list(vec![Value::from("name-7"), Value::Null]),
        ]);
        let tree = PredicateTree::build(&e);
        let plain = MapProvider::new(n)
            .with(ColumnRef::new("t", "a"), ints.clone())
            .with(ColumnRef::new("t", "s"), strs.clone());
        let enc = MapProvider::new(n)
            .with_encoded(ColumnRef::new("t", "a"), ints)
            .with_encoded(ColumnRef::new("t", "s"), strs);
        let sel = Bitmap::from_indices(n, (0..n).filter(|i| i % 3 != 0));
        let arena = MaskArena::new();
        let want = eval_node_mask(&tree, tree.root(), &plain, &sel, &arena).unwrap();
        let got = eval_node_mask(&tree, tree.root(), &enc, &sel, &arena).unwrap();
        assert_eq!(want.to_truths(), got.to_truths());
        arena.recycle_mask(want);
        arena.recycle_mask(got);
    }

    #[test]
    fn zone_maps_skip_decided_morsels_and_count() {
        // Two 1024-row morsels: the first holds only small values, the
        // second only large ones, so `a > 100` is decided per-morsel by
        // zone bounds alone — both count as skips, no scans.
        let n = 2048;
        let vals: Vec<i64> = (0..n).map(|i| if i < 1024 { 5 } else { 500 }).collect();
        let provider = MapProvider::new(n as usize)
            .with_encoded(ColumnRef::new("t", "a"), Column::from_ints(vals));
        let e = col("t", "a").gt(100i64);
        let tree = PredicateTree::build(&e);
        let sel = Bitmap::from_indices(n as usize, 0..n as usize);
        let arena = MaskArena::new();
        let mut trues = 0;
        for m in Morsel::split(n as usize, 1024) {
            let mask =
                eval_node_mask_morsel(&tree, tree.root(), &provider, &sel, &arena, m).unwrap();
            trues += mask.count_true();
            arena.recycle_mask(mask);
        }
        assert_eq!(trues, 1024);
        let stats = arena.stats();
        assert_eq!(stats.zone_skipped_morsels, 2, "both morsels zone-decided");
        assert_eq!(stats.zone_scanned_morsels, 0);
    }

    #[test]
    fn saturated_or_skips_remaining_arms() {
        // The first arm is proven all-true by zone maps; the second arm
        // references a column the provider does not have, which would
        // error if evaluated. Saturation must skip it.
        let n = 128;
        let provider = MapProvider::new(n).with_encoded(
            ColumnRef::new("t", "a"),
            Column::from_ints((0..n as i64).collect()),
        );
        let e = or(vec![col("t", "a").ge(0i64), col("t", "missing").gt(5i64)]);
        let tree = PredicateTree::build(&e);
        let sel = Bitmap::from_indices(n, 0..n);
        let arena = MaskArena::new();
        let mask = eval_node_mask(&tree, tree.root(), &provider, &sel, &arena).unwrap();
        assert_eq!(mask.count_true(), n);
        arena.recycle_mask(mask);
    }

    #[test]
    fn saturated_and_skips_remaining_arms() {
        let n = 128;
        let provider = MapProvider::new(n).with_encoded(
            ColumnRef::new("t", "a"),
            Column::from_ints((0..n as i64).collect()),
        );
        let e = and(vec![
            col("t", "a").gt(1_000_000i64),
            col("t", "missing").gt(5i64),
        ]);
        let tree = PredicateTree::build(&e);
        let sel = Bitmap::from_indices(n, 0..n);
        let arena = MaskArena::new();
        let mask = eval_node_mask(&tree, tree.root(), &provider, &sel, &arena).unwrap();
        assert_eq!(mask.count_true(), 0);
        assert_eq!(mask.count_unknown(), 0);
        arena.recycle_mask(mask);
    }

    #[test]
    fn encoded_null_literal_cmp_is_unknown_on_selected() {
        let n = 70;
        let provider = MapProvider::new(n).with_encoded(
            ColumnRef::new("t", "a"),
            Column::from_ints((0..n as i64).collect()),
        );
        let atom = Atom::Cmp {
            col: ColumnRef::new("t", "a"),
            op: CmpOp::Eq,
            value: Value::Null,
        };
        let sel = Bitmap::from_indices(n, 0..10);
        let arena = MaskArena::new();
        let enc = provider.fetch_encoded(&ColumnRef::new("t", "a")).unwrap();
        let mask = eval_atom_encoded(&atom, &enc, &sel, &arena, Morsel::full(n)).unwrap();
        assert_eq!(mask.count_unknown(), 10);
        assert_eq!(mask.count_true(), 0);
        arena.recycle_mask(mask);
    }

    #[test]
    fn unknown_propagates_through_or_per_sql() {
        let e = or(vec![col("t", "a").gt(5i64), col("t", "b").gt(5i64)]);
        let tree = PredicateTree::build(&e);
        let mut a = ColumnBuilder::new(DataType::Int);
        let mut b = ColumnBuilder::new(DataType::Int);
        // row0: a NULL, b=9 → T; row1: a NULL, b=1 → U
        a.push(Value::Null).unwrap();
        a.push(Value::Null).unwrap();
        b.push(Value::Int(9)).unwrap();
        b.push(Value::Int(1)).unwrap();
        let provider = MapProvider::new(2)
            .with(ColumnRef::new("t", "a"), a.finish())
            .with(ColumnRef::new("t", "b"), b.finish());
        let result = eval_node(&tree, tree.root(), &provider).unwrap();
        assert_eq!(result, truths(&[1, -1]));
    }
}
