//! The ISSUE-2 acceptance test: steady-state execution is allocation-free.
//!
//! A `QuerySession` owns one `MaskArena`; the first `execute()` of a plan
//! warms the pool and every later execution must be served entirely from
//! recycled buffers. `ArenaStats::fresh()` counts pool misses — i.e. the
//! buffer allocations the word-parallel path would otherwise perform — so
//! `fresh() == 0` across a run *is* the zero-allocation proof for every
//! mask, slice bitmap, selection bitmap and index decode buffer on the
//! hot path.

use basilisk_catalog::Catalog;
use basilisk_expr::{and, col, or, ColumnRef};
use basilisk_plan::{PlannerKind, Query, QuerySession};
use basilisk_storage::TableBuilder;
use basilisk_types::{DataType, Value};

fn catalog(with_nulls: bool) -> Catalog {
    let mut cat = Catalog::new();
    let mut b = TableBuilder::new("title")
        .column("id", DataType::Int)
        .column("year", DataType::Int);
    for i in 0..4000i64 {
        let year = if with_nulls && i % 37 == 0 {
            Value::Null
        } else {
            Value::Int(1900 + i % 120)
        };
        b.push_row(vec![i.into(), year]).unwrap();
    }
    cat.add_table(b.finish().unwrap()).unwrap();
    let mut b = TableBuilder::new("scores")
        .column("movie_id", DataType::Int)
        .column("score", DataType::Float);
    for i in 0..6000i64 {
        b.push_row(vec![(i % 4000).into(), ((i % 100) as f64 / 10.0).into()])
            .unwrap();
    }
    cat.add_table(b.finish().unwrap()).unwrap();
    cat
}

fn filter_query() -> Query {
    Query::new(vec![("t".into(), "title".into())])
        .filter(or(vec![
            and(vec![
                col("t", "year").gt(2000i64),
                col("t", "id").lt(3000i64),
            ]),
            and(vec![
                col("t", "year").lt(1950i64),
                col("t", "id").gt(500i64),
            ]),
            col("t", "year").eq(1980i64),
        ]))
        .select(vec![ColumnRef::new("t", "id")])
}

fn join_query() -> Query {
    Query::new(vec![
        ("t".into(), "title".into()),
        ("mi".into(), "scores".into()),
    ])
    .join(ColumnRef::new("t", "id"), ColumnRef::new("mi", "movie_id"))
    .filter(or(vec![
        and(vec![
            col("t", "year").gt(2000i64),
            col("mi", "score").gt(7.0),
        ]),
        and(vec![
            col("t", "year").gt(1980i64),
            col("mi", "score").gt(8.0),
        ]),
    ]))
    .select(vec![ColumnRef::new("t", "id")])
}

/// Run `plan` twice on a fresh session; the second run must perform zero
/// fresh buffer checkouts while producing the identical result.
fn assert_steady_state(query: Query, kind: PlannerKind) {
    let cat = catalog(false);
    let session = QuerySession::new(&cat, query).unwrap();
    let plan = session.plan(kind).unwrap();

    let first = session.execute(&plan).unwrap();
    let warmup = session.arena_stats();
    assert!(
        warmup.fresh() > 0,
        "warmup run should populate the pool ({kind})"
    );

    session.reset_arena_stats();
    let second = session.execute(&plan).unwrap();
    let steady = session.arena_stats();
    assert_eq!(
        steady.fresh(),
        0,
        "steady-state execution must be allocation-free, \
         but {kind} checked out {} fresh buffers (stats: {steady:?})",
        steady.fresh()
    );
    assert!(
        steady.reused() > 0,
        "steady-state execution should reuse pooled buffers ({kind})"
    );
    assert_eq!(
        first.canonical_tuples(),
        second.canonical_tuples(),
        "buffer reuse must not change results ({kind})"
    );

    // And it stays allocation-free on every further run.
    for _ in 0..3 {
        session.reset_arena_stats();
        session.execute(&plan).unwrap();
        assert_eq!(session.arena_stats().fresh(), 0, "run N stays at zero");
    }
}

#[test]
fn tagged_filter_pipeline_is_allocation_free_in_steady_state() {
    assert_steady_state(filter_query(), PlannerKind::TPushdown);
}

#[test]
fn tagged_filter_join_pipeline_is_allocation_free_in_steady_state() {
    assert_steady_state(join_query(), PlannerKind::TCombined);
}

#[test]
fn traditional_pipeline_is_allocation_free_in_steady_state() {
    assert_steady_state(join_query(), PlannerKind::BPushConj);
}

/// NULL-bearing data routes tuples through the unknown slice; the extra
/// unk bitmaps must recycle just like pos/neg.
#[test]
fn three_valued_pipeline_is_allocation_free_in_steady_state() {
    let cat = catalog(true);
    let session = QuerySession::new(&cat, filter_query()).unwrap();
    let plan = session.plan(PlannerKind::TPushdown).unwrap();
    session.execute(&plan).unwrap();
    session.reset_arena_stats();
    session.execute(&plan).unwrap();
    assert_eq!(session.arena_stats().fresh(), 0);
}

/// Different planners share the session pool: after one planner warms it,
/// a same-shaped plan from another planner also runs allocation-free only
/// if its shapes fit — at minimum it must never *grow* the pool once the
/// largest shapes are in.
#[test]
fn pool_survives_planner_switch() {
    let cat = catalog(false);
    let session = QuerySession::new(&cat, join_query()).unwrap();
    for kind in [
        PlannerKind::TPushdown,
        PlannerKind::TCombined,
        PlannerKind::TPullup,
    ] {
        let plan = session.plan(kind).unwrap();
        session.execute(&plan).unwrap();
        session.reset_arena_stats();
        session.execute(&plan).unwrap();
        assert_eq!(
            session.arena_stats().fresh(),
            0,
            "planner {kind} not allocation-free on rerun"
        );
    }
}
