// Fixture: undocumented unsafe block — `safety-comment` must fire.

fn read_first(v: &[u32]) -> u32 {
    unsafe { *v.get_unchecked(0) }
}
