//! Base predicates ("atoms"): the leaves of the predicate tree.

use std::fmt;

use basilisk_types::Value;

/// A table-qualified column reference. `table` is the alias used in the
/// query (e.g. `t` for `title AS t`), which is how the paper's predicates
/// are written (`t.year > 2000`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnRef {
    pub table: String,
    pub column: String,
}

impl ColumnRef {
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: table.into(),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// Comparison operators for [`Atom::Cmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// The operator `b OP a` such that `a self b == b (self.flip()) a`.
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The operator whose *true* set is the complement of this one's
    /// (over non-null values): `NOT (a < b) == a >= b`.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

/// A base predicate over a single column.
///
/// Atoms are deliberately single-column/constant: cross-column predicates
/// are expressed as join constraints in this system (as in the paper's
/// workloads). Each atom evaluates to a [`Truth`](basilisk_types::Truth):
/// NULL inputs produce `Unknown` for every variant except `IsNull`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Atom {
    /// `col OP literal`.
    Cmp {
        col: ColumnRef,
        op: CmpOp,
        value: Value,
    },
    /// SQL `LIKE` / `ILIKE` (`%` any run, `_` any single char).
    Like {
        col: ColumnRef,
        pattern: String,
        case_insensitive: bool,
    },
    /// `col IS NULL` (never unknown: NULL-ness is always known).
    IsNull { col: ColumnRef },
    /// `col IN (v1, v2, …)`.
    InList { col: ColumnRef, values: Vec<Value> },
}

impl Atom {
    /// The column this atom reads.
    pub fn column(&self) -> &ColumnRef {
        match self {
            Atom::Cmp { col, .. }
            | Atom::Like { col, .. }
            | Atom::IsNull { col }
            | Atom::InList { col, .. } => col,
        }
    }

    /// The table (alias) this atom touches.
    pub fn table(&self) -> &str {
        &self.column().table
    }

    /// A relative evaluation cost factor (`F_P` in the §4.1 cost model):
    /// regex-ish string matching is an order of magnitude more expensive
    /// than a comparison, which is what makes the paper's
    /// TPullup/TIterPush examples interesting.
    pub fn cost_factor(&self) -> f64 {
        match self {
            Atom::Cmp { .. } => 1.0,
            Atom::IsNull { .. } => 0.5,
            Atom::InList { values, .. } => 1.0 + values.len() as f64 * 0.25,
            Atom::Like { pattern, .. } => 10.0 + pattern.len() as f64 * 0.1,
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Cmp { col, op, value } => write!(f, "{col} {} {value}", op.symbol()),
            Atom::Like {
                col,
                pattern,
                case_insensitive,
            } => write!(
                f,
                "{col} {} '{}'",
                if *case_insensitive { "ILIKE" } else { "LIKE" },
                pattern.replace('\'', "''")
            ),
            Atom::IsNull { col } => write!(f, "{col} IS NULL"),
            Atom::InList { col, values } => {
                write!(f, "{col} IN (")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let a = Atom::Cmp {
            col: ColumnRef::new("t", "year"),
            op: CmpOp::Gt,
            value: Value::Int(2000),
        };
        assert_eq!(a.to_string(), "t.year > 2000");
        let a = Atom::Like {
            col: ColumnRef::new("t", "title"),
            pattern: "%godfather%".into(),
            case_insensitive: true,
        };
        assert_eq!(a.to_string(), "t.title ILIKE '%godfather%'");
        let a = Atom::IsNull {
            col: ColumnRef::new("mc", "note"),
        };
        assert_eq!(a.to_string(), "mc.note IS NULL");
        let a = Atom::InList {
            col: ColumnRef::new("it", "id"),
            values: vec![Value::Int(1), Value::Int(2)],
        };
        assert_eq!(a.to_string(), "it.id IN (1, 2)");
    }

    #[test]
    fn op_flip_negate() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.negate(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.negate(), CmpOp::Ne);
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.negate().negate(), op);
            assert_eq!(op.flip().flip(), op);
        }
    }

    #[test]
    fn cost_factor_ranks_like_expensive() {
        let cmp = Atom::Cmp {
            col: ColumnRef::new("t", "a"),
            op: CmpOp::Lt,
            value: Value::Float(0.5),
        };
        let like = Atom::Like {
            col: ColumnRef::new("t", "s"),
            pattern: "%x%".into(),
            case_insensitive: false,
        };
        assert!(like.cost_factor() > 5.0 * cmp.cost_factor());
    }

    #[test]
    fn accessors() {
        let a = Atom::IsNull {
            col: ColumnRef::new("t", "x"),
        };
        assert_eq!(a.table(), "t");
        assert_eq!(a.column(), &ColumnRef::new("t", "x"));
    }
}
