//! Abstract plans: the operator trees planners build and rewrite.
//!
//! An [`APlan`] is execution-model agnostic — the same tree can be costed
//! and executed under tagged execution (where filters become tag-mapped
//! operators) or traditional execution. `Union` only appears in BDisj
//! plans. Filter operators are identified by the predicate-tree node they
//! evaluate; since every predicate is applied exactly once per plan, the
//! node id doubles as the operator's identity for the pull-up/push-down
//! rewrites of TPullup (Algorithm 2) and TIterPush.

use basilisk_expr::{ExprId, PredicateTree};

use crate::query::JoinCond;

/// An abstract operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum APlan {
    /// Scan a base table by alias.
    Scan { alias: String },
    /// Apply predicate-tree node `node` to the child.
    Filter { node: ExprId, child: Box<APlan> },
    /// Equi-join two subplans.
    Join {
        cond: JoinCond,
        left: Box<APlan>,
        right: Box<APlan>,
    },
    /// Deduplicating union (BDisj only).
    Union { children: Vec<APlan> },
}

impl APlan {
    pub fn scan(alias: impl Into<String>) -> APlan {
        APlan::Scan {
            alias: alias.into(),
        }
    }

    pub fn filter(node: ExprId, child: APlan) -> APlan {
        APlan::Filter {
            node,
            child: Box::new(child),
        }
    }

    pub fn join(cond: JoinCond, left: APlan, right: APlan) -> APlan {
        APlan::Join {
            cond,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// All filter nodes, preorder.
    pub fn filters(&self) -> Vec<ExprId> {
        let mut out = Vec::new();
        self.walk(&mut |p| {
            if let APlan::Filter { node, .. } = p {
                out.push(*node);
            }
        });
        out
    }

    /// All scanned aliases, preorder.
    pub fn scans(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.walk(&mut |p| {
            if let APlan::Scan { alias } = p {
                out.push(alias.as_str());
            }
        });
        out
    }

    fn walk<'a>(&'a self, f: &mut impl FnMut(&'a APlan)) {
        f(self);
        match self {
            APlan::Scan { .. } => {}
            APlan::Filter { child, .. } => child.walk(f),
            APlan::Join { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            APlan::Union { children } => {
                for c in children {
                    c.walk(f);
                }
            }
        }
    }

    /// Number of operators.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }

    /// Can `target` be pulled up one node (i.e. it is a filter with a
    /// parent operator)?
    pub fn can_pull_up(&self, target: ExprId) -> bool {
        !matches!(self, APlan::Filter { node, .. } if *node == target)
            && self.find_parent_of_filter(target)
    }

    fn find_parent_of_filter(&self, target: ExprId) -> bool {
        let mut found = false;
        self.walk(&mut |p| {
            let is_parent = match p {
                APlan::Filter { child, .. } => {
                    matches!(&**child, APlan::Filter { node, .. } if *node == target)
                }
                APlan::Join { left, right, .. } => {
                    matches!(&**left, APlan::Filter { node, .. } if *node == target)
                        || matches!(&**right, APlan::Filter { node, .. } if *node == target)
                }
                APlan::Union { children } => children
                    .iter()
                    .any(|c| matches!(c, APlan::Filter { node, .. } if *node == target)),
                APlan::Scan { .. } => false,
            };
            found |= is_parent;
        });
        found
    }

    /// Pull the filter `target` up past its parent operator (one step of
    /// Algorithm 2's `pullup_node`). Returns `None` when the filter is the
    /// root or absent.
    pub fn pull_up_filter(&self, target: ExprId) -> Option<APlan> {
        if matches!(self, APlan::Filter { node, .. } if *node == target) {
            return None; // already at the root
        }
        self.pull_up_rec(target)
    }

    fn pull_up_rec(&self, target: ExprId) -> Option<APlan> {
        // If one of this node's direct children is Filter(target), absorb:
        // replace the child by its grandchild and wrap self in the filter.
        match self {
            APlan::Scan { .. } => None,
            APlan::Filter { node, child } => {
                if let APlan::Filter {
                    node: cnode,
                    child: grand,
                } = &**child
                {
                    if *cnode == target {
                        let new_self = APlan::Filter {
                            node: *node,
                            child: grand.clone(),
                        };
                        return Some(APlan::filter(target, new_self));
                    }
                }
                child.pull_up_rec(target).map(|c| APlan::Filter {
                    node: *node,
                    child: Box::new(c),
                })
            }
            APlan::Join { cond, left, right } => {
                if let APlan::Filter {
                    node: cnode,
                    child: grand,
                } = &**left
                {
                    if *cnode == target {
                        let new_self = APlan::Join {
                            cond: cond.clone(),
                            left: grand.clone(),
                            right: right.clone(),
                        };
                        return Some(APlan::filter(target, new_self));
                    }
                }
                if let APlan::Filter {
                    node: cnode,
                    child: grand,
                } = &**right
                {
                    if *cnode == target {
                        let new_self = APlan::Join {
                            cond: cond.clone(),
                            left: left.clone(),
                            right: grand.clone(),
                        };
                        return Some(APlan::filter(target, new_self));
                    }
                }
                if let Some(l) = left.pull_up_rec(target) {
                    return Some(APlan::Join {
                        cond: cond.clone(),
                        left: Box::new(l),
                        right: right.clone(),
                    });
                }
                right.pull_up_rec(target).map(|r| APlan::Join {
                    cond: cond.clone(),
                    left: left.clone(),
                    right: Box::new(r),
                })
            }
            APlan::Union { children } => {
                for (i, c) in children.iter().enumerate() {
                    if let Some(nc) = c.pull_up_rec(target) {
                        let mut out = children.clone();
                        out[i] = nc;
                        return Some(APlan::Union { children: out });
                    }
                }
                None
            }
        }
    }

    /// Is the operator directly below `Filter(target)` a join? Used by the
    /// join-juncture variant of TPullup to decide which candidate plans
    /// are worth costing.
    pub fn filter_sits_on_join(&self, target: ExprId) -> bool {
        let mut found = false;
        self.walk(&mut |p| {
            if let APlan::Filter { node, child } = p {
                if *node == target && matches!(&**child, APlan::Join { .. }) {
                    found = true;
                }
            }
        });
        found
    }

    /// Remove the filter `target` (splicing its child up). Returns the new
    /// plan and whether it was found.
    pub fn remove_filter(&self, target: ExprId) -> (APlan, bool) {
        match self {
            APlan::Filter { node, child } if *node == target => ((**child).clone(), true),
            APlan::Filter { node, child } => {
                let (c, found) = child.remove_filter(target);
                (APlan::filter(*node, c), found)
            }
            APlan::Join { cond, left, right } => {
                let (l, fl) = left.remove_filter(target);
                if fl {
                    return (APlan::join(cond.clone(), l, (**right).clone()), true);
                }
                let (r, fr) = right.remove_filter(target);
                (APlan::join(cond.clone(), (**left).clone(), r), fr)
            }
            APlan::Union { children } => {
                let mut out = Vec::with_capacity(children.len());
                let mut found = false;
                for c in children {
                    if found {
                        out.push(c.clone());
                    } else {
                        let (nc, f) = c.remove_filter(target);
                        out.push(nc);
                        found = f;
                    }
                }
                (APlan::Union { children: out }, found)
            }
            APlan::Scan { .. } => (self.clone(), false),
        }
    }

    /// Insert `Filter(target)` directly above the scan of `alias` (the
    /// TIterPush push-to-base rewrite). Returns `None` if the scan is
    /// absent.
    pub fn insert_filter_above_scan(&self, target: ExprId, alias: &str) -> Option<APlan> {
        match self {
            APlan::Scan { alias: a } if a == alias => Some(APlan::filter(target, self.clone())),
            APlan::Scan { .. } => None,
            APlan::Filter { node, child } => child
                .insert_filter_above_scan(target, alias)
                .map(|c| APlan::filter(*node, c)),
            APlan::Join { cond, left, right } => {
                if let Some(l) = left.insert_filter_above_scan(target, alias) {
                    return Some(APlan::join(cond.clone(), l, (**right).clone()));
                }
                right
                    .insert_filter_above_scan(target, alias)
                    .map(|r| APlan::join(cond.clone(), (**left).clone(), r))
            }
            APlan::Union { children } => {
                for (i, c) in children.iter().enumerate() {
                    if let Some(nc) = c.insert_filter_above_scan(target, alias) {
                        let mut out = children.clone();
                        out[i] = nc;
                        return Some(APlan::Union { children: out });
                    }
                }
                None
            }
        }
    }

    /// Pretty-print in the indented style the paper uses for its plan
    /// listings (§4.2).
    pub fn display(&self, tree: &PredicateTree) -> String {
        let mut out = String::new();
        self.display_rec(tree, 0, &mut out);
        out
    }

    fn display_rec(&self, tree: &PredicateTree, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match self {
            APlan::Scan { alias } => {
                out.push_str(&format!("{pad}Table({alias})\n"));
            }
            APlan::Filter { node, child } => {
                out.push_str(&format!("{pad}Filter({})\n", tree.display(*node)));
                child.display_rec(tree, depth + 1, out);
            }
            APlan::Join { cond, left, right } => {
                out.push_str(&format!("{pad}Join({cond})\n"));
                left.display_rec(tree, depth + 1, out);
                right.display_rec(tree, depth + 1, out);
            }
            APlan::Union { children } => {
                out.push_str(&format!("{pad}Union\n"));
                for c in children {
                    c.display_rec(tree, depth + 1, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basilisk_expr::{and, col, ColumnRef};

    fn setup() -> (PredicateTree, ExprId, ExprId, APlan) {
        let e = and(vec![col("t", "a").lt(1i64), col("s", "b").lt(2i64)]);
        let tree = PredicateTree::build(&e);
        let fa = tree
            .atom_ids()
            .into_iter()
            .find(|&id| tree.display(id) == "t.a < 1")
            .unwrap();
        let fb = tree
            .atom_ids()
            .into_iter()
            .find(|&id| tree.display(id) == "s.b < 2")
            .unwrap();
        let plan = APlan::join(
            JoinCond::new(ColumnRef::new("t", "id"), ColumnRef::new("s", "tid")),
            APlan::filter(fa, APlan::scan("t")),
            APlan::filter(fb, APlan::scan("s")),
        );
        (tree, fa, fb, plan)
    }

    #[test]
    fn walk_accessors() {
        let (_, fa, fb, plan) = setup();
        assert_eq!(plan.filters(), vec![fa, fb]);
        assert_eq!(plan.scans(), vec!["t", "s"]);
        assert_eq!(plan.size(), 5);
    }

    #[test]
    fn pull_up_moves_filter_above_join() {
        let (tree, fa, _fb, plan) = setup();
        assert!(plan.can_pull_up(fa));
        let pulled = plan.pull_up_filter(fa).unwrap();
        let rendered = pulled.display(&tree);
        let filter_pos = rendered.find("Filter(t.a < 1)").unwrap();
        let join_pos = rendered.find("Join").unwrap();
        assert!(filter_pos < join_pos, "filter now above join:\n{rendered}");
        // Pulling again: it's at the root → None.
        assert!(pulled.pull_up_filter(fa).is_none());
        assert!(!pulled.can_pull_up(fa));
    }

    #[test]
    fn pull_up_through_filter_stack() {
        let (tree, fa, fb, _) = setup();
        // Stack: Filter(fb) over Filter(fa) over Scan.
        let plan = APlan::filter(fb, APlan::filter(fa, APlan::scan("t")));
        let pulled = plan.pull_up_filter(fa).unwrap();
        // Order swapped.
        let r = pulled.display(&tree);
        assert!(
            r.find("Filter(t.a < 1)").unwrap() < r.find("Filter(s.b < 2)").unwrap(),
            "{r}"
        );
    }

    #[test]
    fn remove_and_insert_filter() {
        let (tree, fa, _fb, plan) = setup();
        let (removed, found) = plan.remove_filter(fa);
        assert!(found);
        assert_eq!(removed.filters().len(), 1);
        let back = removed.insert_filter_above_scan(fa, "t").unwrap();
        assert_eq!(back, plan, "round trip restores the plan");
        let r = back.display(&tree);
        assert!(r.contains("Filter(t.a < 1)"));
        // Unknown alias → None; unknown filter → not found.
        assert!(removed.insert_filter_above_scan(fa, "zz").is_none());
        let (_, found) = removed.remove_filter(fa);
        assert!(!found);
    }

    #[test]
    fn display_matches_paper_style() {
        let (tree, .., plan) = setup();
        let r = plan.display(&tree);
        assert_eq!(
            r,
            "Join(t.id = s.tid)\n  Filter(t.a < 1)\n    Table(t)\n  Filter(s.b < 2)\n    Table(s)\n"
        );
    }

    #[test]
    fn union_plan_walk() {
        let (_, fa, _, _) = setup();
        let u = APlan::Union {
            children: vec![APlan::filter(fa, APlan::scan("t")), APlan::scan("t")],
        };
        assert_eq!(u.size(), 4);
        let pulled = u.pull_up_filter(fa);
        assert!(pulled.is_none(), "filter directly under union can't rise");
    }
}
