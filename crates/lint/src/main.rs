//! Workspace linter entry point: `cargo run -p basilisk-lint` from
//! anywhere in the repo (CI runs it in the fmt/clippy job). Walks every
//! first-party `.rs` file, prints findings as `file:line: [rule]
//! message`, and exits non-zero when anything fires. An optional
//! argument overrides the workspace root.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(p) => PathBuf::from(p),
        // crates/lint/../.. — stable under `cargo run` from any cwd.
        None => Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("lint crate lives two levels under the workspace root")
            .to_path_buf(),
    };
    let findings = basilisk_lint::lint_workspace(&root);
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("basilisk-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("basilisk-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
