//! Catalog and statistics (§4.1).
//!
//! The cost models of tagged execution need cardinality estimates. Per the
//! paper: "For filters, we measure and use the selectivities of predicates
//! along with the independence assumption. For joins, we use PostgreSQL's
//! cardinality estimations of joins."
//!
//! * [`Catalog`] — the named-table registry shared by planners and
//!   engines.
//! * [`TableStats`] / [`ColumnStats`] — exact row counts, per-column NDV
//!   (number of distinct values), null fractions and min/max, computed by
//!   scanning at registration time.
//! * [`Estimator`] — per-query estimator resolving *aliases* to tables:
//!   atom selectivities are **measured** on a deterministic sample and
//!   cached; connectives combine by independence; equi-join selectivity is
//!   the PostgreSQL `1 / max(ndv(l), ndv(r))` rule.

#![forbid(unsafe_code)]

mod catalog;
mod estimator;
mod stats;

pub use catalog::Catalog;
pub use estimator::Estimator;
pub use stats::{compute_table_stats, ColumnStats, TableStats};
