//! Interpreter-level error-path leak tests: when one subtree of a plan
//! fails mid-execution, every *sibling* intermediate relation built
//! before the failure must still be recycled into the arena — operator-
//! level recycling (covered in `core/tests/arena_leaks.rs`) is not
//! enough if the interpreter drops a finished left input on the floor
//! while propagating the right input's error.

use basilisk_catalog::Catalog;
use basilisk_exec::TableSet;
use basilisk_expr::{and, col, ColumnRef, PredicateTree};
use basilisk_plan::{execute_traditional, APlan, JoinCond};
use basilisk_storage::TableBuilder;
use basilisk_types::{DataType, MaskArena};

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    let mut b = TableBuilder::new("t")
        .column("id", DataType::Int)
        .column("year", DataType::Int);
    for i in 0..50i64 {
        b.push_row(vec![i.into(), (1980 + i % 40).into()]).unwrap();
    }
    cat.add_table(b.finish().unwrap()).unwrap();
    let mut b = TableBuilder::new("s").column("movie_id", DataType::Int);
    for i in 0..30i64 {
        b.push_row(vec![i.into()]).unwrap();
    }
    cat.add_table(b.finish().unwrap()).unwrap();
    cat
}

fn tables(cat: &Catalog) -> TableSet {
    TableSet::new(cat, &[("t".into(), "t".into()), ("s".into(), "s".into())]).unwrap()
}

/// Predicate whose second conjunct references a missing column: the
/// filter evaluating it fails after its input relation was built.
fn failing_tree() -> PredicateTree {
    PredicateTree::build(&and(vec![
        col("s", "movie_id").gt(0i64),
        col("s", "no_such_column").gt(0i64),
    ]))
}

#[test]
fn join_with_failing_right_subtree_leaks_nothing() {
    let cat = catalog();
    let ts = tables(&cat);
    let tree = failing_tree();
    let arena = MaskArena::new();
    // Left scan succeeds (pooled identity column built), right filter
    // fails — the left relation must still be recycled.
    let plan = APlan::join(
        JoinCond::new(ColumnRef::new("t", "id"), ColumnRef::new("s", "movie_id")),
        APlan::scan("t"),
        APlan::filter(tree.root(), APlan::scan("s")),
    );
    assert!(execute_traditional(&plan, &ts, &tree, &arena).is_err());
    assert_eq!(
        arena.outstanding(),
        0,
        "failed right subtree stranded the left scan's buffers"
    );
}

#[test]
fn union_with_failing_later_child_leaks_nothing() {
    let cat = catalog();
    let ts = tables(&cat);
    let tree = failing_tree();
    let arena = MaskArena::new();
    // First child succeeds, second fails — the first child's relation
    // must still be recycled.
    let plan = APlan::Union {
        children: vec![
            APlan::scan("s"),
            APlan::filter(tree.root(), APlan::scan("s")),
        ],
    };
    assert!(execute_traditional(&plan, &ts, &tree, &arena).is_err());
    assert_eq!(
        arena.outstanding(),
        0,
        "failed later union child stranded earlier children's buffers"
    );
}
