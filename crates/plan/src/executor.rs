//! Plan interpreters for both execution models.
//!
//! Both interpreters are arena-disciplined: every operator draws its
//! mask/bitmap scratch from the caller's [`MaskArena`], and each
//! intermediate relation — a [`TaggedRelation`]'s slice bitmaps *and*
//! its `Arc`-shared index columns, or a traditional [`IdxRelation`] —
//! is recycled the moment the consuming operator has produced its
//! output. Together with the arena's
//! [`ColumnPool`](basilisk_types::ColumnPool) serving scan identities,
//! join outputs (`combine`) and union outputs, repeated executions of
//! one plan perform zero allocations of the pooled buffer shapes
//! (masks, bitmaps, `u32` index scratch, index columns) after warmup.
//! Only *value*-column materializations — projected outputs and gathered
//! join-key/predicate values — remain ordinary allocations (see
//! ROADMAP).

use basilisk_core::ProjectionTags;
use basilisk_core::{
    tagged_filter, tagged_filter_par, tagged_join, tagged_join_par, tagged_select_final,
    TaggedRelation,
};
use basilisk_exec::{
    filter as plain_filter, filter_par, hash_join, hash_join_par, union_all_dedup, IdxRelation,
    JoinSide, TableSet,
};
use basilisk_expr::PredicateTree;
use basilisk_sched::WorkerPool;
use basilisk_types::{MaskArena, Result};

use crate::aplan::APlan;
use crate::cost::TPlan;

/// Execute a tagged physical plan, returning the final (projected) index
/// relation.
pub fn execute_tagged(
    plan: &TPlan,
    projection: &ProjectionTags,
    tables: &TableSet,
    tree: &PredicateTree,
    arena: &MaskArena,
) -> Result<IdxRelation> {
    execute_tagged_impl(plan, projection, tables, tree, arena, None)
}

/// [`execute_tagged`] in **parallel mode**: every filter evaluates
/// morsel-parallel and every join probes partitioned on `pool`'s workers
/// (the operators fall back to their serial paths per relation when it
/// is too small to fan out, so this is safe to use unconditionally).
/// Output is identical to serial execution.
pub fn execute_tagged_with(
    plan: &TPlan,
    projection: &ProjectionTags,
    tables: &TableSet,
    tree: &PredicateTree,
    arena: &MaskArena,
    pool: &WorkerPool,
) -> Result<IdxRelation> {
    execute_tagged_impl(plan, projection, tables, tree, arena, Some(pool))
}

fn execute_tagged_impl(
    plan: &TPlan,
    projection: &ProjectionTags,
    tables: &TableSet,
    tree: &PredicateTree,
    arena: &MaskArena,
    pool: Option<&WorkerPool>,
) -> Result<IdxRelation> {
    let rel = run_tagged(plan, tables, tree, arena, pool)?;
    let out = tagged_select_final(&rel, projection, arena);
    rel.recycle(arena);
    Ok(out)
}

fn run_tagged(
    plan: &TPlan,
    tables: &TableSet,
    tree: &PredicateTree,
    arena: &MaskArena,
    pool: Option<&WorkerPool>,
) -> Result<TaggedRelation> {
    match plan {
        TPlan::Scan { alias } => Ok(TaggedRelation::base_in(
            IdxRelation::base_in(alias.clone(), tables.num_rows(alias)?, arena),
            arena,
        )),
        TPlan::Filter { map, child, .. } => {
            let input = run_tagged(child, tables, tree, arena, pool)?;
            let out = match pool {
                Some(p) => tagged_filter_par(tables, &input, tree, map, arena, p),
                None => tagged_filter(tables, &input, tree, map, arena),
            };
            input.recycle(arena);
            out
        }
        TPlan::Join {
            cond,
            map,
            left,
            right,
        } => {
            let l = run_tagged(left, tables, tree, arena, pool)?;
            // A failing right subtree must not strand the left's buffers.
            let r = match run_tagged(right, tables, tree, arena, pool) {
                Ok(r) => r,
                Err(e) => {
                    l.recycle(arena);
                    return Err(e);
                }
            };
            let out = match pool {
                Some(p) => tagged_join_par(tables, &l, &r, &cond.left, &cond.right, map, arena, p),
                None => tagged_join(tables, &l, &r, &cond.left, &cond.right, map, arena),
            };
            l.recycle(arena);
            r.recycle(arena);
            out
        }
    }
}

/// Execute an abstract plan under the traditional model: filters keep
/// *true* tuples, joins are plain hash joins, unions deduplicate.
///
/// Intermediate relations are recycled into the arena's column pool as
/// soon as the consuming operator has produced its output, mirroring the
/// tagged interpreter's discipline — so the traditional path is equally
/// allocation-free in steady state.
pub fn execute_traditional(
    plan: &APlan,
    tables: &TableSet,
    tree: &PredicateTree,
    arena: &MaskArena,
) -> Result<IdxRelation> {
    execute_traditional_impl(plan, tables, tree, arena, None)
}

/// [`execute_traditional`] in **parallel mode** (see
/// [`execute_tagged_with`]): parallel filters and partitioned join
/// probes; unions deduplicate serially (the dedup table is inherently
/// order-dependent), over child plans that were themselves executed in
/// parallel.
pub fn execute_traditional_with(
    plan: &APlan,
    tables: &TableSet,
    tree: &PredicateTree,
    arena: &MaskArena,
    pool: &WorkerPool,
) -> Result<IdxRelation> {
    execute_traditional_impl(plan, tables, tree, arena, Some(pool))
}

fn execute_traditional_impl(
    plan: &APlan,
    tables: &TableSet,
    tree: &PredicateTree,
    arena: &MaskArena,
    pool: Option<&WorkerPool>,
) -> Result<IdxRelation> {
    match plan {
        APlan::Scan { alias } => Ok(IdxRelation::base_in(
            alias.clone(),
            tables.num_rows(alias)?,
            arena,
        )),
        APlan::Filter { node, child } => {
            let input = execute_traditional_impl(child, tables, tree, arena, pool)?;
            let out = match pool {
                Some(p) => filter_par(tables, &input, tree, *node, arena, p),
                None => plain_filter(tables, &input, tree, *node, arena),
            };
            input.recycle(arena);
            out
        }
        APlan::Join { cond, left, right } => {
            let l = execute_traditional_impl(left, tables, tree, arena, pool)?;
            // A failing right subtree must not strand the left's buffers.
            let r = match execute_traditional_impl(right, tables, tree, arena, pool) {
                Ok(r) => r,
                Err(e) => {
                    l.recycle(arena);
                    return Err(e);
                }
            };
            let out = match pool {
                Some(p) => hash_join_par(
                    tables,
                    &l,
                    &r,
                    &cond.left,
                    &cond.right,
                    JoinSide::Smaller,
                    arena,
                    p,
                ),
                None => hash_join(
                    tables,
                    &l,
                    &r,
                    &cond.left,
                    &cond.right,
                    JoinSide::Smaller,
                    arena,
                ),
            };
            l.recycle(arena);
            r.recycle(arena);
            out
        }
        APlan::Union { children } => {
            // Collect child results by hand so that a failing later child
            // recycles every earlier child's relation before propagating.
            let mut rels: Vec<IdxRelation> = Vec::with_capacity(children.len());
            for c in children {
                match execute_traditional_impl(c, tables, tree, arena, pool) {
                    Ok(rel) => rels.push(rel),
                    Err(e) => {
                        for rel in rels {
                            rel.recycle(arena);
                        }
                        return Err(e);
                    }
                }
            }
            let out = union_all_dedup(&rels, arena);
            for rel in rels {
                rel.recycle(arena);
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{annotate_tagged, CostModel};
    use crate::query::JoinCond;
    use basilisk_catalog::{Catalog, Estimator};
    use basilisk_core::{TagMapBuilder, TagMapStrategy};
    use basilisk_expr::{and, col, or, ColumnRef};
    use basilisk_storage::TableBuilder;
    use basilisk_types::DataType;

    fn arena() -> MaskArena {
        MaskArena::new()
    }

    fn setup() -> (Catalog, TableSet, Estimator, PredicateTree) {
        let mut cat = Catalog::new();
        let mut b = TableBuilder::new("t")
            .column("id", DataType::Int)
            .column("year", DataType::Int);
        for i in 0..200i64 {
            b.push_row(vec![i.into(), (1900 + i % 120).into()]).unwrap();
        }
        cat.add_table(b.finish().unwrap()).unwrap();
        let mut b = TableBuilder::new("mi")
            .column("movie_id", DataType::Int)
            .column("score", DataType::Float);
        for i in 0..300i64 {
            b.push_row(vec![(i % 200).into(), ((i % 100) as f64 / 10.0).into()])
                .unwrap();
        }
        cat.add_table(b.finish().unwrap()).unwrap();
        let tables = TableSet::new(
            &cat,
            &[("t".into(), "t".into()), ("mi".into(), "mi".into())],
        )
        .unwrap();
        let est = Estimator::new(
            &cat,
            &[("t".into(), "t".into()), ("mi".into(), "mi".into())],
        )
        .unwrap();
        let e = or(vec![
            and(vec![
                col("t", "year").gt(2000i64),
                col("mi", "score").gt(7.0),
            ]),
            and(vec![
                col("t", "year").gt(1980i64),
                col("mi", "score").gt(8.0),
            ]),
        ]);
        (cat, tables, est, PredicateTree::build(&e))
    }

    fn find(tree: &PredicateTree, s: &str) -> basilisk_expr::ExprId {
        tree.atom_ids()
            .into_iter()
            .find(|&id| tree.display(id) == s)
            .unwrap()
    }

    /// The golden equivalence: the same abstract pushdown plan executed
    /// tagged and a join-then-filter plan executed traditionally agree.
    #[test]
    fn tagged_equals_traditional() {
        let (_cat, tables, est, tree) = setup();
        let cond = JoinCond::new(ColumnRef::new("t", "id"), ColumnRef::new("mi", "movie_id"));
        let pushed = APlan::join(
            cond.clone(),
            APlan::filter(
                find(&tree, "t.year > 1980"),
                APlan::filter(find(&tree, "t.year > 2000"), APlan::scan("t")),
            ),
            APlan::filter(
                find(&tree, "mi.score > 7"),
                APlan::filter(find(&tree, "mi.score > 8"), APlan::scan("mi")),
            ),
        );
        let builder = TagMapBuilder::new(&tree, TagMapStrategy::Generalized { use_closure: true });
        let ann = annotate_tagged(&pushed, &tree, &builder, &est, &CostModel::default()).unwrap();
        let got = execute_tagged(&ann.plan, &ann.projection, &tables, &tree, &arena()).unwrap();

        let reference = APlan::filter(
            tree.root(),
            APlan::join(cond, APlan::scan("t"), APlan::scan("mi")),
        );
        let expected = execute_traditional(&reference, &tables, &tree, &arena()).unwrap();

        let mut a: Vec<(u32, u32)> = (0..got.len())
            .map(|i| (got.col("t").unwrap()[i], got.col("mi").unwrap()[i]))
            .collect();
        let mut e: Vec<(u32, u32)> = (0..expected.len())
            .map(|i| {
                (
                    expected.col("t").unwrap()[i],
                    expected.col("mi").unwrap()[i],
                )
            })
            .collect();
        a.sort_unstable();
        e.sort_unstable();
        assert!(!a.is_empty(), "query should match something");
        assert_eq!(a, e);
    }

    /// Union plans (BDisj-style) dedup correctly.
    #[test]
    fn union_plan_executes() {
        let (_cat, tables, _est, tree) = setup();
        let cond = JoinCond::new(ColumnRef::new("t", "id"), ColumnRef::new("mi", "movie_id"));
        // Clause plans share most matches → union must dedup.
        let clause = |y: &str, s: &str| {
            APlan::join(
                cond.clone(),
                APlan::filter(find(&tree, y), APlan::scan("t")),
                APlan::filter(find(&tree, s), APlan::scan("mi")),
            )
        };
        let u = APlan::Union {
            children: vec![
                clause("t.year > 2000", "mi.score > 7"),
                clause("t.year > 1980", "mi.score > 8"),
            ],
        };
        let got = execute_traditional(&u, &tables, &tree, &arena()).unwrap();
        let reference = APlan::filter(
            tree.root(),
            APlan::join(cond, APlan::scan("t"), APlan::scan("mi")),
        );
        let expected = execute_traditional(&reference, &tables, &tree, &arena()).unwrap();
        assert_eq!(got.len(), expected.len());
    }
}
