//! Closed-loop workloads the explorer perturbs.
//!
//! Each scenario is a plain `fn()` that builds its world from scratch,
//! drives one of the repo's concurrency protocols from several named
//! threads, asserts the protocol's contract (result order,
//! completeness, arena settlement, lane accounting) and tears
//! everything down. A scenario must be silent on success and panic on
//! violation — the explorer converts panics into seeded findings.
//!
//! Threads are spawned with stable names (`basilisk-check-client-N`)
//! because the instrumented runtime keys each thread's decision stream
//! by thread name: same seed + same names → same perturbation pattern,
//! which is what makes findings replayable.

use std::any::Any;
use std::panic;
use std::thread;

use basilisk_catalog::Catalog;
use basilisk_plan::ExecContext;
use basilisk_sched::WorkerPool;
use basilisk_serve::admission::Admission;
use basilisk_serve::stats::StatsRecorder;
use basilisk_serve::{Priority, Request, Server, ServerConfig};
use basilisk_storage::TableBuilder;
use basilisk_types::sync::Arc;
use basilisk_types::{BasiliskError, DataType};

/// A named, self-contained concurrency workload.
pub struct Scenario {
    /// Stable name used by `--scenario` and in findings.
    pub name: &'static str,
    /// One-line description for `--list`.
    pub about: &'static str,
    /// The workload body; panics on contract violation.
    pub run: fn(),
}

/// Every scenario, in the order the corpus runs them.
pub const ALL: &[Scenario] = &[
    Scenario {
        name: "region_table",
        about: "three clients fan regions on one pool; order, completeness, \
                error routing and arena settlement",
        run: region_table,
    },
    Scenario {
        name: "region_pair",
        about: "run_pair ordering contract and discard routing on failure",
        run: region_pair,
    },
    Scenario {
        name: "admission_drr",
        about: "DRR admission gate: concurrent lanes, accounting, typed \
                overload rejection",
        run: admission_drr,
    },
    Scenario {
        name: "serve_submit",
        about: "end-to-end server submits across admission, plan cache, \
                stats and the shared pool",
        run: serve_submit,
    },
    Scenario {
        name: "slow_ring",
        about: "traced submits racing the lock-free slow-query ring \
                against a concurrent reader",
        run: slow_ring,
    },
    Scenario {
        name: "encoded_storage",
        about: "concurrent submits over an encoded catalog agree with the \
                decoded answer while zone-map counters advance",
        run: encoded_storage,
    },
];

/// Look up a scenario by its stable name.
pub fn find(name: &str) -> Option<&'static Scenario> {
    ALL.iter().find(|s| s.name == name)
}

fn named(i: usize, f: impl FnOnce() + Send + 'static) -> thread::JoinHandle<()> {
    thread::Builder::new()
        .name(format!("basilisk-check-client-{i}"))
        .spawn(f)
        .expect("spawn scenario client")
}

/// Join every handle, then re-raise the first panic. Joining all before
/// unwinding matters: a detached client would keep issuing sync ops
/// into the *next* seed's freshly reset runtime.
fn join_all(handles: Vec<thread::JoinHandle<()>>) {
    let mut first: Option<Box<dyn Any + Send>> = None;
    for h in handles {
        if let Err(p) = h.join() {
            first.get_or_insert(p);
        }
    }
    if let Some(p) = first {
        panic::resume_unwind(p);
    }
}

/// The region-table protocol under concurrent coordinators: three
/// clients each fan two regions of eight mask-producing tasks on a
/// shared three-worker pool, one round injecting a task failure. Checks
/// the `run` contract — results complete and in task order, the failed
/// region's lowest-index error surfaces while survivors are discarded —
/// and that every pooled buffer settles home (`outstanding() == 0`,
/// with the ownership registry asserting rule 3 at each recycle).
fn region_table() {
    let pool = Arc::new(WorkerPool::new(3).with_morsel_rows(64));
    let mut handles = Vec::new();
    for c in 0..3usize {
        let pool = Arc::clone(&pool);
        handles.push(named(c, move || {
            for round in 0..2 {
                if c == 2 && round == 1 {
                    let err = pool
                        .run(
                            (0..8usize).collect(),
                            |ctx, t| {
                                if t == 5 {
                                    Err(BasiliskError::Exec("injected task failure".into()))
                                } else {
                                    Ok(ctx.arena.mask(64 + t))
                                }
                            },
                            |arena, m| arena.recycle_mask(m),
                        )
                        .expect_err("task 5 fails the region");
                    assert_eq!(err.kind(), "exec", "lowest-index error surfaces: {err}");
                } else {
                    let out = pool
                        .run(
                            (0..8usize).collect(),
                            |ctx, t| Ok((t, ctx.arena.mask(64 + t))),
                            |arena, (_, m)| arena.recycle_mask(m),
                        )
                        .expect("clean region succeeds");
                    assert_eq!(out.len(), 8, "every task produced a result");
                    for (i, (w, (t, m))) in out.into_iter().enumerate() {
                        assert_eq!(t, i, "results come back in task order");
                        pool.with_arena(w, |arena| arena.recycle_mask(m));
                    }
                }
            }
        }));
    }
    join_all(handles);
    assert_eq!(pool.outstanding(), 0, "all buffers settled after regions");
}

/// The `run_pair` contract from two concurrent clients: a clean pair
/// returns both results (recycled to their producing workers), a pair
/// whose second closure fails surfaces that error while the surviving
/// first result is routed through its discard callback. Arena
/// settlement is checked at the end.
fn region_pair() {
    let pool = Arc::new(WorkerPool::new(2).with_morsel_rows(64));
    let mut handles = Vec::new();
    for c in 0..2usize {
        let pool = Arc::clone(&pool);
        handles.push(named(c, move || {
            let ((wa, ma), (wb, mb)) = pool
                .run_pair(
                    |ctx| Ok(ctx.arena.mask(128)),
                    |ctx| Ok(ctx.arena.mask(256)),
                    |arena, m| arena.recycle_mask(m),
                    |arena, m| arena.recycle_mask(m),
                )
                .expect("clean pair succeeds");
            pool.with_arena(wa, |arena| arena.recycle_mask(ma));
            pool.with_arena(wb, |arena| arena.recycle_mask(mb));

            let err = pool
                .run_pair(
                    |ctx| Ok(ctx.arena.mask(64)),
                    |_ctx| Err(BasiliskError::Exec("injected pair failure".into())),
                    |arena, m| arena.recycle_mask(m),
                    |arena, m: basilisk_types::TruthMask| arena.recycle_mask(m),
                )
                .expect_err("failing side surfaces");
            assert_eq!(err.kind(), "exec", "{err}");
        }));
    }
    join_all(handles);
    assert_eq!(pool.outstanding(), 0, "survivor was discarded home");
}

/// The DRR admission gate: four clients on three lanes with mixed
/// priorities churn acquire/release through a two-context pool, then
/// the lane accounting must balance (everything admitted was
/// dispatched, nothing rejected, queues drained, both contexts back on
/// the shelf). A second, single-threaded act pins the typed overload
/// rejection: at `queue_limit` the gate returns `Busy` with a load
/// snapshot instead of parking the caller.
fn admission_drr() {
    let gate = Arc::new(Admission::new(
        vec![ExecContext::new(1), ExecContext::new(1)],
        16,
    ));
    let stats = Arc::new(StatsRecorder::default());
    let plan: &[(&str, Priority)] = &[
        ("alpha", Priority::High),
        ("alpha", Priority::Normal),
        ("beta", Priority::Normal),
        ("gamma", Priority::Low),
    ];
    let mut handles = Vec::new();
    for (i, (client, priority)) in plan.iter().enumerate() {
        let gate = Arc::clone(&gate);
        let stats = Arc::clone(&stats);
        handles.push(named(i, move || {
            for _ in 0..4 {
                let (ctx, _waited) = gate
                    .acquire(client, *priority, &stats)
                    .expect("well under queue_limit");
                gate.release(ctx, &stats);
            }
        }));
    }
    join_all(handles);

    let lanes = gate.lane_stats();
    assert_eq!(lanes.len(), 3, "one lane per client tag");
    let (admitted, dispatched, rejected, depth) =
        lanes
            .iter()
            .fold((0u64, 0u64, 0u64, 0u64), |(a, d, r, q), lane| {
                (
                    a + lane.admitted,
                    d + lane.dispatched,
                    r + lane.rejected,
                    q + lane.depth,
                )
            });
    assert_eq!(admitted, 16, "every acquire was admitted");
    assert_eq!(dispatched, 16, "every admitted ticket got a context");
    assert_eq!(rejected, 0, "no overload under the limit");
    assert_eq!(depth, 0, "queues drained");
    assert_eq!(gate.with_free(|_| ()).len(), 2, "both contexts returned");

    // Overload is a typed, immediate rejection — never a parked caller.
    let tight = Admission::new(vec![ExecContext::new(1)], 1);
    let (held, _) = tight.acquire("alpha", Priority::Normal, &stats).unwrap();
    match tight.acquire("beta", Priority::High, &stats) {
        Err(BasiliskError::Busy {
            in_flight,
            queue_depth,
        }) => {
            assert_eq!(
                (in_flight, queue_depth),
                (1, 0),
                "load snapshot at rejection"
            );
        }
        Ok(_) => panic!("expected Busy at queue_limit, got an admitted context"),
        Err(other) => panic!("expected Busy at queue_limit, got {other}"),
    }
    tight.release(held, &stats);
    let (again, _) = tight
        .acquire("beta", Priority::High, &stats)
        .expect("free again after release");
    tight.release(again, &stats);
}

fn small_catalog() -> Catalog {
    small_catalog_with(false)
}

fn small_catalog_with(encoded: bool) -> Catalog {
    let mut cat = Catalog::new();
    let mut b = TableBuilder::new("title")
        .column("id", DataType::Int)
        .column("year", DataType::Int);
    if encoded {
        b = b.encoded();
    }
    for i in 0..200i64 {
        b.push_row(vec![i.into(), (1900 + i % 120).into()]).unwrap();
    }
    cat.add_table(b.finish().unwrap()).unwrap();
    let mut b = TableBuilder::new("scores")
        .column("movie_id", DataType::Int)
        .column("score", DataType::Float);
    if encoded {
        b = b.encoded();
    }
    for i in 0..300i64 {
        b.push_row(vec![(i % 200).into(), ((i % 100) as f64 / 10.0).into()])
            .unwrap();
    }
    cat.add_table(b.finish().unwrap()).unwrap();
    cat
}

/// End-to-end serving: three clients push the same disjunctive query
/// through [`Server::submit`], crossing the admission gate, the plan
/// cache mutex, the stats atomics and the shared worker pool in one
/// schedule. All answers must agree and the server must come back to
/// rest (no outstanding contexts). This is the cross-subsystem
/// lock-order coverage — cycles between cache, admission and scheduler
/// locks would surface here.
fn serve_submit() {
    const Q: &str = "SELECT t.id FROM title t JOIN scores s ON t.id = s.movie_id \
                     WHERE t.year > 2000 AND s.score > 7.0 OR t.year < 1910";
    let srv = Arc::new(Server::new(
        small_catalog(),
        ServerConfig::builder()
            .contexts(2)
            .workers(2)
            .queue_limit(32)
            .build()
            .unwrap(),
    ));
    let counts = Arc::new(basilisk_types::sync::Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    for c in 0..3usize {
        let srv = Arc::clone(&srv);
        let counts = Arc::clone(&counts);
        handles.push(named(c, move || {
            let tag = format!("check-client-{c}");
            for i in 0..3 {
                let priority = match (c + i) % 3 {
                    0 => Priority::High,
                    1 => Priority::Normal,
                    _ => Priority::Low,
                };
                let resp = srv
                    .submit(Request::sql(Q).client(&tag).priority(priority))
                    .expect("submit succeeds under queue_limit");
                counts.lock().unwrap().push(resp.row_count);
            }
        }));
    }
    join_all(handles);
    let counts = counts.lock().unwrap();
    assert_eq!(counts.len(), 9, "every submit answered");
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "all clients saw the same answer: {counts:?}"
    );
    drop(counts);
    assert_eq!(srv.outstanding(), 0, "server back at rest");
}

/// Encoded-columnar serving: three clients hammer a server whose
/// catalog was built with [`TableBuilder::encoded`] (dictionary
/// strings, FOR-packed ints, zone maps) while a plain server answers
/// the same query once as the decoded reference. Every encoded answer
/// must equal the reference, the zone-map skip counters must advance
/// (the `t.id > 1000` arm is domain-excluded — ids stop at 199 — so
/// zone maps decide it without touching data), and the server must
/// come back to rest.
fn encoded_storage() {
    const Q: &str = "SELECT t.id FROM title t WHERE t.year > 2000 OR t.id > 1000";
    let plain = Server::new(
        small_catalog(),
        ServerConfig::builder()
            .contexts(1)
            .workers(1)
            .queue_limit(8)
            .build()
            .unwrap(),
    );
    let reference = plain
        .submit(Request::sql(Q))
        .expect("decoded reference")
        .row_count;
    let srv = Arc::new(Server::new(
        small_catalog_with(true),
        ServerConfig::builder()
            .contexts(2)
            .workers(2)
            .queue_limit(32)
            .build()
            .unwrap(),
    ));
    let mut handles = Vec::new();
    for c in 0..3usize {
        let srv = Arc::clone(&srv);
        handles.push(named(c, move || {
            let tag = format!("check-client-{c}");
            for _ in 0..3 {
                let resp = srv
                    .submit(Request::sql(Q).client(&tag))
                    .expect("submit succeeds under queue_limit");
                assert_eq!(
                    resp.row_count, reference,
                    "encoded answer matches the decoded reference"
                );
            }
        }));
    }
    join_all(handles);
    let stats = srv.stats();
    assert!(
        stats.skipped_morsels_total > 0,
        "zone maps decided at least one atom-morsel"
    );
    assert_eq!(srv.outstanding(), 0, "server back at rest");
}

/// The slow-query ring under concurrent traced writers and a racing
/// reader: three clients submit traced requests through a server whose
/// threshold records *every* request into a four-slot ring, while a
/// fourth thread snapshots the ring mid-flight. The contract: a
/// snapshot is always bounded by capacity, newest-first with strictly
/// decreasing unique sequence numbers, every entry is internally
/// consistent (a well-formed trace whose root is "request"), and the
/// server settles (`outstanding() == 0`) when the writers drain.
fn slow_ring() {
    const Q: &str = "SELECT t.id FROM title t JOIN scores s ON t.id = s.movie_id \
                     WHERE t.year > 2000 AND s.score > 7.0 OR t.year < 1910";
    const CAPACITY: usize = 4;
    let srv = Arc::new(Server::new(
        small_catalog(),
        ServerConfig::builder()
            .contexts(2)
            .workers(1)
            .queue_limit(32)
            .slow_threshold_micros(0) // every request is "slow"
            .slow_log_capacity(CAPACITY)
            .build()
            .unwrap(),
    ));
    let mut handles = Vec::new();
    for c in 0..3usize {
        let srv = Arc::clone(&srv);
        handles.push(named(c, move || {
            let tag = format!("check-client-{c}");
            for _ in 0..3 {
                let resp = srv
                    .submit(Request::sql(Q).client(&tag).trace(true))
                    .expect("submit succeeds under queue_limit");
                let trace = resp.trace.as_ref().expect("trace requested");
                assert!(trace.is_well_formed(), "spans nest and close");
            }
        }));
    }
    // The reader races the writers: every snapshot it takes must honor
    // the ring invariants even while pushes are landing.
    {
        let srv = Arc::clone(&srv);
        handles.push(named(3, move || {
            for _ in 0..6 {
                let snap = srv.slow_queries();
                assert!(snap.len() <= CAPACITY, "ring stays bounded");
                assert!(
                    snap.windows(2).all(|w| w[0].0 > w[1].0),
                    "newest first, unique seqs: {:?}",
                    snap.iter().map(|(s, _)| *s).collect::<Vec<_>>()
                );
                for (_, q) in &snap {
                    assert_eq!(q.priority, "normal");
                    let trace = q.trace.as_ref().expect("every request was traced");
                    assert_eq!(trace.name, "request", "entry is internally consistent");
                    assert!(trace.is_well_formed());
                }
            }
        }));
    }
    join_all(handles);
    let snap = srv.slow_queries();
    assert_eq!(snap.len(), CAPACITY, "9 pushes filled the 4-slot ring");
    assert_eq!(snap[0].0, 8, "newest sequence number is pushes - 1");
    assert_eq!(srv.outstanding(), 0, "server back at rest");
}
